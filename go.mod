module weaksets

go 1.22
