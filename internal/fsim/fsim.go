// Package fsim is the distributed file-system substrate the paper's
// dynamic sets were designed for (§1.1): directories are collections, held
// on a directory node; "files and subdirectories in the same directory may
// reside on nodes different from each other and/or from the directory
// itself". It offers both the classic strict `ls` — fetch every entry, in
// order, fail on the first unreachable file — and a dynamic-set `ls` that
// fetches in parallel, closest first, yielding whatever is accessible.
package fsim

import (
	"context"
	"fmt"
	"path"
	"sort"
	"strings"

	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

// EntryType distinguishes directory entries.
type EntryType string

// Entry types.
const (
	TypeFile EntryType = "file"
	TypeDir  EntryType = "dir"
)

// Attribute keys used on file-system objects.
const (
	attrType = "fs.type"
	attrName = "fs.name"
	attrDir  = "fs.dirnode"
)

// Entry is one directory entry, with its content when fetched.
type Entry struct {
	Name string
	Type EntryType
	Ref  repo.Ref
	Data []byte
	// DirNode, for subdirectories, is the node holding the subdirectory's
	// collection.
	DirNode netsim.NodeID
}

// FS is a client-side view of the distributed file system.
type FS struct {
	client *repo.Client
}

// New builds a file-system view over the repository client.
func New(client *repo.Client) *FS {
	return &FS{client: client}
}

func collName(dir string) string { return "fsdir:" + path.Clean(dir) }

func fileID(p string) repo.ObjectID { return repo.ObjectID("fsobj:" + path.Clean(p)) }

// Mkdir creates directory p with its collection hosted on dirNode. For a
// non-root directory the parent must already exist; the new directory is
// linked into it.
func (fs *FS) Mkdir(ctx context.Context, parentNode, dirNode netsim.NodeID, p string) error {
	p = path.Clean(p)
	if err := fs.client.CreateCollection(ctx, dirNode, collName(p)); err != nil {
		return fmt.Errorf("fsim: mkdir %q: %w", p, err)
	}
	if p == "/" || p == "." {
		return nil
	}
	parent := path.Dir(p)
	marker := repo.Object{
		ID: fileID(p),
		Attrs: map[string]string{
			attrType: string(TypeDir),
			attrName: path.Base(p),
			attrDir:  string(dirNode),
		},
	}
	ref, err := fs.client.Put(ctx, dirNode, marker)
	if err != nil {
		return fmt.Errorf("fsim: mkdir %q: %w", p, err)
	}
	if err := fs.client.Add(ctx, parentNode, collName(parent), ref); err != nil {
		return fmt.Errorf("fsim: link %q into %q: %w", p, parent, err)
	}
	return nil
}

// WriteFile creates (or overwrites) file p with data stored on
// storageNode, linking it into its parent directory hosted on parentNode.
func (fs *FS) WriteFile(ctx context.Context, parentNode, storageNode netsim.NodeID, p string, data []byte) (repo.Ref, error) {
	p = path.Clean(p)
	obj := repo.Object{
		ID:   fileID(p),
		Data: data,
		Attrs: map[string]string{
			attrType: string(TypeFile),
			attrName: path.Base(p),
		},
	}
	ref, err := fs.client.Put(ctx, storageNode, obj)
	if err != nil {
		return repo.Ref{}, fmt.Errorf("fsim: write %q: %w", p, err)
	}
	if err := fs.client.Add(ctx, parentNode, collName(path.Dir(p)), ref); err != nil {
		return repo.Ref{}, fmt.Errorf("fsim: link %q: %w", p, err)
	}
	return ref, nil
}

// Remove unlinks file p from its parent directory (hosted on parentNode)
// and deletes its data.
func (fs *FS) Remove(ctx context.Context, parentNode netsim.NodeID, p string, ref repo.Ref) error {
	if err := fs.client.DeleteMember(ctx, parentNode, collName(path.Dir(path.Clean(p))), ref); err != nil {
		return fmt.Errorf("fsim: remove %q: %w", p, err)
	}
	return nil
}

// entryOf converts a fetched object into an Entry.
func entryOf(ref repo.Ref, obj repo.Object) Entry {
	e := Entry{
		Name: obj.Attrs[attrName],
		Type: EntryType(obj.Attrs[attrType]),
		Ref:  ref,
		Data: obj.Data,
	}
	if e.Type == TypeDir {
		e.DirNode = netsim.NodeID(obj.Attrs[attrDir])
	}
	if e.Name == "" {
		e.Name = string(ref.ID)
	}
	return e
}

// LsStrict is the traditional ls: it lists the directory and fetches every
// entry in name order, one at a time, and fails on the first entry it
// cannot reach — "requiring that all files be accessed before ls returns"
// (§1.1).
func (fs *FS) LsStrict(ctx context.Context, dirNode netsim.NodeID, p string) ([]Entry, error) {
	refs, _, err := fs.client.List(ctx, dirNode, collName(p))
	if err != nil {
		return nil, fmt.Errorf("fsim: ls %q: %w", p, err)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	entries := make([]Entry, 0, len(refs))
	for _, ref := range refs {
		obj, err := fs.client.Get(ctx, ref)
		if err != nil {
			return entries, fmt.Errorf("fsim: ls %q: stat %q: %w", p, ref.ID, err)
		}
		entries = append(entries, entryOf(ref, obj))
	}
	return entries, nil
}

// Names lists the entry names of directory p without fetching any entry's
// contents — a single membership read. Names are recovered from the
// directory's member identifiers, so this costs one round trip regardless
// of where the entries live.
func (fs *FS) Names(ctx context.Context, dirNode netsim.NodeID, p string) ([]string, error) {
	refs, _, err := fs.client.List(ctx, dirNode, collName(p))
	if err != nil {
		return nil, fmt.Errorf("fsim: names %q: %w", p, err)
	}
	names := make([]string, 0, len(refs))
	for _, ref := range refs {
		id := string(ref.ID)
		if cut, ok := strings.CutPrefix(id, "fsobj:"); ok {
			id = cut
		}
		names = append(names, path.Base(id))
	}
	sort.Strings(names)
	return names, nil
}

// LsDyn is the dynamic-set ls: entries are fetched in parallel, closest
// first, and returned in completion order; unreachable entries are
// reported via the dynamic set's Skipped instead of blocking the listing.
// The caller must Close the returned set.
func (fs *FS) LsDyn(ctx context.Context, dirNode netsim.NodeID, p string, opts core.DynOptions) (*core.DynSet, error) {
	ds, err := core.OpenDyn(ctx, fs.client, dirNode, collName(p), opts)
	if err != nil {
		return nil, fmt.Errorf("fsim: dynamic ls %q: %w", p, err)
	}
	return ds, nil
}

// EntryFromElement converts a dynamic-set element into a directory Entry.
func EntryFromElement(e core.Element) Entry {
	return entryOf(e.Ref, repo.Object{ID: e.Ref.ID, Data: e.Data, Attrs: e.Attrs})
}

// Set returns a weak set over directory p with the given options, for
// iterating a directory under any of the paper's semantics.
func (fs *FS) Set(dirNode netsim.NodeID, p string, opts core.Options) (*core.Set, error) {
	return core.NewSet(fs.client, dirNode, collName(p), opts)
}
