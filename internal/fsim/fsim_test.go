package fsim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

type fsWorld struct {
	c  *cluster.Cluster
	fs *FS
}

func newFSWorld(t *testing.T) *fsWorld {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &fsWorld{c: c, fs: New(c.Client)}
}

func (w *fsWorld) mustMkdirRoot(t *testing.T) {
	t.Helper()
	if err := w.fs.Mkdir(context.Background(), "", cluster.DirNode, "/"); err != nil {
		t.Fatal(err)
	}
}

func (w *fsWorld) populate(t *testing.T, n int) {
	t.Helper()
	w.mustMkdirRoot(t)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/f%02d", i)
		if _, err := w.fs.WriteFile(context.Background(), cluster.DirNode, w.c.StorageFor(i), p, []byte("content")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMkdirAndWrite(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 3)
	entries, err := w.fs.LsStrict(context.Background(), cluster.DirNode, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, e := range entries {
		if e.Type != TypeFile {
			t.Fatalf("entry %d type = %s", i, e.Type)
		}
		if string(e.Data) != "content" {
			t.Fatalf("entry %d data = %q", i, e.Data)
		}
		if e.Name != fmt.Sprintf("f%02d", i) {
			t.Fatalf("entry %d name = %q (order)", i, e.Name)
		}
	}
}

func TestSubdirectories(t *testing.T) {
	w := newFSWorld(t)
	w.mustMkdirRoot(t)
	ctx := context.Background()
	subNode := w.c.Storage[1]
	if err := w.fs.Mkdir(ctx, cluster.DirNode, subNode, "/papers"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.fs.WriteFile(ctx, subNode, w.c.Storage[2], "/papers/weak-sets.ps", []byte("ps")); err != nil {
		t.Fatal(err)
	}
	root, err := w.fs.LsStrict(ctx, cluster.DirNode, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 1 || root[0].Type != TypeDir || root[0].Name != "papers" {
		t.Fatalf("root = %+v", root)
	}
	if root[0].DirNode != subNode {
		t.Fatalf("dir node = %s, want %s", root[0].DirNode, subNode)
	}
	sub, err := w.fs.LsStrict(ctx, netsim.NodeID(root[0].DirNode), "/papers")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].Name != "weak-sets.ps" {
		t.Fatalf("sub = %+v", sub)
	}
}

func TestLsStrictFailsOnPartition(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 8)
	w.c.Net.Isolate(w.c.Storage[2])
	_, err := w.fs.LsStrict(context.Background(), cluster.DirNode, "/")
	if err == nil {
		t.Fatal("strict ls succeeded across partition")
	}
}

func TestLsDynSkipsPartitioned(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 8)
	w.c.Net.Isolate(w.c.Storage[2])
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ds, err := w.fs.LsDyn(ctx, cluster.DirNode, "/", core.DynOptions{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var names []string
	for ds.Next(ctx) {
		e := EntryFromElement(ds.Element())
		if e.Type != TypeFile {
			t.Fatalf("entry = %+v", e)
		}
		names = append(names, e.Name)
	}
	if len(names) != 6 {
		t.Fatalf("dynamic ls yielded %d, want 6 (2 unreachable)", len(names))
	}
	if len(ds.Skipped()) != 2 {
		t.Fatalf("skipped = %v", ds.Skipped())
	}
}

func TestRemove(t *testing.T) {
	w := newFSWorld(t)
	w.mustMkdirRoot(t)
	ctx := context.Background()
	ref, err := w.fs.WriteFile(ctx, cluster.DirNode, w.c.Storage[0], "/x", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Remove(ctx, cluster.DirNode, "/x", ref); err != nil {
		t.Fatal(err)
	}
	entries, err := w.fs.LsStrict(ctx, cluster.DirNode, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries after remove = %v", entries)
	}
}

func TestDirectoryAsWeakSet(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 5)
	s, err := w.fs.Set(cluster.DirNode, "/", core.Options{Semantics: core.Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("weak-set ls yielded %d, want 5", len(got))
	}
}

func TestMkdirWithoutParentFails(t *testing.T) {
	w := newFSWorld(t)
	// No root created: linking /a into / must fail.
	err := w.fs.Mkdir(context.Background(), cluster.DirNode, cluster.DirNode, "/a")
	if err == nil {
		t.Fatal("mkdir without parent succeeded")
	}
}

func TestNamesMetadataOnly(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 5)
	// Cut off every storage node: names must still resolve from the
	// directory alone.
	for _, node := range w.c.Storage {
		w.c.Net.Isolate(node)
	}
	names, err := w.fs.Names(context.Background(), cluster.DirNode, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "f00" || names[4] != "f04" {
		t.Fatalf("names = %v", names)
	}
}

func TestNamesUnreachableDirectory(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 2)
	w.c.Net.Isolate(cluster.DirNode)
	if _, err := w.fs.Names(context.Background(), cluster.DirNode, "/"); err == nil {
		t.Fatal("names across partition succeeded")
	}
}

func TestWriteFileErrors(t *testing.T) {
	w := newFSWorld(t)
	w.mustMkdirRoot(t)
	ctx := context.Background()
	// Unreachable storage node.
	w.c.Net.Isolate(w.c.Storage[0])
	if _, err := w.fs.WriteFile(ctx, cluster.DirNode, w.c.Storage[0], "/x", []byte("d")); err == nil {
		t.Fatal("write to unreachable node succeeded")
	}
	w.c.Net.Rejoin(w.c.Storage[0])
	// Missing parent directory.
	if _, err := w.fs.WriteFile(ctx, cluster.DirNode, w.c.Storage[0], "/nodir/x", []byte("d")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

func TestRemoveErrors(t *testing.T) {
	w := newFSWorld(t)
	w.mustMkdirRoot(t)
	ctx := context.Background()
	ghost := repo.Ref{ID: "fsobj:/ghost", Node: w.c.Storage[0]}
	if err := w.fs.Remove(ctx, cluster.DirNode, "/ghost", ghost); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
}

func TestLsDynUnreachableDirectory(t *testing.T) {
	w := newFSWorld(t)
	w.populate(t, 2)
	w.c.Net.Isolate(cluster.DirNode)
	if _, err := w.fs.LsDyn(context.Background(), cluster.DirNode, "/", core.DynOptions{}); err == nil {
		t.Fatal("dynamic ls across partition succeeded")
	}
}
