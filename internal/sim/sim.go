// Package sim provides deterministic simulation utilities shared by the
// weak-sets substrates: a concurrency-safe seeded random source, latency
// distributions, and a time scale that maps "virtual" wide-area durations
// onto much shorter wall-clock sleeps so that experiments modelling
// hundred-millisecond WAN round trips run in microseconds while preserving
// real goroutine-level parallelism.
package sim

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Rand is a seeded pseudo-random source that is safe for concurrent use.
// The zero value is not usable; construct with NewRand.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand returns a Rand seeded with seed. Equal seeds yield equal streams.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Int63n returns a uniform random int64 in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

// Intn returns a uniform random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.ExpFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Perm(n)
}

// Fork derives an independent Rand whose stream is a deterministic function
// of the parent's state. Useful for giving each node or worker its own
// source without cross-goroutine contention.
func (r *Rand) Fork() *Rand {
	r.mu.Lock()
	defer r.mu.Unlock()
	return NewRand(r.rng.Int63())
}

// Dist is a distribution over durations, used to model link latencies and
// service times. Implementations must be safe for concurrent use given a
// concurrency-safe Rand.
type Dist interface {
	// Sample draws one duration from the distribution.
	Sample(r *Rand) time.Duration
	// Mean reports the distribution's mean, used for "closest first"
	// scheduling estimates.
	Mean() time.Duration
}

// Fixed is a degenerate distribution that always returns D.
type Fixed time.Duration

var _ Dist = Fixed(0)

// Sample implements Dist.
func (f Fixed) Sample(*Rand) time.Duration { return time.Duration(f) }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return time.Duration(f) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

var _ Dist = Uniform{}

// Sample implements Dist.
func (u Uniform) Sample(r *Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Exponential samples an exponential distribution with the given mean,
// truncated at Cap (or 8x the mean when Cap is zero) so a single unlucky
// draw cannot stall a whole experiment.
type Exponential struct {
	MeanD time.Duration
	Cap   time.Duration
}

var _ Dist = Exponential{}

// Sample implements Dist.
func (e Exponential) Sample(r *Rand) time.Duration {
	cap := e.Cap
	if cap == 0 {
		cap = 8 * e.MeanD
	}
	d := time.Duration(float64(e.MeanD) * r.ExpFloat64())
	if d > cap {
		d = cap
	}
	return d
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.MeanD }

// Zipf ranks N items by popularity with exponent S >= 1 and is used to skew
// object placement and access. It is not a Dist; see ZipfRank.
type Zipf struct {
	n int
	s float64
	// cdf[i] is the cumulative probability of ranks 0..i.
	cdf []float64
}

// NewZipf builds a Zipf ranker over n items with exponent s (s >= 1 gives
// the classic heavy head). n must be positive.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{n: n, s: s, cdf: cdf}
}

// Rank draws a rank in [0, n) with Zipf-skewed probability.
func (z *Zipf) Rank(r *Rand) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TimeScale maps virtual durations (the durations the model reasons about,
// e.g. a 50ms WAN round trip) onto wall-clock sleeps. A scale of 0.001 runs
// a 50ms virtual delay as a 50µs sleep. A scale of 0 disables sleeping
// entirely (useful in unit tests that only care about logical outcomes).
type TimeScale float64

// DefaultScale runs virtual time 1000x faster than real time.
const DefaultScale TimeScale = 0.001

// spinThreshold is the stretch of a wait that is finished by spinning
// rather than sleeping: OS timers on typical hosts have ~1ms granularity,
// which would swamp scaled-down WAN latencies (a 10ms virtual hop at 100x
// compression is a 100µs wait).
const spinThreshold = 2 * time.Millisecond

// Sleep blocks for the scaled equivalent of virtual duration d, accurate
// to a few microseconds: it sleeps coarsely and spins (with Gosched) for
// the final stretch.
func (s TimeScale) Sleep(d time.Duration) {
	sleepUntil(nil, time.Now().Add(s.Real(d)))
}

// SleepCtx is Sleep with cancellation: it returns false if ctx ended
// before the scaled duration elapsed. A non-positive scale returns true
// immediately.
func (s TimeScale) SleepCtx(ctx context.Context, d time.Duration) bool {
	return sleepUntil(ctx, time.Now().Add(s.Real(d)))
}

// SleepCtxFloor is SleepCtx with a minimum real wait, for poll loops that
// must not spin hot when the scale is zero (logical time).
func (s TimeScale) SleepCtxFloor(ctx context.Context, d, floor time.Duration) bool {
	real := s.Real(d)
	if real < floor {
		real = floor
	}
	return sleepUntil(ctx, time.Now().Add(real))
}

// sleepUntil waits until deadline, using coarse timer sleeps for the bulk
// and a Gosched spin for the final spinThreshold so short waits stay
// precise. It returns false if ctx (when non-nil) ended first.
func sleepUntil(ctx context.Context, deadline time.Time) bool {
	for {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		rem := time.Until(deadline)
		switch {
		case rem <= 0:
			return true
		case rem > spinThreshold+time.Millisecond:
			coarse := rem - spinThreshold
			if ctx == nil {
				time.Sleep(coarse)
				continue
			}
			timer := time.NewTimer(coarse)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return false
			}
			timer.Stop()
		default:
			for time.Now().Before(deadline) {
				if ctx != nil && ctx.Err() != nil {
					return false
				}
				runtime.Gosched()
			}
			return true
		}
	}
}

// Real converts a virtual duration to the wall-clock duration it occupies.
func (s TimeScale) Real(d time.Duration) time.Duration {
	if s <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) * float64(s))
}

// Virtual converts an observed wall-clock duration back to virtual time.
func (s TimeScale) Virtual(d time.Duration) time.Duration {
	if s <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / float64(s))
}

// Stopwatch measures virtual elapsed time under this scale. The returned
// function reports the virtual duration since the call to Stopwatch.
func (s TimeScale) Stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		return s.Virtual(time.Since(start))
	}
}
