package sim

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Int63n(1000), b.Int63n(1000); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := true
	for i := 0; i < 20; i++ {
		if a.Int63n(1<<30) != b.Int63n(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandFork(t *testing.T) {
	parent := NewRand(7)
	f1 := parent.Fork()
	parent2 := NewRand(7)
	f2 := parent2.Fork()
	for i := 0; i < 50; i++ {
		if f1.Intn(100) != f2.Intn(100) {
			t.Fatal("forked streams are not deterministic")
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 {
			t.Fatalf("perm value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("perm value %d duplicated", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("perm covered %d values, want 10", len(seen))
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(25 * time.Millisecond)
	r := NewRand(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 25*time.Millisecond {
			t.Fatalf("Fixed sample = %v", got)
		}
	}
	if d.Mean() != 25*time.Millisecond {
		t.Fatalf("Fixed mean = %v", d.Mean())
	}
}

func TestUniformDistBounds(t *testing.T) {
	d := Uniform{Lo: 10 * time.Millisecond, Hi: 20 * time.Millisecond}
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		s := d.Sample(r)
		if s < d.Lo || s > d.Hi {
			t.Fatalf("sample %v outside [%v, %v]", s, d.Lo, d.Hi)
		}
	}
	if got, want := d.Mean(), 15*time.Millisecond; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 5 * time.Millisecond, Hi: 5 * time.Millisecond}
	if got := d.Sample(NewRand(1)); got != 5*time.Millisecond {
		t.Fatalf("degenerate uniform sample = %v", got)
	}
}

func TestExponentialCapped(t *testing.T) {
	d := Exponential{MeanD: 10 * time.Millisecond}
	r := NewRand(9)
	for i := 0; i < 5000; i++ {
		s := d.Sample(r)
		if s < 0 || s > 80*time.Millisecond {
			t.Fatalf("sample %v outside [0, 8*mean]", s)
		}
	}
}

func TestExponentialRoughMean(t *testing.T) {
	d := Exponential{MeanD: 10 * time.Millisecond}
	r := NewRand(11)
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += d.Sample(r)
	}
	mean := total / n
	if mean < 7*time.Millisecond || mean > 13*time.Millisecond {
		t.Fatalf("empirical mean %v far from 10ms", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10, 1.2)
	r := NewRand(5)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("rank 0 (%d) should dominate rank 9 (%d)", counts[0], counts[9])
	}
	if counts[0] < 3*counts[9] {
		t.Fatalf("skew too weak: head %d vs tail %d", counts[0], counts[9])
	}
}

func TestZipfRankInRange(t *testing.T) {
	check := func(seed int64) bool {
		z := NewZipf(7, 1.0)
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			rank := z.Rank(r)
			if rank < 0 || rank >= 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1)
	if got := z.Rank(NewRand(1)); got != 0 {
		t.Fatalf("degenerate zipf rank = %d", got)
	}
}

func TestTimeScaleRealVirtualRoundTrip(t *testing.T) {
	s := TimeScale(0.001)
	virtual := 50 * time.Millisecond
	real := s.Real(virtual)
	if real != 50*time.Microsecond {
		t.Fatalf("Real(50ms) = %v, want 50µs", real)
	}
	back := s.Virtual(real)
	if back != virtual {
		t.Fatalf("Virtual(Real(d)) = %v, want %v", back, virtual)
	}
}

func TestTimeScaleZeroDisablesSleep(t *testing.T) {
	var s TimeScale
	start := time.Now()
	s.Sleep(10 * time.Hour)
	if time.Since(start) > time.Second {
		t.Fatal("zero scale slept")
	}
	if s.Real(time.Hour) != 0 {
		t.Fatal("zero scale Real != 0")
	}
	if s.Virtual(time.Hour) != 0 {
		t.Fatal("zero scale Virtual != 0")
	}
}

func TestTimeScaleNegativeDurations(t *testing.T) {
	s := TimeScale(0.5)
	if s.Real(-time.Second) != 0 {
		t.Fatal("negative duration should map to 0")
	}
}

func TestTimeScaleStopwatch(t *testing.T) {
	s := TimeScale(0.001)
	elapsed := s.Stopwatch()
	time.Sleep(2 * time.Millisecond)
	v := elapsed()
	if v < 1*time.Second {
		t.Fatalf("stopwatch reported %v, want >= ~2s virtual", v)
	}
}

func TestQuickRealMonotone(t *testing.T) {
	s := TimeScale(0.01)
	f := func(a, b uint32) bool {
		da, db := time.Duration(a)*time.Microsecond, time.Duration(b)*time.Microsecond
		if da <= db {
			return s.Real(da) <= s.Real(db)
		}
		return s.Real(da) >= s.Real(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSleepPrecision(t *testing.T) {
	// The spin-finished sleep must be far more accurate than the OS timer
	// granularity (~1ms on many hosts): ask for 300µs, expect < 900µs.
	s := TimeScale(1)
	const target = 300 * time.Microsecond
	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		s.Sleep(target)
		got := time.Since(start)
		if got > worst {
			worst = got
		}
		if got < target {
			t.Fatalf("slept %v, less than asked %v", got, target)
		}
	}
	// Generous bound: the point is beating the ~1ms OS timer floor, not
	// microsecond perfection (coverage instrumentation and CI load slow
	// the spin loop).
	if worst > 2*time.Millisecond {
		t.Fatalf("worst sleep %v; spin-finish is not working", worst)
	}
}

func TestSleepCtxCancel(t *testing.T) {
	s := TimeScale(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		done <- s.SleepCtx(ctx, 10*time.Second)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("SleepCtx reported completion despite cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SleepCtx ignored cancellation")
	}
}

func TestSleepCtxCompletes(t *testing.T) {
	s := TimeScale(1)
	if !s.SleepCtx(context.Background(), time.Millisecond) {
		t.Fatal("SleepCtx returned false without cancellation")
	}
}

func TestSleepCtxFloor(t *testing.T) {
	var s TimeScale // zero scale: Real() is 0, floor must still apply
	start := time.Now()
	if !s.SleepCtxFloor(context.Background(), time.Hour, 2*time.Millisecond) {
		t.Fatal("returned false")
	}
	if got := time.Since(start); got < 2*time.Millisecond {
		t.Fatalf("floored sleep %v < 2ms", got)
	}
	// Pre-cancelled context returns immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if s.SleepCtxFloor(ctx, time.Hour, time.Hour) {
		t.Fatal("cancelled SleepCtxFloor returned true")
	}
}
