package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/repo"
)

// TestBatchedIteratorUsesBatchRPC pins the transport win: a batched
// iterator over a populated set issues GetBatch RPCs and far fewer
// per-object Gets than elements yielded.
func TestBatchedIteratorUsesBatchRPC(t *testing.T) {
	w := newTestWorld(t, 12)
	ctx := context.Background()
	gets := w.c.Bus.MethodCalls(repo.MethodGet)
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)

	s := w.set(t, Options{Semantics: Snapshot})
	elems, err := s.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 12 {
		t.Fatalf("yielded %d, want 12", len(elems))
	}
	if got := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; got == 0 {
		t.Fatal("batched iterator issued no GetBatch RPCs")
	}
	if got := w.c.Bus.MethodCalls(repo.MethodGet) - gets; got != 0 {
		t.Fatalf("batched iterator issued %d per-object Gets", got)
	}
}

// TestFetchDisableRestoresPerObjectPath keeps the baseline honest: with
// Fetch.Disable every element costs one Get and no GetBatch is issued.
func TestFetchDisableRestoresPerObjectPath(t *testing.T) {
	w := newTestWorld(t, 6)
	ctx := context.Background()
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)

	s := w.set(t, Options{Semantics: Snapshot, Fetch: FetchOptions{Disable: true}})
	elems, err := s.Collect(ctx)
	if err != nil || len(elems) != 6 {
		t.Fatalf("collect = %d elems, %v", len(elems), err)
	}
	if got := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; got != 0 {
		t.Fatalf("disabled fetch path issued %d GetBatch RPCs", got)
	}
}

// TestBatchedIteratorLossyLinks runs the batch path under message loss:
// ErrDropped mid-batch fails one round trip, the candidates are
// re-batched, and every semantics still yields the full set.
func TestBatchedIteratorLossyLinks(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 7, DropProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := createPopulated(ctx, c, "lossy-batch", 12); err != nil {
		t.Fatal(err)
	}
	for _, sem := range []Semantics{Snapshot, GrowOnly, Optimistic} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			s, err := NewSet(c.Client, cluster.DirNode, "lossy-batch", Options{
				Semantics:  sem,
				BlockRetry: time.Millisecond,
				// Small batches and a narrow pipe force many round trips,
				// so drops land mid-pipeline, not just on the first batch.
				Fetch: FetchOptions{Batch: 3, Inflight: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			var elems []Element
			for attempt := 0; attempt < 10; attempt++ {
				elems, err = s.Collect(ctx)
				if err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("collect kept failing: %v", err)
			}
			if len(elems) != 12 {
				t.Fatalf("yielded %d, want 12", len(elems))
			}
		})
	}
}

// TestPartitionMidBatchNeverYieldsUnreachable cuts a storage node off
// after the prefetcher has already parked its objects in the ready queue.
// Pessimistic semantics must not serve those prefetched copies: every
// yield is re-validated against a fresh pre-state, so the run fails
// instead of yielding an unreachable member.
func TestPartitionMidBatchNeverYieldsUnreachable(t *testing.T) {
	w := newTestWorld(t, 8)
	ctx := context.Background()
	victim := w.c.Storage[1] // hosts e001 and e005

	s := w.set(t, Options{Semantics: Immutable})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)

	var yielded []Element
	for it.Next(ctx) {
		yielded = append(yielded, it.Element())
		if len(yielded) == 1 {
			// e000 is out and the first fetch prefetched every member in
			// per-node batches — e001 and e005 sit in the ready queue.
			// Partition their node before the kernel reaches them.
			w.c.Net.Isolate(victim)
		}
		if len(yielded) > 1 {
			if n := it.Element().Ref.Node; n == victim {
				t.Fatalf("yielded %q from partitioned node %s", it.Element().ID(), n)
			}
		}
	}
	if err := it.Err(); !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure (unreachable members remain)", err)
	}
	// The six members on still-reachable nodes precede the failure; the
	// two prefetched-but-partitioned ones are never served.
	if len(yielded) != 6 {
		t.Fatalf("yielded %d before failing, want 6", len(yielded))
	}
}

// TestBatchFailureCountsOncePerRoundTrip proves the liveness-guard
// accounting: four same-node members behind a blackhole link share one
// GetBatch per attempt, and each failed round trip costs exactly one
// consecutive-failure tick — so the iterator gives up only after
// maxConsecutiveFetchFailures whole batches, not after 64/4 of them.
func TestBatchFailureCountsOncePerRoundTrip(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 4, DropProb: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// The directory is the client's own node: self-sends never drop, so
	// membership reads succeed while every cross-node fetch blackholes.
	if err := c.Client.CreateCollection(ctx, cluster.HomeNode, "bh"); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Client.Put(ctx, cluster.HomeNode, repo.Object{ID: "local", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.HomeNode, "bh", ref); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		id := repo.ObjectID(fmt.Sprintf("remote-%d", i))
		if err := c.Client.Add(ctx, cluster.HomeNode, "bh", repo.Ref{ID: id, Node: c.Storage[0]}); err != nil {
			t.Fatal(err)
		}
	}

	s, err := NewSet(c.Client, cluster.HomeNode, "bh", Options{Semantics: GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(ctx); !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure after repeated batch failures", err)
	}
	// One failed GetBatch per consecutive-failure tick. Per-element
	// accounting would give up after ~64/4 round trips.
	if got := c.Bus.MethodCalls(repo.MethodGetBatch); got < maxConsecutiveFetchFailures {
		t.Fatalf("gave up after %d failed batches, want ≥ %d (once per round trip)",
			got, maxConsecutiveFetchFailures)
	}
}

// TestVersionGatedListSkipsMembershipShipping checks the not-modified
// path: a current-state iteration over a stable collection re-reads
// membership every Next, but only the first List ships members — and the
// retry accounting treats the gated replies as successes.
func TestVersionGatedListSkipsMembershipShipping(t *testing.T) {
	w := newTestWorld(t, 10)
	ctx := context.Background()

	s := w.set(t, Options{Semantics: GrowOnly})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	n := 0
	for it.Next(ctx) {
		n++
		// The cached listing must track reality: the kernel still sees
		// every member.
		if it.Element().Data == nil {
			t.Fatalf("element %q yielded without data", it.Element().ID())
		}
	}
	if err := it.Err(); err != nil || n != 10 {
		t.Fatalf("run: n=%d err=%v", n, err)
	}
	if it.listFails != 0 {
		t.Fatalf("listFails = %d after clean gated run", it.listFails)
	}
}

// TestDynSetBatchSkipsMissingMember exercises a batch whose node reports
// some ids missing: the vanished member is silently dropped (Fig. 6
// permits missing a concurrent deletion), never surfaced as skipped.
func TestDynSetBatchSkipsMissingMember(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "dyn"); err != nil {
		t.Fatal(err)
	}
	var refs []repo.Ref
	for i := 0; i < 3; i++ {
		id := repo.ObjectID(fmt.Sprintf("m%d", i))
		ref, err := c.Client.Put(ctx, c.Storage[0], repo.Object{ID: id, Data: []byte("d")})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "dyn", ref); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	// m1's data vanishes while its membership survives — the mid-batch
	// deletion, frozen deterministically.
	if err := c.Client.Delete(ctx, refs[1]); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDyn(ctx, c.Client, cluster.DirNode, "dyn", DynOptions{Width: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	got := map[repo.ObjectID]bool{}
	for ds.Next(ctx) {
		got[ds.Element().ID()] = true
	}
	if len(got) != 2 || !got["m0"] || !got["m2"] {
		t.Fatalf("yielded %v, want m0 and m2", got)
	}
	if sk := ds.Skipped(); len(sk) != 0 {
		t.Fatalf("missing member reported as skipped: %v", sk)
	}
}

// TestDynSetBatchPartitionSkipsChunk partitions the batch's node so the
// whole chunk fails in one round trip; without RetryUnreachable every
// member lands in Skipped, preserving the partial-result report.
func TestDynSetBatchPartitionSkipsChunk(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "dynp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		node := c.Storage[0]
		if i >= 2 {
			node = c.Storage[1]
		}
		id := repo.ObjectID(fmt.Sprintf("p%d", i))
		ref, err := c.Client.Put(ctx, node, repo.Object{ID: id, Data: []byte("d")})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "dynp", ref); err != nil {
			t.Fatal(err)
		}
	}
	c.Net.Isolate(c.Storage[1])

	ds, err := OpenDyn(ctx, c.Client, cluster.DirNode, "dynp", DynOptions{Width: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	n := 0
	for ds.Next(ctx) {
		if ds.Element().Ref.Node == c.Storage[1] {
			t.Fatalf("yielded %q from isolated node", ds.Element().ID())
		}
		n++
	}
	if n != 2 {
		t.Fatalf("yielded %d reachable members, want 2", n)
	}
	if sk := ds.Skipped(); len(sk) != 2 {
		t.Fatalf("skipped = %v, want the 2 members behind the partition", sk)
	}
}

// TestPrefetcherReadYourWrites drives the mutation-epoch invalidation
// directly: the whole set is prefetched in one batch, then the client
// itself deletes a later member's data. The prefetched copy must NOT be
// served; the refetch observes the deletion and yields the Fig. 4 stale
// anomaly instead of live cached data.
func TestPrefetcherReadYourWrites(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()

	s := w.set(t, Options{Semantics: Snapshot})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	if !it.Next(ctx) { // prefetches every member in node batches
		t.Fatalf("first next: %v", it.Err())
	}
	victim := w.refs[3]
	if err := w.c.Client.Delete(ctx, victim); err != nil {
		t.Fatal(err)
	}
	var last Element
	for it.Next(ctx) {
		last = it.Element()
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if last.ID() != victim.ID || !last.Stale || last.Data != nil {
		t.Fatalf("deleted member yielded as %+v, want stale identity-only yield", last)
	}
}
