package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/locksvc"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/spec"
	"weaksets/internal/store"
)

// Element is one yielded member of a weak set: its repository location and
// the object state fetched for it.
type Element struct {
	Ref   repo.Ref
	Data  []byte
	Attrs map[string]string
	// Stale marks an element whose membership was observed (e.g. in a
	// pinned snapshot) but whose object data had already been deleted when
	// fetched — the Fig. 4 "you may see elements that have been removed"
	// case.
	Stale bool
}

// ID returns the element's object ID.
func (e Element) ID() repo.ObjectID { return e.Ref.ID }

// Options configures a weak set.
type Options struct {
	// Semantics selects the design-space point. Required.
	Semantics Semantics
	// LockServer is the node running the lock service; required for
	// ImmutablePerRun.
	LockServer netsim.NodeID
	// LockTTL bounds how long a run's read lease survives a vanished
	// client. Defaults to 5s virtual.
	LockTTL time.Duration
	// BlockRetry is the optimistic iterator's poll interval while waiting
	// for a repair. Defaults to 20ms virtual.
	BlockRetry time.Duration
	// MaxBlock bounds the total time an optimistic iterator will block
	// waiting for repairs before giving up with ErrBlocked. Zero means
	// block until the context is cancelled (the paper's semantics).
	MaxBlock time.Duration
	// Recorder, when set, receives every invocation for conformance
	// checking against the executable specifications.
	Recorder *spec.Recorder
	// Quorum, when configured, makes the current-state semantics
	// (GrowOnly, GrowOnlyPerRun, Optimistic) read membership from a quorum
	// of directory replicas instead of the single directory node — the
	// §3.3 "quorum scheme" variant. Snapshot-based semantics ignore it
	// (pins are primary-resident).
	Quorum QuorumConfig
	// Fetch tunes the batched, pipelined element-fetch path. The zero
	// value enables batching with the defaults; set Fetch.Disable for the
	// one-Get-per-element baseline.
	Fetch FetchOptions
	// Replicas, when configured with the collection's replica set (home
	// node first), routes reads to the closest live replica and scatters
	// snapshot-opening listings across all of them — the replica-parallel
	// read path. Staleness served from a lagging replica is accounted in
	// the run's WeaknessReport (ReplicaSkew, GhostAge), never hidden.
	// Quorum, when also configured, wins for current-state membership
	// reads.
	Replicas ReplicaConfig
	// MonolithicListing makes snapshot-governed runs read their opening
	// membership as one List round trip instead of the streamed,
	// partition-at-a-time ListParts — the pre-partitioning baseline,
	// kept for comparison benchmarks (weakbench -scale mono mode).
	MonolithicListing bool
	// Tracer, when set, records a span trace of each Elements run
	// (subject to the tracer's sampling knob): the run itself, its
	// membership reads, fetch batches, and — through context propagation
	// — every RPC and store operation underneath, across processes.
	Tracer *obs.Tracer
	// Weakness, when set, receives each run's weakness report when the
	// iterator closes, aggregated per collection.
	Weakness *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.LockTTL == 0 {
		o.LockTTL = 5 * time.Second
	}
	if o.BlockRetry == 0 {
		o.BlockRetry = 20 * time.Millisecond
	}
	o.Fetch = o.Fetch.WithDefaults()
	return o
}

var iterSeq atomic.Int64

// listingCache carries the last full membership read across runs of one
// Set. A fresh iterator seeded from it opens with a conditional List at
// worst; under a held lease even that round trip is provably redundant,
// so the run's opening membership costs no RPC at all — the zero-RPC
// warm read the lease protocol exists for. Published maps are never
// mutated after publication: iterators alias members (read-only) and
// copy refs before extending them.
type listingCache struct {
	mu      sync.Mutex
	version uint64
	members map[spec.ElemID]bool
	refs    map[spec.ElemID]repo.Ref
}

func (lc *listingCache) publish(version uint64, members map[spec.ElemID]bool, refs map[spec.ElemID]repo.Ref) {
	lc.mu.Lock()
	if lc.members == nil || version >= lc.version {
		lc.version, lc.members, lc.refs = version, members, refs
	}
	lc.mu.Unlock()
}

func (lc *listingCache) snapshot() (uint64, map[spec.ElemID]bool, map[spec.ElemID]repo.Ref) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.version, lc.members, lc.refs
}

// Set is a weak set bound to a collection in the distributed repository.
// The collection lives on the directory node dir; its members may live
// anywhere. Set is safe for concurrent use; each Elements call produces an
// independent iterator run.
type Set struct {
	client *repo.Client
	dir    netsim.NodeID
	name   string
	opts   Options

	// router is the replica read router, nil unless Options.Replicas
	// names at least two nodes. Shared by every run of this set, so one
	// probe's liveness/latency observations route many reads.
	router *replicaRouter

	// listings persists the last membership read across runs, but only
	// when a lease state is attached: without push invalidation a stale
	// cross-run listing would silently widen the staleness window, so the
	// leaseless paths keep their per-run read behaviour untouched.
	listings listingCache
}

// leaseState returns the client's lease state when it watches this set's
// directory, nil otherwise.
func (s *Set) leaseState() *repo.LeaseState {
	ls := s.client.Leases()
	if ls == nil || ls.Dir() != s.dir {
		return nil
	}
	return ls
}

// publishListing retains a freshly read membership for the next run's
// lease-served opening. refs is filtered to the published members so
// departed ids do not accumulate across the set's lifetime.
func (s *Set) publishListing(version uint64, members map[spec.ElemID]bool, refs map[spec.ElemID]repo.Ref) {
	if s.leaseState() == nil || version == 0 {
		return
	}
	rf := make(map[spec.ElemID]repo.Ref, len(members))
	for id := range members {
		rf[id] = refs[id]
	}
	s.listings.publish(version, members, rf)
}

// NewSet binds a weak set to collection name on directory node dir, read
// through client.
func NewSet(client *repo.Client, dir netsim.NodeID, name string, opts Options) (*Set, error) {
	if !opts.Semantics.Valid() {
		return nil, fmt.Errorf("weakset %q: invalid semantics %d", name, int(opts.Semantics))
	}
	if opts.Semantics == ImmutablePerRun && opts.LockServer == "" {
		return nil, fmt.Errorf("weakset %q: %s requires a LockServer", name, opts.Semantics)
	}
	s := &Set{client: client, dir: dir, name: name, opts: opts.withDefaults()}
	if opts.Replicas.enabled() {
		s.router = newReplicaRouter(client, name, opts.Replicas)
	}
	return s, nil
}

// Semantics reports the set's design-space point.
func (s *Set) Semantics() Semantics { return s.opts.Semantics }

// Name reports the underlying collection name.
func (s *Set) Name() string { return s.name }

// Dir reports the directory node holding the collection.
func (s *Set) Dir() netsim.NodeID { return s.dir }

// Create creates the underlying collection (the paper's `create`
// procedure).
func (s *Set) Create(ctx context.Context) error {
	return s.client.CreateCollection(ctx, s.dir, s.name)
}

// Add inserts a member (the paper's `add` procedure).
func (s *Set) Add(ctx context.Context, ref repo.Ref) error {
	return s.client.Add(ctx, s.dir, s.name, ref)
}

// Remove removes a member and deletes its object data unless an open
// grow-only window deferred it (the paper's `remove` procedure).
func (s *Set) Remove(ctx context.Context, ref repo.Ref) error {
	return s.client.DeleteMember(ctx, s.dir, s.name, ref)
}

// Size reports the current membership count (the paper's `size`
// procedure). Like everything here it is only as fresh as the moment of
// the RPC.
func (s *Set) Size(ctx context.Context) (int, error) {
	members, _, err := s.client.List(ctx, s.dir, s.name)
	if err != nil {
		return 0, err
	}
	return len(members), nil
}

// Elements begins a run of the elements iterator (the paper's `elements`
// iterator). Per-semantics setup happens here: ImmutablePerRun acquires the
// run's read lock, Snapshot pins an atomic membership snapshot,
// GrowOnlyPerRun opens the ghost window. The returned iterator must be
// Closed to release those resources.
func (s *Set) Elements(ctx context.Context) (*Iterator, error) {
	it := &Iterator{
		set:     s,
		client:  s.client,
		opts:    s.opts,
		scale:   s.client.Bus().Network().Scale(),
		yielded: make(map[spec.ElemID]bool),
		refs:    make(map[spec.ElemID]repo.Ref),
		owner:   fmt.Sprintf("%s-iter-%d", s.client.Node(), iterSeq.Add(1)),
	}
	it.wk.Collection = s.name
	it.wk.Semantics = s.opts.Semantics.String()
	it.startedAt = time.Now()
	_, it.span = s.opts.Tracer.StartRoot(ctx, "elements")
	it.span.SetAttr("collection", s.name)
	it.span.SetAttr("semantics", s.opts.Semantics.String())
	it.span.SetAttr("node", string(s.client.Node()))
	it.wk.Trace = it.span.TraceID()
	if !s.opts.Fetch.Disable {
		// The prefetcher's background context carries the run's trace, so
		// batches issued between Next calls still join it.
		it.pf = newPrefetcher(it.traceCtx(context.Background()), s.client, s.router, s.opts.Fetch, s.opts.Tracer)
	}
	if err := it.setup(it.traceCtx(ctx)); err != nil {
		werr := fmt.Errorf("%w: open %s elements on %q: %v", ErrFailure, s.opts.Semantics, s.name, err)
		it.release(context.Background())
		it.terminate(werr)
		it.finishObs()
		return nil, werr
	}
	if !s.opts.Semantics.UsesSnapshot() && !s.opts.Quorum.enabled() && s.leaseState() != nil {
		// Seed the run from the set's last published listing: the opening
		// membership read becomes a conditional List at worst, and no RPC
		// at all while the lease certifies the seeded version.
		if v, members, refs := s.listings.snapshot(); v != 0 {
			it.listVersion, it.curMembers = v, members
			for id, ref := range refs {
				it.refs[id] = ref
			}
		}
	}
	// The cache binds after setup so the run's governing listing version
	// (snapVer for snapshot-based semantics) is known.
	if it.pf != nil && !s.opts.Fetch.NoCache {
		cache := s.opts.Fetch.Cache
		if cache == nil {
			cache = s.client.ElementCache()
		}
		if cache != nil {
			pinned := s.opts.Semantics.UsesSnapshot()
			it.pf.bindCache(cacheBinding{
				cache:  cache,
				coll:   s.name,
				pinned: pinned,
				listVer: func() uint64 {
					if pinned {
						return it.snapVer
					}
					return it.listVersion
				},
				leased: func() (uint64, bool) {
					ls := s.leaseState()
					if ls == nil {
						return 0, false
					}
					v, _, ok := ls.Serveable(s.name)
					return v, ok
				},
			})
		}
	}
	if ls := s.leaseState(); ls != nil && !s.opts.Semantics.UsesSnapshot() {
		// Queue the collection for lease acquisition; the first runs still
		// revalidate conditionally until the (asynchronous) grant lands.
		ls.Track(s.name)
	}
	return it, nil
}

// Collect runs a full iteration and returns everything yielded. On
// iterator failure it returns the elements yielded so far together with
// the error.
func (s *Set) Collect(ctx context.Context) ([]Element, error) {
	it, err := s.Elements(ctx)
	if err != nil {
		return nil, err
	}
	defer func() { _ = it.Close(context.Background()) }()
	var out []Element
	for it.Next(ctx) {
		out = append(out, it.Element())
	}
	return out, it.Err()
}

// Stats fetches the directory's counters for this set's collection:
// membership size, ghost copies, pinned snapshots, and open grow
// windows — the observability hook behind the E8 ghost accounting.
func (s *Set) Stats(ctx context.Context) (repo.StatsResp, error) {
	return s.client.Stats(ctx, s.dir, s.name)
}

// StoreStats fetches the storage-engine instrumentation of the
// directory node serving this set: per-operation counts and latency
// quantiles from the engine the collection lives in.
func (s *Set) StoreStats(ctx context.Context) (store.EngineStats, error) {
	return s.client.StoreStats(ctx, s.dir)
}

// lockClient builds the per-run lock client for ImmutablePerRun.
func (s *Set) lockClient(owner string) *locksvc.Client {
	return locksvc.NewClient(s.client.Bus(), s.client.Node(), owner)
}
