package core

import (
	"fmt"

	"weaksets/internal/spec"
)

// This file is the exhaustive companion to the randomized model harness:
// for a small universe of elements it enumerates EVERY reachable
// configuration of (membership, reachability, yielded-history) under the
// environment discipline a semantics' constraint clause allows, drives the
// kernel in each, and checks every decision against the figure's ensures
// clause via spec.CheckInvocation. Where the property tests sample, this
// proves: within the bound, no interleaving of mutations, failures and
// repairs can make the kernel violate its specification.

// mcWorld is a bitmask-encoded model-check configuration. Bit i stands for
// element i of the universe.
type mcWorld struct {
	members uint16
	reach   uint16
	yielded uint16
	first   uint16 // membership at the run's first invocation
}

// ExhaustiveResult reports what an exhaustive check covered.
type ExhaustiveResult struct {
	Elements    int
	States      int // distinct configurations visited
	Invocations int // kernel decisions checked
}

// ExhaustiveConformance model-checks the semantics over every world of n
// elements (n <= 8): all initial (membership, reachability) pairs, closed
// under every environment mutation the constraint discipline permits,
// every reachability flip, and every kernel invocation. It returns the
// first specification violation found, or the coverage counts.
func ExhaustiveConformance(sem Semantics, n int) (ExhaustiveResult, error) {
	if n < 1 || n > 8 {
		return ExhaustiveResult{}, fmt.Errorf("core: exhaustive check supports 1..8 elements, got %d", n)
	}
	var (
		res     ExhaustiveResult
		full    = uint16(1<<n) - 1
		visited = make(map[mcWorld]bool)
		queue   []mcWorld
	)
	res.Elements = n

	push := func(w mcWorld) {
		if !visited[w] {
			visited[w] = true
			queue = append(queue, w)
		}
	}

	// Every initial world: any membership, any reachability, nothing
	// yielded, s_first = the initial membership.
	for members := uint16(0); members <= full; members++ {
		for reach := uint16(0); reach <= full; reach++ {
			push(mcWorld{members: members, reach: reach, yielded: 0, first: members})
		}
	}

	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		res.States++

		// Kernel invocation from this world.
		first := maskState(w.first, full) // reachability irrelevant for first
		pre := maskStateWithReach(w.members, w.reach, n)
		yielded := maskSet(w.yielded, n)
		d := Step(sem, first, pre, yielded)

		inv := spec.Invocation{Pre: pre}
		next := w
		switch d.Kind {
		case DecideYield:
			inv.Outcome = spec.Suspended
			inv.Yield = d.Elem
			inv.HasYield = true
			bit, ok := elemBit(d.Elem, n)
			if !ok {
				return res, fmt.Errorf("core: kernel yielded unknown element %q", d.Elem)
			}
			next.yielded |= bit
		case DecideReturn:
			inv.Outcome = spec.Returned
		case DecideFail:
			inv.Outcome = spec.Failed
		case DecideBlock:
			inv.Outcome = spec.Blocked
		}
		res.Invocations++
		if err := spec.CheckInvocation(sem.Figure(), first.Members, yielded, res.Invocations, inv); err != nil {
			return res, fmt.Errorf("world members=%03b reach=%03b yielded=%03b first=%03b: %w",
				w.members, w.reach, w.yielded, w.first, err)
		}
		// The run continues only after a yield; terminal decisions end it.
		// Blocking leaves the world to the environment.
		if d.Kind == DecideYield {
			push(next)
		}

		// Environment transitions: reachability may flip freely; membership
		// mutates per the constraint discipline.
		for i := 0; i < n; i++ {
			bit := uint16(1) << i
			flipped := w
			flipped.reach ^= bit
			push(flipped)

			switch sem.Constraint() {
			case spec.ConstraintImmutable, spec.ConstraintImmutablePerRun:
				// No membership mutation during the run.
			case spec.ConstraintGrowOnly, spec.ConstraintGrowOnlyPerRun:
				if w.members&bit == 0 {
					grown := w
					grown.members |= bit
					push(grown)
				}
			default:
				mutated := w
				mutated.members ^= bit
				push(mutated)
			}
		}
	}
	return res, nil
}

func elemID(i int) spec.ElemID { return spec.ElemID(fmt.Sprintf("e%d", i)) }

func elemBit(id spec.ElemID, n int) (uint16, bool) {
	for i := 0; i < n; i++ {
		if elemID(i) == id {
			return uint16(1) << i, true
		}
	}
	return 0, false
}

func maskSet(mask uint16, n int) map[spec.ElemID]bool {
	out := make(map[spec.ElemID]bool)
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			out[elemID(i)] = true
		}
	}
	return out
}

func maskState(members uint16, full uint16) spec.State {
	n := 0
	for full>>n != 0 {
		n++
	}
	return spec.State{Members: maskSet(members, n), Reach: maskSet(full, n)}
}

func maskStateWithReach(members, reach uint16, n int) spec.State {
	return spec.State{Members: maskSet(members, n), Reach: maskSet(reach, n)}
}
