package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/workload"
)

// TestChaosSoak runs the full stack under combined stress — concurrent
// writers, transient node outages, and several iterators of different
// semantics at once — and checks the invariants that must hold regardless
// of interleaving:
//
//   - the optimistic iterator never raises the failure exception;
//   - nothing is ever yielded twice within a run;
//   - everything yielded was a member at some point (initial or added);
//   - dynamic sets terminate and report only genuinely hosted refs as
//     skipped.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		initial = 24
		scale   = sim.TimeScale(0.002) // 500x: keep the soak brief
	)
	c, err := cluster.New(cluster.Config{
		StorageNodes: 6,
		Seed:         1234,
		Scale:        scale,
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "chaos"); err != nil {
		t.Fatal(err)
	}
	legal := struct {
		mu  sync.Mutex
		ids map[repo.ObjectID]bool
	}{ids: make(map[repo.ObjectID]bool)}
	var initialRefs []repo.Ref
	for i := 0; i < initial; i++ {
		id := repo.ObjectID(fmt.Sprintf("init-%03d", i))
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{ID: id, Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "chaos", ref); err != nil {
			t.Fatal(err)
		}
		initialRefs = append(initialRefs, ref)
		legal.ids[id] = true
	}

	// Two writers churn the set; one failure injector cycles outages.
	mutators := make([]*workload.Mutator, 0, 2)
	for i := 0; i < 2; i++ {
		m := workload.NewMutator(workload.MutatorConfig{
			Client:      c.ClientAt(c.Storage[i]),
			Dir:         cluster.DirNode,
			Coll:        "chaos",
			AddEvery:    60 * time.Millisecond,
			RemoveEvery: 150 * time.Millisecond,
			ObjectNodes: c.Storage,
			ObjectSize:  64,
			IDPrefix:    fmt.Sprintf("w%d", i),
			Initial:     initialRefs,
			Rand:        sim.NewRand(int64(100 + i)),
		})
		m.Start(ctx)
		mutators = append(mutators, m)
	}
	flaky := workload.NewFlaky(workload.FlakyConfig{
		Net:       c.Net,
		Victims:   c.Storage[2:], // keep the writers' home nodes up
		Every:     100 * time.Millisecond,
		OutageFor: 150 * time.Millisecond,
		POutage:   0.5,
		Rand:      sim.NewRand(55),
	})
	flaky.Start(ctx)

	// Readers: several optimistic runs and dynamic sets, concurrently.
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	seenCh := make(chan map[repo.ObjectID]bool, 8)
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := NewSet(c.Client, cluster.DirNode, "chaos", Options{
				Semantics:  Optimistic,
				BlockRetry: 20 * time.Millisecond,
				MaxBlock:   2 * time.Second,
			})
			if err != nil {
				errCh <- err
				return
			}
			it, err := s.Elements(ctx)
			if err != nil {
				errCh <- fmt.Errorf("reader %d open: %w", r, err)
				return
			}
			defer it.Close(context.Background())
			seen := make(map[repo.ObjectID]bool)
			for it.Next(ctx) {
				id := it.Element().Ref.ID
				if seen[id] {
					errCh <- fmt.Errorf("reader %d: duplicate yield %q", r, id)
					return
				}
				seen[id] = true
			}
			if err := it.Err(); errors.Is(err, ErrFailure) {
				errCh <- fmt.Errorf("reader %d: optimistic iterator failed: %w", r, err)
			}
			seenCh <- seen
		}()
	}
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds, err := OpenDyn(ctx, c.Client, cluster.DirNode, "chaos", DynOptions{Width: 4})
			if err != nil {
				// The directory stays up, but an unlucky open during a
				// washover is fine to skip.
				return
			}
			defer ds.Close()
			seen := make(map[repo.ObjectID]bool)
			for ds.Next(ctx) {
				id := ds.Element().Ref.ID
				if seen[id] {
					errCh <- fmt.Errorf("dyn %d: duplicate yield %q", r, id)
					return
				}
				seen[id] = true
			}
			seenCh <- seen
		}()
	}

	wg.Wait()
	cancel()
	for _, m := range mutators {
		m.Stop()
		for _, ev := range m.Added() {
			legal.ids[ev.Ref.ID] = true
		}
	}
	flaky.Stop()

	close(seenCh)
	for seen := range seenCh {
		for id := range seen {
			legal.mu.Lock()
			ok := legal.ids[id]
			legal.mu.Unlock()
			if !ok {
				t.Errorf("yielded id %q was never a legal member", id)
			}
		}
	}

	close(errCh)
	for err := range errCh {
		// Context-expiry errors are expected when the soak deadline cuts a
		// blocked reader off; everything else is a bug.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			continue
		}
		t.Error(err)
	}
	if flaky.Outages() == 0 {
		t.Error("chaos produced no outages; soak was not stressful")
	}
}
