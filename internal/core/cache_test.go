package core

import (
	"context"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/store"
)

// batchTotals sums the engine batch counters across every storage node —
// the server-side view of what conditional fetching actually shipped.
func batchTotals(c *cluster.Cluster) store.BatchStats {
	var tot store.BatchStats
	for _, srv := range c.Servers {
		b := srv.Store().Stats().Batch
		tot.NotModified += b.NotModified
		tot.BytesShipped += b.BytesShipped
		tot.BytesSaved += b.BytesSaved
	}
	return tot
}

// TestSnapshotWarmRunServesWithoutRPC is the tentpole's headline property:
// a snapshot run whose pinned listing version matches the cache stamps
// serves every element with no fetch RPC at all.
func TestSnapshotWarmRunServesWithoutRPC(t *testing.T) {
	w := newTestWorld(t, 12)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	reg := obs.NewRegistry()
	s := w.set(t, Options{Semantics: Snapshot, Weakness: reg})

	cold, err := s.Collect(ctx)
	if err != nil || len(cold) != 12 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	gets := w.c.Bus.MethodCalls(repo.MethodGet)
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)
	warm, err := s.Collect(ctx)
	if err != nil || len(warm) != 12 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	for _, e := range warm {
		if len(e.Data) == 0 || e.Stale {
			t.Fatalf("warm element %s served without data", e.Ref.ID)
		}
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; d != 0 {
		t.Fatalf("warm snapshot run issued %d GetBatch RPCs", d)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGet) - gets; d != 0 {
		t.Fatalf("warm snapshot run issued %d Get RPCs", d)
	}
	rep, ok := reg.Last("set")
	if !ok || rep.CacheHits != 12 {
		t.Fatalf("weakness report: ok=%v cacheHits=%d, want 12", ok, rep.CacheHits)
	}
}

// TestCurrentStateRunValidatesWithoutPayload checks the conditional-fetch
// half: a current-state (grow-only) run over an unchanged set still takes
// the validation round trips but the servers ship no object payload —
// every entry answers NotModified.
func TestCurrentStateRunValidatesWithoutPayload(t *testing.T) {
	w := newTestWorld(t, 12)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	reg := obs.NewRegistry()
	s := w.set(t, Options{Semantics: GrowOnly, Weakness: reg})

	if cold, err := s.Collect(ctx); err != nil || len(cold) != 12 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	before := batchTotals(w.c)
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)
	warm, err := s.Collect(ctx)
	if err != nil || len(warm) != 12 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; d == 0 {
		t.Fatal("current-state run served without revalidating")
	}
	after := batchTotals(w.c)
	if d := after.NotModified - before.NotModified; d != 12 {
		t.Fatalf("NotModified delta = %d, want 12", d)
	}
	if d := after.BytesShipped - before.BytesShipped; d != 0 {
		t.Fatalf("unchanged set shipped %d payload bytes", d)
	}
	if after.BytesSaved == before.BytesSaved {
		t.Fatal("servers recorded no bytes saved")
	}
	rep, ok := reg.Last("set")
	if !ok || rep.CacheValidatedHits != 12 || rep.CacheHits != 0 {
		t.Fatalf("weakness report: ok=%v validated=%d direct=%d", ok, rep.CacheValidatedHits, rep.CacheHits)
	}
}

// readRPCs sums every RPC a membership-or-element read could cost: the
// lease acceptance bar is that a warm current-state run issues none.
func readRPCs(c *cluster.Cluster) int64 {
	return c.Bus.MethodCalls(repo.MethodList) +
		c.Bus.MethodCalls(repo.MethodListParts) +
		c.Bus.MethodCalls(repo.MethodGet) +
		c.Bus.MethodCalls(repo.MethodGetBatch)
}

// TestLeaseHeldCurrentStateRunZeroRPC is the lease tentpole's headline
// property: with a lease held and the caches warm, a current-state
// (grow-only) run over a quiescent set costs zero RPCs — no List, no
// GetBatch, nothing — because the server promised to push any change.
// Losing the lease degrades the same run back to conditional
// revalidation, never to silent staleness.
func TestLeaseHeldCurrentStateRunZeroRPC(t *testing.T) {
	w := newTestWorld(t, 12)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	ls := repo.NewLeaseState(w.c.Client, cluster.DirNode, "set")
	if err := ls.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Stop)
	w.c.Client.UseLeases(ls)
	reg := obs.NewRegistry()
	s := w.set(t, Options{Semantics: GrowOnly, Weakness: reg})

	if cold, err := s.Collect(ctx); err != nil || len(cold) != 12 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	before := readRPCs(w.c)
	warm, err := s.Collect(ctx)
	if err != nil || len(warm) != 12 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	for _, e := range warm {
		if len(e.Data) == 0 || e.Stale {
			t.Fatalf("warm element %s served without data", e.Ref.ID)
		}
	}
	if d := readRPCs(w.c) - before; d != 0 {
		t.Fatalf("lease-held warm run issued %d read RPCs, want 0", d)
	}
	rep, ok := reg.Last("set")
	if !ok || rep.LeaseServed == 0 {
		t.Fatalf("weakness report: ok=%v leaseServed=%d, want > 0", ok, rep.LeaseServed)
	}
	if rep.LeaseAge < 0 {
		t.Fatalf("lease age = %v", rep.LeaseAge)
	}

	// A write invalidates by push: once the bump lands, the next run
	// falls back to one conditional List (the degradation ladder's middle
	// rung), fetches only the new member, and then resumes serving
	// RPC-free.
	v0, _, ok := ls.Serveable("set")
	if !ok {
		t.Fatal("lease not serveable after warm run")
	}
	w.addElement(t, 100)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _, ok := ls.Serveable("set"); ok && v > v0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pushed invalidation never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	lists := w.c.Bus.MethodCalls(repo.MethodList)
	if moved, err := s.Collect(ctx); err != nil || len(moved) != 13 {
		t.Fatalf("post-write run: %d elems, %v", len(moved), err)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodList) - lists; d != 1 {
		t.Fatalf("post-write run issued %d List RPCs, want exactly 1", d)
	}
	before = readRPCs(w.c)
	if again, err := s.Collect(ctx); err != nil || len(again) != 13 {
		t.Fatalf("re-warm run: %d elems, %v", len(again), err)
	}
	if d := readRPCs(w.c) - before; d != 0 {
		t.Fatalf("re-warm lease-held run issued %d read RPCs, want 0", d)
	}

	// Lease loss: the same warm run degrades to conditional revalidation
	// — a version-gated List plus NotModified batch validation, the PR 5
	// numbers — not to serving unverified cache entries.
	ls.Stop()
	before = batchTotals(w.c).NotModified
	lists = w.c.Bus.MethodCalls(repo.MethodList)
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)
	if lost, err := s.Collect(ctx); err != nil || len(lost) != 13 {
		t.Fatalf("leaseless run: %d elems, %v", len(lost), err)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodList) - lists; d == 0 {
		t.Fatal("leaseless run never revalidated the listing")
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; d == 0 {
		t.Fatal("leaseless run served elements without revalidating")
	}
	if d := batchTotals(w.c).NotModified - before; d != 13 {
		t.Fatalf("NotModified delta = %d, want 13", d)
	}
}

// TestCacheCoherenceAcrossMutations interleaves a remote mutation between
// two validated runs: the changed object must be re-shipped and yielded
// fresh, the untouched ones still answer NotModified.
func TestCacheCoherenceAcrossMutations(t *testing.T) {
	w := newTestWorld(t, 8)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	s := w.set(t, Options{Semantics: GrowOnly})

	if cold, err := s.Collect(ctx); err != nil || len(cold) != 8 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	// A different client (no cache attached) overwrites one member, so the
	// owner's version moves behind our cache's back.
	victim := w.refs[3]
	mutator := w.c.ClientAt(victim.Node)
	if _, err := mutator.Put(ctx, victim.Node, repo.Object{ID: victim.ID, Data: []byte("mutated")}); err != nil {
		t.Fatal(err)
	}

	before := batchTotals(w.c)
	warm, err := s.Collect(ctx)
	if err != nil || len(warm) != 8 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	var got string
	for _, e := range warm {
		if e.Ref.ID == victim.ID {
			got = string(e.Data)
		}
	}
	if got != "mutated" {
		t.Fatalf("mutated member yielded %q from cache", got)
	}
	after := batchTotals(w.c)
	if d := after.NotModified - before.NotModified; d != 7 {
		t.Fatalf("NotModified delta = %d, want 7", d)
	}
	if d := after.BytesShipped - before.BytesShipped; d != int64(len("mutated")) {
		t.Fatalf("BytesShipped delta = %d, want %d", d, len("mutated"))
	}

	// The validated copy now in cache must serve the new data.
	if obj, ok := cache.Get(victim.ID); !ok || string(obj.Data) != "mutated" {
		t.Fatalf("cache holds %q after validation", obj.Data)
	}
}

// TestNegativeCacheUntilListingMoves pins the ghost rule: a member whose
// data is missing costs one round trip, then answers from the negative
// entry until the listing version moves, at which point it revalidates.
func TestNegativeCacheUntilListingMoves(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	s := w.set(t, Options{Semantics: Snapshot})

	// Membership lists an object that was never stored.
	phantom := repo.Ref{ID: "phantom", Node: w.c.StorageFor(0)}
	if err := w.c.Client.Add(ctx, cluster.DirNode, "set", phantom); err != nil {
		t.Fatal(err)
	}

	stales := func(es []Element) int {
		n := 0
		for _, e := range es {
			if e.Stale {
				n++
			}
		}
		return n
	}

	cold, err := s.Collect(ctx)
	if err != nil || len(cold) != 5 || stales(cold) != 1 {
		t.Fatalf("cold run: %d elems (%d stale), %v", len(cold), stales(cold), err)
	}

	gets := w.c.Bus.MethodCalls(repo.MethodGet)
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)
	warm, err := s.Collect(ctx)
	if err != nil || len(warm) != 5 || stales(warm) != 1 {
		t.Fatalf("warm run: %d elems (%d stale), %v", len(warm), stales(warm), err)
	}
	if d := (w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches) +
		(w.c.Bus.MethodCalls(repo.MethodGet) - gets); d != 0 {
		t.Fatalf("warm run with a negative entry issued %d fetch RPCs", d)
	}
	if st := cache.Stats(); st.NegativeHits == 0 {
		t.Fatalf("missing member not served negatively: %+v", st)
	}

	// A membership change moves the listing version: the stamps are now
	// behind the pin, so the next run revalidates everything.
	w.addElement(t, 100)
	moved, err := s.Collect(ctx)
	if err != nil || len(moved) != 6 || stales(moved) != 1 {
		t.Fatalf("post-move run: %d elems (%d stale), %v", len(moved), stales(moved), err)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; d == 0 {
		t.Fatal("listing moved but the run never revalidated")
	}
}

// TestCacheKeepsReadYourWrites re-runs the prefetcher read-your-writes
// scenario with a cache attached: our own delete drops the cache entry and
// bumps the mutation epoch, so the deleted member still comes back as a
// stale identity-only yield, never as cached data.
func TestCacheKeepsReadYourWrites(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	s := w.set(t, Options{Semantics: Snapshot})

	// Warm every entry first, so the delete must beat a warm cache.
	if cold, err := s.Collect(ctx); err != nil || len(cold) != 4 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	if !it.Next(ctx) {
		t.Fatalf("first next: %v", it.Err())
	}
	victim := w.refs[3]
	if err := w.c.Client.Delete(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(victim.ID); ok {
		t.Fatal("delete left the victim in the cache")
	}
	var last Element
	for it.Next(ctx) {
		last = it.Element()
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if last.ID() != victim.ID || !last.Stale || last.Data != nil {
		t.Fatalf("deleted member yielded as %+v, want stale identity-only yield", last)
	}
}

// TestFetchNoCache keeps the opt-out honest: with Fetch.NoCache the warm
// run fetches everything again even though the client carries a cache.
func TestFetchNoCache(t *testing.T) {
	w := newTestWorld(t, 6)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	s := w.set(t, Options{Semantics: Snapshot, Fetch: FetchOptions{NoCache: true}})

	if cold, err := s.Collect(ctx); err != nil || len(cold) != 6 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}
	batches := w.c.Bus.MethodCalls(repo.MethodGetBatch)
	if warm, err := s.Collect(ctx); err != nil || len(warm) != 6 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	if d := w.c.Bus.MethodCalls(repo.MethodGetBatch) - batches; d == 0 {
		t.Fatal("NoCache run served from the cache")
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("NoCache run recorded cache hits: %+v", st)
	}
}
