package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

func collectDyn(t *testing.T, ds *DynSet, limit int) []Element {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []Element
	for len(out) < limit && ds.Next(ctx) {
		out = append(out, ds.Element())
	}
	return out
}

func TestDynSetYieldsEverything(t *testing.T) {
	w := newTestWorld(t, 10)
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	got := collectDyn(t, ds, 100)
	if len(got) != 10 {
		t.Fatalf("yielded %d, want 10", len(got))
	}
	seen := make(map[string]bool)
	for _, e := range got {
		if seen[string(e.Ref.ID)] {
			t.Fatalf("duplicate element %s", e.Ref.ID)
		}
		seen[string(e.Ref.ID)] = true
		if len(e.Data) == 0 {
			t.Fatalf("element %s missing data", e.Ref.ID)
		}
	}
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDynSetSkipsUnreachable(t *testing.T) {
	w := newTestWorld(t, 8)
	w.c.Net.Isolate(w.c.Storage[0]) // e000 and e004 unreachable
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	got := collectDyn(t, ds, 100)
	if len(got) != 6 {
		t.Fatalf("yielded %d, want 6", len(got))
	}
	skipped := ds.Skipped()
	if len(skipped) != 2 {
		t.Fatalf("skipped %v, want 2 refs", skipped)
	}
	for _, ref := range skipped {
		if ref.Node != w.c.Storage[0] {
			t.Fatalf("skipped ref on wrong node: %v", ref)
		}
	}
}

func TestDynSetRetryUnreachableBlocksUntilRepair(t *testing.T) {
	w := newTestWorld(t, 4)
	victim := w.c.Storage[1]
	w.c.Net.Isolate(victim)
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:            2,
		RetryUnreachable: true,
		RetryEvery:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	go func() {
		time.Sleep(15 * time.Millisecond)
		w.c.Net.Rejoin(victim)
	}()
	got := collectDyn(t, ds, 100)
	if len(got) != 4 {
		t.Fatalf("yielded %d, want 4 after repair", len(got))
	}
	if len(ds.Skipped()) != 0 {
		t.Fatalf("skipped = %v, want none in retry mode", ds.Skipped())
	}
}

func TestDynSetRefreshSeesAdditions(t *testing.T) {
	w := newTestWorld(t, 3)
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:   2,
		Refresh: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	first3 := collectDyn(t, ds, 3)
	if len(first3) != 3 {
		t.Fatalf("initial batch %d, want 3", len(first3))
	}
	added := w.addElement(t, 77)
	more := collectDyn(t, ds, 1)
	if len(more) != 1 || more[0].Ref.ID != added.ID {
		t.Fatalf("refresh missed addition: %v", more)
	}
}

func TestDynSetOpenFailsOnUnreachableDir(t *testing.T) {
	w := newTestWorld(t, 2)
	w.c.Net.Isolate(cluster.DirNode)
	_, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{})
	if !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}
}

func TestDynSetCloseWhileBlocked(t *testing.T) {
	w := newTestWorld(t, 4)
	w.c.Net.Isolate(w.c.Storage[0])
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:            2,
		RetryUnreachable: true,
		RetryEvery:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the three reachable elements.
	got := collectDyn(t, ds, 3)
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	done := make(chan bool, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- ds.Next(ctx)
	}()
	time.Sleep(5 * time.Millisecond)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned true after Close with nothing pending")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never unblocked after Close")
	}
	// Idempotent.
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDynSetNextContextCancel(t *testing.T) {
	w := newTestWorld(t, 1)
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:   1,
		Refresh: time.Millisecond, // keeps the stream open after draining
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !ds.Next(context.Background()) {
		t.Fatal("first Next failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if ds.Next(ctx) {
		t.Fatal("Next yielded with nothing pending")
	}
	if !errors.Is(ds.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v", ds.Err())
	}
}

func TestDynSetClosestFirstOrdering(t *testing.T) {
	// Distinguish near and far storage with very different latencies and a
	// real (scaled) clock; with Width 1 the fetch order is fully
	// determined by the ordering policy.
	c, err := cluster.New(cluster.Config{
		StorageNodes: 2,
		Seed:         1,
		Scale:        0.001, // 1000x compression
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "d"); err != nil {
		t.Fatal(err)
	}
	near, far := c.Storage[0], c.Storage[1]
	c.Net.SetLinkLatency(cluster.HomeNode, near, sim.Fixed(time.Millisecond))
	c.Net.SetLinkLatency(cluster.HomeNode, far, sim.Fixed(80*time.Millisecond))
	farRef, err := c.Client.Put(ctx, far, repo.Object{ID: "aa-far", Data: []byte("far")})
	if err != nil {
		t.Fatal(err)
	}
	nearRef, err := c.Client.Put(ctx, near, repo.Object{ID: "zz-near", Data: []byte("near")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.DirNode, "d", farRef); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.DirNode, "d", nearRef); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDyn(ctx, c.Client, cluster.DirNode, "d", DynOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var order []string
	for ds.Next(ctx) {
		order = append(order, string(ds.Element().Ref.ID))
	}
	// Closest-first: the near object (later in ID order) must come first.
	if len(order) != 2 || order[0] != "zz-near" {
		t.Fatalf("order = %v, want zz-near first", order)
	}

	// Listing order fetches by ID instead.
	ds2, err := OpenDyn(ctx, c.Client, cluster.DirNode, "d", DynOptions{Width: 1, Order: OrderListing})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	order = nil
	for ds2.Next(ctx) {
		order = append(order, string(ds2.Element().Ref.ID))
	}
	if len(order) != 2 || order[0] != "aa-far" {
		t.Fatalf("listing order = %v, want aa-far first", order)
	}
}

func TestDynSetParallelSpeedup(t *testing.T) {
	// With 8 elements at 20ms one-way latency, width 8 must be much
	// faster than width 1. Uses the scaled clock (100x) so sleeps dominate
	// scheduler noise even when test packages run in parallel.
	c, err := cluster.New(cluster.Config{
		StorageNodes: 4,
		Seed:         2,
		Scale:        0.01,
		Latency:      sim.Fixed(20 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{ID: repo.ObjectID(fmt.Sprintf("p%02d", i)), Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "d", ref); err != nil {
			t.Fatal(err)
		}
	}
	run := func(width int) time.Duration {
		start := time.Now()
		ds, err := OpenDyn(ctx, c.Client, cluster.DirNode, "d", DynOptions{Width: width})
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		n := 0
		for ds.Next(ctx) {
			n++
		}
		if n != 8 {
			t.Fatalf("width %d yielded %d", width, n)
		}
		return time.Since(start)
	}
	seq := run(1)
	par := run(8)
	if par >= seq {
		t.Fatalf("no speedup: width1=%v width8=%v", seq, par)
	}
}

func TestDynSetFallbackCacheServesDisconnected(t *testing.T) {
	w := newTestWorld(t, 6)
	ctx := context.Background()
	cache := repo.NewCache(16)

	// First pass warms the cache.
	ds, err := OpenDyn(ctx, w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:         3,
		FallbackCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDyn(t, ds, 100)
	_ = ds.Close()
	if len(got) != 6 || cache.Len() != 6 {
		t.Fatalf("warmup yielded %d, cached %d", len(got), cache.Len())
	}

	// Disconnect a storage node; the second pass still yields everything,
	// with the disconnected node's elements marked stale.
	w.c.Net.Isolate(w.c.Storage[0])
	ds2, err := OpenDyn(ctx, w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:         3,
		FallbackCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	staleCount, freshCount := 0, 0
	ctx2, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for ds2.Next(ctx2) {
		if ds2.Element().Stale {
			staleCount++
			if ds2.Element().Ref.Node != w.c.Storage[0] {
				t.Fatalf("stale element from reachable node: %v", ds2.Element().Ref)
			}
		} else {
			freshCount++
		}
	}
	if staleCount != 2 || freshCount != 4 {
		t.Fatalf("stale=%d fresh=%d, want 2/4", staleCount, freshCount)
	}
	if len(ds2.Skipped()) != 0 {
		t.Fatalf("skipped = %v, cache should have answered", ds2.Skipped())
	}
	if st := cache.Stats(); st.StaleServes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDynSetFallbackCacheColdMissStillSkips(t *testing.T) {
	w := newTestWorld(t, 4)
	w.c.Net.Isolate(w.c.Storage[0])
	ds, err := OpenDyn(context.Background(), w.c.Client, cluster.DirNode, "set", DynOptions{
		Width:         2,
		FallbackCache: repo.NewCache(8), // cold: nothing to serve
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	got := collectDyn(t, ds, 100)
	if len(got) != 3 {
		t.Fatalf("yielded %d, want 3", len(got))
	}
	if len(ds.Skipped()) != 1 {
		t.Fatalf("skipped = %v", ds.Skipped())
	}
}
