package core_test

import (
	"context"
	"fmt"
	"log"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

// ExampleStep shows the pure semantic kernel deciding one invocation: the
// set holds a and b, b's node is unreachable, nothing is yielded yet.
func ExampleStep() {
	pre := spec.NewState(
		[]spec.ElemID{"a", "b"}, // members
		[]spec.ElemID{"a"},      // reachable
	)
	yielded := map[spec.ElemID]bool{}

	pessimistic := core.Step(core.GrowOnly, spec.State{}, pre, yielded)
	optimistic := core.Step(core.Optimistic, spec.State{}, pre, yielded)
	fmt.Println("grow-only decides:", pessimistic.Kind, pessimistic.Elem)
	fmt.Println("optimistic decides:", optimistic.Kind, optimistic.Elem)

	// After yielding a, only the unreachable b remains.
	yielded["a"] = true
	fmt.Println("grow-only decides:", core.Step(core.GrowOnly, spec.State{}, pre, yielded).Kind)
	fmt.Println("optimistic decides:", core.Step(core.Optimistic, spec.State{}, pre, yielded).Kind)

	// Output:
	// grow-only decides: yield a
	// optimistic decides: yield a
	// grow-only decides: fail
	// optimistic decides: block
}

// ExampleNewSet iterates a small distributed collection under the
// optimistic (Fig. 6) semantics.
func ExampleNewSet() {
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "demo"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("elem-%d", i)), Data: []byte("v")}
		ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "demo", ref); err != nil {
			log.Fatal(err)
		}
	}

	set, err := core.NewSet(c.Client, cluster.DirNode, "demo", core.Options{
		Semantics: core.Optimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	it, err := set.Elements(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close(ctx)
	for it.Next(ctx) {
		fmt.Println(it.Element().Ref.ID)
	}
	fmt.Println("err:", it.Err())

	// Output:
	// elem-0
	// elem-1
	// elem-2
	// err: <nil>
}

// ExampleOpenDyn drains a dynamic set — elements arrive in completion
// order, so this example counts rather than lists them.
func ExampleOpenDyn() {
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "demo"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("elem-%d", i)), Data: []byte("v")}
		ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "demo", ref); err != nil {
			log.Fatal(err)
		}
	}

	ds, err := core.OpenDyn(ctx, c.Client, cluster.DirNode, "demo", core.DynOptions{Width: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	n := 0
	for ds.Next(ctx) {
		n++
	}
	fmt.Printf("fetched %d elements, %d skipped\n", n, len(ds.Skipped()))

	// Output:
	// fetched 5 elements, 0 skipped
}

// ExampleRunModel drives a kernel against a model environment and checks
// the recorded run against its specification figure.
func ExampleRunModel() {
	env := spec.NewEnv(newExampleRand(), 6, spec.ConstraintTrue)
	run, terminated := core.RunModel(core.Optimistic, env, core.ModelConfig{
		MaxSteps:        100,
		HealAfterBlocks: 2,
		FreezeAfter:     40,
	})
	fmt.Println("terminated:", terminated)
	fmt.Println("conforms to Fig6:", spec.CheckRun(spec.Fig6, run) == nil)

	// Output:
	// terminated: true
	// conforms to Fig6: true
}

// ExampleExhaustiveConformance proves a kernel conformant over every world
// of three elements.
func ExampleExhaustiveConformance() {
	res, err := core.ExhaustiveConformance(core.Optimistic, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proved over %d configurations\n", res.States)

	// Output:
	// proved over 4096 configurations
}

// newExampleRand gives examples a fixed random stream.
func newExampleRand() *sim.Rand { return sim.NewRand(42) }
