package core

import (
	"sort"

	"weaksets/internal/spec"
)

// DecisionKind classifies what the iterator must do at one invocation.
type DecisionKind int

// Decision kinds.
const (
	// DecideYield suspends after yielding Decision.Elem.
	DecideYield DecisionKind = iota + 1
	// DecideReturn terminates the iterator normally.
	DecideReturn
	// DecideFail terminates with the failure exception (pessimistic
	// semantics only).
	DecideFail
	// DecideBlock waits for a repair and retries (optimistic semantics
	// only).
	DecideBlock
)

// String implements fmt.Stringer.
func (k DecisionKind) String() string {
	switch k {
	case DecideYield:
		return "yield"
	case DecideReturn:
		return "return"
	case DecideFail:
		return "fail"
	case DecideBlock:
		return "block"
	default:
		return "decision(?)"
	}
}

// Decision is the outcome of one kernel step.
type Decision struct {
	Kind DecisionKind
	Elem spec.ElemID // set when Kind == DecideYield
}

// Step is the pure semantic kernel: given the membership at the first
// invocation (first; used only by snapshot-based semantics), the current
// pre-state (membership plus reachability), and the yielded history object,
// it decides the invocation's outcome exactly as the corresponding figure's
// ensures clause dictates. Among eligible elements it picks the
// lexicographically smallest, making runs deterministic for a fixed
// environment.
func Step(sem Semantics, first spec.State, pre spec.State, yielded map[spec.ElemID]bool) Decision {
	switch sem {
	case Immutable, ImmutablePerRun, Snapshot:
		return stepSnapshot(first.Members, pre, yielded)
	case GrowOnly, GrowOnlyPerRun:
		return stepGrowPessimistic(pre, yielded)
	case Optimistic:
		return stepOptimistic(pre, yielded)
	default:
		return Decision{Kind: DecideFail}
	}
}

// stepSnapshot implements the shared ensures clause of Figures 3 and 4:
// everything is judged against s_first, with reachability sampled now.
func stepSnapshot(first map[spec.ElemID]bool, pre spec.State, yielded map[spec.ElemID]bool) Decision {
	reachFirst := pre.ReachableOf(first)
	if isStrictSubset(yielded, reachFirst) {
		return Decision{Kind: DecideYield, Elem: pickMin(reachFirst, yielded)}
	}
	if sameSet(yielded, reachFirst) && isStrictSubset(yielded, first) {
		return Decision{Kind: DecideFail}
	}
	return Decision{Kind: DecideReturn}
}

// stepGrowPessimistic implements Fig. 5: judged against the current
// pre-state; anything known-but-unreachable is a failure.
func stepGrowPessimistic(pre spec.State, yielded map[spec.ElemID]bool) Decision {
	reachPre := pre.ReachableMembers()
	if isStrictSubset(yielded, reachPre) {
		return Decision{Kind: DecideYield, Elem: pickMin(reachPre, yielded)}
	}
	if sameSet(yielded, pre.Members) {
		return Decision{Kind: DecideReturn}
	}
	return Decision{Kind: DecideFail}
}

// stepOptimistic implements Fig. 6: while any member remains unyielded the
// iterator must make progress or wait; it never fails.
func stepOptimistic(pre spec.State, yielded map[spec.ElemID]bool) Decision {
	anyUnyielded := false
	for e := range pre.Members {
		if !yielded[e] {
			anyUnyielded = true
			break
		}
	}
	if !anyUnyielded {
		return Decision{Kind: DecideReturn}
	}
	reach := pre.ReachableMembers()
	if elem, ok := pickMinOK(reach, yielded); ok {
		return Decision{Kind: DecideYield, Elem: elem}
	}
	return Decision{Kind: DecideBlock}
}

// sameSet reports a == b.
func sameSet(a, b map[spec.ElemID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// isStrictSubset reports a ⊊ b.
func isStrictSubset(a, b map[spec.ElemID]bool) bool {
	if len(a) >= len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// pickMin returns the smallest element of candidates not already yielded.
// Callers guarantee one exists.
func pickMin(candidates, yielded map[spec.ElemID]bool) spec.ElemID {
	elem, _ := pickMinOK(candidates, yielded)
	return elem
}

func pickMinOK(candidates, yielded map[spec.ElemID]bool) (spec.ElemID, bool) {
	eligible := make([]spec.ElemID, 0, len(candidates))
	for e := range candidates {
		if !yielded[e] {
			eligible = append(eligible, e)
		}
	}
	if len(eligible) == 0 {
		return "", false
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })
	return eligible[0], true
}
