package core

import (
	"weaksets/internal/spec"
)

// DecisionKind classifies what the iterator must do at one invocation.
type DecisionKind int

// Decision kinds.
const (
	// DecideYield suspends after yielding Decision.Elem.
	DecideYield DecisionKind = iota + 1
	// DecideReturn terminates the iterator normally.
	DecideReturn
	// DecideFail terminates with the failure exception (pessimistic
	// semantics only).
	DecideFail
	// DecideBlock waits for a repair and retries (optimistic semantics
	// only).
	DecideBlock
)

// String implements fmt.Stringer.
func (k DecisionKind) String() string {
	switch k {
	case DecideYield:
		return "yield"
	case DecideReturn:
		return "return"
	case DecideFail:
		return "fail"
	case DecideBlock:
		return "block"
	default:
		return "decision(?)"
	}
}

// Decision is the outcome of one kernel step.
type Decision struct {
	Kind DecisionKind
	Elem spec.ElemID // set when Kind == DecideYield
}

// Step is the pure semantic kernel: given the membership at the first
// invocation (first; used only by snapshot-based semantics), the current
// pre-state (membership plus reachability), and the yielded history object,
// it decides the invocation's outcome exactly as the corresponding figure's
// ensures clause dictates. Among eligible elements it picks the
// lexicographically smallest, making runs deterministic for a fixed
// environment.
func Step(sem Semantics, first spec.State, pre spec.State, yielded map[spec.ElemID]bool) Decision {
	switch sem {
	case Immutable, ImmutablePerRun, Snapshot:
		return stepSnapshot(first.Members, pre, yielded)
	case GrowOnly, GrowOnlyPerRun:
		return stepGrowPessimistic(pre, yielded)
	case Optimistic:
		return stepOptimistic(pre, yielded)
	default:
		return Decision{Kind: DecideFail}
	}
}

// Step runs once per invocation, so an n-element run pays O(n) here n
// times either way; what the step functions must not do is allocate — the
// reachable subsets (reachable(s_first), reachable(s_pre)) are folded into
// single counting scans instead of materialized maps, which halved the CPU
// floor under batched fetching.

// stepSnapshot implements the shared ensures clause of Figures 3 and 4:
// everything is judged against s_first, with reachability sampled now.
func stepSnapshot(first map[spec.ElemID]bool, pre spec.State, yielded map[spec.ElemID]bool) Decision {
	// One scan over s_first sizes reachFirst = reachable(s_first) and finds
	// its minimal unyielded element.
	reachCount, min, _ := scanReachable(first, pre.Reach, yielded)
	inReachFirst := true
	for e := range yielded {
		if !first[e] || !pre.Reach[e] {
			inReachFirst = false
			break
		}
	}
	if inReachFirst && len(yielded) < reachCount {
		// yielded ⊊ reachFirst: a strict subset always leaves a candidate.
		return Decision{Kind: DecideYield, Elem: min}
	}
	if inReachFirst && len(yielded) == reachCount && len(yielded) < len(first) {
		// yielded == reachFirst ⊊ first: members remain but none reachable.
		return Decision{Kind: DecideFail}
	}
	return Decision{Kind: DecideReturn}
}

// stepGrowPessimistic implements Fig. 5: judged against the current
// pre-state; anything known-but-unreachable is a failure.
func stepGrowPessimistic(pre spec.State, yielded map[spec.ElemID]bool) Decision {
	reachCount, min, _ := scanReachable(pre.Members, pre.Reach, yielded)
	inReachPre := true
	for e := range yielded {
		if !pre.Members[e] || !pre.Reach[e] {
			inReachPre = false
			break
		}
	}
	if inReachPre && len(yielded) < reachCount {
		return Decision{Kind: DecideYield, Elem: min}
	}
	if sameSet(yielded, pre.Members) {
		return Decision{Kind: DecideReturn}
	}
	return Decision{Kind: DecideFail}
}

// stepOptimistic implements Fig. 6: while any member remains unyielded the
// iterator must make progress or wait; it never fails.
func stepOptimistic(pre spec.State, yielded map[spec.ElemID]bool) Decision {
	anyUnyielded := false
	var min spec.ElemID
	haveMin := false
	for e := range pre.Members {
		if yielded[e] {
			continue
		}
		anyUnyielded = true
		if pre.Reach[e] && (!haveMin || e < min) {
			min, haveMin = e, true
		}
	}
	if !anyUnyielded {
		return Decision{Kind: DecideReturn}
	}
	if haveMin {
		return Decision{Kind: DecideYield, Elem: min}
	}
	return Decision{Kind: DecideBlock}
}

// scanReachable sizes {e ∈ members : reach[e]} and locates its smallest
// element not in yielded, in one pass and without allocating.
func scanReachable(members, reach, yielded map[spec.ElemID]bool) (count int, min spec.ElemID, haveMin bool) {
	for e := range members {
		if !reach[e] {
			continue
		}
		count++
		if !yielded[e] && (!haveMin || e < min) {
			min, haveMin = e, true
		}
	}
	return count, min, haveMin
}

// sameSet reports a == b.
func sameSet(a, b map[spec.ElemID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}
