// Package core implements weak sets — the paper's primary contribution: a
// set abstraction over a distributed object repository whose membership is
// observed through an `elements` iterator, offered at every point of the
// paper's design space (§3):
//
//   - Immutable (Fig. 3): the set never changes; failures are pessimistic.
//   - ImmutablePerRun (§3.1 relaxation): mutation allowed between runs;
//     each run holds a distributed read lock.
//   - Snapshot (Fig. 4): mutation allowed; the run iterates an atomic
//     snapshot taken at the first invocation and so "loses" mutations.
//   - GrowOnly (Fig. 5): the set only grows; failures are pessimistic.
//   - GrowOnlyPerRun (§3.3 relaxation): arbitrary mutation between runs;
//     during a run deletions are deferred as ghost copies.
//   - Optimistic (Fig. 6): the set grows and shrinks; the iterator never
//     fails, blocking until unreachable elements become reachable again.
//     This is the semantics the authors implemented as *dynamic sets*,
//     which this package also provides (see DynSet) with the parallel,
//     closest-first prefetching of §1.1.
//
// The semantic decision logic is factored into pure kernels (Step) shared
// by the distributed iterators and the model-level conformance tests, so
// the code proven against the executable specifications in internal/spec is
// the code that runs against the network.
package core

import (
	"fmt"

	"weaksets/internal/spec"
)

// Semantics selects a point in the paper's design space.
type Semantics int

// The design-space points.
const (
	// Immutable is the Fig. 3 semantics: an immutable set with pessimistic
	// failure handling. Global immutability is assumed of the environment
	// (the constraint clause), not enforced.
	Immutable Semantics = iota + 1
	// ImmutablePerRun relaxes Fig. 3 per §3.1: mutations may occur between
	// runs; each run holds a distributed read lock to exclude writers.
	ImmutablePerRun
	// Snapshot is the Fig. 4 semantics: the run iterates an atomic
	// membership snapshot taken at the first invocation, losing later
	// mutations.
	Snapshot
	// GrowOnly is the Fig. 5 semantics: each invocation consults the
	// current membership; the environment is assumed to only add.
	GrowOnly
	// GrowOnlyPerRun relaxes Fig. 5 per §3.3: deletions during a run are
	// deferred server-side as ghost copies reclaimed at termination.
	GrowOnlyPerRun
	// Optimistic is the Fig. 6 semantics: the weakest point; never fails,
	// blocks on unreachable elements, misses no additions, may yield
	// elements that are subsequently deleted.
	Optimistic
)

// AllSemantics lists every implemented semantics in design-space order,
// strongest first.
func AllSemantics() []Semantics {
	return []Semantics{Immutable, ImmutablePerRun, Snapshot, GrowOnly, GrowOnlyPerRun, Optimistic}
}

// String implements fmt.Stringer.
func (s Semantics) String() string {
	switch s {
	case Immutable:
		return "immutable"
	case ImmutablePerRun:
		return "immutable-per-run"
	case Snapshot:
		return "snapshot"
	case GrowOnly:
		return "grow-only"
	case GrowOnlyPerRun:
		return "grow-only-per-run"
	case Optimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("semantics(%d)", int(s))
	}
}

// Figure maps the semantics to the specification figure whose ensures
// clause its iterator satisfies.
func (s Semantics) Figure() spec.Figure {
	switch s {
	case Immutable, ImmutablePerRun:
		return spec.Fig3
	case Snapshot:
		return spec.Fig4
	case GrowOnly, GrowOnlyPerRun:
		return spec.Fig5
	case Optimistic:
		return spec.Fig6
	default:
		return 0
	}
}

// Constraint maps the semantics to the environment obligation its type
// specification carries.
func (s Semantics) Constraint() spec.Constraint {
	switch s {
	case Immutable:
		return spec.ConstraintImmutable
	case ImmutablePerRun:
		return spec.ConstraintImmutablePerRun
	case GrowOnly:
		return spec.ConstraintGrowOnly
	case GrowOnlyPerRun:
		return spec.ConstraintGrowOnlyPerRun
	default:
		return spec.ConstraintTrue
	}
}

// UsesSnapshot reports whether the semantics evaluates membership against
// s_first rather than the current state.
func (s Semantics) UsesSnapshot() bool {
	switch s {
	case Immutable, ImmutablePerRun, Snapshot:
		return true
	default:
		return false
	}
}

// Valid reports whether s is one of the defined semantics.
func (s Semantics) Valid() bool {
	return s >= Immutable && s <= Optimistic
}

// SemanticsByName resolves a semantics from its String form (e.g.
// "optimistic", "grow-only-per-run").
func SemanticsByName(name string) (Semantics, bool) {
	for _, sem := range AllSemantics() {
		if sem.String() == name {
			return sem, true
		}
	}
	return 0, false
}
