package core

import (
	"context"
	"testing"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/spec"
)

// TestStreamedListingMatchesMonolithic holds the streamed scatter-gather
// opening listing to the monolithic baseline: for every snapshot-governed
// semantics the two runs must yield exactly the same elements.
func TestStreamedListingMatchesMonolithic(t *testing.T) {
	w := newTestWorld(t, 60)
	for _, sem := range []Semantics{Immutable, ImmutablePerRun, Snapshot} {
		t.Run(sem.String(), func(t *testing.T) {
			ctx := context.Background()
			mono, err := w.set(t, Options{Semantics: sem, MonolithicListing: true}).Collect(ctx)
			if err != nil {
				t.Fatalf("monolithic collect: %v", err)
			}
			streamed, err := w.set(t, Options{Semantics: sem}).Collect(ctx)
			if err != nil {
				t.Fatalf("streamed collect: %v", err)
			}
			monoIDs, streamIDs := elementIDs(mono), elementIDs(streamed)
			if len(monoIDs) != len(streamIDs) {
				t.Fatalf("streamed yielded %d elements, monolithic %d", len(streamIDs), len(monoIDs))
			}
			for i := range monoIDs {
				if monoIDs[i] != streamIDs[i] {
					t.Fatalf("element %d: streamed %s != monolithic %s", i, streamIDs[i], monoIDs[i])
				}
			}
		})
	}
}

// TestStreamedListingWithRecorder runs the streamed listing under a
// conformance recorder: the cursor fast path must stand down and every
// invocation must still satisfy the executable specification.
func TestStreamedListingWithRecorder(t *testing.T) {
	w := newTestWorld(t, 40)
	for _, sem := range []Semantics{Immutable, Snapshot} {
		t.Run(sem.String(), func(t *testing.T) {
			rec := spec.NewRecorder()
			s := w.set(t, Options{Semantics: sem, Recorder: rec})
			got, err := s.Collect(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 40 {
				t.Fatalf("yielded %d, want 40", len(got))
			}
			if err := spec.CheckRun(sem.Figure(), rec.Run()); err != nil {
				t.Fatalf("conformance: %v", err)
			}
		})
	}
}

// TestFoldCountsPartitionSkew unit-tests the ingest fold: Skewed frames
// feed the weakness counter, members merge dedup'd into the cursor in
// id order, and the sealed snapshot version is the max partition
// version.
func TestFoldCountsPartitionSkew(t *testing.T) {
	it := &Iterator{
		first:   make(map[spec.ElemID]bool),
		refs:    make(map[spec.ElemID]repo.Ref),
		yielded: make(map[spec.ElemID]bool),
		nodes:   make(map[netsim.NodeID]bool),
	}
	it.fold(repo.PartListing{Part: 1, Partitions: 2, Version: 7, Members: []repo.Ref{
		{ID: "b", Node: "n1"}, {ID: "d", Node: "n2"},
	}})
	it.fold(repo.PartListing{Part: 0, Partitions: 2, Version: 9, Skewed: true, Members: []repo.Ref{
		{ID: "a", Node: "n1"}, {ID: "c", Node: "n1"}, {ID: "b", Node: "n1"},
	}})
	if it.wk.PartitionSkew != 1 {
		t.Fatalf("PartitionSkew = %d, want 1", it.wk.PartitionSkew)
	}
	if it.maxPartVer != 9 {
		t.Fatalf("maxPartVer = %d, want 9", it.maxPartVer)
	}
	want := []spec.ElemID{"a", "b", "c", "d"}
	if len(it.cursor) != len(want) {
		t.Fatalf("cursor = %v, want %v", it.cursor, want)
	}
	for i, id := range want {
		if it.cursor[i] != id {
			t.Fatalf("cursor = %v, want %v", it.cursor, want)
		}
	}
	if len(it.first) != 4 || !it.nodes["n1"] || !it.nodes["n2"] {
		t.Fatalf("first=%v nodes=%v", it.first, it.nodes)
	}
}
