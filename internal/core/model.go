package core

import (
	"weaksets/internal/spec"
)

// ModelConfig bounds a model-level run.
type ModelConfig struct {
	// MaxSteps caps the number of kernel invocations (an optimistic run
	// over a perpetually growing set never terminates on its own, §3.3).
	MaxSteps int
	// HealAfterBlocks, when >= 0, heals every element's reachability after
	// this many consecutive blocked invocations — modelling the repair the
	// optimistic semantics waits for. Negative leaves failures in place.
	HealAfterBlocks int
	// FreezeAfter, when >= 0, stops environment mutation after this many
	// invocations, letting grow-only runs terminate.
	FreezeAfter int
}

// RunModel drives the pure semantic kernel against a model environment:
// the kernel observes env's state, decides, the recorder logs the
// invocation, and the environment takes a random step between invocations.
// This is the harness the conformance matrix (experiment E6) and the
// property tests use: the exact kernel the distributed iterator runs,
// checked against the executable specifications with no network noise.
//
// It returns the recorded run and whether the run terminated (returned or
// failed) within cfg.MaxSteps.
func RunModel(sem Semantics, env *spec.Env, cfg ModelConfig) (spec.Run, bool) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200
	}
	rec := spec.NewRecorder()
	yielded := make(map[spec.ElemID]bool)
	var first spec.State
	blocked := 0
	for step := 0; step < cfg.MaxSteps; step++ {
		pre := env.State()
		if step == 0 {
			first = pre
		}
		d := Step(sem, first, pre, yielded)
		switch d.Kind {
		case DecideYield:
			rec.Record(pre, spec.Suspended, d.Elem, true)
			yielded[d.Elem] = true
			blocked = 0
		case DecideReturn:
			rec.Record(pre, spec.Returned, "", false)
			return rec.Run(), true
		case DecideFail:
			rec.Record(pre, spec.Failed, "", false)
			return rec.Run(), true
		case DecideBlock:
			rec.Record(pre, spec.Blocked, "", false)
			blocked++
			if cfg.HealAfterBlocks >= 0 && blocked > cfg.HealAfterBlocks {
				env.HealAll()
			}
		}
		if cfg.FreezeAfter < 0 || step < cfg.FreezeAfter {
			env.Step()
		}
	}
	return rec.Run(), false
}
