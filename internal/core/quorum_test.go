package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/netsim"
)

// quorumWorld replicates the test collection onto two storage nodes so
// membership has three copies: dir (primary), s0 and s1.
func newQuorumWorld(t *testing.T, n int) (*testWorld, QuorumConfig) {
	t.Helper()
	w := newTestWorld(t, n)
	replicas := []netsim.NodeID{w.c.Storage[0], w.c.Storage[1]}
	if err := w.c.Servers[cluster.DirNode].ReplicateCollection("set", replicas); err != nil {
		t.Fatal(err)
	}
	// Wait until both replicas hold the membership.
	ctx := context.Background()
	deadline := time.Now().Add(2 * time.Second)
	for _, r := range replicas {
		for {
			members, _, err := w.c.Client.List(ctx, r, "set")
			if err == nil && len(members) == n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never caught up", r)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cfg := QuorumConfig{Replicas: []netsim.NodeID{cluster.DirNode, w.c.Storage[0], w.c.Storage[1]}}
	return w, cfg
}

func TestQuorumReadHealthy(t *testing.T) {
	w, cfg := newQuorumWorld(t, 6)
	members, _, err := readQuorum(context.Background(), w.c.Client, cfg, "set")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 6 {
		t.Fatalf("members = %d", len(members))
	}
	if cfg.need() != 2 {
		t.Fatalf("majority of 3 = %d", cfg.need())
	}
}

func TestQuorumReadSurvivesMinorityFailure(t *testing.T) {
	w, cfg := newQuorumWorld(t, 6)
	// The primary directory goes down; the two replicas still form a
	// majority.
	w.c.Net.Crash(cluster.DirNode)
	members, _, err := readQuorum(context.Background(), w.c.Client, cfg, "set")
	if err != nil {
		t.Fatalf("quorum read with minority down: %v", err)
	}
	if len(members) != 6 {
		t.Fatalf("members = %d", len(members))
	}
}

func TestQuorumReadFailsWithoutQuorum(t *testing.T) {
	w, cfg := newQuorumWorld(t, 6)
	w.c.Net.Crash(cluster.DirNode)
	w.c.Net.Isolate(w.c.Storage[0])
	_, _, err := readQuorum(context.Background(), w.c.Client, cfg, "set")
	if err == nil {
		t.Fatal("quorum read succeeded with a single replica")
	}
	if !netsim.IsFailure(errors.Unwrap(err)) && !netsim.IsFailure(err) {
		t.Fatalf("err = %v, want a transport failure cause", err)
	}
}

func TestQuorumReadPicksFreshest(t *testing.T) {
	w, _ := newQuorumWorld(t, 4)
	ctx := context.Background()
	// Make replica s1 stale: cut it off, mutate the primary, and read a
	// quorum formed by {dir, s1}: the primary's fresher version must win.
	w.c.Net.Isolate(w.c.Storage[1])
	w.addElement(t, 99)
	w.c.Net.Rejoin(w.c.Storage[1])
	members, version, err := readQuorum(ctx, w.c.Client, QuorumConfig{
		Replicas: []netsim.NodeID{cluster.DirNode, w.c.Storage[1]},
		Quorum:   2,
	}, "set")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 5 {
		t.Fatalf("quorum returned stale view: %d members at version %d", len(members), version)
	}
}

func TestGrowOnlyQuorumToleratesPrimaryOutage(t *testing.T) {
	w, cfg := newQuorumWorld(t, 6)
	ctx := context.Background()
	w.c.Net.Crash(cluster.DirNode)

	// Without quorum the pessimistic iterator cannot even read membership.
	plain := w.set(t, Options{Semantics: GrowOnly})
	if _, err := plain.Collect(ctx); !errors.Is(err, ErrFailure) {
		t.Fatalf("single-directory read should fail: %v", err)
	}

	// With quorum reads it completes: the members live on storage nodes
	// that are still up, and membership comes from the replica majority.
	q := w.set(t, Options{Semantics: GrowOnly, Quorum: cfg})
	elems, err := q.Collect(ctx)
	if err != nil {
		t.Fatalf("quorum grow-only failed: %v", err)
	}
	if len(elems) != 6 {
		t.Fatalf("yielded %d, want 6", len(elems))
	}
}

func TestOptimisticQuorumBlocksWithoutQuorumThenRecovers(t *testing.T) {
	w, cfg := newQuorumWorld(t, 4)
	ctx := context.Background()
	// Take out two of three membership replicas: no quorum, the
	// optimistic iterator blocks.
	w.c.Net.Crash(cluster.DirNode)
	w.c.Net.Isolate(w.c.Storage[0])
	s := w.set(t, Options{Semantics: Optimistic, Quorum: cfg, BlockRetry: time.Millisecond})
	go func() {
		time.Sleep(20 * time.Millisecond)
		// Repair: the quorum re-forms and s0's element becomes fetchable.
		w.c.Net.Restart(cluster.DirNode)
		w.c.Net.Rejoin(w.c.Storage[0])
	}()
	elems, err := s.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 4 {
		t.Fatalf("yielded %d", len(elems))
	}
}

func TestQuorumConfigDefaults(t *testing.T) {
	var cfg QuorumConfig
	if cfg.enabled() {
		t.Fatal("zero config enabled")
	}
	cfg = QuorumConfig{Replicas: []netsim.NodeID{"a", "b", "c", "d", "e"}}
	if cfg.need() != 3 {
		t.Fatalf("majority of 5 = %d", cfg.need())
	}
	cfg.Quorum = 5
	if cfg.need() != 5 {
		t.Fatalf("explicit quorum = %d", cfg.need())
	}
}
