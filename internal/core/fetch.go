package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
)

// This file is the shared fetch pipeline behind both iterator flavours:
// the closest-first ordering heuristic (§1.1, "fetching 'closer' files
// first"), per-node batch grouping, and the Iterator's bounded-concurrency
// prefetcher. Batching is a transport optimisation only — every yield is
// still decided by the spec kernel against a freshly observed pre-state,
// so the Fig. 3–6 semantics are untouched.

// FetchOptions tunes the Iterator's batched fetch path.
type FetchOptions struct {
	// Disable turns batching off: every element costs one Get round trip.
	// Kept for comparison benchmarks and as an escape hatch.
	Disable bool
	// Batch caps how many ids ride in one GetBatch RPC. Defaults to 64.
	Batch int
	// Inflight bounds concurrent batch RPCs. Defaults to 4.
	Inflight int
	// Order selects the prefetch order. Defaults to closest-first.
	Order FetchOrder
	// Cache is the shared element cache consulted on the batched path:
	// fresh entries serve snapshot runs with no RPC, warm entries turn
	// batches into conditional fetches (version in, NotModified out).
	// nil falls back to the cache attached to the client via
	// repo.Client.UseCache, if any.
	Cache *repo.Cache
	// NoCache opts the run out of the element cache even when the client
	// has one attached — the baseline for cache-off comparisons.
	NoCache bool
}

// WithDefaults resolves the zero values to the effective defaults.
func (o FetchOptions) WithDefaults() FetchOptions {
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Inflight <= 0 {
		o.Inflight = 4
	}
	return o
}

// sortForFetch orders refs for fetching: ascending estimated round-trip
// time (closest first) or listing (ID) order. Ties break on ID so the
// order is deterministic for a fixed network.
func sortForFetch(client *repo.Client, refs []repo.Ref, order FetchOrder) {
	switch order {
	case OrderListing:
		sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	default:
		sort.Slice(refs, func(i, j int) bool {
			ri, rj := client.EstimateRTT(refs[i]), client.EstimateRTT(refs[j])
			if ri != rj {
				return ri < rj
			}
			return refs[i].ID < refs[j].ID
		})
	}
}

// chunkByNode splits fetch-ordered refs into per-node batches of at most
// size ids, in first-appearance order — so the closest node's batch is
// first and launches first.
func chunkByNode(refs []repo.Ref, size int) [][]repo.Ref {
	var chunks [][]repo.Ref
	idx := make(map[netsim.NodeID]int)
	for _, ref := range refs {
		i, ok := idx[ref.Node]
		if !ok || len(chunks[i]) >= size {
			chunks = append(chunks, nil)
			i = len(chunks) - 1
			idx[ref.Node] = i
		}
		chunks[i] = append(chunks[i], ref)
	}
	return chunks
}

// fetchResult is one prefetched object, stamped with the client's mutation
// epoch at the moment the batch was issued.
type fetchResult struct {
	obj     repo.Object
	missing bool
	err     error
	epoch   uint64
}

// cacheBinding wires one run to the shared element cache. pinned marks a
// snapshot-governed run (Fig. 3/4): its membership image is fixed at
// listVer, so an entry stamped at or above it serves without any RPC.
// Current-state runs (pinned=false) must revalidate every serve — they
// still save the payload via conditional fetches, but never skip the
// round trip — unless a lease certifies the listing is current: leased
// reports the lease's certified listing version, and when that version
// is at or below the run's own listVer the cached entries are exactly
// what the owner would ship, so they serve RPC-free like a pinned run's.
// listVer and leased are called on the iterator goroutine only.
type cacheBinding struct {
	cache   *repo.Cache
	coll    string
	pinned  bool
	listVer func() uint64
	leased  func() (uint64, bool)
}

// serveDirect reports whether entries stamped at or above listVer may
// serve with no round trip under this binding.
func (cb cacheBinding) serveDirect(listVer uint64) bool {
	if cb.pinned {
		return true
	}
	if cb.leased == nil || listVer == 0 {
		return false
	}
	v, ok := cb.leased()
	return ok && v <= listVer
}

// fetchChunk is one per-node batch plus the cache context it was planned
// under: the known versions to validate and the listing version that
// stamps installed results.
type fetchChunk struct {
	refs    []repo.Ref
	known   map[repo.ObjectID]uint64
	listVer uint64
}

// prefetcher overlaps an Iterator's element fetches: the candidates the
// kernel could yield are grouped into per-node batches, issued
// closest-first under a bounded in-flight budget, and parked in a ready
// map until the kernel actually asks for them.
//
// Two properties keep it semantics-preserving:
//
//   - every yield is still re-validated by Step against a fresh pre-state,
//     so a prefetched object whose node has since partitioned is never
//     yielded under pessimistic semantics;
//   - results carry the client's mutation epoch; a result fetched before
//     this client's own later mutation is discarded and refetched,
//     preserving read-your-writes (a member the client itself deleted
//     still surfaces as the Fig. 4 stale-yield anomaly, never as live
//     cached data).
type prefetcher struct {
	client *repo.Client
	order  FetchOrder
	batch  int
	tracer *obs.Tracer
	// router, when non-nil, redirects batches aimed at a replicated node
	// to the closest live replica (anti-entropy copies its objects
	// there), hedging back to the owner on failure or a replica miss.
	router *replicaRouter

	// cb wires the run to the shared element cache; cb.cache == nil
	// means the cache is off and every batch ships full payloads.
	cb cacheBinding

	// epochRetries counts results discarded for read-your-writes: the
	// iterator folds it into the run's weakness report on close.
	epochRetries atomic.Int64
	// cacheHits / cacheValidated count this run's no-RPC serves and
	// NotModified serves for the weakness report.
	cacheHits      atomic.Int64
	cacheValidated atomic.Int64
	// replicaServed counts batches answered by a non-home replica;
	// replicaAgeMs bounds how stale those answers could be (the serving
	// replica's last-sync age). Both fold into the weakness report.
	replicaServed atomic.Int64
	replicaAgeMs  atomic.Int64

	// ctx outlives individual Next calls so batches pipeline across
	// yields; close cancels it and waits out the workers.
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	ready   map[repo.ObjectID]fetchResult
	pending map[repo.ObjectID]bool
	// want/wantCh is the single waiter: Iterator is a single-caller
	// control abstraction, so at most one fetch blocks at a time.
	want   repo.ObjectID
	wantCh chan fetchResult
}

// newPrefetcher builds the pipeline. base carries the run's trace
// context (or is plain Background for an untraced run), so batches
// issued between Next calls still belong to the run's trace.
func newPrefetcher(base context.Context, client *repo.Client, router *replicaRouter, o FetchOptions, tracer *obs.Tracer) *prefetcher {
	ctx, cancel := context.WithCancel(base)
	return &prefetcher{
		client:  client,
		order:   o.Order,
		batch:   o.Batch,
		tracer:  tracer,
		router:  router,
		ctx:     ctx,
		cancel:  cancel,
		sem:     make(chan struct{}, o.Inflight),
		ready:   make(map[repo.ObjectID]fetchResult),
		pending: make(map[repo.ObjectID]bool),
	}
}

// bindCache attaches the shared element cache for this run. Called once,
// before the first fetch, from the goroutine that owns the iterator.
func (p *prefetcher) bindCache(cb cacheBinding) { p.cb = cb }

// errMissing marks an id the holding node had no data for; it unwraps to
// repo.ErrNotFound so the iterator's stale/skip handling applies.
func errMissing(id repo.ObjectID) error {
	return fmt.Errorf("prefetch %q: %w", id, repo.ErrNotFound)
}

// fetch returns ref's object, batching it together with the other
// candidates the kernel could yield next. It blocks until ref's batch
// lands; other batches keep filling the ready map meanwhile. A transport
// error is returned once per failed round trip, not once per batched id.
//
// candidates is consulted lazily, only when ref is not already ready: on
// the steady-state hit path a Next costs one map lookup here, not an O(n)
// replan.
func (p *prefetcher) fetch(ctx context.Context, ref repo.Ref, candidates func() []repo.Ref) (repo.Object, error) {
	for {
		p.mu.Lock()
		if res, ok := p.ready[ref.ID]; ok {
			delete(p.ready, ref.ID)
			p.mu.Unlock()
			if res.epoch != p.client.Mutations() {
				p.epochRetries.Add(1)
				continue // fetched before our own mutation: refetch
			}
			if res.missing {
				return repo.Object{}, errMissing(ref.ID)
			}
			return res.obj, nil
		}
		if !p.pending[ref.ID] {
			// Replan only when ref's batch is not already in flight:
			// replanning on an in-flight miss would launch fragmentary
			// top-up batches for the few candidates the advancing window
			// has newly exposed.
			p.planLocked(candidates())
			if _, ok := p.ready[ref.ID]; ok {
				// The plan served ref straight from the cache; loop back to
				// the ready-hit path.
				p.mu.Unlock()
				continue
			}
			if !p.pending[ref.ID] {
				// The batch for ref could not be launched (closed
				// prefetcher); fall back to a direct Get.
				p.mu.Unlock()
				return p.client.Get(ctx, ref)
			}
		}
		ch := make(chan fetchResult, 1)
		p.want, p.wantCh = ref.ID, ch
		p.mu.Unlock()

		select {
		case res := <-ch:
			if res.epoch != p.client.Mutations() {
				p.epochRetries.Add(1)
				continue
			}
			switch {
			case res.err != nil:
				return repo.Object{}, res.err
			case res.missing:
				return repo.Object{}, errMissing(ref.ID)
			default:
				return res.obj, nil
			}
		case <-ctx.Done():
			p.mu.Lock()
			p.want, p.wantCh = "", nil
			p.mu.Unlock()
			return repo.Object{}, ctx.Err()
		}
	}
}

// planLocked launches batches for every candidate that is neither ready
// nor already in flight. With a cache bound it first tries to serve
// candidates directly (snapshot runs over fresh entries cost no RPC at
// all), then arms the remaining chunks with the known versions for a
// conditional fetch. Caller holds p.mu; it runs on the iterator
// goroutine, so reading the binding's listing version is race-free.
func (p *prefetcher) planLocked(candidates []repo.Ref) {
	if p.ctx.Err() != nil {
		return
	}
	var listVer uint64
	direct := false
	if p.cb.cache != nil {
		listVer = p.cb.listVer()
		direct = p.cb.serveDirect(listVer)
	}
	need := make([]repo.Ref, 0, len(candidates))
	for _, ref := range candidates {
		if p.pending[ref.ID] {
			continue
		}
		if _, ok := p.ready[ref.ID]; ok {
			continue
		}
		if direct {
			// A pinned run's membership image is frozen at listVer, and a
			// lease-held current-state run's is certified current at it;
			// either way an entry fetched or validated under it is exactly
			// what the owner would ship, so it serves with no round trip.
			if obj, negative, ok := p.cb.cache.ServeFresh(p.cb.coll, listVer, ref.ID); ok {
				p.ready[ref.ID] = fetchResult{obj: obj, missing: negative, epoch: p.client.Mutations()}
				p.cacheHits.Add(1)
				continue
			}
		}
		need = append(need, ref)
	}
	if len(need) == 0 {
		return
	}
	sortForFetch(p.client, need, p.order)
	for _, refs := range chunkByNode(need, p.batch) {
		ch := fetchChunk{refs: refs, listVer: listVer}
		if p.cb.cache != nil {
			for _, ref := range refs {
				if v, ok := p.cb.cache.Version(ref.ID); ok {
					if ch.known == nil {
						ch.known = make(map[repo.ObjectID]uint64, len(refs))
					}
					ch.known[ref.ID] = v
				}
			}
		}
		for _, ref := range refs {
			p.pending[ref.ID] = true
		}
		p.wg.Add(1)
		go p.run(ch)
	}
}

// run issues one per-node batch and routes the results: the single waiter
// gets its result directly, everything else parks in ready. A transport
// failure is delivered only to the waiter — the ids are simply cleared
// from pending so a later fetch re-batches them — which is what makes a
// failed batch count once per round trip in the iterator's liveness
// accounting.
func (p *prefetcher) run(ch fetchChunk) {
	defer p.wg.Done()
	chunk := ch.refs
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-p.ctx.Done():
		p.deliver(chunk, nil, p.ctx.Err(), p.client.Mutations())
		return
	}
	epoch := p.client.Mutations()
	ids := make([]repo.ObjectID, len(chunk))
	for i, ref := range chunk {
		ids[i] = ref.ID
	}
	bctx, span := p.tracer.StartSpan(p.ctx, "fetch.batch")
	span.SetAttr("node", string(chunk[0].Node))
	span.SetInt("ids", int64(len(ids)))
	span.SetInt("known", int64(len(ch.known)))
	var (
		objs map[repo.ObjectID]repo.Object
		err  error
	)
	if p.cb.cache != nil {
		// Conditional batches stay owner-routed: a replica's object
		// versions can lag the client's known versions, and a conditional
		// answer is only meaningful against the version authority.
		objs, err = p.fetchValidated(bctx, ch, ids)
	} else {
		objs, err = p.fetchPlain(bctx, chunk[0].Node, ids)
	}
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	p.deliver(chunk, objs, err, epoch)
}

// fetchPlain issues one unconditional batch, routed to the closest live
// replica when the owner's objects are replicated there. A replica may
// legally lack some of the objects (anti-entropy lag) or die mid-flight;
// both hedge back to the owner, so replica routing never loses data,
// only freshness — which is accounted as ReplicaServed/GhostAge.
func (p *prefetcher) fetchPlain(ctx context.Context, owner netsim.NodeID, ids []repo.ObjectID) (map[repo.ObjectID]repo.Object, error) {
	if p.router == nil {
		objs, _, err := p.client.GetBatch(ctx, owner, ids)
		return objs, err
	}
	target, ok := p.router.routeBatch(ctx, owner)
	if !ok || target.node == owner {
		objs, _, err := p.client.GetBatch(ctx, owner, ids)
		return objs, err
	}
	hctx, cancel := context.WithTimeout(ctx, p.router.cfg.HedgeTimeout)
	objs, missing, err := p.client.GetBatch(hctx, target.node, ids)
	cancel()
	if err != nil {
		// The replica died or timed out under the batch: hedge to the
		// owner and stop routing to it until the next probe.
		p.router.markDead(target.node)
		objs, _, err = p.client.GetBatch(ctx, owner, ids)
		return objs, err
	}
	p.replicaServed.Add(1)
	atomicMax(&p.replicaAgeMs, int64(target.age()/time.Millisecond))
	if len(missing) > 0 {
		// The replica has not synced these objects yet: detour to the
		// owner for just the gap. Whatever the owner also lacks is then a
		// genuinely missing object, reported as such.
		more, _, merr := p.client.GetBatch(ctx, owner, missing)
		if merr != nil {
			return nil, merr
		}
		for id, obj := range more {
			objs[id] = obj
		}
	}
	return objs, nil
}

// batchFlight is the shared result of one coalesced conditional batch.
type batchFlight struct {
	objs        map[repo.ObjectID]repo.Object
	notModified []repo.ObjectID
	err         error
}

// flightKey identifies a conditional batch for singleflight coalescing:
// node, ids (in deterministic fetch order) and the known versions fully
// determine the response, so concurrent iterators planning the same
// chunk share one round trip.
func flightKey(node netsim.NodeID, refs []repo.Ref, known map[repo.ObjectID]uint64) string {
	var b strings.Builder
	b.WriteString("batch|")
	b.WriteString(string(node))
	for _, ref := range refs {
		b.WriteByte('|')
		b.WriteString(string(ref.ID))
		if v, ok := known[ref.ID]; ok {
			b.WriteByte('=')
			b.WriteString(strconv.FormatUint(v, 10))
		}
	}
	return b.String()
}

// fetchValidated issues one conditional batch through the cache's
// singleflight group: full objects ship only for ids whose version
// moved, NotModified ids serve from cache, and missing ids are cached
// negatively. The leader installs results; every caller (leader and
// joiners) assembles its own object map so deliver sees one coherent
// answer per chunk.
func (p *prefetcher) fetchValidated(ctx context.Context, ch fetchChunk, ids []repo.ObjectID) (map[repo.ObjectID]repo.Object, error) {
	node := ch.refs[0].Node
	v, shared := p.cb.cache.Do(flightKey(node, ch.refs, ch.known), func() any {
		objs, notModified, missing, err := p.client.GetBatchValidated(ctx, node, ids, ch.known)
		if err != nil {
			return &batchFlight{err: err}
		}
		for _, obj := range objs {
			p.cb.cache.PutValidated(p.cb.coll, ch.listVer, obj)
		}
		for _, id := range missing {
			p.cb.cache.PutNegative(p.cb.coll, ch.listVer, id)
		}
		return &batchFlight{objs: objs, notModified: notModified}
	})
	res := v.(*batchFlight)
	if res.err != nil {
		return nil, res.err
	}
	out := make(map[repo.ObjectID]repo.Object, len(res.objs)+len(res.notModified))
	for id, obj := range res.objs {
		if shared {
			// Joiners deep-copy: the flight's objects are shared across
			// iterators, and yielded elements hand Data to callers.
			obj = obj.Clone()
		}
		out[id] = obj
	}
	var evicted []repo.ObjectID
	for _, id := range res.notModified {
		if obj, ok := p.cb.cache.MarkValidated(p.cb.coll, ch.listVer, id); ok {
			out[id] = obj
			p.cacheValidated.Add(1)
		} else {
			evicted = append(evicted, id)
		}
	}
	if len(evicted) > 0 {
		// The entry vanished between planning and the NotModified answer
		// (eviction race): refetch those ids unconditionally.
		objs, _, err := p.client.GetBatch(ctx, node, evicted)
		if err != nil {
			return nil, err
		}
		for id, obj := range objs {
			p.cb.cache.PutValidated(p.cb.coll, ch.listVer, obj)
			out[id] = obj
		}
	}
	return out, nil
}

func (p *prefetcher) deliver(chunk []repo.Ref, objs map[repo.ObjectID]repo.Object, err error, epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ref := range chunk {
		delete(p.pending, ref.ID)
		res := fetchResult{err: err, epoch: epoch}
		if err == nil {
			if obj, ok := objs[ref.ID]; ok {
				res = fetchResult{obj: obj, epoch: epoch}
			} else {
				res = fetchResult{missing: true, epoch: epoch}
			}
		}
		if p.wantCh != nil && p.want == ref.ID {
			p.wantCh <- res
			p.want, p.wantCh = "", nil
			continue
		}
		if err == nil {
			p.ready[ref.ID] = res
		}
	}
}

// close cancels in-flight batches and waits for the workers to exit.
func (p *prefetcher) close() {
	p.cancel()
	p.wg.Wait()
}
