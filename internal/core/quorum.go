package core

import (
	"context"
	"fmt"
	"sync"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

// The paper notes for the pessimistic grow-only point: "Alternatively, one
// could easily specify the iterator to use a quorum or token-based scheme
// by changing the last line" (§3.3). This file supplies that variant: when
// a Set is given membership replicas, each membership read queries all of
// them in parallel and succeeds once a quorum responds, taking the
// freshest (highest-version) response. The directory then tolerates
// minority replica failures instead of being a single point of failure —
// E9 measures the availability this buys.

// QuorumConfig configures replicated membership reads.
type QuorumConfig struct {
	// Replicas are the nodes holding copies of the collection, primary
	// included. Empty means single-node reads from the Set's directory.
	Replicas []netsim.NodeID
	// Quorum is how many replicas must respond. Zero means a majority of
	// Replicas.
	Quorum int
}

func (q QuorumConfig) enabled() bool { return len(q.Replicas) > 0 }

func (q QuorumConfig) need() int {
	if q.Quorum > 0 {
		return q.Quorum
	}
	return len(q.Replicas)/2 + 1
}

// readQuorum reads the collection membership from a quorum of replicas,
// returning the freshest response. It fails with the last error when fewer
// than the quorum respond.
func readQuorum(ctx context.Context, client *repo.Client, cfg QuorumConfig, coll string) ([]repo.Ref, uint64, error) {
	type reply struct {
		members []repo.Ref
		version uint64
		err     error
	}
	replies := make(chan reply, len(cfg.Replicas))
	var wg sync.WaitGroup
	for _, node := range cfg.Replicas {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			members, version, err := client.List(ctx, node, coll)
			replies <- reply{members: members, version: version, err: err}
		}()
	}
	go func() {
		wg.Wait()
		close(replies)
	}()

	var (
		best    []repo.Ref
		bestVer uint64
		got     int
		hasBest bool
		lastErr error
	)
	need := cfg.need()
	for r := range replies {
		if r.err != nil {
			lastErr = r.err
			continue
		}
		got++
		if !hasBest || r.version > bestVer {
			best, bestVer, hasBest = r.members, r.version, true
		}
		if got >= need {
			// A quorum has answered; the remaining goroutines drain into
			// the buffered channel on their own time.
			return best, bestVer, nil
		}
	}
	if got >= need {
		return best, bestVer, nil
	}
	if lastErr == nil {
		lastErr = netsim.ErrUnreachable
	}
	return nil, 0, fmt.Errorf("membership quorum %d/%d of %d replicas: %w", got, need, len(cfg.Replicas), lastErr)
}
