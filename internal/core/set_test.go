package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/locksvc"
	"weaksets/internal/repo"
	"weaksets/internal/spec"
)

// testWorld is a zero-scale cluster with a populated collection.
type testWorld struct {
	c    *cluster.Cluster
	refs []repo.Ref
}

func newTestWorld(t *testing.T, n int) *testWorld {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "set"); err != nil {
		t.Fatal(err)
	}
	w := &testWorld{c: c}
	for i := 0; i < n; i++ {
		w.addElement(t, i)
	}
	return w
}

func (w *testWorld) addElement(t *testing.T, i int) repo.Ref {
	t.Helper()
	ctx := context.Background()
	id := repo.ObjectID(fmt.Sprintf("e%03d", i))
	node := w.c.StorageFor(i)
	ref, err := w.c.Client.Put(ctx, node, repo.Object{ID: id, Data: []byte(fmt.Sprintf("data-%d", i))})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.c.Client.Add(ctx, cluster.DirNode, "set", ref); err != nil {
		t.Fatal(err)
	}
	w.refs = append(w.refs, ref)
	return ref
}

func (w *testWorld) set(t *testing.T, opts Options) *Set {
	t.Helper()
	if opts.LockServer == "" && opts.Semantics == ImmutablePerRun {
		opts.LockServer = w.c.LockNode
	}
	s, err := NewSet(w.c.Client, cluster.DirNode, "set", opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func elementIDs(es []Element) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = string(e.Ref.ID)
	}
	sort.Strings(out)
	return out
}

func TestNewSetValidation(t *testing.T) {
	w := newTestWorld(t, 0)
	if _, err := NewSet(w.c.Client, cluster.DirNode, "set", Options{}); err == nil {
		t.Fatal("invalid semantics accepted")
	}
	if _, err := NewSet(w.c.Client, cluster.DirNode, "set", Options{Semantics: ImmutablePerRun}); err == nil {
		t.Fatal("ImmutablePerRun without lock server accepted")
	}
}

func TestCollectHealthyAllSemantics(t *testing.T) {
	w := newTestWorld(t, 6)
	want := elementIDs(nil)
	for _, ref := range w.refs {
		want = append(want, string(ref.ID))
	}
	sort.Strings(want)
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			s := w.set(t, Options{Semantics: sem})
			got, err := s.Collect(context.Background())
			if err != nil {
				t.Fatalf("collect: %v", err)
			}
			gotIDs := elementIDs(got)
			if len(gotIDs) != len(want) {
				t.Fatalf("got %v, want %v", gotIDs, want)
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("got %v, want %v", gotIDs, want)
				}
			}
			for _, e := range got {
				if len(e.Data) == 0 || e.Stale {
					t.Fatalf("element %s missing data", e.Ref.ID)
				}
			}
		})
	}
}

func TestSetProcedures(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: Optimistic})
	n, err := s.Size(ctx)
	if err != nil || n != 3 {
		t.Fatalf("size = %d, %v", n, err)
	}
	ref, err := w.c.Client.Put(ctx, w.c.StorageFor(9), repo.Object{ID: "extra", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if n, _ = s.Size(ctx); n != 4 {
		t.Fatalf("size after add = %d", n)
	}
	if err := s.Remove(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if n, _ = s.Size(ctx); n != 3 {
		t.Fatalf("size after remove = %d", n)
	}
	if s.Name() != "set" || s.Dir() != cluster.DirNode || s.Semantics() != Optimistic {
		t.Fatal("accessors wrong")
	}
}

func TestImmutableFailsUnderPartition(t *testing.T) {
	w := newTestWorld(t, 8)
	ctx := context.Background()
	// Partition one storage node away; its elements become unreachable.
	w.c.Net.Isolate(w.c.Storage[0])
	s := w.set(t, Options{Semantics: Immutable})
	got, err := s.Collect(ctx)
	if !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}
	// 8 elements round-robin over 4 nodes: 2 are unreachable.
	if len(got) != 6 {
		t.Fatalf("yielded %d elements before failing, want 6", len(got))
	}
}

func TestImmutableRepairedMidRunCompletes(t *testing.T) {
	w := newTestWorld(t, 8)
	ctx := context.Background()
	w.c.Net.Isolate(w.c.Storage[0])
	s := w.set(t, Options{Semantics: Immutable})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	count := 0
	for it.Next(ctx) {
		count++
		if count == 3 {
			// Repair before the reachable ones run out.
			w.c.Net.Rejoin(w.c.Storage[0])
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator failed despite repair: %v", err)
	}
	if count != 8 {
		t.Fatalf("yielded %d, want 8", count)
	}
}

func TestSnapshotLosesMutations(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: Snapshot})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)

	// Mutate after the pin: add one, remove one not yet yielded.
	added := w.addElement(t, 100)
	removed := w.refs[3]
	if !it.Next(ctx) {
		t.Fatalf("first next failed: %v", it.Err())
	}
	if err := w.c.Client.DeleteMember(ctx, cluster.DirNode, "set", removed); err != nil {
		t.Fatal(err)
	}

	var got []Element
	got = append(got, it.Element())
	for it.Next(ctx) {
		got = append(got, it.Element())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	ids := elementIDs(got)
	if len(ids) != 4 {
		t.Fatalf("snapshot yielded %v, want the 4 original members", ids)
	}
	for _, id := range ids {
		if id == string(added.ID) {
			t.Fatal("snapshot saw a later addition")
		}
	}
	// The deleted member is still yielded — as stale, since its data is
	// gone.
	foundStale := false
	for _, e := range got {
		if e.Ref.ID == removed.ID {
			if !e.Stale {
				t.Fatal("deleted member yielded with data")
			}
			foundStale = true
		}
	}
	if !foundStale {
		t.Fatal("snapshot lost a member deleted mid-run")
	}
}

func TestGrowOnlySeesAdditions(t *testing.T) {
	w := newTestWorld(t, 2)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: GrowOnly})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	if !it.Next(ctx) {
		t.Fatalf("next: %v", it.Err())
	}
	w.addElement(t, 50)
	count := 1
	for it.Next(ctx) {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("yielded %d, want 3 (addition seen mid-run)", count)
	}
}

func TestGrowOnlyFailsPessimistically(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	w.c.Net.Isolate(w.c.Storage[1])
	s := w.set(t, Options{Semantics: GrowOnly})
	_, err := s.Collect(ctx)
	if !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}
}

func TestGrowOnlyPerRunGhosts(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: GrowOnlyPerRun})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Delete a member mid-run: the ghost must keep it iterable.
	if !it.Next(ctx) {
		t.Fatalf("next: %v", it.Err())
	}
	victim := w.refs[3]
	if err := w.c.Client.DeleteMember(ctx, cluster.DirNode, "set", victim); err != nil {
		t.Fatal(err)
	}
	stats, err := w.c.Client.Stats(ctx, cluster.DirNode, "set")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ghosts != 1 {
		t.Fatalf("ghosts = %d, want 1", stats.Ghosts)
	}

	count := 1
	sawVictim := false
	for it.Next(ctx) {
		count++
		if it.Element().Ref.ID == victim.ID {
			sawVictim = true
			if it.Element().Stale {
				t.Fatal("ghost yielded without data")
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 4 || !sawVictim {
		t.Fatalf("yielded %d (victim %v), want all 4 including ghost", count, sawVictim)
	}
	if err := it.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Window closed: ghost reclaimed.
	stats, err = w.c.Client.Stats(ctx, cluster.DirNode, "set")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ghosts != 0 || stats.Members != 3 {
		t.Fatalf("after close: %+v", stats)
	}
}

func TestOptimisticBlocksThenCompletesOnRepair(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	victimNode := w.c.Storage[2]
	w.c.Net.Isolate(victimNode)
	s := w.set(t, Options{Semantics: Optimistic, BlockRetry: time.Millisecond})
	done := make(chan struct{})
	go func() {
		// Repair after a moment.
		time.Sleep(20 * time.Millisecond)
		w.c.Net.Rejoin(victimNode)
		close(done)
	}()
	got, err := s.Collect(ctx)
	<-done
	if err != nil {
		t.Fatalf("optimistic run errored: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("yielded %d, want 4", len(got))
	}
}

func TestOptimisticMaxBlock(t *testing.T) {
	w := newTestWorld(t, 4)
	w.c.Net.Isolate(w.c.Storage[0])
	s := w.set(t, Options{
		Semantics:  Optimistic,
		BlockRetry: time.Millisecond,
		MaxBlock:   5 * time.Millisecond,
	})
	_, err := s.Collect(context.Background())
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
}

func TestOptimisticContextCancelWhileBlocked(t *testing.T) {
	w := newTestWorld(t, 4)
	w.c.Net.Isolate(w.c.Storage[0])
	s := w.set(t, Options{Semantics: Optimistic, BlockRetry: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Collect(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestOptimisticToleratesConcurrentDeletion(t *testing.T) {
	w := newTestWorld(t, 6)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: Optimistic})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	if !it.Next(ctx) {
		t.Fatalf("next: %v", it.Err())
	}
	// Delete two not-yet-yielded members mid-run.
	for _, victim := range w.refs[4:6] {
		if err := w.c.Client.DeleteMember(ctx, cluster.DirNode, "set", victim); err != nil {
			t.Fatal(err)
		}
	}
	count := 1
	for it.Next(ctx) {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("optimistic errored on deletion: %v", err)
	}
	if count != 4 {
		t.Fatalf("yielded %d, want 4 (two deleted mid-run)", count)
	}
}

func TestImmutablePerRunExcludesWriters(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: ImmutablePerRun, LockTTL: 10 * time.Second})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// While the run is open, a writer cannot take the write lock.
	writer := w.c.Client
	wl, err := NewSet(writer, cluster.DirNode, "set", Options{Semantics: ImmutablePerRun, LockServer: w.c.LockNode})
	if err != nil {
		t.Fatal(err)
	}
	_ = wl
	lockCli := s.lockClient("writer-1")
	granted, err := lockCli.TryAcquire(ctx, w.c.LockNode, lockName("set"), locksvc.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("writer acquired lock during iteration")
	}
	for it.Next(ctx) {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(ctx); err != nil {
		t.Fatal(err)
	}
	granted, err = lockCli.TryAcquire(ctx, w.c.LockNode, lockName("set"), locksvc.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("writer still excluded after Close")
	}
}

func TestTwoReadersShareImmutablePerRun(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: ImmutablePerRun})
	it1, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it1.Close(ctx)
	it2, err := s.Elements(ctx)
	if err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
	defer it2.Close(ctx)
	for it2.Next(ctx) {
	}
	if err := it2.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestElementsFailsWhenDirUnreachable(t *testing.T) {
	w := newTestWorld(t, 3)
	w.c.Net.Isolate(cluster.HomeNode)
	s := w.set(t, Options{Semantics: Snapshot})
	if _, err := s.Elements(context.Background()); !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}
}

func TestIteratorAfterClose(t *testing.T) {
	w := newTestWorld(t, 2)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: Optimistic})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if it.Next(ctx) {
		t.Fatal("Next succeeded after Close")
	}
	if err := it.Close(ctx); err != nil {
		t.Fatal("Close not idempotent")
	}
}

func TestLiveRunConformance(t *testing.T) {
	// Record a live distributed run and check it against the executable
	// spec. The environment is quiescent during the run, so the recorded
	// pre-states are exact.
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			w := newTestWorld(t, 5)
			rec := spec.NewRecorder()
			s := w.set(t, Options{Semantics: sem, Recorder: rec})
			if _, err := s.Collect(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := spec.CheckRun(sem.Figure(), rec.Run()); err != nil {
				t.Fatalf("live run violates %s: %v", sem.Figure(), err)
			}
		})
	}
}

func TestLiveRunConformanceUnderFailure(t *testing.T) {
	// Pessimistic semantics under partition must record a spec-conformant
	// failing run.
	for _, sem := range []Semantics{Immutable, Snapshot, GrowOnly} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			w := newTestWorld(t, 8)
			w.c.Net.Isolate(w.c.Storage[3])
			rec := spec.NewRecorder()
			s := w.set(t, Options{Semantics: sem, Recorder: rec})
			_, err := s.Collect(context.Background())
			if !errors.Is(err, ErrFailure) {
				t.Fatalf("err = %v, want ErrFailure", err)
			}
			if err := spec.CheckRun(sem.Figure(), rec.Run()); err != nil {
				t.Fatalf("failing run violates %s: %v", sem.Figure(), err)
			}
			run := rec.Run()
			if !run.Terminated() {
				t.Fatal("run not terminated")
			}
			last := run.Invocations[len(run.Invocations)-1]
			if last.Outcome != spec.Failed {
				t.Fatalf("last outcome = %s, want fails", last.Outcome)
			}
		})
	}
}

// TestPerRunRelaxationAcrossRuns exercises the §3.1 story end to end: two
// recorded runs with a mutation between them satisfy the per-run
// relaxation but refute global immutability.
func TestPerRunRelaxationAcrossRuns(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()

	runOnce := func() spec.Run {
		rec := spec.NewRecorder()
		s := w.set(t, Options{Semantics: ImmutablePerRun, Recorder: rec})
		if _, err := s.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		return rec.Run()
	}

	run1 := runOnce()
	w.addElement(t, 50) // mutation strictly between runs
	run2 := runOnce()

	runs := []spec.Run{run1, run2}
	if err := spec.CheckRuns(spec.ConstraintImmutablePerRun, runs); err != nil {
		t.Fatalf("per-run relaxation rejected between-run mutation: %v", err)
	}
	if err := spec.CheckRuns(spec.ConstraintImmutable, runs); err == nil {
		t.Fatal("global immutability accepted between-run mutation")
	}
	// Each run individually satisfies Fig 3.
	for i, run := range runs {
		if err := spec.CheckRun(spec.Fig3, run); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if run2.Invocations[0].Pre.Members["e050"] == false {
		t.Fatal("second run did not observe the new element")
	}
}
