package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// FetchOrder selects how a dynamic set orders its prefetches.
type FetchOrder int

// Fetch orders. ClosestFirst is the paper's heuristic ("fetching 'closer'
// files first", §1.1) and the useful default, so it is the zero value.
const (
	// OrderClosestFirst fetches members in ascending estimated round-trip
	// time.
	OrderClosestFirst FetchOrder = iota
	// OrderListing fetches members in listing (ID) order.
	OrderListing
)

// DynOptions configures a dynamic set.
type DynOptions struct {
	// Width is the number of parallel fetchers. Defaults to 4.
	Width int
	// Order selects the prefetch order. Defaults to closest-first.
	Order FetchOrder
	// Refresh, when positive, re-reads the membership at this virtual
	// period so additions made during the iteration are picked up (the
	// Fig. 6 "misses no additions" property). The set then only terminates
	// when Close is called or the context ends.
	Refresh time.Duration
	// RetryUnreachable keeps retrying members whose nodes are unreachable
	// (optimistic blocking). When false such members are reported via
	// Skipped instead — the practical mode for `ls`-like commands that
	// should return "all accessible files despite network failures"
	// (§1.1).
	RetryUnreachable bool
	// RetryEvery is the virtual pause between retry sweeps. Defaults to
	// 50ms.
	RetryEvery time.Duration
	// Buffer is the capacity of the results channel. Defaults to Width.
	Buffer int
	// Batch caps how many same-node members ride in one GetBatch RPC.
	// Defaults to 16; any value ≤ 1 (use -1 or 1 explicitly) keeps the
	// one-Get-per-member path. FallbackCache forces the per-member path
	// too, since the cache interposes on individual Gets.
	Batch int
	// FallbackCache, when set, keeps fetched objects cached and serves an
	// unreachable member's cached copy — delivered with Element.Stale set —
	// instead of skipping or retrying it. This is the disconnected-
	// operation extension: strictly weaker than Fig. 6 (the cached copy is
	// not reachable), so it is opt-in and visible per element.
	FallbackCache *repo.Cache
	// Tracer, when set, records a span trace of the run (subject to the
	// tracer's sampling knob); fetch RPCs underneath join it.
	Tracer *obs.Tracer
	// Weakness, when set, receives the run's weakness report on Close.
	Weakness *obs.Registry
}

func (o DynOptions) withDefaults() DynOptions {
	if o.Width <= 0 {
		o.Width = 4
	}
	if o.RetryEvery <= 0 {
		o.RetryEvery = 50 * time.Millisecond
	}
	if o.Buffer <= 0 {
		o.Buffer = o.Width
	}
	if o.Batch == 0 {
		o.Batch = 16
	}
	return o
}

// batched reports whether the dynamic set fetches per-node batches.
func (o DynOptions) batched() bool {
	return o.Batch > 1 && o.FallbackCache == nil
}

// DynSet is a dynamic set (Steere's abstraction, §1.1): an open handle on a
// weak-set query whose members are fetched in parallel, nearest first, and
// handed to the consumer in completion order — so the first element arrives
// after roughly one round trip regardless of set size, and slow or
// unreachable members never block fast ones. Its observable behaviour is
// the Fig. 6 optimistic semantics.
//
// Usage mirrors Iterator:
//
//	ds, err := core.OpenDyn(ctx, client, dir, name, opts)
//	for ds.Next(ctx) { e := ds.Element() }
//	err = ds.Err()
//	_ = ds.Close()
type DynSet struct {
	client *repo.Client
	dir    netsim.NodeID
	name   string
	opts   DynOptions
	scale  sim.TimeScale

	cancel  context.CancelFunc
	results chan Element
	done    chan struct{}

	mu      sync.Mutex
	seen    map[repo.ObjectID]bool
	skipped map[repo.ObjectID]repo.Ref
	retry   []repo.Ref

	// Observability: root span (nil when untraced) plus atomic weakness
	// counters — fetchers run concurrently, so plain ints won't do.
	span       *obs.Span
	openedAt   time.Time
	yielded    atomic.Int64
	ghosts     atomic.Int64
	dupes      atomic.Int64
	fetchFails atomic.Int64
	reported   bool
	wkFinal    obs.WeaknessReport

	cur Element
	err error
}

// OpenDyn opens a dynamic set over the collection and starts prefetching.
// The initial membership read happens synchronously so an unreachable
// directory surfaces here.
func OpenDyn(ctx context.Context, client *repo.Client, dir netsim.NodeID, name string, opts DynOptions) (*DynSet, error) {
	opts = opts.withDefaults()
	members, _, err := client.List(ctx, dir, name)
	if err != nil {
		return nil, fmt.Errorf("%w: open dynamic set %q: %v", ErrFailure, name, err)
	}
	_, span := opts.Tracer.StartRoot(ctx, "dynset.elements")
	span.SetAttr("collection", name)
	span.SetAttr("node", string(client.Node()))
	// The fetch pipeline's context carries the run's trace so every
	// prefetch RPC joins it, while cancellation still comes from ctx.
	ictx, cancel := context.WithCancel(obs.ContextWithSpan(ctx, span.Context()))
	d := &DynSet{
		client:   client,
		dir:      dir,
		name:     name,
		opts:     opts,
		scale:    client.Bus().Network().Scale(),
		cancel:   cancel,
		results:  make(chan Element, opts.Buffer),
		done:     make(chan struct{}),
		seen:     make(map[repo.ObjectID]bool, len(members)),
		skipped:  make(map[repo.ObjectID]repo.Ref),
		span:     span,
		openedAt: time.Now(),
	}
	pending := d.admit(members)
	go d.coordinate(ictx, pending)
	return d, nil
}

// admit filters already-seen refs and marks the rest seen, returning the
// newly admitted ones.
func (d *DynSet) admit(refs []repo.Ref) []repo.Ref {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []repo.Ref
	for _, ref := range refs {
		if d.seen[ref.ID] {
			d.dupes.Add(1)
			continue
		}
		d.seen[ref.ID] = true
		out = append(out, ref)
	}
	return out
}

// coordinate drives the prefetch pipeline until everything admitted is
// fetched (or skipped), then — if Refresh is enabled — keeps polling for
// additions until cancelled.
func (d *DynSet) coordinate(ctx context.Context, pending []repo.Ref) {
	defer close(d.done)
	defer close(d.results)

	sem := make(chan struct{}, d.opts.Width)
	var wg sync.WaitGroup
	defer wg.Wait()

	for {
		sortForFetch(d.client, pending, d.opts.Order)
		var jobs [][]repo.Ref
		if d.opts.batched() {
			jobs = chunkByNode(pending, d.opts.Batch)
		} else {
			for _, ref := range pending {
				jobs = append(jobs, []repo.Ref{ref})
			}
		}
		pending = nil
		for _, job := range jobs {
			job := job
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				if len(job) == 1 {
					d.fetch(ctx, job[0])
				} else {
					d.fetchBatch(ctx, job)
				}
			}()
		}
		// Let in-flight fetches finish; they may enqueue retries.
		wg.Wait()
		if ctx.Err() != nil {
			return
		}

		d.mu.Lock()
		retries := d.retry
		d.retry = nil
		d.mu.Unlock()

		switch {
		case len(retries) > 0:
			if !d.pause(ctx, d.opts.RetryEvery) {
				return
			}
			pending = retries
		case d.opts.Refresh > 0:
			if !d.pause(ctx, d.opts.Refresh) {
				return
			}
			members, _, err := d.client.List(ctx, d.dir, d.name)
			if err == nil {
				pending = d.admit(members)
			}
		default:
			return
		}
	}
}

// fetch retrieves one member and routes the outcome: success to the
// consumer, deletion to the void, unreachability to the fallback cache,
// retry, or skipped.
func (d *DynSet) fetch(ctx context.Context, ref repo.Ref) {
	var (
		obj   repo.Object
		stale bool
		err   error
	)
	if d.opts.FallbackCache != nil {
		obj, stale, err = d.opts.FallbackCache.GetThrough(ctx, d.client, ref)
	} else {
		obj, err = d.client.Get(ctx, ref)
	}
	switch {
	case err == nil:
		e := Element{Ref: ref, Data: obj.Data, Attrs: obj.Attrs, Stale: obj.Tombstone || stale}
		select {
		case d.results <- e:
			d.yielded.Add(1)
			if e.Stale {
				d.ghosts.Add(1)
			}
		case <-ctx.Done():
		}
	case errors.Is(err, repo.ErrNotFound):
		// Deleted while we were iterating; Fig. 6 permits missing it.
	default:
		d.fetchFails.Add(1)
		d.mu.Lock()
		if d.opts.RetryUnreachable {
			d.retry = append(d.retry, ref)
		} else {
			d.skipped[ref.ID] = ref
		}
		d.mu.Unlock()
	}
}

// fetchBatch retrieves one per-node chunk in a single round trip and
// routes each member like fetch does. A transport failure fails the whole
// round trip: every member of the chunk goes to retry or skipped at the
// cost of one RPC, not one per member.
func (d *DynSet) fetchBatch(ctx context.Context, refs []repo.Ref) {
	ids := make([]repo.ObjectID, len(refs))
	for i, ref := range refs {
		ids[i] = ref.ID
	}
	objs, _, err := d.client.GetBatch(ctx, refs[0].Node, ids)
	if err != nil {
		d.fetchFails.Add(1)
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.opts.RetryUnreachable {
			d.retry = append(d.retry, refs...)
		} else {
			for _, ref := range refs {
				d.skipped[ref.ID] = ref
			}
		}
		return
	}
	for _, ref := range refs {
		obj, ok := objs[ref.ID]
		if !ok {
			// Deleted while we were iterating; Fig. 6 permits missing it.
			continue
		}
		e := Element{Ref: ref, Data: obj.Data, Attrs: obj.Attrs, Stale: obj.Tombstone}
		select {
		case d.results <- e:
			d.yielded.Add(1)
			if e.Stale {
				d.ghosts.Add(1)
			}
		case <-ctx.Done():
			return
		}
	}
}

func (d *DynSet) pause(ctx context.Context, virtual time.Duration) bool {
	return d.scale.SleepCtxFloor(ctx, virtual, 100*time.Microsecond)
}

// Next blocks until the next prefetched element is available. It returns
// false when the set is exhausted, closed, or the context ends.
func (d *DynSet) Next(ctx context.Context) bool {
	select {
	case e, ok := <-d.results:
		if !ok {
			return false
		}
		d.cur = e
		return true
	case <-ctx.Done():
		if d.err == nil {
			d.err = ctx.Err()
		}
		return false
	}
}

// Element returns the element delivered by the last successful Next.
func (d *DynSet) Element() Element { return d.cur }

// Err reports a consumer-side error (context cancellation). Exhaustion is
// not an error; unreachable members are reported by Skipped.
func (d *DynSet) Err() error { return d.err }

// Skipped lists members that were unreachable and not retried — the
// partial-result report an `ls` built on dynamic sets shows the user.
func (d *DynSet) Skipped() []repo.Ref {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]repo.Ref, 0, len(d.skipped))
	for _, ref := range d.skipped {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TraceID reports the run's trace ID, or the zero ID when untraced or
// unsampled.
func (d *DynSet) TraceID() obs.TraceID { return d.span.TraceID() }

// Close stops prefetching and waits for the pipeline to drain. It is
// idempotent and safe to call while a Next is blocked (that Next returns
// false).
func (d *DynSet) Close() error {
	finished := false
	select {
	case <-d.done:
		finished = true
	default:
	}
	d.cancel()
	<-d.done
	d.finishObs(finished)
	return nil
}

// finishObs emits the run's weakness report and ends the root span, once.
func (d *DynSet) finishObs(finished bool) {
	d.mu.Lock()
	if d.reported {
		d.mu.Unlock()
		return
	}
	d.reported = true
	skipped := int64(len(d.skipped))
	d.mu.Unlock()

	rep := obs.WeaknessReport{
		Collection:           d.name,
		Semantics:            "dynamic (optimistic)",
		Trace:                d.span.TraceID(),
		Yielded:              d.yielded.Load(),
		UnreachableSkipped:   skipped,
		GhostsServed:         d.ghosts.Load(),
		DuplicatesSuppressed: d.dupes.Load(),
		FetchFailures:        d.fetchFails.Load(),
		SnapshotAge:          time.Since(d.openedAt),
		Duration:             time.Since(d.openedAt),
	}
	switch {
	case d.err != nil:
		rep.Outcome = "error"
	case finished:
		rep.Outcome = "returns"
	default:
		rep.Outcome = "abandoned"
	}
	d.wkFinal = rep
	d.opts.Weakness.Observe(rep)
	d.span.SetInt("yielded", rep.Yielded)
	d.span.SetInt("unreachableSkipped", rep.UnreachableSkipped)
	d.span.SetInt("ghostsServed", rep.GhostsServed)
	d.span.SetInt("duplicatesSuppressed", rep.DuplicatesSuppressed)
	d.span.SetAttr("outcome", rep.Outcome)
	d.span.End()
}

// Weakness returns the run's weakness report. It is complete only after
// Close.
func (d *DynSet) Weakness() obs.WeaknessReport { return d.wkFinal }
