package core

import "errors"

// Errors surfaced by weak-set iterators.
var (
	// ErrFailure is the set-level form of the paper's failure exception:
	// the iterator terminated exceptionally because elements known to be in
	// the set could not be reached (pessimistic semantics), or the run
	// could not even be started.
	ErrFailure = errors.New("weakset: failure")
	// ErrBlocked reports that an optimistic iterator exceeded its MaxBlock
	// budget waiting for a repair. With an unbounded budget the iterator
	// blocks until the context is cancelled, per the paper: "it may never
	// return if a failure is detected" (§3.4).
	ErrBlocked = errors.New("weakset: blocked waiting for unreachable elements")
	// ErrClosed reports use of an iterator after Close.
	ErrClosed = errors.New("weakset: iterator closed")
)
