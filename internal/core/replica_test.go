package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// The replica-routing tests run under -race via `make race`: the router is
// shared by every iterator and prefetcher of a Set, so the concurrent
// scenarios here (parallel readers, probes racing markDead, scatter
// streams racing a kill) are exactly where a locking mistake would
// surface.

func probesWithRTT(rtts map[netsim.NodeID]time.Duration) []replicaProbe {
	out := make([]replicaProbe, 0, len(rtts))
	for node, rtt := range rtts {
		out = append(out, replicaProbe{node: node, live: true, rtt: rtt})
	}
	return out
}

func TestLiveByRTTOrdersAndFilters(t *testing.T) {
	probes := []replicaProbe{
		{node: "s2", live: true, rtt: 30 * time.Millisecond},
		{node: "dir", live: true, rtt: 10 * time.Millisecond},
		{node: "s0", live: false, rtt: time.Millisecond},
		{node: "s1", live: true, rtt: 10 * time.Millisecond},
	}
	live := liveByRTT(probes)
	want := []netsim.NodeID{"dir", "s1", "s2"} // dead s0 gone, RTT asc, id ties
	if len(live) != len(want) {
		t.Fatalf("live = %d replicas, want %d", len(live), len(want))
	}
	for i, n := range want {
		if live[i].node != n {
			t.Fatalf("live[%d] = %s, want %s", i, live[i].node, n)
		}
	}
}

// TestNearTieRotateSpreadsNearGroup pins the rotation contract: replicas
// within 2x of the closest RTT take turns leading, while a clearly
// farther replica never jumps the queue and never disappears.
func TestNearTieRotateSpreadsNearGroup(t *testing.T) {
	rt := newReplicaRouter(nil, "set", ReplicaConfig{Nodes: []netsim.NodeID{"dir", "s0", "s1"}})
	live := liveByRTT(probesWithRTT(map[netsim.NodeID]time.Duration{
		"dir": 10 * time.Millisecond,
		"s0":  12 * time.Millisecond, // near-tie with dir
		"s1":  50 * time.Millisecond, // far: hedge only
	}))

	leads := map[netsim.NodeID]int{}
	for i := 0; i < 10; i++ {
		got := rt.nearTieRotate(live)
		if len(got) != 3 {
			t.Fatalf("rotation changed the replica count: %v", got)
		}
		if got[2].node != "s1" {
			t.Fatalf("far replica moved up: order %v %v %v", got[0].node, got[1].node, got[2].node)
		}
		leads[got[0].node]++
	}
	if leads["dir"] == 0 || leads["s0"] == 0 {
		t.Fatalf("rotation elected a single leader: %v", leads)
	}
	if leads["s1"] != 0 {
		t.Fatalf("far replica led %d reads", leads["s1"])
	}

	// No near-tie group (gaps > 2x): order must be stable closest-first.
	spread := liveByRTT(probesWithRTT(map[netsim.NodeID]time.Duration{
		"dir": 10 * time.Millisecond,
		"s0":  25 * time.Millisecond,
		"s1":  60 * time.Millisecond,
	}))
	for i := 0; i < 5; i++ {
		if got := rt.nearTieRotate(spread); got[0].node != "dir" {
			t.Fatalf("closest replica displaced by rotation: %v", got[0].node)
		}
	}
}

// addHomeElement adds one element whose object lives on the home
// (directory) node — the replicated layout: anti-entropy ships
// home-resident objects to the replicas, so any replica can serve the
// element even with storage nodes down.
func addHomeElement(t *testing.T, w *testWorld, i int) {
	t.Helper()
	ctx := context.Background()
	id := repo.ObjectID(fmt.Sprintf("e%03d", i))
	ref, err := w.c.Client.Put(ctx, cluster.DirNode, repo.Object{ID: id, Data: []byte(fmt.Sprintf("data-%d", i))})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.c.Client.Add(ctx, cluster.DirNode, "set", ref); err != nil {
		t.Fatal(err)
	}
	w.refs = append(w.refs, ref)
}

// newReplicaWorld builds a cluster with the test collection replicated
// onto dir (home) plus n-1 storage nodes, every element homed at dir so
// the replicas carry full copies.
func newReplicaWorld(t *testing.T, elements, replicas int, scale sim.TimeScale) (*testWorld, []netsim.NodeID) {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 42, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "set"); err != nil {
		t.Fatal(err)
	}
	w := &testWorld{c: c}
	for i := 0; i < elements; i++ {
		addHomeElement(t, w, i)
	}
	nodes, err := c.Replicate("set", replicas)
	if err != nil {
		t.Fatal(err)
	}
	waitForReplicaVersions(t, w, nodes)
	return w, nodes
}

// waitForReplicaVersions blocks until every replica's digest has caught
// up with the home's per-partition version vector — anti-entropy
// convergence. A full push stamps the replica's whole vector with the
// collection version, so "caught up" is >= per partition, not equality.
func waitForReplicaVersions(t *testing.T, w *testWorld, nodes []netsim.NodeID) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		home, err := w.c.Client.Digest(ctx, nodes[0], "set")
		synced := err == nil
		for _, n := range nodes[1:] {
			if !synced {
				break
			}
			d, derr := w.c.Client.Digest(ctx, n, "set")
			if derr != nil || d.Partitions != home.Partitions {
				synced = false
				break
			}
			for i, v := range home.Versions {
				if i >= len(d.Versions) || d.Versions[i] < v {
					synced = false
					break
				}
			}
		}
		if synced {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged with the home")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClosestReplicaSelection places one replica much nearer the client
// than the home and the other replica: the probe must rank it first and
// reads must actually be served from it, with the staleness accounted.
func TestClosestReplicaSelection(t *testing.T) {
	// The scale must be real (not zero) so probe RTTs reflect the
	// configured link latencies; 0.01 keeps the gaps two orders above
	// scheduler noise (5ms -> 50us vs 100ms -> 1ms real one-way).
	w, nodes := newReplicaWorld(t, 24, 3, sim.TimeScale(0.01))
	near := nodes[1]
	for _, n := range append([]netsim.NodeID{cluster.DirNode}, w.c.Storage...) {
		w.c.Net.SetLinkLatency(cluster.HomeNode, n, sim.Fixed(100*time.Millisecond))
	}
	w.c.Net.SetLinkLatency(cluster.HomeNode, near, sim.Fixed(5*time.Millisecond))

	rt := newReplicaRouter(w.c.Client, "set", ReplicaConfig{Nodes: nodes})
	live := liveByRTT(rt.probe(context.Background()))
	if len(live) != len(nodes) {
		t.Fatalf("probe found %d live replicas, want %d", len(live), len(nodes))
	}
	if live[0].node != near {
		t.Fatalf("closest replica = %s (rtt %v), want %s", live[0].node, live[0].rtt, near)
	}

	// A grow-only run routes its membership reads and batches through the
	// router; with the near replica converged, reads land there and the
	// report says so.
	s := w.set(t, Options{Semantics: GrowOnly, Replicas: ReplicaConfig{Nodes: nodes}})
	it, err := s.Elements(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next(context.Background()) {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 24 {
		t.Fatalf("yielded %d elements, want 24", n)
	}
	wk := it.Weakness()
	if wk.ReplicaServed == 0 {
		t.Fatal("no reads served from a replica despite one being 20x closer")
	}
	if wk.ReplicaSkew != 0 {
		t.Fatalf("converged replica reported skew %d", wk.ReplicaSkew)
	}
}

// TestMarkDeadExcludesUntilReprobe kills a replica after it was probed
// live: the first read that hits it marks it dead for the rest of the
// probe interval, and a fresh probe restores it after restart.
func TestMarkDeadExcludesUntilReprobe(t *testing.T) {
	w, nodes := newReplicaWorld(t, 8, 2, 0)
	rt := newReplicaRouter(w.c.Client, "set", ReplicaConfig{Nodes: nodes, ProbeTTL: time.Hour})
	ctx := context.Background()
	if live := liveByRTT(rt.probe(ctx)); len(live) != 2 {
		t.Fatalf("want 2 live replicas, got %d", len(live))
	}

	w.c.Net.Crash(nodes[1])
	rt.markDead(nodes[1])
	live := liveByRTT(rt.probe(ctx)) // cached: must reflect the mark, not re-probe
	if len(live) != 1 || live[0].node != nodes[0] {
		t.Fatalf("dead replica still routed: %v", live)
	}

	// Reads keep completing from the home while the replica is dead.
	if members, _, _, from, err := rt.listIfNew(ctx, 0); err != nil || len(members) != 8 {
		t.Fatalf("listIfNew with dead replica: %d members, err %v", len(members), err)
	} else if from.node != nodes[0] {
		t.Fatalf("read served from %s, want home %s", from.node, nodes[0])
	}

	// Restart and force a fresh probe: the replica must rejoin routing.
	w.c.Net.Restart(nodes[1])
	rt.mu.Lock()
	rt.probedAt = time.Time{}
	rt.mu.Unlock()
	if live := liveByRTT(rt.probe(ctx)); len(live) != 2 {
		t.Fatalf("restarted replica never rejoined: %v", live)
	}
}

// TestAntiEntropyConvergenceAfterPartition isolates a replica, grows the
// set, heals, and requires the replica to converge via the background
// ticker — at which point a replica-routed run must report zero skew.
// Readers run concurrently with the repair to exercise the router and
// ingest accounting under -race.
func TestAntiEntropyConvergenceAfterPartition(t *testing.T) {
	w, nodes := newReplicaWorld(t, 12, 3, 0)
	w.c.Servers[cluster.DirNode].SetAntiEntropy(5 * time.Millisecond)
	ctx := context.Background()

	w.c.Net.Isolate(nodes[1])
	for i := 12; i < 20; i++ {
		addHomeElement(t, w, i)
	}

	// While the replica lags, concurrent replica-routed readers must all
	// still complete (home and the healthy replica carry the reads).
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := NewSet(w.c.ClientAt(cluster.HomeNode), cluster.DirNode, "set", Options{
				Semantics: GrowOnly,
				Replicas:  ReplicaConfig{Nodes: nodes, ProbeTTL: time.Millisecond},
			})
			if err != nil {
				t.Error(err)
				return
			}
			elems, err := s.Collect(ctx)
			if err != nil {
				t.Errorf("collect during partition: %v", err)
				return
			}
			if len(elems) < 12 {
				t.Errorf("yielded %d elements, want >= 12", len(elems))
			}
		}()
	}
	wg.Wait()

	// Heal; the ticker must converge the replica with no further writes.
	w.c.Net.Rejoin(nodes[1])
	waitForReplicaVersions(t, w, nodes)

	s := w.set(t, Options{Semantics: GrowOnly, Replicas: ReplicaConfig{Nodes: nodes}})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next(ctx) {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 20 {
		t.Fatalf("yielded %d elements after repair, want 20", n)
	}
	if wk := it.Weakness(); wk.ReplicaSkew != 0 {
		t.Fatalf("converged replicas reported skew %d", wk.ReplicaSkew)
	}
}

// TestScatterSurvivesReplicaKill crashes a replica between two snapshot
// runs sharing one (cached) probe: the second run's scatter still
// believes the replica is live, so its share of partitions must be
// reassigned to the survivors mid-stream and the run must stay complete.
func TestScatterSurvivesReplicaKill(t *testing.T) {
	w, nodes := newReplicaWorld(t, 40, 3, 0)
	ctx := context.Background()
	cfg := ReplicaConfig{Nodes: nodes, ProbeTTL: time.Hour}

	s := w.set(t, Options{Semantics: Immutable, Replicas: cfg})
	elems, err := s.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 40 {
		t.Fatalf("healthy scatter yielded %d elements, want 40", len(elems))
	}

	// Same Set, same cached probe — the kill happens under the router's
	// feet. Concurrent runs race their scatter streams against markDead.
	w.c.Net.Crash(nodes[1])
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			it, err := s.Elements(ctx)
			if err != nil {
				t.Errorf("run %d: %v", r, err)
				return
			}
			n := 0
			for it.Next(ctx) {
				n++
			}
			if it.Err() != nil {
				t.Errorf("run %d after kill: %v", r, it.Err())
				return
			}
			if n != 40 {
				t.Errorf("run %d yielded %d elements after kill, want 40", r, n)
			}
		}(r)
	}
	wg.Wait()
}

// TestReplicaRouterConcurrentProbes hammers one router from many
// goroutines while replicas flap, purely for the race detector: probes,
// markDead, rotation and batch routing share the router's state.
func TestReplicaRouterConcurrentProbes(t *testing.T) {
	w, nodes := newReplicaWorld(t, 8, 3, 0)
	rt := newReplicaRouter(w.c.Client, "set", ReplicaConfig{Nodes: nodes, ProbeTTL: time.Microsecond})
	ctx := context.Background()

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			node := nodes[1+i%2]
			w.c.Net.Crash(node)
			time.Sleep(200 * time.Microsecond)
			w.c.Net.Restart(node)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, _, _, err := rt.listIfNew(ctx, 0); err != nil {
					t.Errorf("listIfNew with home up: %v", err)
					return
				}
				rt.routeBatch(ctx, nodes[0])
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
}
