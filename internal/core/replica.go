package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

// This file is the read side of collection replication: the weak-set
// counterpart of quorum.go's write-availability variant. A replicated
// collection keeps its writes on the home node and anti-entropy pushes
// membership (and home-resident object data) to the replicas, so any
// replica can serve a read — stale, which Figs. 4–6 make legal, as long
// as the staleness is accounted. The router probes every replica with an
// anti-entropy digest (one cheap RPC measuring liveness, round-trip time
// and the replica's per-partition version vector), then:
//
//   - scatters a snapshot-opening partitioned listing across the live
//     replicas, closest first, so the frames stream from N nodes
//     concurrently into one iterator fold;
//   - routes current-state membership reads and element batches to the
//     closest live replica, hedging back to the next (ultimately the
//     home) on failure or timeout.
//
// Staleness is quantified against the probe's baseline — the elementwise
// max of every live replica's version vector — and surfaced per run as
// WeaknessReport.ReplicaSkew (version steps behind the freshest known
// listing) and GhostAge (how long ago the serving replica last heard
// from the home). It is never hidden.

// ReplicaConfig configures replica-parallel reads for a Set.
type ReplicaConfig struct {
	// Nodes are the nodes holding the collection, home node first (the
	// same set passed to repo.Server.ReplicateCollection). Fewer than two
	// nodes disables replica routing.
	Nodes []netsim.NodeID
	// ProbeTTL bounds how long one digest probe's liveness/latency/
	// version observations keep routing reads before they are refreshed.
	// Defaults to 1s.
	ProbeTTL time.Duration
	// HedgeTimeout bounds any single read attempt against a non-home
	// replica; on expiry (or failure) the read hedges to the next live
	// replica and finally the home. Defaults to 250ms.
	HedgeTimeout time.Duration
}

func (r ReplicaConfig) enabled() bool { return len(r.Nodes) > 1 }

func (r ReplicaConfig) withDefaults() ReplicaConfig {
	if r.ProbeTTL == 0 {
		r.ProbeTTL = time.Second
	}
	if r.HedgeTimeout == 0 {
		r.HedgeTimeout = 250 * time.Millisecond
	}
	return r
}

// replicaProbe is one replica's last observed state: reachability, how
// far away it is, and how far behind the home it was.
type replicaProbe struct {
	node       netsim.NodeID
	home       bool
	live       bool
	rtt        time.Duration
	partitions int
	versions   []uint64
	ageMs      int64
}

// age reports the probe's staleness bound as a duration. The home (and a
// replica the home has never pushed to, AgeMs < 0) is current by
// definition.
func (p replicaProbe) age() time.Duration {
	if p.home || p.ageMs < 0 {
		return 0
	}
	return time.Duration(p.ageMs) * time.Millisecond
}

// replicaRouter holds a Set's replica routing state: the config and the
// last probe of every replica. Safe for concurrent use — one Set's
// iterators and prefetchers share it.
type replicaRouter struct {
	client *repo.Client
	name   string
	cfg    ReplicaConfig

	mu       sync.Mutex
	probes   []replicaProbe
	probedAt time.Time

	// rr rotates batch reads among replicas whose probed RTT is within a
	// near-tie of the closest, so symmetric topologies spread load instead
	// of electing one replica the winner for a whole probe interval.
	rr atomic.Uint64
}

func newReplicaRouter(client *repo.Client, name string, cfg ReplicaConfig) *replicaRouter {
	return &replicaRouter{client: client, name: name, cfg: cfg.withDefaults()}
}

func (rt *replicaRouter) home() netsim.NodeID { return rt.cfg.Nodes[0] }

// probe returns each replica's liveness, RTT and version vector,
// refreshing by concurrent Digest RPCs when the cached observation has
// aged past ProbeTTL. A replica that errors in any way — unreachable,
// method unknown, collection never synced — is simply not live for
// routing; the home picks up its share.
func (rt *replicaRouter) probe(ctx context.Context) []replicaProbe {
	rt.mu.Lock()
	if rt.probes != nil && time.Since(rt.probedAt) < rt.cfg.ProbeTTL {
		out := append([]replicaProbe(nil), rt.probes...)
		rt.mu.Unlock()
		return out
	}
	rt.mu.Unlock()

	probes := make([]replicaProbe, len(rt.cfg.Nodes))
	var wg sync.WaitGroup
	for i, node := range rt.cfg.Nodes {
		i, node := i, node
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.HedgeTimeout)
			defer cancel()
			start := time.Now()
			d, err := rt.client.Digest(pctx, node, rt.name)
			probes[i] = replicaProbe{node: node, home: i == 0, rtt: time.Since(start)}
			if err == nil {
				probes[i].live = true
				probes[i].partitions = d.Partitions
				probes[i].versions = d.Versions
				probes[i].ageMs = d.AgeMs
			}
		}()
	}
	wg.Wait()

	rt.mu.Lock()
	rt.probes = probes
	rt.probedAt = time.Now()
	out := append([]replicaProbe(nil), probes...)
	rt.mu.Unlock()
	return out
}

// markDead drops a replica from routing until the next probe refresh —
// the hedge's memory, so one dead replica costs one timeout, not one per
// read.
func (rt *replicaRouter) markDead(node netsim.NodeID) {
	rt.mu.Lock()
	for i := range rt.probes {
		if rt.probes[i].node == node {
			rt.probes[i].live = false
		}
	}
	rt.mu.Unlock()
}

// liveByRTT filters to the live replicas, closest first (ties broken by
// node id for determinism).
func liveByRTT(probes []replicaProbe) []replicaProbe {
	out := make([]replicaProbe, 0, len(probes))
	for _, p := range probes {
		if p.live {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rtt != out[j].rtt {
			return out[i].rtt < out[j].rtt
		}
		return out[i].node < out[j].node
	})
	return out
}

// baselineVec is the freshest known per-partition version vector: the
// elementwise max over every live replica. ReplicaSkew is measured
// against it — how many version steps behind the best available view
// this run's served frames were.
func baselineVec(probes []replicaProbe, partitions int) []uint64 {
	base := make([]uint64, partitions)
	for _, p := range probes {
		if !p.live {
			continue
		}
		for i, v := range p.versions {
			if i < partitions && v > base[i] {
				base[i] = v
			}
		}
	}
	return base
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// nearTieRotate rotates the leading group of near-tie replicas (RTT
// within 2x of the closest) by the router's round-robin counter, so
// symmetric topologies spread successive reads across the tied group
// instead of electing one winner for a whole probe interval. Farther
// replicas keep their place — they still only serve as hedges.
func (rt *replicaRouter) nearTieRotate(live []replicaProbe) []replicaProbe {
	ties := 1
	for ties < len(live) && live[ties].rtt <= 2*live[0].rtt {
		ties++
	}
	if ties < 2 {
		return live
	}
	rot := int(rt.rr.Add(1) % uint64(ties))
	out := make([]replicaProbe, 0, len(live))
	out = append(out, live[rot:ties]...)
	out = append(out, live[:rot]...)
	return append(out, live[ties:]...)
}

// listIfNew serves one current-state membership read from the closest
// live replica, hedging to the next on failure and to the home as the
// last resort. from reports which replica answered, for the caller's
// staleness accounting.
func (rt *replicaRouter) listIfNew(ctx context.Context, lastVersion uint64) (members []repo.Ref, version uint64, notModified bool, from replicaProbe, err error) {
	for _, p := range rt.nearTieRotate(liveByRTT(rt.probe(ctx))) {
		if p.home {
			// The home is the closest live node: no hedge needed, its
			// answer is authoritative.
			members, version, notModified, err = rt.client.ListIfNew(ctx, p.node, rt.name, lastVersion)
			return members, version, notModified, p, err
		}
		hctx, cancel := context.WithTimeout(ctx, rt.cfg.HedgeTimeout)
		members, version, notModified, err = rt.client.ListIfNew(hctx, p.node, rt.name, lastVersion)
		cancel()
		if err == nil {
			return members, version, notModified, p, nil
		}
		rt.markDead(p.node)
	}
	// Nothing live (or every live replica failed under us): the home is
	// the final hedge, erroring if it too is down.
	home := replicaProbe{node: rt.home(), home: true}
	members, version, notModified, err = rt.client.ListIfNew(ctx, home.node, rt.name, lastVersion)
	home.live = err == nil
	return members, version, notModified, home, err
}

// routeBatch picks the node to serve a GetBatch aimed at owner: the
// closest live replica when owner is one of the collection's replica
// set (its objects are replicated by anti-entropy), owner itself
// otherwise. The returned probe carries the staleness bound to account.
func (rt *replicaRouter) routeBatch(ctx context.Context, owner netsim.NodeID) (replicaProbe, bool) {
	replicated := false
	for _, n := range rt.cfg.Nodes {
		if n == owner {
			replicated = true
			break
		}
	}
	if !replicated {
		return replicaProbe{}, false
	}
	live := liveByRTT(rt.probe(ctx))
	if len(live) == 0 {
		return replicaProbe{}, false
	}
	return rt.nearTieRotate(live)[0], true
}

// scatter streams the collection's opening listing from every live
// replica concurrently into ing: partitions are dealt round-robin across
// the live replicas closest-first, each replica streams its share, and a
// replica dying mid-stream has its undelivered partitions reassigned to
// the survivors (the home last). Staleness accounting rides on ing's
// atomics — the iterator folds them into the run's WeaknessReport.
func (rt *replicaRouter) scatter(ctx context.Context, ing *partIngest) error {
	probes := rt.probe(ctx)
	live := liveByRTT(probes)
	home := rt.home()

	// The home's partition layout governs; without the home, the freshest
	// live replica's does. Replicas on a different layout would serve a
	// different split, so they sit this read out.
	partitions := 0
	for _, p := range live {
		if p.home {
			partitions = p.partitions
			break
		}
	}
	if partitions == 0 {
		for _, p := range live {
			if p.partitions > partitions {
				partitions = p.partitions
			}
		}
	}
	if partitions == 0 {
		// No live replica knows the collection — stream from the home so
		// the real error (unreachable, no such collection) surfaces.
		return rt.client.ListPartsSubset(ctx, home, rt.name, 0, nil, nil, func(pl repo.PartListing) error {
			ing.push(pl)
			return ctx.Err()
		})
	}
	servers := make([]replicaProbe, 0, len(live))
	for _, p := range live {
		if p.partitions == partitions {
			servers = append(servers, p)
		}
	}
	base := baselineVec(probes, partitions)

	var (
		mu        sync.Mutex
		delivered = make([]bool, partitions)
		firstErr  error
	)
	pushFrom := func(p replicaProbe) func(repo.PartListing) error {
		return func(pl repo.PartListing) error {
			if pl.Part >= 0 && pl.Part < partitions {
				mu.Lock()
				dup := delivered[pl.Part]
				delivered[pl.Part] = true
				mu.Unlock()
				if dup {
					return ctx.Err() // a retry re-served it; keep the first
				}
				if base[pl.Part] > pl.Version {
					ing.replicaSkew.Add(int64(base[pl.Part] - pl.Version))
				}
			}
			if !p.home {
				ing.replicaServed.Add(1)
				atomicMax(&ing.replicaAgeMs, int64(p.age()/time.Millisecond))
			}
			ing.push(pl)
			return ctx.Err()
		}
	}

	// First wave: every server streams its share concurrently.
	assign := make(map[netsim.NodeID][]int, len(servers))
	for part := 0; part < partitions; part++ {
		p := servers[part%len(servers)]
		assign[p.node] = append(assign[p.node], part)
	}
	var wg sync.WaitGroup
	for _, p := range servers {
		parts := assign[p.node]
		if len(parts) == 0 {
			continue
		}
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.client.ListPartsSubset(ctx, p.node, rt.name, 0, nil, parts, pushFrom(p)); err != nil {
				rt.markDead(p.node)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Reassign whatever a dead replica left undelivered: each surviving
	// server in turn, the home as the final fallback.
	missing := func() []int {
		mu.Lock()
		defer mu.Unlock()
		var out []int
		for part, ok := range delivered {
			if !ok {
				out = append(out, part)
			}
		}
		return out
	}
	retries := servers
	haveHome := false
	for _, p := range retries {
		if p.home {
			haveHome = true
		}
	}
	if !haveHome {
		retries = append(retries, replicaProbe{node: home, home: true, partitions: partitions})
	}
	for _, p := range retries {
		rest := missing()
		if len(rest) == 0 {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = rt.client.ListPartsSubset(ctx, p.node, rt.name, 0, nil, rest, pushFrom(p))
	}
	if rest := missing(); len(rest) > 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("replicas %v: %d partitions undeliverable", rt.cfg.Nodes, len(rest))
		}
		return firstErr
	}
	return nil
}
