package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/locksvc"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

// TestIteratorSurvivesLossyLinks checks that moderate message loss slows
// iterators down but does not break any semantics: drops are transient, so
// the element stays reachable and the spec says keep trying.
func TestIteratorSurvivesLossyLinks(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 3, Seed: 21, DropProb: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := createPopulated(ctx, c, "lossy", 10); err != nil {
		t.Fatal(err)
	}
	for _, sem := range []Semantics{Snapshot, GrowOnly, Optimistic} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			s, err := NewSet(c.Client, cluster.DirNode, "lossy", Options{
				Semantics:  sem,
				BlockRetry: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Setup RPCs themselves can be dropped; retry the open a few
			// times like a real client would.
			var elems []Element
			for attempt := 0; attempt < 10; attempt++ {
				elems, err = s.Collect(ctx)
				if err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("collect kept failing: %v", err)
			}
			if len(elems) != 10 {
				t.Fatalf("yielded %d, want 10", len(elems))
			}
		})
	}
}

// TestPessimisticGivesUpOnBlackholeLink checks the liveness guard: if
// fetches keep failing while the element remains "reachable" (a lossy
// one-way path the detector can't see), the pessimistic iterator
// eventually fails rather than spinning forever.
func TestPessimisticGivesUpOnBlackholeLink(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 4, DropProb: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// Build the collection through a lossless path: direct server access
	// is impossible, so temporarily disable drops by... building before
	// enabling is impossible too (DropProb is fixed). Instead, the
	// directory is the client's own node: self-sends never drop.
	if err := c.Client.CreateCollection(ctx, cluster.HomeNode, "bh"); err != nil {
		t.Fatal(err)
	}
	// Object on home too, so Put succeeds; then a second member hosted on
	// s0 is added with a ref only (no Put needed for membership).
	ref, err := c.Client.Put(ctx, cluster.HomeNode, repo.Object{ID: "local", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.HomeNode, "bh", ref); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.HomeNode, "bh", repo.Ref{ID: "remote", Node: c.Storage[0]}); err != nil {
		t.Fatal(err)
	}

	s, err := NewSet(c.Client, cluster.HomeNode, "bh", Options{Semantics: GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Collect(ctx)
	if !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure after repeated fetch failures", err)
	}
}

// TestCrashRestartPreservesState checks the fail-stop-with-stable-storage
// model: a crashed storage node keeps its objects and serves them again
// after restart.
func TestCrashRestartPreservesState(t *testing.T) {
	w := newTestWorld(t, 4)
	ctx := context.Background()
	victim := w.c.Storage[0]
	w.c.Net.Crash(victim)

	s := w.set(t, Options{Semantics: GrowOnly})
	if _, err := s.Collect(ctx); !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure while crashed", err)
	}

	w.c.Net.Restart(victim)
	elems, err := s.Collect(ctx)
	if err != nil {
		t.Fatalf("collect after restart: %v", err)
	}
	if len(elems) != 4 {
		t.Fatalf("yielded %d after restart, want 4", len(elems))
	}
}

// TestLeaseExpiryUnblocksWriters models the disconnected-reader problem
// the paper warns about (§3.1): a reader that vanishes mid-run loses its
// lease, so writers are not blocked forever.
func TestLeaseExpiryUnblocksWriters(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()
	s := w.set(t, Options{
		Semantics: ImmutablePerRun,
		LockTTL:   time.Millisecond, // floored to 50ms real by the server
	})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The reader "disconnects": never calls Next or Close again.
	_ = it

	writer := locksvc.NewClient(w.c.Bus, cluster.HomeNode, "impatient-writer")
	writer.RetryEvery = time.Millisecond
	deadline := time.Now().Add(5 * time.Second)
	granted := false
	for time.Now().Before(deadline) {
		granted, err = writer.TryAcquire(ctx, w.c.LockNode, lockName("set"), locksvc.Write, 0)
		if err != nil {
			t.Fatal(err)
		}
		if granted {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !granted {
		t.Fatal("writer never acquired the lock after the reader vanished")
	}
}

// TestCollectReturnsPartialOnFailure checks that a failing run still hands
// back everything yielded before the failure — the paper's partial
// information property applies even to pessimistic runs.
func TestCollectReturnsPartialOnFailure(t *testing.T) {
	w := newTestWorld(t, 8)
	w.c.Net.Isolate(w.c.Storage[1])
	s := w.set(t, Options{Semantics: Immutable})
	got, err := s.Collect(context.Background())
	if !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("partial results = %d, want 6", len(got))
	}
}

// TestSnapshotPinReleasedOnClose verifies resource hygiene: pins do not
// leak across runs.
func TestSnapshotPinReleasedOnClose(t *testing.T) {
	w := newTestWorld(t, 3)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: Snapshot})
	for i := 0; i < 5; i++ {
		it, err := s.Elements(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for it.Next(ctx) {
		}
		if err := it.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := w.c.Client.Stats(ctx, cluster.DirNode, "set")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pins != 0 {
		t.Fatalf("pins leaked: %d", stats.Pins)
	}
	if stats.Tokens != 0 {
		t.Fatalf("tokens leaked: %d", stats.Tokens)
	}
}

// TestGrowWindowReleasedOnEarlyClose verifies a grow window closes even
// when the iterator is abandoned mid-run.
func TestGrowWindowReleasedOnEarlyClose(t *testing.T) {
	w := newTestWorld(t, 6)
	ctx := context.Background()
	s := w.set(t, Options{Semantics: GrowOnlyPerRun})
	it, err := s.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next(ctx) {
		t.Fatal("first next failed")
	}
	if err := it.Close(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := w.c.Client.Stats(ctx, cluster.DirNode, "set")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tokens != 0 {
		t.Fatalf("grow window leaked: %+v", stats)
	}
}

// TestEmptySetAllSemantics: iterating an empty set terminates immediately
// everywhere.
func TestEmptySetAllSemantics(t *testing.T) {
	w := newTestWorld(t, 0)
	for _, sem := range AllSemantics() {
		s := w.set(t, Options{Semantics: sem})
		elems, err := s.Collect(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if len(elems) != 0 {
			t.Fatalf("%s yielded %d from empty set", sem, len(elems))
		}
	}
}

// TestKernelQuickProperties drives the kernels over random states with
// testing/quick, checking structural invariants of every decision.
func TestKernelQuickProperties(t *testing.T) {
	check := func(seed int64, semIdx uint8, size uint8) bool {
		sems := AllSemantics()
		sem := sems[int(semIdx)%len(sems)]
		n := int(size%12) + 1
		rng := sim.NewRand(seed)
		var members, reach []spec.ElemID
		for i := 0; i < n; i++ {
			id := spec.ElemID(fmt.Sprintf("e%02d", i))
			if rng.Float64() < 0.7 {
				members = append(members, id)
			}
			if rng.Float64() < 0.7 {
				reach = append(reach, id)
			}
		}
		pre := spec.NewState(members, reach)
		first := pre.Clone()
		yielded := make(map[spec.ElemID]bool)
		for _, id := range members {
			if rng.Float64() < 0.4 {
				yielded[id] = true
			}
		}
		d := Step(sem, first, pre, yielded)
		switch d.Kind {
		case DecideYield:
			// Never a duplicate, always a member of the governing set,
			// always reachable.
			if yielded[d.Elem] {
				return false
			}
			if !pre.Reach[d.Elem] {
				return false
			}
			if sem.UsesSnapshot() {
				return first.Members[d.Elem]
			}
			return pre.Members[d.Elem]
		case DecideBlock:
			return sem == Optimistic
		case DecideFail:
			return sem != Optimistic
		case DecideReturn:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func createPopulated(ctx context.Context, c *cluster.Cluster, coll string, n int) error {
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var (
			ref repo.Ref
			err error
		)
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("%s-%03d", coll, i)), Data: []byte("d")}
		// Lossy worlds need retries even for setup.
		for attempt := 0; attempt < 20; attempt++ {
			ref, err = c.Client.Put(ctx, c.StorageFor(i), obj)
			if err == nil {
				break
			}
		}
		if err != nil {
			return err
		}
		for attempt := 0; attempt < 20; attempt++ {
			err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
			if err == nil {
				break
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
