package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"weaksets/internal/locksvc"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

// maxConsecutiveFetchFailures is a liveness guard: a pessimistic iterator
// whose element fetches keep failing on a lossy-but-reachable link retries
// (the element is still reachable, so the spec says yield), but after this
// many consecutive transport failures it gives up with ErrFailure rather
// than spin forever.
const maxConsecutiveFetchFailures = 64

// Iterator is one run of the elements iterator. It follows the rows
// pattern:
//
//	it, err := set.Elements(ctx)
//	...
//	for it.Next(ctx) {
//	    e := it.Element()
//	}
//	err = it.Err()        // nil on normal termination
//	_ = it.Close(ctx)     // releases locks/pins/ghost windows
//
// An Iterator is not safe for concurrent use: like the paper's iterators it
// is a control abstraction suspended and resumed by a single caller.
type Iterator struct {
	set    *Set
	client *repo.Client
	opts   Options
	scale  sim.TimeScale
	owner  string

	// Resources held for the run.
	lock      *locksvc.Client
	hasLock   bool
	pin       int64
	growToken int64
	released  bool

	// first is s_first for snapshot-based semantics.
	first map[spec.ElemID]bool
	// refs maps every element ID this run has seen to its location.
	refs map[spec.ElemID]repo.Ref

	yielded    map[spec.ElemID]bool
	blockedFor time.Duration
	fetchFails int
	listFails  int

	elem   Element
	err    error
	done   bool
	closed bool
}

func lockName(coll string) string { return "coll/" + coll }

// setup acquires the per-run resources and, for snapshot-based semantics,
// s_first.
func (it *Iterator) setup(ctx context.Context) error {
	s := it.set
	switch it.opts.Semantics {
	case ImmutablePerRun:
		it.lock = s.lockClient(it.owner)
		if _, err := it.lock.Acquire(ctx, it.opts.LockServer, lockName(s.name), locksvc.Read, it.opts.LockTTL); err != nil {
			return fmt.Errorf("acquire read lock: %w", err)
		}
		it.hasLock = true
	case Snapshot:
		pin, err := it.client.Pin(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("pin snapshot: %w", err)
		}
		it.pin = pin
	case GrowOnlyPerRun:
		token, err := it.client.BeginGrow(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("open grow window: %w", err)
		}
		it.growToken = token
	}

	if it.opts.Semantics.UsesSnapshot() {
		var (
			members []repo.Ref
			err     error
		)
		if it.pin != 0 {
			members, _, err = it.client.ListPinned(ctx, s.dir, s.name, it.pin)
		} else {
			members, _, err = it.client.List(ctx, s.dir, s.name)
		}
		if err != nil {
			return fmt.Errorf("read s_first: %w", err)
		}
		it.first = make(map[spec.ElemID]bool, len(members))
		for _, ref := range members {
			id := spec.ElemID(ref.ID)
			it.first[id] = true
			it.refs[id] = ref
		}
	}
	return nil
}

// release frees the run's resources exactly once, best-effort.
func (it *Iterator) release(ctx context.Context) {
	if it.released {
		return
	}
	it.released = true
	s := it.set
	if it.hasLock {
		_ = it.lock.Release(ctx, it.opts.LockServer, lockName(s.name))
		it.hasLock = false
	}
	if it.pin != 0 {
		_ = it.client.Unpin(ctx, s.dir, s.name, it.pin)
		it.pin = 0
	}
	if it.growToken != 0 {
		_, _ = it.client.EndGrow(ctx, s.dir, s.name, it.growToken)
		it.growToken = 0
	}
}

// preState assembles the invocation's pre-state: membership (s_first for
// snapshot semantics, a fresh read otherwise) plus the reachability of each
// member judged from the client's node.
func (it *Iterator) preState(ctx context.Context) (spec.State, error) {
	members := it.first
	if !it.opts.Semantics.UsesSnapshot() {
		var (
			refs []repo.Ref
			err  error
		)
		if it.opts.Quorum.enabled() {
			refs, _, err = readQuorum(ctx, it.client, it.opts.Quorum, it.set.name)
		} else {
			refs, _, err = it.client.List(ctx, it.set.dir, it.set.name)
		}
		if err != nil {
			return spec.State{}, err
		}
		members = make(map[spec.ElemID]bool, len(refs))
		for _, ref := range refs {
			id := spec.ElemID(ref.ID)
			members[id] = true
			it.refs[id] = ref
		}
	}
	st := spec.State{
		Members: make(map[spec.ElemID]bool, len(members)),
		Reach:   make(map[spec.ElemID]bool, len(members)),
	}
	for id := range members {
		st.Members[id] = true
		if it.client.Reachable(it.refs[id]) {
			st.Reach[id] = true
		}
	}
	return st, nil
}

// Next advances the iterator: it either yields the next element (true) or
// terminates (false). After false, Err distinguishes normal termination
// (nil) from the failure exception, a blocking timeout, or context
// cancellation.
func (it *Iterator) Next(ctx context.Context) bool {
	if it.done || it.closed {
		return false
	}
	firstState := spec.State{Members: it.first}
	for {
		if err := ctx.Err(); err != nil {
			it.terminate(err)
			return false
		}
		pre, err := it.preState(ctx)
		if err != nil {
			switch {
			case ctx.Err() != nil:
				it.terminate(ctx.Err())
			case it.opts.Semantics == Optimistic && netsim.IsFailure(err):
				// The directory itself is unreachable; optimistically wait
				// for repair.
				if !it.blockPause(ctx) {
					return false
				}
				continue
			case errors.Is(err, netsim.ErrDropped) && it.listFails < maxConsecutiveFetchFailures:
				// A dropped message is transient by definition (the link is
				// up); retry rather than report the failure exception.
				it.listFails++
				continue
			default:
				it.terminate(fmt.Errorf("%w: read membership: %v", ErrFailure, err))
			}
			return false
		}
		it.listFails = 0

		d := Step(it.opts.Semantics, firstState, pre, it.yielded)
		switch d.Kind {
		case DecideYield:
			if it.fetch(ctx, pre, d.Elem) {
				return true
			}
			if it.done {
				return false
			}
			// Fetch raced with a mutation or a failure: re-observe the
			// world and decide again.
			continue

		case DecideReturn:
			it.record(pre, spec.Returned, "", false)
			it.done = true
			return false

		case DecideFail:
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: %s: unreachable members remain", ErrFailure, it.opts.Semantics))
			return false

		case DecideBlock:
			it.record(pre, spec.Blocked, "", false)
			if !it.blockPause(ctx) {
				return false
			}
		}
	}
}

// fetch retrieves the chosen element's object. It returns true when the
// iterator yielded; false means the caller should re-observe (or the
// iterator terminated — check it.done).
func (it *Iterator) fetch(ctx context.Context, pre spec.State, elem spec.ElemID) bool {
	ref := it.refs[elem]
	obj, err := it.client.Get(ctx, ref)
	switch {
	case err == nil:
		it.yield(pre, ref, Element{Ref: ref, Data: obj.Data, Attrs: obj.Attrs, Stale: obj.Tombstone})
		return true

	case errors.Is(err, repo.ErrNotFound):
		it.fetchFails = 0
		switch it.opts.Semantics {
		case Immutable, ImmutablePerRun, Snapshot:
			// The snapshot still lists the member but its data is gone —
			// Fig. 4's tolerated anomaly. Yield the identity as stale.
			it.yield(pre, ref, Element{Ref: ref, Stale: true})
			return true
		case Optimistic:
			// Concurrently deleted; the next membership read drops it.
			return false
		default:
			// Grow-only: a member's data vanished, so the grow-only
			// discipline was broken under us. Pessimistic failure.
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: member %q data missing: %v", ErrFailure, elem, err))
			return false
		}

	default:
		// Transport failure. The element may have become unreachable (the
		// kernel will see that next time) or the message was dropped (the
		// kernel will choose it again). Guard liveness on lossy links.
		it.fetchFails++
		if it.fetchFails >= maxConsecutiveFetchFailures && it.opts.Semantics != Optimistic {
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: fetching %q kept failing: %v", ErrFailure, elem, err))
		}
		return false
	}
}

func (it *Iterator) yield(pre spec.State, ref repo.Ref, e Element) {
	it.record(pre, spec.Suspended, spec.ElemID(ref.ID), true)
	it.yielded[spec.ElemID(ref.ID)] = true
	it.elem = e
	it.blockedFor = 0
	it.fetchFails = 0
}

// blockPause sleeps one optimistic retry interval. It returns false when
// the iterator must stop (budget exhausted or context cancelled).
func (it *Iterator) blockPause(ctx context.Context) bool {
	it.blockedFor += it.opts.BlockRetry
	if it.opts.MaxBlock > 0 && it.blockedFor > it.opts.MaxBlock {
		it.terminate(fmt.Errorf("%w: waited %v", ErrBlocked, it.opts.MaxBlock))
		return false
	}
	// Logical-time runs (zero scale) still pause briefly so the
	// environment can make progress.
	if !it.scale.SleepCtxFloor(ctx, it.opts.BlockRetry, 100*time.Microsecond) {
		it.terminate(ctx.Err())
		return false
	}
	return true
}

func (it *Iterator) record(pre spec.State, outcome spec.Outcome, yield spec.ElemID, hasYield bool) {
	if it.opts.Recorder != nil {
		it.opts.Recorder.Record(pre, outcome, yield, hasYield)
	}
}

func (it *Iterator) terminate(err error) {
	it.done = true
	if it.err == nil {
		it.err = err
	}
}

// Element returns the element yielded by the last successful Next.
func (it *Iterator) Element() Element { return it.elem }

// Err reports how the run ended: nil for normal termination (`returns`),
// ErrFailure for the failure exception (`fails`), ErrBlocked for an
// exhausted optimistic budget, or the context's error.
func (it *Iterator) Err() error { return it.err }

// Yielded reports how many elements the run has yielded.
func (it *Iterator) Yielded() int { return len(it.yielded) }

// Close releases the run's lock, pin, or grow window. It is idempotent.
func (it *Iterator) Close(ctx context.Context) error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.done = true
	it.release(ctx)
	return nil
}
