package core

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/locksvc"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

// maxConsecutiveFetchFailures is a liveness guard: a pessimistic iterator
// whose element fetches keep failing on a lossy-but-reachable link retries
// (the element is still reachable, so the spec says yield), but after this
// many consecutive transport failures it gives up with ErrFailure rather
// than spin forever.
const maxConsecutiveFetchFailures = 64

// Iterator is one run of the elements iterator. It follows the rows
// pattern:
//
//	it, err := set.Elements(ctx)
//	...
//	for it.Next(ctx) {
//	    e := it.Element()
//	}
//	err = it.Err()        // nil on normal termination
//	_ = it.Close(ctx)     // releases locks/pins/ghost windows
//
// An Iterator is not safe for concurrent use: like the paper's iterators it
// is a control abstraction suspended and resumed by a single caller.
type Iterator struct {
	set    *Set
	client *repo.Client
	opts   Options
	scale  sim.TimeScale
	owner  string

	// Resources held for the run.
	lock      *locksvc.Client
	hasLock   bool
	pin       int64
	growToken int64
	released  bool

	// first is s_first for snapshot-based semantics. With the streamed
	// partitioned listing it grows partition-by-partition on the
	// iterator's own goroutine (drainIngest) until the stream completes;
	// the kernel legally runs against the partial view meanwhile —
	// members it yields are genuine members of the snapshot — but
	// terminal decisions wait for completeness.
	first map[spec.ElemID]bool
	// snapVer is the listing version governing s_first: the version the
	// pinned (or opening) membership read reported. It anchors the
	// cache's freshness check for snapshot-governed runs. While the
	// partitioned listing is still streaming in it stays 0 (no cache
	// serves against a version still being assembled); on completion it
	// becomes the highest partition version observed, which is sound:
	// any object fetched after that point is at least that fresh.
	snapVer uint64
	// refs maps every element ID this run has seen to its location.
	refs map[spec.ElemID]repo.Ref

	// ing buffers the streamed opening listing; nil when the run opened
	// with a monolithic List (non-snapshot semantics, or the
	// MonolithicListing baseline). ingDone flips once the completed
	// stream has been folded and snapVer sealed.
	ing        *partIngest
	ingCancel  context.CancelFunc
	ingDone    bool
	maxPartVer uint64

	// cursor is the incremental stepper's yield order: the sorted member
	// ids not yet yielded, merged partition-by-partition as listings
	// arrive. When every member node is reachable and no conformance
	// recorder is attached, cursor[0] IS the kernel's decision (the
	// lexicographically smallest unyielded reachable member), so a yield
	// costs O(distinct nodes) instead of an O(members) scan — the
	// difference between O(n) and O(n²) for a million-element run. Any
	// anomaly (unreachable node, recorder attached, terminal decision)
	// falls back to the full kernel Step.
	cursor []spec.ElemID
	// nodes is the set of distinct nodes holding members, the fast
	// path's per-invocation reachability sample domain.
	nodes map[netsim.NodeID]bool

	// pf is the batched prefetch pipeline; nil when Fetch.Disable is set.
	pf *prefetcher
	// curMembers/listVersion cache the last full membership read for the
	// current-state semantics; a version-gated List revalidates the cache
	// in one member-free round trip when the listing hasn't changed.
	curMembers  map[spec.ElemID]bool
	listVersion uint64
	// listedOnce flips after the run's first listing RPC: a version move
	// against a seeded cross-run listing is not within-run skew.
	listedOnce bool
	// Reachability expansion cache: when the same membership map expands
	// the same per-node sample, the member-level map is identical, so it
	// is reused instead of rebuilt (it is read-only once built). The
	// per-node sample itself is still taken fresh every invocation.
	reachMembers map[spec.ElemID]bool
	reachNodes   map[netsim.NodeID]bool
	reachCache   map[spec.ElemID]bool

	yielded    map[spec.ElemID]bool
	blockedFor time.Duration
	fetchFails int
	listFails  int

	// Observability: the run's root span (nil when untraced/unsampled),
	// its weakness report under construction, the run start that turns
	// into Duration on close, and the snapshot capture time that turns
	// into SnapshotAge (snapshot-governed semantics only).
	span      *obs.Span
	wk        obs.WeaknessReport
	startedAt time.Time
	openedAt  time.Time
	obsDone   bool

	elem   Element
	err    error
	done   bool
	closed bool
}

func lockName(coll string) string { return "coll/" + coll }

// partIngest is the unbounded buffer between the listing-ingest
// goroutine (pushing partition frames as the stream delivers them) and
// the iterator goroutine (folding them into s_first between kernel
// invocations). Unbounded so the stream's producer never blocks on a
// slow consumer; total memory is bounded by the listing itself.
type partIngest struct {
	mu     sync.Mutex
	parts  []repo.PartListing
	done   bool
	err    error
	hinted bool
	sized  *sizedMaps    // pre-sized membership maps, once built
	notify chan struct{} // buffered(1); signaled on push and finish

	// Replica staleness accounting, written by the (possibly several)
	// stream goroutines and folded into the run's WeaknessReport on the
	// iterator goroutine. Atomics because the streams outlive Close on
	// abandonment.
	replicaSkew   atomic.Int64
	replicaServed atomic.Int64
	replicaAgeMs  atomic.Int64
}

func newPartIngest() *partIngest {
	return &partIngest{notify: make(chan struct{}, 1)}
}

func (g *partIngest) signal() {
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

func (g *partIngest) push(pl repo.PartListing) {
	g.mu.Lock()
	g.parts = append(g.parts, pl)
	hint := 0
	if !g.hinted && len(pl.Members) > 0 {
		// Estimate the whole listing from the first non-empty frame
		// (uniform partition hash) and build pre-sized membership maps
		// concurrently with consumption.
		g.hinted = true
		hint = len(pl.Members) * max(pl.Partitions, 1)
	}
	g.mu.Unlock()
	if hint >= sizedMapsMin {
		go g.buildSized(hint)
	}
	g.signal()
}

func (g *partIngest) finish(err error) {
	g.mu.Lock()
	g.done = true
	g.err = err
	g.mu.Unlock()
	g.signal()
}

// takeOne pops the oldest queued partition; done/err report stream
// completion once the queue is empty.
func (g *partIngest) takeOne() (pl repo.PartListing, ok, done bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.parts) > 0 {
		pl = g.parts[0]
		g.parts = g.parts[1:]
		return pl, true, false, nil
	}
	return repo.PartListing{}, false, g.done, g.err
}

// sizedMaps is a set of membership maps pre-sized for the whole
// listing, built in the background while the first partitions are
// already being consumed.
type sizedMaps struct {
	first   map[spec.ElemID]bool
	refs    map[spec.ElemID]repo.Ref
	yielded map[spec.ElemID]bool
}

// sizedMapsMin gates the background build: below this estimated
// membership the incremental rehashes are cheaper than the handoff.
const sizedMapsMin = 1 << 16

// buildSized allocates membership maps with capacity for the whole
// estimated listing. It runs on its own goroutine: zeroing that much
// map capacity takes tens of milliseconds at a million members, which
// must not sit on the time-to-first-element path.
func (g *partIngest) buildSized(hint int) {
	m := &sizedMaps{
		first:   make(map[spec.ElemID]bool, hint),
		refs:    make(map[spec.ElemID]repo.Ref, hint),
		yielded: make(map[spec.ElemID]bool, hint),
	}
	g.mu.Lock()
	g.sized = m
	g.mu.Unlock()
}

// takeSized hands the pre-sized maps to the iterator exactly once.
func (g *partIngest) takeSized() *sizedMaps {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.sized
	g.sized = nil
	return m
}

// setup acquires the per-run resources and, for snapshot-based semantics,
// s_first.
func (it *Iterator) setup(ctx context.Context) error {
	s := it.set
	switch it.opts.Semantics {
	case ImmutablePerRun:
		it.lock = s.lockClient(it.owner)
		if _, err := it.lock.Acquire(ctx, it.opts.LockServer, lockName(s.name), locksvc.Read, it.opts.LockTTL); err != nil {
			return fmt.Errorf("acquire read lock: %w", err)
		}
		it.hasLock = true
	case Snapshot:
		pin, err := it.client.Pin(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("pin snapshot: %w", err)
		}
		it.pin = pin
	case GrowOnlyPerRun:
		token, err := it.client.BeginGrow(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("open grow window: %w", err)
		}
		it.growToken = token
	}

	if it.opts.Semantics.UsesSnapshot() {
		it.first = make(map[spec.ElemID]bool)
		it.nodes = make(map[netsim.NodeID]bool, 8)
		if it.opts.MonolithicListing {
			var (
				members []repo.Ref
				version uint64
				err     error
			)
			if it.pin != 0 {
				members, version, err = it.client.ListPinned(ctx, s.dir, s.name, it.pin)
			} else {
				members, version, err = it.client.List(ctx, s.dir, s.name)
			}
			if err != nil {
				return fmt.Errorf("read s_first: %w", err)
			}
			it.snapVer = version
			it.fold(repo.PartListing{Part: 0, Partitions: 1, Members: members, Version: version})
			it.ingDone = true
		} else if err := it.startIngest(ctx); err != nil {
			return fmt.Errorf("read s_first: %w", err)
		}
		it.openedAt = time.Now()
	}
	return nil
}

// startIngest opens the streamed partitioned listing and waits for its
// first partition (or its completion), so opening errors surface here
// exactly as a monolithic opening List's would — while the remaining
// partitions keep arriving in the background, already fetchable
// against.
func (it *Iterator) startIngest(ctx context.Context) error {
	s := it.set
	ing := newPartIngest()
	it.ing = ing
	// The stream outlives this call; its context carries the run's trace
	// and is cancelled by Close.
	ictx, cancel := context.WithCancel(it.traceCtx(context.Background()))
	it.ingCancel = cancel
	go func() {
		if rt := s.router; rt != nil && it.pin == 0 {
			// Replica-parallel opening: the listing's partitions stream
			// from every live replica concurrently into this ingest. A
			// pinned run stays home-bound — pins are primary-resident.
			ing.finish(rt.scatter(ictx, ing))
			return
		}
		err := it.client.ListParts(ictx, s.dir, s.name, it.pin, nil, func(pl repo.PartListing) error {
			ing.push(pl)
			return ictx.Err()
		})
		ing.finish(err)
	}()
	select {
	case <-ing.notify:
	case <-ctx.Done():
		return ctx.Err()
	}
	return it.drainIngest()
}

// fold merges one partition's listing into s_first on the iterator
// goroutine. The membership maps grow in place, so the identity-keyed
// reachability cache is explicitly invalidated (copying ~P maps of up
// to n entries instead would defeat the point of streaming).
func (it *Iterator) fold(pl repo.PartListing) {
	if pl.Skewed {
		it.wk.PartitionSkew++
	}
	if pl.Version > it.maxPartVer {
		it.maxPartVer = pl.Version
	}
	if it.pin != 0 && pl.Version > it.snapVer {
		// A pinned stream's frames all carry the pin's own listing version
		// (the pin is one immutable snapshot, partitioned on the fly), so
		// the run's governing version is known from the first frame — the
		// cache can serve and stamp against it while the rest of the
		// stream is still arriving, instead of revalidating every element
		// planned before the final seal in drainIngest.
		it.snapVer = pl.Version
	}
	if len(pl.Members) == 0 {
		return
	}
	if it.ing == nil && len(it.first) == 0 && len(it.yielded) == 0 {
		// Monolithic listing: the whole membership is in hand, so size the
		// run's maps exactly rather than paying every rehash doubling up
		// to n. (The caller already paid an O(n) List; this is noise on
		// that path.)
		hint := len(pl.Members)
		it.first = make(map[spec.ElemID]bool, hint)
		it.refs = make(map[spec.ElemID]repo.Ref, hint)
		it.yielded = make(map[spec.ElemID]bool, hint)
	} else if it.ing != nil {
		// Streamed listing: adopt the pre-sized maps once the background
		// build finishes. Allocating ~n map capacity takes tens of
		// milliseconds at a million members, so it happens off the yield
		// path; adoption only copies what little has folded so far.
		if m := it.ing.takeSized(); m != nil {
			for id := range it.first {
				m.first[id] = true
			}
			for id, ref := range it.refs {
				m.refs[id] = ref
			}
			for id := range it.yielded {
				m.yielded[id] = true
			}
			it.first, it.refs, it.yielded = m.first, m.refs, m.yielded
		}
	}
	fresh := make([]spec.ElemID, 0, len(pl.Members))
	for _, ref := range pl.Members {
		id := spec.ElemID(ref.ID)
		if it.first[id] {
			continue
		}
		it.first[id] = true
		it.refs[id] = ref
		it.nodes[ref.Node] = true
		fresh = append(fresh, id)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	it.cursor = mergeSorted(it.cursor, fresh)
	it.reachMembers, it.reachCache = nil, nil
}

// mergeSorted merges two ascending id slices into one.
func mergeSorted(a, b []spec.ElemID) []spec.ElemID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]spec.ElemID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// drainIngest folds arrived partitions, without blocking — at most
// enough to keep a full prefetch window of unyielded members in the
// cursor, so the fold cost is paid incrementally across yields rather
// than all before the first element (the in-process stream can outrun
// the iterator arbitrarily). When the stream has completed and the
// queue is drained it seals snapVer (the highest partition version
// observed — sound, because every object fetch from here on is at
// least that fresh) and reports the stream's error, if any.
func (it *Iterator) drainIngest() error {
	if it.ing == nil || it.ingDone {
		return nil
	}
	for len(it.cursor) < it.prefetchWindow() {
		pl, ok, done, err := it.ing.takeOne()
		if !ok {
			if !done {
				return nil
			}
			it.ingDone = true
			if err != nil {
				return err
			}
			it.snapVer = it.maxPartVer
			return nil
		}
		it.fold(pl)
	}
	return nil
}

// ingestActive reports whether opening-listing partitions may still
// arrive: terminal kernel decisions must wait them out.
func (it *Iterator) ingestActive() bool { return it.ing != nil && !it.ingDone }

// waitIngest blocks until the ingest stream produces (or finishes).
func (it *Iterator) waitIngest(ctx context.Context) bool {
	select {
	case <-it.ing.notify:
		return true
	case <-ctx.Done():
		it.terminate(ctx.Err())
		return false
	}
}

// traceCtx stamps the run's span context onto ctx so downstream RPCs
// join the trace. On an untraced run it returns ctx unchanged.
func (it *Iterator) traceCtx(ctx context.Context) context.Context {
	if it.span == nil {
		return ctx
	}
	return obs.ContextWithSpan(ctx, it.span.Context())
}

// release frees the run's resources exactly once, best-effort.
func (it *Iterator) release(ctx context.Context) {
	if it.released {
		return
	}
	it.released = true
	s := it.set
	if it.hasLock {
		_ = it.lock.Release(ctx, it.opts.LockServer, lockName(s.name))
		it.hasLock = false
	}
	if it.pin != 0 {
		_ = it.client.Unpin(ctx, s.dir, s.name, it.pin)
		it.pin = 0
	}
	if it.growToken != 0 {
		_, _ = it.client.EndGrow(ctx, s.dir, s.name, it.growToken)
		it.growToken = 0
	}
}

// leaseServe tries to serve a current-state membership read from the
// cached listing under a held lease: the server promised to push any
// listing change, so if the certified version is still the one the run
// has cached, the conditional revalidation RPC is provably redundant. A
// pushed bump makes the version comparison fail and the caller falls
// back to ListIfNew — the degradation ladder's middle rung.
func (it *Iterator) leaseServe() (map[spec.ElemID]bool, bool) {
	if it.opts.Quorum.enabled() || it.curMembers == nil || it.listVersion == 0 {
		return nil, false
	}
	ls := it.client.Leases()
	if ls == nil || ls.Dir() != it.set.dir {
		return nil, false
	}
	v, age, ok := ls.Serveable(it.set.name)
	if !ok || v > it.listVersion {
		return nil, false
	}
	it.wk.LeaseServed++
	if age > it.wk.LeaseAge {
		it.wk.LeaseAge = age
	}
	return it.curMembers, true
}

// noteReplicaList accounts a current-state membership read answered by a
// replica. A non-home serve counts as ReplicaServed and bounds GhostAge
// by the replica's last-sync age. A reply older than what the run has
// already observed (the serving replica lags the run's own view) is
// demoted to not-modified — the run keeps its fresher cached listing,
// staying monotonic — and the regression is accounted as ReplicaSkew.
func (it *Iterator) noteReplicaList(from replicaProbe, version uint64, notModified *bool) {
	if !from.home {
		it.wk.ReplicaServed++
		if age := from.age(); age > it.wk.GhostAge {
			it.wk.GhostAge = age
		}
	}
	if !*notModified && version < it.listVersion {
		it.wk.ReplicaSkew += int64(it.listVersion - version)
		*notModified = true
	}
}

// preState assembles the invocation's pre-state: membership (s_first for
// snapshot semantics, a fresh read otherwise) plus the reachability of each
// member judged from the client's node.
func (it *Iterator) preState(ctx context.Context) (spec.State, error) {
	members := it.first
	if !it.opts.Semantics.UsesSnapshot() {
		if m, served := it.leaseServe(); served {
			return it.assembleState(m), nil
		}
		lctx, lsp := it.opts.Tracer.StartSpan(it.traceCtx(ctx), "iter.list")
		defer lsp.End()
		ctx = lctx
		if it.opts.Quorum.enabled() {
			refs, _, err := readQuorum(ctx, it.client, it.opts.Quorum, it.set.name)
			if err != nil {
				return spec.State{}, err
			}
			members = make(map[spec.ElemID]bool, len(refs))
			for _, ref := range refs {
				id := spec.ElemID(ref.ID)
				members[id] = true
				it.refs[id] = ref
			}
		} else {
			var (
				refs        []repo.Ref
				version     uint64
				notModified bool
				err         error
			)
			if rt := it.set.router; rt != nil {
				var from replicaProbe
				refs, version, notModified, from, err = rt.listIfNew(ctx, it.listVersion)
				if err == nil {
					it.noteReplicaList(from, version, &notModified)
				}
			} else {
				refs, version, notModified, err = it.client.ListIfNew(ctx, it.set.dir, it.set.name, it.listVersion)
			}
			if err != nil {
				return spec.State{}, err
			}
			if !notModified {
				if it.listedOnce && version != it.listVersion {
					// The listing changed under the run: membership skew the
					// caller can never distinguish from a slow iteration.
					it.wk.ListingSkew++
				}
				it.listVersion = version
				it.curMembers = make(map[spec.ElemID]bool, len(refs))
				for _, ref := range refs {
					id := spec.ElemID(ref.ID)
					it.curMembers[id] = true
					it.refs[id] = ref
					if it.yielded[id] {
						// Re-listed but already yielded this run: the "no
						// duplicates" obligation suppresses it.
						it.wk.DuplicatesSuppressed++
					}
				}
				it.set.publishListing(version, it.curMembers, it.refs)
			}
			it.listedOnce = true
			// On the not-modified path the cached listing is exact: the
			// server certified the version is unchanged. Reachability is
			// still re-sampled below on every invocation.
			members = it.curMembers
		}
	}
	return it.assembleState(members), nil
}

// assembleState turns a membership map into the invocation's pre-state.
// Membership maps (it.first, it.curMembers, a fresh quorum read) are
// never mutated in place, so the state aliases them rather than copying
// — the Recorder clones on record. Reachability is re-sampled every
// invocation — including on lease-served reads, where it is the only
// fresh observation — but once per distinct node: it is a link property,
// so members sharing a node share the answer within one sample.
func (it *Iterator) assembleState(members map[spec.ElemID]bool) spec.State {
	sample := make(map[netsim.NodeID]bool, 8)
	for id := range members {
		node := it.refs[id].Node
		if _, ok := sample[node]; !ok {
			sample[node] = it.client.NodeReachable(node)
		}
	}
	return spec.State{Members: members, Reach: it.expandReach(members, sample)}
}

// expandReach maps a per-node reachability sample down to per-member
// reachability. Successive invocations usually expand the same sample over
// the same membership; the identical result map is then reused rather than
// rebuilt — it is read-only once built (the Recorder clones, the kernel
// and prefetcher only read).
func (it *Iterator) expandReach(members map[spec.ElemID]bool, sample map[netsim.NodeID]bool) map[spec.ElemID]bool {
	if it.reachCache != nil && sameMapIdentity(it.reachMembers, members) && maps.Equal(it.reachNodes, sample) {
		return it.reachCache
	}
	reach := make(map[spec.ElemID]bool, len(members))
	for id := range members {
		if sample[it.refs[id].Node] {
			reach[id] = true
		}
	}
	it.reachMembers, it.reachNodes, it.reachCache = members, sample, reach
	return reach
}

// sameMapIdentity reports whether two maps are the same map value (share
// the same underlying storage), which the membership caching relies on.
func sameMapIdentity(a, b map[spec.ElemID]bool) bool {
	return a != nil && b != nil && reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// Next advances the iterator: it either yields the next element (true) or
// terminates (false). After false, Err distinguishes normal termination
// (nil) from the failure exception, a blocking timeout, or context
// cancellation.
func (it *Iterator) Next(ctx context.Context) bool {
	if it.done || it.closed {
		return false
	}
	for {
		if err := ctx.Err(); err != nil {
			it.terminate(err)
			return false
		}
		if err := it.drainIngest(); err != nil {
			it.terminate(fmt.Errorf("%w: read membership: %v", ErrFailure, err))
			return false
		}
		if elem, ok := it.fastNext(); ok {
			it.wk.Invocations++
			pre := spec.State{Members: it.first}
			if it.fetch(ctx, pre, elem, func() []repo.Ref { return it.cursorCandidates(elem) }) {
				return true
			}
			if it.done {
				return false
			}
			continue
		}
		if it.opts.Recorder == nil && it.opts.Semantics.UsesSnapshot() && len(it.cursor) == 0 {
			if it.ingestActive() {
				// Every folded member is yielded but the opening listing is
				// still streaming: the kernel could only reach a terminal
				// decision about a prefix, which the terminal cases below wait
				// out anyway. Wait for the next partition directly instead of
				// paying a full kernel pass per arriving partition.
				if !it.waitIngest(ctx) {
					return false
				}
				continue
			}
			if len(it.yielded) >= len(it.first) {
				// The listing is complete and every snapshot member is
				// yielded (yielded ⊆ s_first always holds under snapshot
				// semantics, so equal sizes mean equal sets), which forces
				// stepSnapshot to Returned no matter what reachability this
				// invocation would sample. Conclude directly rather than
				// paying four O(members) scans to prove it.
				it.wk.Invocations++
				it.done = true
				return false
			}
		}
		pre, err := it.preState(ctx)
		if err != nil {
			switch {
			case ctx.Err() != nil:
				it.terminate(ctx.Err())
			case it.opts.Semantics == Optimistic && netsim.IsFailure(err):
				// The directory itself is unreachable; optimistically wait
				// for repair.
				if !it.blockPause(ctx) {
					return false
				}
				continue
			case errors.Is(err, netsim.ErrDropped) && it.listFails < maxConsecutiveFetchFailures:
				// A dropped message is transient by definition (the link is
				// up); retry rather than report the failure exception.
				it.listFails++
				it.wk.FetchFailures++
				continue
			default:
				it.terminate(fmt.Errorf("%w: read membership: %v", ErrFailure, err))
			}
			return false
		}
		it.listFails = 0

		// s_first is read here, not hoisted above the loop: the first
		// non-empty fold may swap it.first for a pre-sized map.
		d := Step(it.opts.Semantics, spec.State{Members: it.first}, pre, it.yielded)
		it.wk.Invocations++
		switch d.Kind {
		case DecideYield:
			if it.fetch(ctx, pre, d.Elem, func() []repo.Ref { return it.fetchCandidates(pre, d.Elem) }) {
				return true
			}
			if it.done {
				return false
			}
			// Fetch raced with a mutation or a failure: re-observe the
			// world and decide again.
			continue

		case DecideReturn:
			if it.ingestActive() {
				// The drained partitions are exhausted but the opening
				// listing is still streaming in: the decision is about a
				// prefix, not the snapshot. Wait for more.
				if !it.waitIngest(ctx) {
					return false
				}
				continue
			}
			it.record(pre, spec.Returned, "", false)
			it.countSkipped(pre)
			it.done = true
			return false

		case DecideFail:
			if it.ingestActive() {
				if !it.waitIngest(ctx) {
					return false
				}
				continue
			}
			it.record(pre, spec.Failed, "", false)
			it.countSkipped(pre)
			it.terminate(fmt.Errorf("%w: %s: unreachable members remain", ErrFailure, it.opts.Semantics))
			return false

		case DecideBlock:
			it.record(pre, spec.Blocked, "", false)
			if !it.blockPause(ctx) {
				return false
			}
		}
	}
}

// fastNext is the incremental stepper: it produces exactly the kernel's
// decision without the O(members) scans, in the cases where that
// decision is provable cheaply — a snapshot-governed run with no
// conformance recorder whose member nodes are all reachable in this
// invocation's sample. Under those conditions yielded ⊆ reachable(
// s_first) and an unyielded member remains, so Step would yield the
// lexicographically smallest unyielded member: cursor[0]. Anything else
// — an unreachable node, an attached recorder, an exhausted cursor
// (terminal decision) — falls back to the full kernel.
func (it *Iterator) fastNext() (spec.ElemID, bool) {
	if it.opts.Recorder != nil || !it.opts.Semantics.UsesSnapshot() {
		return "", false
	}
	for len(it.cursor) > 0 && it.yielded[it.cursor[0]] {
		it.cursor = it.cursor[1:]
	}
	if len(it.cursor) == 0 {
		return "", false
	}
	// Reachability is still sampled fresh on every invocation, as the
	// spec demands — but per distinct node, not per member.
	for node := range it.nodes {
		if !it.client.NodeReachable(node) {
			return "", false
		}
	}
	return it.cursor[0], true
}

// prefetchWindow bounds how many candidates one prefetch replan hands
// the pipeline: enough to keep Inflight batches full several times
// over, small enough that building and sorting a plan never scales with
// the set — which is what keeps time-to-first-element (and the cost of
// each replan) independent of membership size.
func (it *Iterator) prefetchWindow() int {
	return it.opts.Fetch.Batch * it.opts.Fetch.Inflight * 4
}

// cursorCandidates is fetchCandidates for the fast path: the next
// prefetch window of unyielded members in cursor order (all reachable,
// or the fast path would not have engaged), elem first.
func (it *Iterator) cursorCandidates(elem spec.ElemID) []repo.Ref {
	limit := it.prefetchWindow()
	out := make([]repo.Ref, 0, limit)
	out = append(out, it.refs[elem])
	for _, id := range it.cursor {
		if len(out) >= limit {
			break
		}
		if id == elem || it.yielded[id] {
			continue
		}
		out = append(out, it.refs[id])
	}
	return out
}

// fetch retrieves the chosen element's object. It returns true when the
// iterator yielded; false means the caller should re-observe (or the
// iterator terminated — check it.done). candidates lists what the
// kernel could yield next, consulted lazily on a prefetch miss.
func (it *Iterator) fetch(ctx context.Context, pre spec.State, elem spec.ElemID, candidates func() []repo.Ref) bool {
	ref := it.refs[elem]
	var (
		obj repo.Object
		err error
	)
	fctx := it.traceCtx(ctx)
	if it.pf != nil {
		obj, err = it.pf.fetch(fctx, ref, candidates)
	} else {
		obj, err = it.client.Get(fctx, ref)
	}
	switch {
	case err == nil:
		it.yield(pre, ref, Element{Ref: ref, Data: obj.Data, Attrs: obj.Attrs, Stale: obj.Tombstone})
		return true

	case errors.Is(err, repo.ErrNotFound):
		it.fetchFails = 0
		switch it.opts.Semantics {
		case Immutable, ImmutablePerRun, Snapshot:
			// The snapshot still lists the member but its data is gone —
			// Fig. 4's tolerated anomaly. Yield the identity as stale.
			it.yield(pre, ref, Element{Ref: ref, Stale: true})
			return true
		case Optimistic:
			// Concurrently deleted; the next membership read drops it.
			return false
		default:
			// Grow-only: a member's data vanished, so the grow-only
			// discipline was broken under us. Pessimistic failure.
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: member %q data missing: %v", ErrFailure, elem, err))
			return false
		}

	default:
		// Transport failure. The element may have become unreachable (the
		// kernel will see that next time) or the message was dropped (the
		// kernel will choose it again). Guard liveness on lossy links.
		it.fetchFails++
		it.wk.FetchFailures++
		if it.fetchFails >= maxConsecutiveFetchFailures && it.opts.Semantics != Optimistic {
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: fetching %q kept failing: %v", ErrFailure, elem, err))
		}
		return false
	}
}

// fetchCandidates lists what the kernel could yield after elem — up to
// a window of unyielded reachable members, elem first. The prefetcher
// batches them by node so later Next calls find their objects ready.
func (it *Iterator) fetchCandidates(pre spec.State, elem spec.ElemID) []repo.Ref {
	limit := it.prefetchWindow()
	out := make([]repo.Ref, 0, limit)
	out = append(out, it.refs[elem])
	for id := range pre.Members {
		if len(out) >= limit {
			break
		}
		if id == elem || it.yielded[id] || !pre.Reach[id] {
			continue
		}
		out = append(out, it.refs[id])
	}
	return out
}

func (it *Iterator) yield(pre spec.State, ref repo.Ref, e Element) {
	it.record(pre, spec.Suspended, spec.ElemID(ref.ID), true)
	it.yielded[spec.ElemID(ref.ID)] = true
	it.wk.Yielded++
	if e.Stale {
		it.wk.GhostsServed++
	}
	it.elem = e
	it.blockedFor = 0
	it.fetchFails = 0
}

// countSkipped records, at a terminal decision, the members of the
// governing membership that were never yielded: existent but unreachable
// (or ghost-degraded) — the paper's central weakness, observable only
// here because a weak `elements` run gives the caller no other signal.
func (it *Iterator) countSkipped(pre spec.State) {
	members := pre.Members
	if it.opts.Semantics.UsesSnapshot() {
		members = it.first
	}
	var skipped int64
	for id := range members {
		if !it.yielded[id] {
			skipped++
		}
	}
	it.wk.UnreachableSkipped += skipped
}

// blockPause sleeps one optimistic retry interval. It returns false when
// the iterator must stop (budget exhausted or context cancelled).
func (it *Iterator) blockPause(ctx context.Context) bool {
	it.blockedFor += it.opts.BlockRetry
	it.wk.Blocked += it.opts.BlockRetry
	if it.opts.MaxBlock > 0 && it.blockedFor > it.opts.MaxBlock {
		it.terminate(fmt.Errorf("%w: waited %v", ErrBlocked, it.opts.MaxBlock))
		return false
	}
	// Logical-time runs (zero scale) still pause briefly so the
	// environment can make progress.
	if !it.scale.SleepCtxFloor(ctx, it.opts.BlockRetry, 100*time.Microsecond) {
		it.terminate(ctx.Err())
		return false
	}
	return true
}

func (it *Iterator) record(pre spec.State, outcome spec.Outcome, yield spec.ElemID, hasYield bool) {
	if it.opts.Recorder != nil {
		it.opts.Recorder.Record(pre, outcome, yield, hasYield)
	}
}

func (it *Iterator) terminate(err error) {
	it.done = true
	if it.err == nil {
		it.err = err
	}
}

// Element returns the element yielded by the last successful Next.
func (it *Iterator) Element() Element { return it.elem }

// Err reports how the run ended: nil for normal termination (`returns`),
// ErrFailure for the failure exception (`fails`), ErrBlocked for an
// exhausted optimistic budget, or the context's error.
func (it *Iterator) Err() error { return it.err }

// Yielded reports how many elements the run has yielded.
func (it *Iterator) Yielded() int { return len(it.yielded) }

// TraceID reports the run's trace id, or zero when the run was untraced
// or sampled out.
func (it *Iterator) TraceID() obs.TraceID { return it.span.TraceID() }

// Weakness returns the run's weakness report. It is complete after
// Close; before that it reflects the run so far.
func (it *Iterator) Weakness() obs.WeaknessReport { return it.wk }

// finishObs completes the run's weakness report and root span exactly
// once: outcome classification, snapshot age, prefetcher epoch retries,
// registry aggregation, span annotations.
func (it *Iterator) finishObs() {
	if it.obsDone {
		return
	}
	it.obsDone = true
	if it.pf != nil {
		it.wk.EpochRetries = it.pf.epochRetries.Load()
		it.wk.CacheHits = it.pf.cacheHits.Load()
		it.wk.CacheValidatedHits = it.pf.cacheValidated.Load()
		it.wk.ReplicaServed += it.pf.replicaServed.Load()
		if age := time.Duration(it.pf.replicaAgeMs.Load()) * time.Millisecond; age > it.wk.GhostAge {
			it.wk.GhostAge = age
		}
	}
	if it.ing != nil {
		// Scatter accounting accumulated by the stream goroutines.
		it.wk.ReplicaSkew += it.ing.replicaSkew.Load()
		it.wk.ReplicaServed += it.ing.replicaServed.Load()
		if age := time.Duration(it.ing.replicaAgeMs.Load()) * time.Millisecond; age > it.wk.GhostAge {
			it.wk.GhostAge = age
		}
	}
	if !it.startedAt.IsZero() {
		it.wk.Duration = time.Since(it.startedAt)
	}
	if !it.openedAt.IsZero() {
		it.wk.SnapshotAge = time.Since(it.openedAt)
	}
	switch {
	case it.wk.Outcome != "": // pre-classified (abandoned)
	case it.err == nil:
		it.wk.Outcome = "returns"
	case errors.Is(it.err, ErrFailure):
		it.wk.Outcome = "fails"
	case errors.Is(it.err, ErrBlocked):
		it.wk.Outcome = "blocked"
	default:
		it.wk.Outcome = "error"
	}
	if it.opts.Weakness != nil {
		it.opts.Weakness.Observe(it.wk)
	}
	if it.span != nil {
		it.span.SetInt("invocations", it.wk.Invocations)
		it.span.SetInt("yielded", it.wk.Yielded)
		it.span.SetInt("unreachableSkipped", it.wk.UnreachableSkipped)
		it.span.SetInt("ghostsServed", it.wk.GhostsServed)
		it.span.SetInt("duplicatesSuppressed", it.wk.DuplicatesSuppressed)
		it.span.SetInt("epochRetries", it.wk.EpochRetries)
		it.span.SetInt("cacheHits", it.wk.CacheHits)
		it.span.SetInt("cacheValidatedHits", it.wk.CacheValidatedHits)
		it.span.SetInt("listingSkew", it.wk.ListingSkew)
		it.span.SetInt("partitionSkew", it.wk.PartitionSkew)
		it.span.SetInt("replicaSkew", it.wk.ReplicaSkew)
		it.span.SetInt("replicaServed", it.wk.ReplicaServed)
		it.span.SetInt("ghostAgeMs", int64(it.wk.GhostAge/time.Millisecond))
		it.span.SetAttr("outcome", it.wk.Outcome)
		it.span.End()
	}
}

// Close releases the run's lock, pin, or grow window. It is idempotent.
func (it *Iterator) Close(ctx context.Context) error {
	if it.closed {
		return nil
	}
	if !it.done && it.err == nil {
		// Closed before the run terminated: the caller walked away.
		it.wk.Outcome = "abandoned"
	}
	it.closed = true
	it.done = true
	if it.ingCancel != nil {
		it.ingCancel()
	}
	if it.pf != nil {
		it.pf.close()
	}
	// Release rides the run's trace so the closing unpin/unlock RPCs show
	// up as the trace's final spans; finishObs then seals the root span.
	it.release(it.traceCtx(ctx))
	it.finishObs()
	return nil
}
