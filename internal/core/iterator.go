package core

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"reflect"
	"time"

	"weaksets/internal/locksvc"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

// maxConsecutiveFetchFailures is a liveness guard: a pessimistic iterator
// whose element fetches keep failing on a lossy-but-reachable link retries
// (the element is still reachable, so the spec says yield), but after this
// many consecutive transport failures it gives up with ErrFailure rather
// than spin forever.
const maxConsecutiveFetchFailures = 64

// Iterator is one run of the elements iterator. It follows the rows
// pattern:
//
//	it, err := set.Elements(ctx)
//	...
//	for it.Next(ctx) {
//	    e := it.Element()
//	}
//	err = it.Err()        // nil on normal termination
//	_ = it.Close(ctx)     // releases locks/pins/ghost windows
//
// An Iterator is not safe for concurrent use: like the paper's iterators it
// is a control abstraction suspended and resumed by a single caller.
type Iterator struct {
	set    *Set
	client *repo.Client
	opts   Options
	scale  sim.TimeScale
	owner  string

	// Resources held for the run.
	lock      *locksvc.Client
	hasLock   bool
	pin       int64
	growToken int64
	released  bool

	// first is s_first for snapshot-based semantics.
	first map[spec.ElemID]bool
	// snapVer is the listing version governing s_first: the version the
	// pinned (or opening) membership read reported. It anchors the
	// cache's freshness check for snapshot-governed runs.
	snapVer uint64
	// refs maps every element ID this run has seen to its location.
	refs map[spec.ElemID]repo.Ref

	// pf is the batched prefetch pipeline; nil when Fetch.Disable is set.
	pf *prefetcher
	// curMembers/listVersion cache the last full membership read for the
	// current-state semantics; a version-gated List revalidates the cache
	// in one member-free round trip when the listing hasn't changed.
	curMembers  map[spec.ElemID]bool
	listVersion uint64
	// Reachability expansion cache: when the same membership map expands
	// the same per-node sample, the member-level map is identical, so it
	// is reused instead of rebuilt (it is read-only once built). The
	// per-node sample itself is still taken fresh every invocation.
	reachMembers map[spec.ElemID]bool
	reachNodes   map[netsim.NodeID]bool
	reachCache   map[spec.ElemID]bool

	yielded    map[spec.ElemID]bool
	blockedFor time.Duration
	fetchFails int
	listFails  int

	// Observability: the run's root span (nil when untraced/unsampled),
	// its weakness report under construction, and the snapshot capture
	// time that turns into SnapshotAge on close.
	span     *obs.Span
	wk       obs.WeaknessReport
	openedAt time.Time
	obsDone  bool

	elem   Element
	err    error
	done   bool
	closed bool
}

func lockName(coll string) string { return "coll/" + coll }

// setup acquires the per-run resources and, for snapshot-based semantics,
// s_first.
func (it *Iterator) setup(ctx context.Context) error {
	s := it.set
	switch it.opts.Semantics {
	case ImmutablePerRun:
		it.lock = s.lockClient(it.owner)
		if _, err := it.lock.Acquire(ctx, it.opts.LockServer, lockName(s.name), locksvc.Read, it.opts.LockTTL); err != nil {
			return fmt.Errorf("acquire read lock: %w", err)
		}
		it.hasLock = true
	case Snapshot:
		pin, err := it.client.Pin(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("pin snapshot: %w", err)
		}
		it.pin = pin
	case GrowOnlyPerRun:
		token, err := it.client.BeginGrow(ctx, s.dir, s.name)
		if err != nil {
			return fmt.Errorf("open grow window: %w", err)
		}
		it.growToken = token
	}

	if it.opts.Semantics.UsesSnapshot() {
		var (
			members []repo.Ref
			version uint64
			err     error
		)
		if it.pin != 0 {
			members, version, err = it.client.ListPinned(ctx, s.dir, s.name, it.pin)
		} else {
			members, version, err = it.client.List(ctx, s.dir, s.name)
		}
		if err != nil {
			return fmt.Errorf("read s_first: %w", err)
		}
		it.snapVer = version
		it.first = make(map[spec.ElemID]bool, len(members))
		for _, ref := range members {
			id := spec.ElemID(ref.ID)
			it.first[id] = true
			it.refs[id] = ref
		}
		it.openedAt = time.Now()
	}
	return nil
}

// traceCtx stamps the run's span context onto ctx so downstream RPCs
// join the trace. On an untraced run it returns ctx unchanged.
func (it *Iterator) traceCtx(ctx context.Context) context.Context {
	if it.span == nil {
		return ctx
	}
	return obs.ContextWithSpan(ctx, it.span.Context())
}

// release frees the run's resources exactly once, best-effort.
func (it *Iterator) release(ctx context.Context) {
	if it.released {
		return
	}
	it.released = true
	s := it.set
	if it.hasLock {
		_ = it.lock.Release(ctx, it.opts.LockServer, lockName(s.name))
		it.hasLock = false
	}
	if it.pin != 0 {
		_ = it.client.Unpin(ctx, s.dir, s.name, it.pin)
		it.pin = 0
	}
	if it.growToken != 0 {
		_, _ = it.client.EndGrow(ctx, s.dir, s.name, it.growToken)
		it.growToken = 0
	}
}

// preState assembles the invocation's pre-state: membership (s_first for
// snapshot semantics, a fresh read otherwise) plus the reachability of each
// member judged from the client's node.
func (it *Iterator) preState(ctx context.Context) (spec.State, error) {
	members := it.first
	if !it.opts.Semantics.UsesSnapshot() {
		lctx, lsp := it.opts.Tracer.StartSpan(it.traceCtx(ctx), "iter.list")
		defer lsp.End()
		ctx = lctx
		if it.opts.Quorum.enabled() {
			refs, _, err := readQuorum(ctx, it.client, it.opts.Quorum, it.set.name)
			if err != nil {
				return spec.State{}, err
			}
			members = make(map[spec.ElemID]bool, len(refs))
			for _, ref := range refs {
				id := spec.ElemID(ref.ID)
				members[id] = true
				it.refs[id] = ref
			}
		} else {
			refs, version, notModified, err := it.client.ListIfNew(ctx, it.set.dir, it.set.name, it.listVersion)
			if err != nil {
				return spec.State{}, err
			}
			if !notModified {
				if it.listVersion != 0 && version != it.listVersion {
					// The listing changed under the run: membership skew the
					// caller can never distinguish from a slow iteration.
					it.wk.ListingSkew++
				}
				it.listVersion = version
				it.curMembers = make(map[spec.ElemID]bool, len(refs))
				for _, ref := range refs {
					id := spec.ElemID(ref.ID)
					it.curMembers[id] = true
					it.refs[id] = ref
					if it.yielded[id] {
						// Re-listed but already yielded this run: the "no
						// duplicates" obligation suppresses it.
						it.wk.DuplicatesSuppressed++
					}
				}
			}
			// On the not-modified path the cached listing is exact: the
			// server certified the version is unchanged. Reachability is
			// still re-sampled below on every invocation.
			members = it.curMembers
		}
	}
	// Membership maps (it.first, it.curMembers, a fresh quorum read) are
	// never mutated in place, so the state aliases them rather than copying
	// — the Recorder clones on record. Reachability is re-sampled every
	// invocation, but once per distinct node: it is a link property, so
	// members sharing a node share the answer within one sample.
	sample := make(map[netsim.NodeID]bool, 8)
	for id := range members {
		node := it.refs[id].Node
		if _, ok := sample[node]; !ok {
			sample[node] = it.client.NodeReachable(node)
		}
	}
	return spec.State{Members: members, Reach: it.expandReach(members, sample)}, nil
}

// expandReach maps a per-node reachability sample down to per-member
// reachability. Successive invocations usually expand the same sample over
// the same membership; the identical result map is then reused rather than
// rebuilt — it is read-only once built (the Recorder clones, the kernel
// and prefetcher only read).
func (it *Iterator) expandReach(members map[spec.ElemID]bool, sample map[netsim.NodeID]bool) map[spec.ElemID]bool {
	if it.reachCache != nil && sameMapIdentity(it.reachMembers, members) && maps.Equal(it.reachNodes, sample) {
		return it.reachCache
	}
	reach := make(map[spec.ElemID]bool, len(members))
	for id := range members {
		if sample[it.refs[id].Node] {
			reach[id] = true
		}
	}
	it.reachMembers, it.reachNodes, it.reachCache = members, sample, reach
	return reach
}

// sameMapIdentity reports whether two maps are the same map value (share
// the same underlying storage), which the membership caching relies on.
func sameMapIdentity(a, b map[spec.ElemID]bool) bool {
	return a != nil && b != nil && reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// Next advances the iterator: it either yields the next element (true) or
// terminates (false). After false, Err distinguishes normal termination
// (nil) from the failure exception, a blocking timeout, or context
// cancellation.
func (it *Iterator) Next(ctx context.Context) bool {
	if it.done || it.closed {
		return false
	}
	firstState := spec.State{Members: it.first}
	for {
		if err := ctx.Err(); err != nil {
			it.terminate(err)
			return false
		}
		pre, err := it.preState(ctx)
		if err != nil {
			switch {
			case ctx.Err() != nil:
				it.terminate(ctx.Err())
			case it.opts.Semantics == Optimistic && netsim.IsFailure(err):
				// The directory itself is unreachable; optimistically wait
				// for repair.
				if !it.blockPause(ctx) {
					return false
				}
				continue
			case errors.Is(err, netsim.ErrDropped) && it.listFails < maxConsecutiveFetchFailures:
				// A dropped message is transient by definition (the link is
				// up); retry rather than report the failure exception.
				it.listFails++
				it.wk.FetchFailures++
				continue
			default:
				it.terminate(fmt.Errorf("%w: read membership: %v", ErrFailure, err))
			}
			return false
		}
		it.listFails = 0

		d := Step(it.opts.Semantics, firstState, pre, it.yielded)
		it.wk.Invocations++
		switch d.Kind {
		case DecideYield:
			if it.fetch(ctx, pre, d.Elem) {
				return true
			}
			if it.done {
				return false
			}
			// Fetch raced with a mutation or a failure: re-observe the
			// world and decide again.
			continue

		case DecideReturn:
			it.record(pre, spec.Returned, "", false)
			it.countSkipped(pre)
			it.done = true
			return false

		case DecideFail:
			it.record(pre, spec.Failed, "", false)
			it.countSkipped(pre)
			it.terminate(fmt.Errorf("%w: %s: unreachable members remain", ErrFailure, it.opts.Semantics))
			return false

		case DecideBlock:
			it.record(pre, spec.Blocked, "", false)
			if !it.blockPause(ctx) {
				return false
			}
		}
	}
}

// fetch retrieves the chosen element's object. It returns true when the
// iterator yielded; false means the caller should re-observe (or the
// iterator terminated — check it.done).
func (it *Iterator) fetch(ctx context.Context, pre spec.State, elem spec.ElemID) bool {
	ref := it.refs[elem]
	var (
		obj repo.Object
		err error
	)
	fctx := it.traceCtx(ctx)
	if it.pf != nil {
		obj, err = it.pf.fetch(fctx, ref, func() []repo.Ref { return it.fetchCandidates(pre, elem) })
	} else {
		obj, err = it.client.Get(fctx, ref)
	}
	switch {
	case err == nil:
		it.yield(pre, ref, Element{Ref: ref, Data: obj.Data, Attrs: obj.Attrs, Stale: obj.Tombstone})
		return true

	case errors.Is(err, repo.ErrNotFound):
		it.fetchFails = 0
		switch it.opts.Semantics {
		case Immutable, ImmutablePerRun, Snapshot:
			// The snapshot still lists the member but its data is gone —
			// Fig. 4's tolerated anomaly. Yield the identity as stale.
			it.yield(pre, ref, Element{Ref: ref, Stale: true})
			return true
		case Optimistic:
			// Concurrently deleted; the next membership read drops it.
			return false
		default:
			// Grow-only: a member's data vanished, so the grow-only
			// discipline was broken under us. Pessimistic failure.
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: member %q data missing: %v", ErrFailure, elem, err))
			return false
		}

	default:
		// Transport failure. The element may have become unreachable (the
		// kernel will see that next time) or the message was dropped (the
		// kernel will choose it again). Guard liveness on lossy links.
		it.fetchFails++
		it.wk.FetchFailures++
		if it.fetchFails >= maxConsecutiveFetchFailures && it.opts.Semantics != Optimistic {
			it.record(pre, spec.Failed, "", false)
			it.terminate(fmt.Errorf("%w: fetching %q kept failing: %v", ErrFailure, elem, err))
		}
		return false
	}
}

// fetchCandidates lists everything the kernel could yield after elem —
// the unyielded reachable members — with elem first. The prefetcher
// batches them by node so later Next calls find their objects ready.
func (it *Iterator) fetchCandidates(pre spec.State, elem spec.ElemID) []repo.Ref {
	out := make([]repo.Ref, 0, len(pre.Members))
	out = append(out, it.refs[elem])
	for id := range pre.Members {
		if id == elem || it.yielded[id] || !pre.Reach[id] {
			continue
		}
		out = append(out, it.refs[id])
	}
	return out
}

func (it *Iterator) yield(pre spec.State, ref repo.Ref, e Element) {
	it.record(pre, spec.Suspended, spec.ElemID(ref.ID), true)
	it.yielded[spec.ElemID(ref.ID)] = true
	it.wk.Yielded++
	if e.Stale {
		it.wk.GhostsServed++
	}
	it.elem = e
	it.blockedFor = 0
	it.fetchFails = 0
}

// countSkipped records, at a terminal decision, the members of the
// governing membership that were never yielded: existent but unreachable
// (or ghost-degraded) — the paper's central weakness, observable only
// here because a weak `elements` run gives the caller no other signal.
func (it *Iterator) countSkipped(pre spec.State) {
	members := pre.Members
	if it.opts.Semantics.UsesSnapshot() {
		members = it.first
	}
	var skipped int64
	for id := range members {
		if !it.yielded[id] {
			skipped++
		}
	}
	it.wk.UnreachableSkipped += skipped
}

// blockPause sleeps one optimistic retry interval. It returns false when
// the iterator must stop (budget exhausted or context cancelled).
func (it *Iterator) blockPause(ctx context.Context) bool {
	it.blockedFor += it.opts.BlockRetry
	it.wk.Blocked += it.opts.BlockRetry
	if it.opts.MaxBlock > 0 && it.blockedFor > it.opts.MaxBlock {
		it.terminate(fmt.Errorf("%w: waited %v", ErrBlocked, it.opts.MaxBlock))
		return false
	}
	// Logical-time runs (zero scale) still pause briefly so the
	// environment can make progress.
	if !it.scale.SleepCtxFloor(ctx, it.opts.BlockRetry, 100*time.Microsecond) {
		it.terminate(ctx.Err())
		return false
	}
	return true
}

func (it *Iterator) record(pre spec.State, outcome spec.Outcome, yield spec.ElemID, hasYield bool) {
	if it.opts.Recorder != nil {
		it.opts.Recorder.Record(pre, outcome, yield, hasYield)
	}
}

func (it *Iterator) terminate(err error) {
	it.done = true
	if it.err == nil {
		it.err = err
	}
}

// Element returns the element yielded by the last successful Next.
func (it *Iterator) Element() Element { return it.elem }

// Err reports how the run ended: nil for normal termination (`returns`),
// ErrFailure for the failure exception (`fails`), ErrBlocked for an
// exhausted optimistic budget, or the context's error.
func (it *Iterator) Err() error { return it.err }

// Yielded reports how many elements the run has yielded.
func (it *Iterator) Yielded() int { return len(it.yielded) }

// TraceID reports the run's trace id, or zero when the run was untraced
// or sampled out.
func (it *Iterator) TraceID() obs.TraceID { return it.span.TraceID() }

// Weakness returns the run's weakness report. It is complete after
// Close; before that it reflects the run so far.
func (it *Iterator) Weakness() obs.WeaknessReport { return it.wk }

// finishObs completes the run's weakness report and root span exactly
// once: outcome classification, snapshot age, prefetcher epoch retries,
// registry aggregation, span annotations.
func (it *Iterator) finishObs() {
	if it.obsDone {
		return
	}
	it.obsDone = true
	if it.pf != nil {
		it.wk.EpochRetries = it.pf.epochRetries.Load()
		it.wk.CacheHits = it.pf.cacheHits.Load()
		it.wk.CacheValidatedHits = it.pf.cacheValidated.Load()
	}
	if !it.openedAt.IsZero() {
		it.wk.SnapshotAge = time.Since(it.openedAt)
	}
	switch {
	case it.wk.Outcome != "": // pre-classified (abandoned)
	case it.err == nil:
		it.wk.Outcome = "returns"
	case errors.Is(it.err, ErrFailure):
		it.wk.Outcome = "fails"
	case errors.Is(it.err, ErrBlocked):
		it.wk.Outcome = "blocked"
	default:
		it.wk.Outcome = "error"
	}
	if it.opts.Weakness != nil {
		it.opts.Weakness.Observe(it.wk)
	}
	if it.span != nil {
		it.span.SetInt("invocations", it.wk.Invocations)
		it.span.SetInt("yielded", it.wk.Yielded)
		it.span.SetInt("unreachableSkipped", it.wk.UnreachableSkipped)
		it.span.SetInt("ghostsServed", it.wk.GhostsServed)
		it.span.SetInt("duplicatesSuppressed", it.wk.DuplicatesSuppressed)
		it.span.SetInt("epochRetries", it.wk.EpochRetries)
		it.span.SetInt("cacheHits", it.wk.CacheHits)
		it.span.SetInt("cacheValidatedHits", it.wk.CacheValidatedHits)
		it.span.SetInt("listingSkew", it.wk.ListingSkew)
		it.span.SetAttr("outcome", it.wk.Outcome)
		it.span.End()
	}
}

// Close releases the run's lock, pin, or grow window. It is idempotent.
func (it *Iterator) Close(ctx context.Context) error {
	if it.closed {
		return nil
	}
	if !it.done && it.err == nil {
		// Closed before the run terminated: the caller walked away.
		it.wk.Outcome = "abandoned"
	}
	it.closed = true
	it.done = true
	if it.pf != nil {
		it.pf.close()
	}
	// Release rides the run's trace so the closing unpin/unlock RPCs show
	// up as the trace's final spans; finishObs then seals the root span.
	it.release(it.traceCtx(ctx))
	it.finishObs()
	return nil
}
