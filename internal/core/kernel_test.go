package core

import (
	"errors"
	"fmt"
	"testing"

	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

func mkState(members, reach []spec.ElemID) spec.State {
	return spec.NewState(members, reach)
}

func ids(ss ...string) []spec.ElemID {
	out := make([]spec.ElemID, len(ss))
	for i, s := range ss {
		out[i] = spec.ElemID(s)
	}
	return out
}

func yset(ss ...string) map[spec.ElemID]bool {
	out := make(map[spec.ElemID]bool, len(ss))
	for _, s := range ss {
		out[spec.ElemID(s)] = true
	}
	return out
}

func TestStepSnapshotBranches(t *testing.T) {
	first := mkState(ids("a", "b", "c"), nil)
	tests := []struct {
		name     string
		pre      spec.State
		yielded  map[spec.ElemID]bool
		want     DecisionKind
		wantElem spec.ElemID
	}{
		{
			name:     "yields smallest reachable unyielded",
			pre:      mkState(ids("a", "b", "c"), ids("a", "b", "c")),
			yielded:  yset(),
			want:     DecideYield,
			wantElem: "a",
		},
		{
			name:     "skips unreachable",
			pre:      mkState(ids("a", "b", "c"), ids("b", "c")),
			yielded:  yset(),
			want:     DecideYield,
			wantElem: "b",
		},
		{
			name:    "fails when reachable exhausted but first not covered",
			pre:     mkState(ids("a", "b", "c"), ids("a")),
			yielded: yset("a"),
			want:    DecideFail,
		},
		{
			name:    "returns when everything yielded",
			pre:     mkState(ids("a", "b", "c"), ids("a", "b", "c")),
			yielded: yset("a", "b", "c"),
			want:    DecideReturn,
		},
		{
			name:    "ignores additions outside first",
			pre:     mkState(ids("a", "b", "c", "d"), ids("a", "b", "c", "d")),
			yielded: yset("a", "b", "c"),
			want:    DecideReturn,
		},
	}
	for _, sem := range []Semantics{Immutable, ImmutablePerRun, Snapshot} {
		for _, tt := range tests {
			t.Run(fmt.Sprintf("%s/%s", sem, tt.name), func(t *testing.T) {
				d := Step(sem, first, tt.pre, tt.yielded)
				if d.Kind != tt.want {
					t.Fatalf("kind = %s, want %s", d.Kind, tt.want)
				}
				if tt.want == DecideYield && d.Elem != tt.wantElem {
					t.Fatalf("elem = %q, want %q", d.Elem, tt.wantElem)
				}
			})
		}
	}
}

func TestStepGrowOnlyBranches(t *testing.T) {
	first := mkState(nil, nil) // unused by grow-only
	tests := []struct {
		name     string
		pre      spec.State
		yielded  map[spec.ElemID]bool
		want     DecisionKind
		wantElem spec.ElemID
	}{
		{
			name:     "yields from current state including additions",
			pre:      mkState(ids("a", "b"), ids("a", "b")),
			yielded:  yset("a"),
			want:     DecideYield,
			wantElem: "b",
		},
		{
			name:    "returns only when current state covered",
			pre:     mkState(ids("a"), ids("a")),
			yielded: yset("a"),
			want:    DecideReturn,
		},
		{
			name:    "fails when unreachable members remain",
			pre:     mkState(ids("a", "b"), ids("a")),
			yielded: yset("a"),
			want:    DecideFail,
		},
		{
			name:    "fails fast with nothing yielded",
			pre:     mkState(ids("a"), nil),
			yielded: yset(),
			want:    DecideFail,
		},
	}
	for _, sem := range []Semantics{GrowOnly, GrowOnlyPerRun} {
		for _, tt := range tests {
			t.Run(fmt.Sprintf("%s/%s", sem, tt.name), func(t *testing.T) {
				d := Step(sem, first, tt.pre, tt.yielded)
				if d.Kind != tt.want {
					t.Fatalf("kind = %s, want %s", d.Kind, tt.want)
				}
				if tt.want == DecideYield && d.Elem != tt.wantElem {
					t.Fatalf("elem = %q, want %q", d.Elem, tt.wantElem)
				}
			})
		}
	}
}

func TestStepOptimisticBranches(t *testing.T) {
	first := mkState(nil, nil)
	tests := []struct {
		name     string
		pre      spec.State
		yielded  map[spec.ElemID]bool
		want     DecisionKind
		wantElem spec.ElemID
	}{
		{
			name:     "yields reachable",
			pre:      mkState(ids("a", "b"), ids("a", "b")),
			yielded:  yset(),
			want:     DecideYield,
			wantElem: "a",
		},
		{
			name:    "blocks instead of failing",
			pre:     mkState(ids("a", "b"), ids("a")),
			yielded: yset("a"),
			want:    DecideBlock,
		},
		{
			name:    "returns when covered",
			pre:     mkState(ids("a"), ids("a")),
			yielded: yset("a"),
			want:    DecideReturn,
		},
		{
			name:    "returns even after deletions shrink the set",
			pre:     mkState(ids("a"), ids("a")),
			yielded: yset("a", "b", "c"),
			want:    DecideReturn,
		},
		{
			name:     "sees additions",
			pre:      mkState(ids("a", "z"), ids("a", "z")),
			yielded:  yset("a"),
			want:     DecideYield,
			wantElem: "z",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := Step(Optimistic, first, tt.pre, tt.yielded)
			if d.Kind != tt.want {
				t.Fatalf("kind = %s, want %s", d.Kind, tt.want)
			}
			if tt.want == DecideYield && d.Elem != tt.wantElem {
				t.Fatalf("elem = %q, want %q", d.Elem, tt.wantElem)
			}
		})
	}
}

func TestStepInvalidSemantics(t *testing.T) {
	d := Step(Semantics(99), mkState(nil, nil), mkState(ids("a"), ids("a")), yset())
	if d.Kind != DecideFail {
		t.Fatalf("invalid semantics decided %s, want fail", d.Kind)
	}
}

func TestStepEmptySet(t *testing.T) {
	empty := mkState(nil, nil)
	for _, sem := range AllSemantics() {
		if d := Step(sem, empty, empty, yset()); d.Kind != DecideReturn {
			t.Errorf("%s on empty set decided %s, want return", sem, d.Kind)
		}
	}
}

func TestStepDeterminism(t *testing.T) {
	pre := mkState(ids("c", "a", "b"), ids("c", "a", "b"))
	for i := 0; i < 10; i++ {
		d := Step(Optimistic, mkState(nil, nil), pre, yset())
		if d.Elem != "a" {
			t.Fatalf("nondeterministic pick: %q", d.Elem)
		}
	}
}

func TestSemanticsMetadata(t *testing.T) {
	tests := []struct {
		sem        Semantics
		fig        spec.Figure
		constraint spec.Constraint
		snapshot   bool
	}{
		{Immutable, spec.Fig3, spec.ConstraintImmutable, true},
		{ImmutablePerRun, spec.Fig3, spec.ConstraintImmutablePerRun, true},
		{Snapshot, spec.Fig4, spec.ConstraintTrue, true},
		{GrowOnly, spec.Fig5, spec.ConstraintGrowOnly, false},
		{GrowOnlyPerRun, spec.Fig5, spec.ConstraintGrowOnlyPerRun, false},
		{Optimistic, spec.Fig6, spec.ConstraintTrue, false},
	}
	for _, tt := range tests {
		if got := tt.sem.Figure(); got != tt.fig {
			t.Errorf("%s.Figure() = %s, want %s", tt.sem, got, tt.fig)
		}
		if got := tt.sem.Constraint(); got != tt.constraint {
			t.Errorf("%s.Constraint() = %s, want %s", tt.sem, got, tt.constraint)
		}
		if got := tt.sem.UsesSnapshot(); got != tt.snapshot {
			t.Errorf("%s.UsesSnapshot() = %v, want %v", tt.sem, got, tt.snapshot)
		}
		if !tt.sem.Valid() {
			t.Errorf("%s.Valid() = false", tt.sem)
		}
	}
	if Semantics(0).Valid() || Semantics(99).Valid() {
		t.Error("invalid semantics claimed valid")
	}
	if len(AllSemantics()) != 6 {
		t.Errorf("AllSemantics() = %v", AllSemantics())
	}
}

// TestModelConformance is the central property test: for many random
// environments, a model run of each semantics — under the environment
// discipline its constraint clause demands — must satisfy its own figure's
// ensures clause.
func TestModelConformance(t *testing.T) {
	const seeds = 300
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				env := spec.NewEnv(sim.NewRand(seed), 8, sem.Constraint())
				run, _ := RunModel(sem, env, ModelConfig{
					MaxSteps:        150,
					HealAfterBlocks: 3,
					FreezeAfter:     60,
				})
				if err := spec.CheckRun(sem.Figure(), run); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := spec.CheckRunConstraint(sem.Constraint(), run); err != nil {
					t.Fatalf("seed %d: environment broke discipline: %v", seed, err)
				}
			}
		})
	}
}

// TestModelTermination checks that under a frozen environment with repairs
// every semantics eventually terminates, and pessimistic semantics
// terminate even without repairs (by failing).
func TestModelTermination(t *testing.T) {
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				env := spec.NewEnv(sim.NewRand(seed), 6, sem.Constraint())
				run, terminated := RunModel(sem, env, ModelConfig{
					MaxSteps:        200,
					HealAfterBlocks: 2,
					FreezeAfter:     50,
				})
				if !terminated {
					t.Fatalf("seed %d: run did not terminate; %d invocations", seed, len(run.Invocations))
				}
			}
		})
	}
}

// TestOptimisticNeverFails checks the paper's Fig. 6 claim directly: the
// optimistic iterator has no fails outcome, under any environment.
func TestOptimisticNeverFails(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		env := spec.NewEnv(sim.NewRand(seed), 10, spec.ConstraintTrue)
		run, _ := RunModel(Optimistic, env, ModelConfig{MaxSteps: 120, HealAfterBlocks: -1, FreezeAfter: -1})
		for i, inv := range run.Invocations {
			if inv.Outcome == spec.Failed {
				t.Fatalf("seed %d: optimistic failed at invocation %d", seed, i)
			}
		}
	}
}

// TestYieldedAlwaysMemberSomewhere checks Fig. 6's guarantee: "any element
// yielded must actually be in the set, for some state of the set between
// the first-state and last-state" — here, in the very pre-state it was
// yielded from.
func TestYieldedAlwaysMemberSomewhere(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		env := spec.NewEnv(sim.NewRand(seed), 10, spec.ConstraintTrue)
		run, _ := RunModel(Optimistic, env, ModelConfig{MaxSteps: 120, HealAfterBlocks: 2, FreezeAfter: -1})
		for i, inv := range run.Invocations {
			if inv.HasYield && !inv.Pre.Members[inv.Yield] {
				t.Fatalf("seed %d: invocation %d yielded non-member %q", seed, i, inv.Yield)
			}
		}
	}
}

// TestSnapshotNeverYieldsOutsideFirst checks Fig. 4: nothing outside
// s_first is ever yielded, no matter how the set mutates.
func TestSnapshotNeverYieldsOutsideFirst(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		env := spec.NewEnv(sim.NewRand(seed), 10, spec.ConstraintTrue)
		run, _ := RunModel(Snapshot, env, ModelConfig{MaxSteps: 120, HealAfterBlocks: 2, FreezeAfter: -1})
		first := run.First().Members
		for i, inv := range run.Invocations {
			if inv.HasYield && !first[inv.Yield] {
				t.Fatalf("seed %d: invocation %d yielded %q outside s_first", seed, i, inv.Yield)
			}
		}
	}
}

// TestConformanceLattice spot-checks the strictness lattice the design
// space forms: under an immutable, fully-reachable environment every
// semantics happens to satisfy the weaker figures' ensures clauses, while
// under mutation the snapshot run violates Fig. 5 (it misses additions)
// and the grow-only run violates Fig. 4 (it yields additions).
func TestConformanceLattice(t *testing.T) {
	t.Run("benign env: immutable run satisfies all figures", func(t *testing.T) {
		env := spec.NewEnv(sim.NewRand(7), 6, spec.ConstraintImmutable)
		env.HealAll()
		env.PFlipReach = 0 // keep everything reachable
		run, _ := RunModel(Immutable, env, ModelConfig{MaxSteps: 100, HealAfterBlocks: 0, FreezeAfter: -1})
		for _, fig := range spec.Figures() {
			if err := spec.CheckRun(fig, run); err != nil {
				t.Errorf("figure %s rejected benign run: %v", fig, err)
			}
		}
	})

	t.Run("mutating env separates Fig4 and Fig5", func(t *testing.T) {
		// Build an environment that grows during the run.
		sawSeparation := false
		for seed := int64(0); seed < 100 && !sawSeparation; seed++ {
			env := spec.NewEnv(sim.NewRand(seed), 6, spec.ConstraintGrowOnly)
			env.HealAll()
			env.PFlipReach = 0
			env.PMutate = 0.8
			run, _ := RunModel(Snapshot, env, ModelConfig{MaxSteps: 60, HealAfterBlocks: 0, FreezeAfter: 20})
			errSnapshotAs5 := spec.CheckRun(spec.Fig5, run)
			if errSnapshotAs5 != nil && spec.CheckRun(spec.Fig4, run) == nil {
				sawSeparation = true
			}
		}
		if !sawSeparation {
			t.Fatal("no seed separated Fig4 from Fig5")
		}
	})
}

// TestRunModelDefaults exercises RunModel's parameter defaults.
func TestRunModelDefaults(t *testing.T) {
	env := spec.NewEnv(sim.NewRand(1), 4, spec.ConstraintImmutable)
	env.HealAll()
	env.PFlipReach = 0
	run, terminated := RunModel(Immutable, env, ModelConfig{HealAfterBlocks: -1, FreezeAfter: -1})
	if !terminated {
		t.Fatal("immutable healthy run did not terminate")
	}
	if err := spec.CheckRun(spec.Fig3, run); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionKindString(t *testing.T) {
	kinds := []DecisionKind{DecideYield, DecideReturn, DecideFail, DecideBlock}
	for _, k := range kinds {
		if k.String() == "decision(?)" || k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	if errors.Is(ErrFailure, ErrBlocked) || errors.Is(ErrBlocked, ErrClosed) {
		t.Fatal("sentinel errors alias each other")
	}
}

// TestExhaustiveConformance is the strongest verification in the suite:
// for every semantics, every world of up to 4 elements — every membership,
// every reachability pattern, every mutation/repair interleaving the
// constraint discipline allows, every kernel decision — satisfies the
// figure's ensures clause. Within this bound the kernels are *proved*
// conformant, not just sampled.
func TestExhaustiveConformance(t *testing.T) {
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			res, err := ExhaustiveConformance(sem, 4)
			if err != nil {
				t.Fatalf("after %d states / %d invocations: %v", res.States, res.Invocations, err)
			}
			if res.States < 1<<8 {
				t.Fatalf("suspiciously small state space: %+v", res)
			}
			t.Logf("%s: %d states, %d invocations checked", sem, res.States, res.Invocations)
		})
	}
}

func TestExhaustiveConformanceBounds(t *testing.T) {
	if _, err := ExhaustiveConformance(Optimistic, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ExhaustiveConformance(Optimistic, 9); err == nil {
		t.Fatal("n=9 accepted")
	}
	res, err := ExhaustiveConformance(Immutable, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 1 || res.States == 0 {
		t.Fatalf("res = %+v", res)
	}
}
