package experiments

import (
	"context"
	"fmt"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/fsim"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
	"weaksets/internal/workload"
)

// E5Prefetch reproduces the dynamic-sets motivation (§1.1): an `ls` over a
// remote directory, sequential-stat versus dynamic-set prefetching at
// several widths, over storage nodes at increasingly distant latencies so
// closest-first ordering matters.
//
// Expected shape: completion time divides by roughly min(width, files per
// node); first-entry latency for the dynamic set is one near-node round
// trip, far below strict ls's full scan.
func E5Prefetch(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	files := 64
	widths := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		files = 24
		widths = []int{1, 4, 16}
	}
	const storage = 8

	c, err := cluster.New(cluster.Config{
		StorageNodes: storage,
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// Node i sits (i+1)*5ms away one-way: a mix of near and far servers.
	for i, node := range c.Storage {
		c.Net.SetLinkLatency(cluster.HomeNode, node, sim.Fixed(time.Duration(i+1)*5*time.Millisecond))
	}

	ctx := context.Background()
	fs := fsim.New(c.Client)
	if err := fs.Mkdir(ctx, "", cluster.DirNode, "/"); err != nil {
		return nil, err
	}
	if err := fs.Mkdir(ctx, cluster.DirNode, cluster.DirNode, "/pub"); err != nil {
		return nil, err
	}
	for i := 0; i < files; i++ {
		p := fmt.Sprintf("/pub/doc%03d", i)
		if _, err := fs.WriteFile(ctx, cluster.DirNode, c.StorageFor(i), p, []byte("file body")); err != nil {
			return nil, err
		}
	}

	table := metrics.NewTable(
		"E5: distributed ls — sequential stat vs dynamic-set prefetch",
		"method", "files", "first entry", "total",
	)

	elapsed := cfg.Scale.Stopwatch()
	entries, err := fs.LsStrict(ctx, cluster.DirNode, "/pub")
	if err != nil {
		return nil, err
	}
	table.AddRow("ls-strict", itoa(len(entries)), "n/a (ordered)", metrics.FmtDur(elapsed()))

	for _, width := range widths {
		elapsed := cfg.Scale.Stopwatch()
		ds, err := fs.LsDyn(ctx, cluster.DirNode, "/pub", core.DynOptions{Width: width})
		if err != nil {
			return nil, err
		}
		var first time.Duration
		n := 0
		for ds.Next(ctx) {
			n++
			if n == 1 {
				first = elapsed()
			}
		}
		total := elapsed()
		_ = ds.Close()
		table.AddRow(fmt.Sprintf("ls-dynamic w=%d", width), itoa(n), metrics.FmtDur(first), metrics.FmtDur(total))
	}
	return table, nil
}

// E6Conformance builds the conformance matrix: each implemented semantics,
// run in the model harness under the environment discipline its constraint
// clause demands, is checked against the ensures clause of every
// specification figure. Paper claim (§3): the design space is a lattice of
// strictness — each implementation satisfies its own column, the benign
// corners coincide, and the mutating semantics separate.
func E6Conformance(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	seeds := 100
	if cfg.Quick {
		seeds = 30
	}
	figures := spec.Figures()
	headers := []string{"implementation \\ spec"}
	for _, f := range figures {
		headers = append(headers, f.String())
	}
	table := metrics.NewTable("E6: conformance matrix (pass rate over random model runs)", headers...)

	for _, sem := range core.AllSemantics() {
		row := []string{sem.String()}
		for _, fig := range figures {
			pass := 0
			for seed := 0; seed < seeds; seed++ {
				env := spec.NewEnv(sim.NewRand(cfg.Seed+int64(seed)), 8, sem.Constraint())
				run, _ := core.RunModel(sem, env, core.ModelConfig{
					MaxSteps:        150,
					HealAfterBlocks: 3,
					FreezeAfter:     60,
				})
				if spec.CheckRun(fig, run) == nil {
					pass++
				}
			}
			row = append(row, metrics.FmtPct(float64(pass)/float64(seeds)))
		}
		table.AddRow(row...)
	}
	return table, nil
}

// E7GrowRace measures the non-termination risk the paper flags for
// grow-only sets (§3.3): "since the set may grow faster than the iterator
// yields elements from it, an iterator satisfying this specification may
// never terminate ... in practice this behavior will not occur if objects
// are consumed more rapidly than they are produced."
//
// The consumer's per-element cost is ~2 RTT (membership read + fetch); the
// producer adds one element every cost/ratio. Expected shape: termination
// flips from certain to never as the production/consumption ratio crosses 1.
func E7GrowRace(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	ratios := []float64{0.5, 0.9, 1.1, 2.0}
	if cfg.Quick {
		ratios = []float64{0.5, 2.0}
	}
	const (
		oneWay     = 10 * time.Millisecond
		perElement = 4 * oneWay // list + get, each a round trip
		initial    = 4
		budget     = 6 * time.Second // virtual iteration budget
	)

	table := metrics.NewTable(
		"E7: grow-only termination race (budget 6s)",
		"produce/consume ratio", "add period", "yielded", "terminated",
	)
	for _, ratio := range ratios {
		w, err := buildWorld(worldSpec{
			seed:     cfg.Seed,
			scale:    cfg.Scale,
			latency:  sim.Fixed(oneWay),
			elements: initial,
		})
		if err != nil {
			return nil, err
		}
		addEvery := time.Duration(float64(perElement) / ratio)
		// The producer lives on the directory node so its own RPC latency
		// does not throttle the production rate.
		mut := workload.NewMutator(workload.MutatorConfig{
			Client:      w.c.ClientAt(w.corpus.Dir),
			Dir:         w.corpus.Dir,
			Coll:        w.corpus.Coll,
			AddEvery:    addEvery,
			ObjectNodes: []netsim.NodeID{w.corpus.Dir},
			ObjectSize:  32,
			IDPrefix:    fmt.Sprintf("grow-%.1f", ratio),
			Rand:        sim.NewRand(cfg.Seed + 7),
		})
		ctx, cancel := context.WithTimeout(context.Background(), w.scale.Real(budget))
		mut.Start(ctx)
		res := w.runSet(ctx, core.GrowOnly, core.Options{})
		cancel()
		mut.Stop()

		terminated := "yes"
		if res.err != nil {
			terminated = "no (" + fmtErr(res.err) + ")"
		}
		table.AddRow(metrics.FmtRatio(ratio), metrics.FmtDur(addEvery), itoa(res.yielded), terminated)
		w.close()
	}
	return table, nil
}

// E8Ghosts measures ghost-copy accounting for the grow-only-per-run
// semantics (§3.3): "we can create copies of any deleted objects and then
// garbage collect these 'ghost' copies upon termination."
//
// Expected shape: peak ghost count equals the number of deletions issued
// during the run; after Close everything is reclaimed.
func E8Ghosts(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	deleteCounts := []int{4, 16, 64}
	if cfg.Quick {
		deleteCounts = []int{4, 16}
	}

	table := metrics.NewTable(
		"E8: ghost copies during a grow-only run",
		"deletes during run", "peak ghosts", "ghosts after close", "members after close", "reclaimed data objects",
	)
	ctx := context.Background()
	for _, deletes := range deleteCounts {
		w, err := buildWorld(worldSpec{
			seed:     cfg.Seed,
			scale:    0, // logical time: this experiment counts, not times
			elements: deletes + 8,
		})
		if err != nil {
			return nil, err
		}
		s, err := w.set(core.GrowOnlyPerRun, core.Options{})
		if err != nil {
			w.close()
			return nil, err
		}
		it, err := s.Elements(ctx)
		if err != nil {
			w.close()
			return nil, err
		}
		// Yield a few, then delete `deletes` members mid-run.
		for i := 0; i < 3 && it.Next(ctx); i++ {
		}
		for i := 0; i < deletes; i++ {
			victim := w.corpus.Refs[len(w.corpus.Refs)-1-i]
			if err := w.c.Client.DeleteMember(ctx, w.corpus.Dir, w.corpus.Coll, victim); err != nil {
				w.close()
				return nil, err
			}
		}
		peak, err := w.c.Client.Stats(ctx, w.corpus.Dir, w.corpus.Coll)
		if err != nil {
			w.close()
			return nil, err
		}
		for it.Next(ctx) {
		}
		if err := it.Err(); err != nil {
			w.close()
			return nil, fmt.Errorf("e8 iterator: %w", err)
		}
		totalObjects := func() int {
			sum := 0
			for _, srv := range w.c.Servers {
				sum += srv.ObjectCount()
			}
			return sum
		}
		before := totalObjects()
		if err := it.Close(ctx); err != nil {
			w.close()
			return nil, err
		}
		// Object data is reclaimed asynchronously after the window closes.
		deadline := time.Now().Add(2 * time.Second)
		for totalObjects() > before-deletes && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		reclaimed := before - totalObjects()
		after, err := w.c.Client.Stats(ctx, w.corpus.Dir, w.corpus.Coll)
		if err != nil {
			w.close()
			return nil, err
		}
		table.AddRow(itoa(deletes), itoa(peak.Ghosts), itoa(after.Ghosts), itoa(after.Members), itoa(reclaimed))
		w.close()
	}
	return table, nil
}
