package experiments

import (
	"context"
	"fmt"
	"time"

	"weaksets/internal/core"
	"weaksets/internal/locksvc"
	"weaksets/internal/metrics"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
	"weaksets/internal/workload"
)

// E3LockCost measures how long a writer stalls while a reader holds an
// iterator open, for the locking semantics versus the lock-free ones.
// Paper claim (§3.1): "typical implementations would use locks to
// synchronize access to the set and its elements. Iterating over a large,
// geographically dispersed set of objects is time consuming, especially if
// a human is responsible for flow control" — i.e. writer stall grows with
// reader hold time under immutable-per-run, and stays flat for the ghost
// and optimistic designs.
func E3LockCost(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	holds := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	if cfg.Quick {
		holds = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	}
	const elements = 8

	table := metrics.NewTable(
		"E3: writer stall vs reader hold time",
		"reader hold", "reader semantics", "writer stall", "writer outcome",
	)
	ctx := context.Background()
	sems := []core.Semantics{core.ImmutablePerRun, core.GrowOnlyPerRun, core.Optimistic}
	for _, hold := range holds {
		for _, sem := range sems {
			w, err := buildWorld(worldSpec{
				seed:     cfg.Seed,
				scale:    cfg.Scale,
				latency:  sim.Fixed(5 * time.Millisecond),
				elements: elements,
			})
			if err != nil {
				return nil, err
			}
			stall, outcome, err := measureWriterStall(ctx, w, sem, hold)
			if err != nil {
				w.close()
				return nil, err
			}
			table.AddRow(metrics.FmtDur(hold), sem.String(), metrics.FmtDur(stall), outcome)
			w.close()
		}
	}
	return table, nil
}

// measureWriterStall opens a reader run, keeps it open for hold (virtual),
// and measures how long a concurrent writer waits before its mutation is
// applied, relative to an uncontended baseline measured first on the same
// world (the baseline subtraction cancels RPC latency and scheduler
// overhead, isolating the lock wait). Writers follow the discipline the
// semantics demands: under immutable-per-run they take the write lock
// first; under the weak semantics they mutate directly.
func measureWriterStall(ctx context.Context, w *world, sem core.Semantics, hold time.Duration) (time.Duration, string, error) {
	baseline, err := timedWrite(ctx, w, sem, "baseline-elem")
	if err != nil {
		return 0, "", err
	}

	s, err := w.set(sem, core.Options{LockTTL: hold + 10*time.Second})
	if err != nil {
		return 0, "", err
	}
	it, err := s.Elements(ctx)
	if err != nil {
		return 0, "", err
	}
	for it.Next(ctx) {
	}
	if err := it.Err(); err != nil {
		return 0, "", err
	}
	// The reader now "thinks" (human flow control) while the run stays
	// open, then closes it.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		w.scale.Sleep(hold)
		_ = it.Close(context.Background())
	}()

	contended, err := timedWrite(ctx, w, sem, "writer-elem")
	<-readerDone
	if err != nil {
		return 0, "", err
	}
	stall := contended - baseline
	if stall < 0 {
		stall = 0
	}
	return stall, "applied", nil
}

// timedWrite performs one discipline-respecting write and returns its
// virtual duration.
func timedWrite(ctx context.Context, w *world, sem core.Semantics, id repo.ObjectID) (time.Duration, error) {
	obj := repo.Object{ID: id, Data: []byte("w")}
	ref, err := w.c.Client.Put(ctx, w.c.Storage[0], obj)
	if err != nil {
		return 0, err
	}
	elapsed := w.scale.Stopwatch()
	if sem == core.ImmutablePerRun {
		lock := locksvc.NewClient(w.c.Bus, w.c.Client.Node(), "e3-writer-"+string(id))
		lock.RetryEvery = 5 * time.Millisecond
		if _, err := lock.Acquire(ctx, w.c.LockNode, "coll/"+w.corpus.Coll, locksvc.Write, 10*time.Second); err != nil {
			return 0, err
		}
		defer func() { _ = lock.Release(context.Background(), w.c.LockNode, "coll/"+w.corpus.Coll) }()
	}
	if err := w.c.Client.Add(ctx, w.corpus.Dir, w.corpus.Coll, ref); err != nil {
		return 0, err
	}
	return elapsed(), nil
}

// E4Staleness measures the anomalies each semantics exhibits under
// concurrent mutation: additions the run misses and elements yielded
// although already deleted. Paper claims: Fig. 4 "may miss elements added
// to s after the first invocation and/or have yielded elements that have
// been removed" (§3.2); Fig. 6 "we will not miss any additions ... we may
// still miss deletions, which means we may yield elements that are
// subsequently deleted" (§3.4).
//
// Expected shape: snapshot misses ~all additions made during its run;
// optimistic misses ~none; both weak semantics may show stale yields,
// the grow-only ghosts by design.
func E4Staleness(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	periods := []time.Duration{25 * time.Millisecond, 100 * time.Millisecond}
	if cfg.Quick {
		periods = []time.Duration{50 * time.Millisecond}
	}
	const elements = 32

	table := metrics.NewTable(
		"E4: anomalies under concurrent mutation",
		"mutation period", "semantics", "yielded", "adds during run", "missed adds", "deletes during run", "stale yields", "outcome",
	)
	ctx := context.Background()
	sems := []core.Semantics{core.Snapshot, core.GrowOnlyPerRun, core.Optimistic}
	for _, period := range periods {
		for _, sem := range sems {
			w, err := buildWorld(worldSpec{
				seed:     cfg.Seed,
				scale:    cfg.Scale,
				latency:  sim.Fixed(10 * time.Millisecond),
				elements: elements,
			})
			if err != nil {
				return nil, err
			}
			row, err := stalenessTrial(ctx, w, sem, period)
			if err != nil {
				w.close()
				return nil, err
			}
			table.AddRow(append([]string{metrics.FmtDur(period), sem.String()}, row...)...)
			w.close()
		}
	}
	return table, nil
}

func stalenessTrial(ctx context.Context, w *world, sem core.Semantics, period time.Duration) ([]string, error) {
	mut := workload.NewMutator(workload.MutatorConfig{
		Client:      w.c.ClientAt(w.c.Storage[0]),
		Dir:         w.corpus.Dir,
		Coll:        w.corpus.Coll,
		AddEvery:    period,
		RemoveEvery: period,
		ObjectNodes: w.c.Storage,
		ObjectSize:  64,
		IDPrefix:    fmt.Sprintf("mut-%s", sem),
		Initial:     w.corpus.Refs,
		Rand:        sim.NewRand(97),
	})
	s, err := w.set(sem, core.Options{BlockRetry: 10 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	// Bound the mutation burst so an optimistic run cannot be outpaced
	// forever (that effect is measured separately in E7).
	mctx, cancelMut := context.WithTimeout(ctx, w.scale.Real(16*period))
	defer cancelMut()
	mut.Start(mctx)
	elapsed := w.scale.Stopwatch()

	it, err := s.Elements(ctx)
	if err != nil {
		mut.Stop()
		return nil, err
	}
	type yieldAt struct {
		id repo.ObjectID
		at time.Duration
		st bool
	}
	var yields []yieldAt
	for it.Next(ctx) {
		e := it.Element()
		yields = append(yields, yieldAt{id: e.Ref.ID, at: elapsed(), st: e.Stale})
	}
	runEnd := elapsed()
	iterErr := it.Err()
	_ = it.Close(context.Background())
	mut.Stop()

	added, removed := mut.Added(), mut.Removed()
	yieldedSet := make(map[repo.ObjectID]spec.Outcome, len(yields))
	for _, y := range yields {
		yieldedSet[y.id] = spec.Suspended
	}

	// Additions made during the run (with enough margin for the iterator
	// to observe them) that were never yielded.
	addsDuring, missedAdds := 0, 0
	for _, ev := range added {
		if ev.At >= runEnd {
			continue
		}
		addsDuring++
		if _, ok := yieldedSet[ev.Ref.ID]; !ok {
			missedAdds++
		}
	}

	// Yields of elements that had already been removed when yielded,
	// plus tombstone yields.
	removedAt := make(map[repo.ObjectID]time.Duration, len(removed))
	deletesDuring := 0
	for _, ev := range removed {
		removedAt[ev.Ref.ID] = ev.At
		if ev.At < runEnd {
			deletesDuring++
		}
	}
	staleYields := 0
	for _, y := range yields {
		if y.st {
			staleYields++
			continue
		}
		if at, ok := removedAt[y.id]; ok && at < y.at {
			staleYields++
		}
	}

	return []string{
		itoa(len(yields)),
		itoa(addsDuring),
		itoa(missedAdds),
		itoa(deletesDuring),
		itoa(staleYields),
		fmtErr(iterErr),
	}, nil
}
