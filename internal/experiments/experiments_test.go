package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	// 100x compression keeps the smallest scaled sleeps above the OS
	// timer resolution so measured shapes stay faithful.
	return Config{Seed: 1, Scale: 0.01, Quick: true}
}

func runExperiment(t *testing.T, id string) [][]string {
	t.Helper()
	exp, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not found", id)
	}
	table, err := exp.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	rows := table.Rows()
	if len(rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return rows
}

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 9 {
		t.Fatalf("experiments = %d, want 9", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("E1"); !ok {
		t.Fatal("Find(E1) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
}

func TestE1Shape(t *testing.T) {
	rows := runExperiment(t, "E1")
	// Every method must complete on a healthy network.
	for _, row := range rows {
		if row[6] != "ok" {
			t.Fatalf("row %v did not complete", row)
		}
		if rpcs, _ := strconv.Atoi(row[5]); rpcs == 0 {
			t.Fatalf("row %v recorded no RPCs", row)
		}
	}
	// 2 sizes x 2 rtts x (6 semantics + dynamic) rows in quick mode.
	if len(rows) != 2*2*7 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestE2Shape(t *testing.T) {
	rows := runExperiment(t, "E2")
	// At p=0 everything completes with full coverage.
	for _, row := range rows[:3] {
		if row[2] != "100%" || row[3] != "100%" {
			t.Fatalf("p=0 row %v", row)
		}
	}
	// At the highest p, the dynamic set still "completes" (skip mode) while
	// pessimistic completion drops.
	var pessimisticHigh, dynamicHigh string
	for _, row := range rows {
		if row[0] == "0.20" && strings.HasPrefix(row[1], "grow-only") {
			pessimisticHigh = row[2]
		}
		if row[0] == "0.20" && strings.HasPrefix(row[1], "dynamic") {
			dynamicHigh = row[2]
		}
	}
	if dynamicHigh != "100%" {
		t.Fatalf("dynamic completion at p=0.2 = %s", dynamicHigh)
	}
	if pessimisticHigh == "100%" {
		t.Logf("note: pessimistic got lucky at p=0.2 (%s)", pessimisticHigh)
	}
}

func TestE3Shape(t *testing.T) {
	rows := runExperiment(t, "E3")
	stalls := make(map[string]map[string]string) // hold -> sem -> stall
	for _, row := range rows {
		if stalls[row[0]] == nil {
			stalls[row[0]] = make(map[string]string)
		}
		stalls[row[0]][row[1]] = row[2]
	}
	// Under the longest hold, the locking reader must stall the writer for
	// at least the hold time, while optimistic stays well under it.
	lockStall := parseMs(t, stalls["100ms"]["immutable-per-run"])
	optStall := parseMs(t, stalls["100ms"]["optimistic"])
	if lockStall < 80 {
		t.Fatalf("locking writer stall = %vms, want >= ~100ms", lockStall)
	}
	if optStall > lockStall/2 {
		t.Fatalf("optimistic stall %vms not clearly below locking %vms", optStall, lockStall)
	}
}

func TestE4Shape(t *testing.T) {
	rows := runExperiment(t, "E4")
	byName := make(map[string][]string)
	for _, row := range rows {
		byName[row[1]] = row
	}
	snap, opt := byName["snapshot"], byName["optimistic"]
	if snap == nil || opt == nil {
		t.Fatalf("rows missing: %v", rows)
	}
	// Snapshot misses every addition made during its run.
	if snap[3] != snap[4] {
		t.Fatalf("snapshot adds=%s missed=%s, want equal", snap[3], snap[4])
	}
	// Optimistic misses strictly fewer additions than snapshot when any
	// happened.
	snapAdds, _ := strconv.Atoi(snap[3])
	optMissed, _ := strconv.Atoi(opt[4])
	optAdds, _ := strconv.Atoi(opt[3])
	if snapAdds > 0 && optAdds > 0 && optMissed >= optAdds {
		t.Fatalf("optimistic missed %d of %d additions", optMissed, optAdds)
	}
}

func TestE5Shape(t *testing.T) {
	rows := runExperiment(t, "E5")
	if !strings.HasPrefix(rows[0][0], "ls-strict") {
		t.Fatalf("first row %v", rows[0])
	}
	strictTotal := parseMs(t, rows[0][3])
	var w1, w16 float64
	for _, row := range rows {
		switch row[0] {
		case "ls-dynamic w=1":
			w1 = parseMs(t, row[3])
		case "ls-dynamic w=16":
			w16 = parseMs(t, row[3])
		}
		if row[0] != "ls-strict" && row[1] != rows[0][1] {
			t.Fatalf("dynamic ls saw %s files, strict saw %s", row[1], rows[0][1])
		}
	}
	if w16 >= w1 {
		t.Fatalf("no prefetch speedup: w1=%vms w16=%vms", w1, w16)
	}
	if w16 >= strictTotal {
		t.Fatalf("dynamic w16 (%vms) not faster than strict (%vms)", w16, strictTotal)
	}
}

func TestE6Shape(t *testing.T) {
	rows := runExperiment(t, "E6")
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Diagonal: every implementation passes its own figure 100%.
	own := map[string]int{
		"immutable":         2, // column index of Fig3 (headers: impl, Fig1, Fig3, Fig4, Fig5, Fig6)
		"immutable-per-run": 2,
		"snapshot":          3,
		"grow-only":         4,
		"grow-only-per-run": 4,
		"optimistic":        5,
	}
	for _, row := range rows {
		col := own[row[0]]
		if row[col] != "100%" {
			t.Fatalf("%s passes own spec at %s", row[0], row[col])
		}
	}
}

func TestE7Shape(t *testing.T) {
	rows := runExperiment(t, "E7")
	// Ratio 0.5 terminates; ratio 2.0 does not.
	for _, row := range rows {
		switch row[0] {
		case "0.50":
			if row[3] != "yes" {
				t.Fatalf("slow producer should let the iterator terminate: %v", row)
			}
		case "2.00":
			if row[3] == "yes" {
				t.Fatalf("fast producer should starve the iterator: %v", row)
			}
		}
	}
}

func TestE8Shape(t *testing.T) {
	rows := runExperiment(t, "E8")
	for _, row := range rows {
		if row[0] != row[1] {
			t.Fatalf("peak ghosts %s != deletes %s", row[1], row[0])
		}
		if row[2] != "0" {
			t.Fatalf("ghosts after close = %s", row[2])
		}
		if row[0] != row[4] {
			t.Fatalf("reclaimed %s != deletes %s", row[4], row[0])
		}
	}
}

func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationsRegistered(t *testing.T) {
	abl := Ablations()
	if len(abl) != 4 {
		t.Fatalf("ablations = %d, want 4", len(abl))
	}
	for _, e := range abl {
		if _, ok := Find(e.ID); !ok {
			t.Fatalf("Find(%s) failed", e.ID)
		}
	}
}

func TestA1Shape(t *testing.T) {
	rows := runExperiment(t, "A1")
	// At width 1, closest-first reaches the 8th element far sooner than
	// listing order, while totals are comparable.
	var cfFirst8, listFirst8 float64
	for _, row := range rows {
		if row[0] != "1" {
			continue
		}
		switch row[1] {
		case "closest-first":
			cfFirst8 = parseMs(t, row[3])
		case "listing":
			listFirst8 = parseMs(t, row[3])
		}
	}
	if cfFirst8 == 0 || listFirst8 == 0 {
		t.Fatalf("rows missing: %v", rows)
	}
	if cfFirst8 >= listFirst8 {
		t.Fatalf("closest-first first-8 %vms not below listing %vms", cfFirst8, listFirst8)
	}
}

func TestA2Shape(t *testing.T) {
	rows := runExperiment(t, "A2")
	// The dynamic set's completion grows with the detection timeout; the
	// pessimistic failure time does not (the local detector is free).
	if len(rows) < 2 {
		t.Fatalf("rows = %v", rows)
	}
	dynLow := parseMs(t, rows[0][2])
	dynHigh := parseMs(t, rows[len(rows)-1][2])
	if dynHigh <= dynLow {
		t.Fatalf("dynamic total did not grow with timeout: %vms -> %vms", dynLow, dynHigh)
	}
	for _, row := range rows {
		if row[3] != "12" {
			t.Fatalf("dynamic yielded %s, want 12 (4 of 16 unreachable)", row[3])
		}
	}
}

func TestA3Shape(t *testing.T) {
	rows := runExperiment(t, "A3")
	// Staleness probability falls as the mutation period grows relative to
	// the propagation delay.
	fast, _ := strconv.Atoi(rows[0][2])
	slow, _ := strconv.Atoi(rows[len(rows)-1][2])
	if fast <= slow {
		t.Fatalf("stale reads: fast period %d <= slow period %d", fast, slow)
	}
}

func TestE9Shape(t *testing.T) {
	rows := runExperiment(t, "E9")
	// Row 0 is the deterministic primary-down scenario: the single
	// directory must fail and the quorum must complete.
	if rows[0][1] != "0%" || rows[0][2] != "100%" {
		t.Fatalf("primary-down row = %v", rows[0])
	}
	// Under probabilistic crashes the quorum completes at least as often.
	for _, row := range rows[1:] {
		single := parsePct(t, row[1])
		quorum := parsePct(t, row[2])
		if quorum < single {
			t.Fatalf("quorum (%v%%) below single (%v%%): %v", quorum, single, row)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestA4Shape(t *testing.T) {
	rows := runExperiment(t, "A4")
	byMethod := make(map[string][]string)
	for _, row := range rows {
		byMethod[row[1]] = row
	}
	if byMethod["warm cache"][4] != "100%" {
		t.Fatalf("warm cache coverage = %v", byMethod["warm cache"])
	}
	if byMethod["warm cache"][3] == "0" {
		t.Fatalf("warm cache served no stale elements: %v", byMethod["warm cache"])
	}
	if byMethod["no cache"][4] == "100%" || byMethod["no cache"][3] != "0" {
		t.Fatalf("no-cache row = %v", byMethod["no cache"])
	}
	if byMethod["cold cache"][4] != byMethod["no cache"][4] {
		t.Fatalf("cold cache (%v) should match no cache (%v)", byMethod["cold cache"], byMethod["no cache"])
	}
}
