// Package experiments implements the evaluation the paper promises but
// does not include (§5: "We hope to prove the performance benefits
// resulting from the use of a weak consistency semantics by evaluation of
// our system"). Each experiment E1–E9 is anchored to an explicit claim in
// the paper (see DESIGN.md §4) and produces a table; cmd/weakbench prints
// them and bench_test.go wraps them as testing.B benchmarks.
//
// Experiments run on the simulated wide-area substrate with a scaled
// clock: durations reported in the tables are virtual (model) durations.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
)

// Config sizes the experiment sweeps.
type Config struct {
	// Seed drives all randomness. Experiments are deterministic up to
	// goroutine scheduling.
	Seed int64
	// Scale is the virtual-to-real time compression. Defaults to 0.01
	// (100x), which keeps the smallest scaled sleeps above the OS timer
	// resolution so shapes are preserved.
	Scale sim.TimeScale
	// Quick trims the sweeps for use in tests and benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	return c
}

// Experiment couples an ID to its runner.
type Experiment struct {
	ID    string
	Claim string
	Run   func(Config) (*metrics.Table, error)
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Claim: "partial results arrive quickly; parallel fetch shortens completion (§1.1)", Run: E1FirstYield},
		{ID: "E2", Claim: "optimistic semantics stay available under partitions; pessimistic fail (§3, §3.4)", Run: E2Availability},
		{ID: "E3", Claim: "locking makes writers wait for readers; weak semantics do not (§3.1)", Run: E3LockCost},
		{ID: "E4", Claim: "snapshots lose mutations; optimistic misses no additions but may yield deleted elements (§3.2, §3.4)", Run: E4Staleness},
		{ID: "E5", Claim: "dynamic-set ls: parallel, closest-first fetching beats sequential stat (§1.1)", Run: E5Prefetch},
		{ID: "E6", Claim: "the semantics form a strictness lattice (§3)", Run: E6Conformance},
		{ID: "E7", Claim: "a grow-only set that grows faster than it is consumed never terminates (§3.3)", Run: E7GrowRace},
		{ID: "E8", Claim: "ghost copies accumulate during a run and are reclaimed at termination (§3.3)", Run: E8Ghosts},
		{ID: "E9", Claim: "a majority-quorum directory tolerates replica failures the single directory cannot (§3.3)", Run: E9QuorumDirectory},
	}
}

// Find returns the experiment (or ablation) with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range append(All(), Ablations()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// world is a populated cluster shared by experiment trials.
type world struct {
	c      *cluster.Cluster
	corpus wais.Corpus
	scale  sim.TimeScale
}

type worldSpec struct {
	seed     int64
	scale    sim.TimeScale
	latency  sim.Dist
	storage  int
	elements int
	size     int
}

func buildWorld(sp worldSpec) (*world, error) {
	if sp.storage == 0 {
		sp.storage = 8
	}
	if sp.size == 0 {
		sp.size = 256
	}
	c, err := cluster.New(cluster.Config{
		StorageNodes: sp.storage,
		Seed:         sp.seed,
		Latency:      sp.latency,
		Scale:        sp.scale,
	})
	if err != nil {
		return nil, err
	}
	corpus, err := wais.Build(context.Background(), c, wais.Spec{
		Coll: "exp",
		N:    sp.elements,
		Size: sp.size,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return &world{c: c, corpus: corpus, scale: sp.scale}, nil
}

func (w *world) close() { w.c.Close() }

func (w *world) set(sem core.Semantics, opts core.Options) (*core.Set, error) {
	opts.Semantics = sem
	if sem == core.ImmutablePerRun {
		opts.LockServer = w.c.LockNode
	}
	return core.NewSet(w.c.Client, w.corpus.Dir, w.corpus.Coll, opts)
}

// queryResult is one timed iterator run.
type queryResult struct {
	first   time.Duration // virtual time to first element
	total   time.Duration // virtual time to termination
	yielded int
	err     error
}

// runSet times a full run of a weak-set iterator.
func (w *world) runSet(ctx context.Context, sem core.Semantics, opts core.Options) queryResult {
	s, err := w.set(sem, opts)
	if err != nil {
		return queryResult{err: err}
	}
	elapsed := w.scale.Stopwatch()
	it, err := s.Elements(ctx)
	if err != nil {
		return queryResult{err: err, total: elapsed()}
	}
	defer func() { _ = it.Close(context.Background()) }()
	var res queryResult
	for it.Next(ctx) {
		res.yielded++
		if res.yielded == 1 {
			res.first = elapsed()
		}
	}
	res.total = elapsed()
	res.err = it.Err()
	return res
}

// runDyn times a full drain of a dynamic set.
func (w *world) runDyn(ctx context.Context, opts core.DynOptions) queryResult {
	elapsed := w.scale.Stopwatch()
	ds, err := core.OpenDyn(ctx, w.c.Client, w.corpus.Dir, w.corpus.Coll, opts)
	if err != nil {
		return queryResult{err: err, total: elapsed()}
	}
	defer func() { _ = ds.Close() }()
	var res queryResult
	for ds.Next(ctx) {
		res.yielded++
		if res.yielded == 1 {
			res.first = elapsed()
		}
	}
	res.total = elapsed()
	res.err = ds.Err()
	return res
}

func fmtErr(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrFailure):
		return "fails"
	case errors.Is(err, core.ErrBlocked):
		return "blocked"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "error"
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
