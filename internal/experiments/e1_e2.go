package experiments

import (
	"context"
	"time"

	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/sim"
)

// E1FirstYield measures time-to-first-element and time-to-completion for
// every semantics plus the dynamic set, across set sizes and WAN round-trip
// times. Paper claim (§1.1): "We can return information to the user more
// quickly by yielding partial information about the contents of a
// directory" and "we can implement such file system commands more
// efficiently by fetching files in parallel".
//
// Expected shape: first-yield is ~one round trip for every semantics,
// independent of set size; completion grows linearly with size for the
// sequential iterators and is divided by roughly the prefetch width for
// the dynamic set.
func E1FirstYield(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{16, 64, 256}
	rtts := []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	if cfg.Quick {
		sizes = []int{12, 48}
		rtts = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond}
	}
	const dynWidth = 8

	table := metrics.NewTable(
		"E1: time to first element and completion (healthy network)",
		"elements", "rtt", "method", "first", "total", "rpcs", "outcome",
	)
	ctx := context.Background()
	for _, size := range sizes {
		for _, rtt := range rtts {
			w, err := buildWorld(worldSpec{
				seed:     cfg.Seed,
				scale:    cfg.Scale,
				latency:  sim.Fixed(rtt / 2),
				elements: size,
			})
			if err != nil {
				return nil, err
			}
			for _, sem := range core.AllSemantics() {
				w.c.Bus.ResetStats()
				res := w.runSet(ctx, sem, core.Options{})
				table.AddRow(itoa(size), metrics.FmtDur(rtt), sem.String(),
					metrics.FmtDur(res.first), metrics.FmtDur(res.total),
					itoa(int(w.c.Bus.Stats().Calls)), fmtErr(res.err))
			}
			w.c.Bus.ResetStats()
			res := w.runDyn(ctx, core.DynOptions{Width: dynWidth})
			table.AddRow(itoa(size), metrics.FmtDur(rtt), "dynamic-w8",
				metrics.FmtDur(res.first), metrics.FmtDur(res.total),
				itoa(int(w.c.Bus.Stats().Calls)), fmtErr(res.err))
			w.close()
		}
	}
	return table, nil
}

// E2Availability measures, under increasing partition probability, the
// fraction of queries that complete and the fraction of the set they
// retrieve, for a pessimistic iterator, an optimistic iterator with a
// bounded patience, and a dynamic set in skip mode. Paper claim (§3, §3.4):
// the pessimistic approach "would be most appropriate to return a failure"
// while the optimistic approach "allows access to the data even though it
// may be stale"; dynamic sets fetch "all accessible files despite network
// failures".
//
// Expected shape: pessimistic completion collapses roughly as
// (1-p)^nodes; the optimistic/dynamic coverage degrades gracefully with p
// and those queries keep returning the reachable fraction.
func E2Availability(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	ps := []float64{0, 0.05, 0.1, 0.2, 0.4}
	trials := 20
	if cfg.Quick {
		ps = []float64{0, 0.2}
		trials = 6
	}
	const (
		elements = 24
		storage  = 8
		oneWay   = 10 * time.Millisecond
	)

	table := metrics.NewTable(
		"E2: availability under partitions",
		"p(node cut)", "method", "completed", "avg coverage",
	)
	ctx := context.Background()
	rng := sim.NewRand(cfg.Seed + 1)

	type method struct {
		name string
		run  func(w *world) queryResult
	}
	methods := []method{
		{name: "grow-only (pessimistic)", run: func(w *world) queryResult {
			return w.runSet(ctx, core.GrowOnly, core.Options{})
		}},
		{name: "optimistic (500ms patience)", run: func(w *world) queryResult {
			return w.runSet(ctx, core.Optimistic, core.Options{
				BlockRetry: 25 * time.Millisecond,
				MaxBlock:   500 * time.Millisecond,
			})
		}},
		{name: "dynamic (skip unreachable)", run: func(w *world) queryResult {
			return w.runDyn(ctx, core.DynOptions{Width: 8})
		}},
	}

	for _, p := range ps {
		w, err := buildWorld(worldSpec{
			seed:     cfg.Seed,
			scale:    cfg.Scale,
			latency:  sim.Fixed(oneWay),
			storage:  storage,
			elements: elements,
		})
		if err != nil {
			return nil, err
		}
		completed := make([]int, len(methods))
		coverage := make([]float64, len(methods))
		for trial := 0; trial < trials; trial++ {
			// Cut each storage node independently with probability p.
			for _, node := range w.c.Storage {
				if rng.Float64() < p {
					w.c.Net.Isolate(node)
				}
			}
			for i, m := range methods {
				res := m.run(w)
				if res.err == nil {
					completed[i]++
				}
				coverage[i] += float64(res.yielded) / elements
			}
			w.c.Net.Heal()
		}
		for i, m := range methods {
			table.AddRow(metrics.FmtRatio(p), m.name,
				metrics.FmtPct(float64(completed[i])/float64(trials)),
				metrics.FmtPct(coverage[i]/float64(trials)))
		}

		// Transient outages: the same cuts heal 2s (virtual) into the
		// query — longer than the time the pessimistic iterator needs to
		// drain the reachable elements, so it fails before the repair,
		// while the optimistic one blocks and completes — the paper's "in
		// a later invocation inaccessible objects will become accessible
		// again (because the failure has been repaired)" (§3).
		if p > 0 {
			transient := []struct {
				name string
				run  func(w *world) queryResult
			}{
				{name: "grow-only + 2s outage", run: func(w *world) queryResult {
					return w.runSet(ctx, core.GrowOnly, core.Options{})
				}},
				{name: "optimistic + 2s outage", run: func(w *world) queryResult {
					return w.runSet(ctx, core.Optimistic, core.Options{
						BlockRetry: 25 * time.Millisecond,
					})
				}},
			}
			tCompleted := make([]int, len(transient))
			tCoverage := make([]float64, len(transient))
			for trial := 0; trial < trials; trial++ {
				for i, m := range transient {
					for _, node := range w.c.Storage {
						if rng.Float64() < p {
							w.c.Net.Isolate(node)
						}
					}
					sched := netsim.NewSchedule(w.c.Net, netsim.HealAt(2*time.Second))
					sched.Start(ctx)
					res := m.run(w)
					sched.Wait()
					if res.err == nil {
						tCompleted[i]++
					}
					tCoverage[i] += float64(res.yielded) / elements
				}
			}
			for i, m := range transient {
				table.AddRow(metrics.FmtRatio(p), m.name,
					metrics.FmtPct(float64(tCompleted[i])/float64(trials)),
					metrics.FmtPct(tCoverage[i]/float64(trials)))
			}
		}
		w.close()
	}
	return table, nil
}
