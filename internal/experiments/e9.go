package experiments

import (
	"context"
	"fmt"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// E9QuorumDirectory evaluates the paper's suggested quorum variant
// (§3.3: "one could easily specify the iterator to use a quorum or
// token-based scheme"): membership kept on three replicas, reads needing a
// majority, versus the single-directory baseline. Elements live on nodes
// disjoint from the membership replicas so the experiment isolates
// *directory* availability.
//
// Expected shape: with the primary deterministically down the single
// directory completes 0% and the quorum 100%; under independent replica
// crashes with probability p the quorum completes at P(>=2 of 3 up) =
// (1-p)^3 + 3p(1-p)^2 > 1-p for p < 1/2.
func E9QuorumDirectory(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	ps := []float64{0.1, 0.2, 0.3}
	trials := 40
	if cfg.Quick {
		ps = []float64{0.2}
		trials = 12
	}
	const elements = 12

	table := metrics.NewTable(
		"E9: directory availability — single node vs 3-replica majority quorum",
		"scenario", "single-dir completed", "quorum completed",
	)
	ctx := context.Background()

	build := func() (*cluster.Cluster, core.QuorumConfig, error) {
		c, err := cluster.New(cluster.Config{
			StorageNodes: 6,
			Seed:         cfg.Seed,
			Scale:        cfg.Scale,
			Latency:      sim.Fixed(10 * time.Millisecond),
		})
		if err != nil {
			return nil, core.QuorumConfig{}, err
		}
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, "e9"); err != nil {
			c.Close()
			return nil, core.QuorumConfig{}, err
		}
		// Elements on s2..s5 only; membership replicas on dir, s0, s1.
		for i := 0; i < elements; i++ {
			node := c.Storage[2+i%4]
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%03d", i)), Data: make([]byte, 64)}
			ref, err := c.Client.Put(ctx, node, obj)
			if err != nil {
				c.Close()
				return nil, core.QuorumConfig{}, err
			}
			if err := c.Client.Add(ctx, cluster.DirNode, "e9", ref); err != nil {
				c.Close()
				return nil, core.QuorumConfig{}, err
			}
		}
		replicas := []netsim.NodeID{c.Storage[0], c.Storage[1]}
		if err := c.Servers[cluster.DirNode].ReplicateCollection("e9", replicas); err != nil {
			c.Close()
			return nil, core.QuorumConfig{}, err
		}
		// Wait for the replicas to absorb the initial push.
		for _, r := range replicas {
			for {
				members, _, err := c.Client.List(ctx, r, "e9")
				if err == nil && len(members) == elements {
					break
				}
				cfg.Scale.Sleep(10 * time.Millisecond)
			}
		}
		qc := core.QuorumConfig{Replicas: []netsim.NodeID{cluster.DirNode, c.Storage[0], c.Storage[1]}}
		return c, qc, nil
	}

	c, qc, err := build()
	if err != nil {
		return nil, err
	}
	defer c.Close()

	runOnce := func(quorum bool) bool {
		opts := core.Options{Semantics: core.GrowOnly}
		if quorum {
			opts.Quorum = qc
		}
		s, err := core.NewSet(c.Client, cluster.DirNode, "e9", opts)
		if err != nil {
			return false
		}
		elems, err := s.Collect(ctx)
		return err == nil && len(elems) == elements
	}

	// Deterministic scenario: the primary directory is down.
	c.Net.Crash(cluster.DirNode)
	singleOK, quorumOK := runOnce(false), runOnce(true)
	c.Net.Restart(cluster.DirNode)
	table.AddRow("primary down", metrics.FmtPct(b2f(singleOK)), metrics.FmtPct(b2f(quorumOK)))

	// Probabilistic scenario: each membership replica crashes with p.
	rng := sim.NewRand(cfg.Seed + 9)
	members := qc.Replicas
	for _, p := range ps {
		singleDone, quorumDone := 0, 0
		for trial := 0; trial < trials; trial++ {
			for _, node := range members {
				if rng.Float64() < p {
					c.Net.Crash(node)
				}
			}
			if runOnce(false) {
				singleDone++
			}
			if runOnce(true) {
				quorumDone++
			}
			for _, node := range members {
				c.Net.Restart(node)
			}
		}
		table.AddRow(fmt.Sprintf("replica crash p=%.1f", p),
			metrics.FmtPct(float64(singleDone)/float64(trials)),
			metrics.FmtPct(float64(quorumDone)/float64(trials)))
	}
	return table, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
