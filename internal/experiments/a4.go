package experiments

import (
	"context"
	"time"

	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// A4CacheFallback measures the disconnected-operation extension: a
// client-side cache warmed by earlier browsing answers for unreachable
// members, trading staleness for coverage — the Coda move the paper's
// environment grew out of ("disconnecting a mobile client from the network
// while traveling is an induced failure", §1.1). Serving cached copies is
// strictly weaker than Fig. 6, so the elements arrive marked stale.
//
// Expected shape: without a cache, coverage is the reachable fraction;
// with a warm cache it returns to 100%, the difference delivered as stale
// elements; a cold cache changes nothing.
func A4CacheFallback(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	cuts := []int{1, 2, 4}
	if cfg.Quick {
		cuts = []int{2}
	}
	const elements = 24

	table := metrics.NewTable(
		"A4: disconnected-operation cache (8 storage nodes)",
		"nodes cut", "method", "yielded", "stale served", "coverage",
	)
	ctx := context.Background()
	for _, cut := range cuts {
		w, err := buildWorld(worldSpec{
			seed:     cfg.Seed,
			scale:    cfg.Scale,
			latency:  sim.Fixed(10 * time.Millisecond),
			elements: elements,
		})
		if err != nil {
			return nil, err
		}

		warm := repo.NewCache(elements * 2)
		// Browse once while healthy to warm the cache.
		warmup := w.runDynWithCache(ctx, core.DynOptions{Width: 8, FallbackCache: warm})
		if warmup.err != nil || warmup.yielded != elements {
			w.close()
			return nil, warmup.err
		}

		for i := 0; i < cut; i++ {
			w.c.Net.Isolate(w.c.Storage[len(w.c.Storage)-1-i])
		}

		type method struct {
			name  string
			cache *repo.Cache
		}
		for _, m := range []method{
			{name: "no cache", cache: nil},
			{name: "cold cache", cache: repo.NewCache(elements * 2)},
			{name: "warm cache", cache: warm},
		} {
			res := w.runDynWithCache(ctx, core.DynOptions{Width: 8, FallbackCache: m.cache})
			table.AddRow(itoa(cut), m.name, itoa(res.yielded), itoa(res.stale),
				metrics.FmtPct(float64(res.yielded)/elements))
		}
		w.c.Net.Heal()
		w.close()
	}
	return table, nil
}

// dynResult extends queryResult with the stale count.
type dynResult struct {
	queryResult
	stale int
}

// runDynWithCache drains a dynamic set counting stale (cache-served)
// elements.
func (w *world) runDynWithCache(ctx context.Context, opts core.DynOptions) dynResult {
	var res dynResult
	ds, err := core.OpenDyn(ctx, w.c.Client, w.corpus.Dir, w.corpus.Coll, opts)
	if err != nil {
		res.err = err
		return res
	}
	defer func() { _ = ds.Close() }()
	for ds.Next(ctx) {
		res.yielded++
		if ds.Element().Stale {
			res.stale++
		}
	}
	res.err = ds.Err()
	return res
}
