package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/workload"
)

// Ablations lists the design-choice ablations and extensions (A1–A4).
// They are separate from All() so the default weakbench run stays focused
// on the paper's claims; `weakbench -run A1` or `-ablations` selects them.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "A1", Claim: "ablation: closest-first fetch ordering vs listing order (§1.1 'fetching closer files first')", Run: A1Ordering},
		{ID: "A2", Claim: "ablation: failure-detection timeout drives the cost of pessimism and of skipping (§2.1 'we assume we can detect failures')", Run: A2DetectTimeout},
		{ID: "A3", Claim: "ablation: lazy replication staleness window (§3 'cached data may be stale')", Run: A3ReplicaLag},
		{ID: "A4", Claim: "extension: disconnected-operation cache trades staleness for coverage (§1.1 mobile clients)", Run: A4CacheFallback},
	}
}

// A1Ordering isolates the closest-first design choice: same dynamic set,
// same width, ordering flipped. The paper folds parallelism and ordering
// into one mechanism; this separates their contributions.
//
// Expected shape: total completion is ordering-independent (the same
// fetches happen), but time-to-first-k is far lower with closest-first at
// small widths — the user-visible "page fills in" metric.
func A1Ordering(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	widths := []int{1, 4, 8}
	files := 32
	if cfg.Quick {
		widths = []int{1, 4}
		files = 16
	}

	c, err := cluster.New(cluster.Config{
		StorageNodes: 8,
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	// Distances 5..40ms one-way. IDs are assigned so that *listing order
	// visits the farthest nodes first* — the adversarial case for a naive
	// fetcher.
	for i, node := range c.Storage {
		c.Net.SetLinkLatency(cluster.HomeNode, node, sim.Fixed(time.Duration(i+1)*5*time.Millisecond))
	}
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "a1"); err != nil {
		return nil, err
	}
	for i := 0; i < files; i++ {
		node := c.Storage[len(c.Storage)-1-(i%len(c.Storage))]
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("f%03d", i)), Data: make([]byte, 128)}
		ref, err := c.Client.Put(ctx, node, obj)
		if err != nil {
			return nil, err
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "a1", ref); err != nil {
			return nil, err
		}
	}

	table := metrics.NewTable(
		"A1: fetch-ordering ablation (listing order visits far nodes first)",
		"width", "order", "first", "first 8", "total",
	)
	orders := []struct {
		name  string
		order core.FetchOrder
	}{
		{name: "closest-first", order: core.OrderClosestFirst},
		{name: "listing", order: core.OrderListing},
	}
	for _, width := range widths {
		for _, o := range orders {
			elapsed := cfg.Scale.Stopwatch()
			ds, err := core.OpenDyn(ctx, c.Client, cluster.DirNode, "a1", core.DynOptions{
				Width: width,
				Order: o.order,
			})
			if err != nil {
				return nil, err
			}
			var first, firstEight time.Duration
			n := 0
			for ds.Next(ctx) {
				n++
				switch n {
				case 1:
					first = elapsed()
				case 8:
					firstEight = elapsed()
				}
			}
			total := elapsed()
			_ = ds.Close()
			table.AddRow(itoa(width), o.name,
				metrics.FmtDur(first), metrics.FmtDur(firstEight), metrics.FmtDur(total))
		}
	}
	return table, nil
}

// A2DetectTimeout sweeps the failure-detection timeout the whole model
// leans on (§2.1: "we assume we can detect failures, e.g., those signaled
// from the lower network and transport layers").
//
// Expected shape: the pessimistic iterator consults the local failure
// detector (free) and so fails after draining the reachable elements,
// independent of the timeout; the dynamic set discovers unreachability by
// *attempting* each fetch and pays one detection timeout per unreachable
// member, amortized over its width — its completion time scales with the
// timeout.
func A2DetectTimeout(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	timeouts := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 800 * time.Millisecond}
	if cfg.Quick {
		// Widely separated points so the shape survives wall-clock noise
		// when the whole test suite runs in parallel.
		timeouts = []time.Duration{50 * time.Millisecond, 800 * time.Millisecond}
	}
	const elements = 16

	table := metrics.NewTable(
		"A2: failure-detection timeout ablation (2 of 8 nodes partitioned)",
		"detect timeout", "grow-only time-to-fail", "dynamic total (skip)", "dynamic yielded",
	)
	ctx := context.Background()
	for _, timeout := range timeouts {
		c, err := cluster.New(cluster.Config{
			StorageNodes:  8,
			Seed:          cfg.Seed,
			Scale:         cfg.Scale,
			Latency:       sim.Fixed(10 * time.Millisecond),
			DetectTimeout: timeout,
		})
		if err != nil {
			return nil, err
		}
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, "a2"); err != nil {
			c.Close()
			return nil, err
		}
		var refs []repo.Ref
		for i := 0; i < elements; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%03d", i)), Data: make([]byte, 128)}
			ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := c.Client.Add(ctx, cluster.DirNode, "a2", ref); err != nil {
				c.Close()
				return nil, err
			}
			refs = append(refs, ref)
		}
		c.Net.Isolate(c.Storage[0])
		c.Net.Isolate(c.Storage[1])

		set, err := core.NewSet(c.Client, cluster.DirNode, "a2", core.Options{Semantics: core.GrowOnly})
		if err != nil {
			c.Close()
			return nil, err
		}
		elapsed := cfg.Scale.Stopwatch()
		_, runErr := set.Collect(ctx)
		failTime := elapsed()
		if runErr == nil {
			c.Close()
			return nil, fmt.Errorf("a2: pessimistic run unexpectedly completed")
		}

		elapsed = cfg.Scale.Stopwatch()
		ds, err := core.OpenDyn(ctx, c.Client, cluster.DirNode, "a2", core.DynOptions{Width: 4})
		if err != nil {
			c.Close()
			return nil, err
		}
		n := 0
		for ds.Next(ctx) {
			n++
		}
		dynTotal := elapsed()
		_ = ds.Close()

		table.AddRow(metrics.FmtDur(timeout), metrics.FmtDur(failTime), metrics.FmtDur(dynTotal), itoa(n))
		c.Close()
	}
	return table, nil
}

// A3ReplicaLag measures the staleness window of lazy collection
// replication — the mechanism behind "one node may have more up-to-date
// information than another; cached data may be stale" (§3). A writer
// mutates the primary at a fixed period; a reader polls both primary and
// mirror and records how often, and by how many members, the mirror lags.
//
// Expected shape: the mirror lags by at most a link latency's worth of
// mutations; the staleness probability grows as the mutation period
// approaches the propagation delay.
func A3ReplicaLag(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	periods := []time.Duration{20 * time.Millisecond, 60 * time.Millisecond, 200 * time.Millisecond}
	samples := 60
	if cfg.Quick {
		periods = []time.Duration{20 * time.Millisecond, 200 * time.Millisecond}
		samples = 25
	}

	table := metrics.NewTable(
		"A3: lazy replication staleness (one-way link 15ms)",
		"mutation period", "samples", "stale reads", "max lag (members)",
	)
	ctx := context.Background()
	for _, period := range periods {
		c, err := cluster.New(cluster.Config{
			StorageNodes: 4,
			Seed:         cfg.Seed,
			Scale:        cfg.Scale,
			Latency:      sim.Fixed(15 * time.Millisecond),
		})
		if err != nil {
			return nil, err
		}
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, "a3"); err != nil {
			c.Close()
			return nil, err
		}
		mirror := c.Storage[0]
		if err := c.Servers[cluster.DirNode].ReplicateCollection("a3", []netsim.NodeID{mirror}); err != nil {
			c.Close()
			return nil, err
		}
		// Wait for the initial push to land before sampling.
		for {
			if _, _, err := c.Client.List(ctx, mirror, "a3"); err == nil {
				break
			}
			cfg.Scale.Sleep(10 * time.Millisecond)
		}

		mut := workload.NewMutator(workload.MutatorConfig{
			Client:      c.ClientAt(cluster.DirNode),
			Dir:         cluster.DirNode,
			Coll:        "a3",
			AddEvery:    period,
			ObjectNodes: []netsim.NodeID{cluster.DirNode},
			ObjectSize:  32,
			IDPrefix:    "a3",
			Rand:        sim.NewRand(cfg.Seed + 3),
		})
		mut.Start(ctx)

		staleReads, maxLag := 0, 0
		for i := 0; i < samples; i++ {
			// Sample primary and mirror at the same instant — two clients
			// issuing the same query concurrently, as §1 describes.
			var (
				primary, mirrored []repo.Ref
				pErr, mErr        error
				wg                sync.WaitGroup
			)
			wg.Add(2)
			go func() {
				defer wg.Done()
				primary, _, pErr = c.Client.List(ctx, cluster.DirNode, "a3")
			}()
			go func() {
				defer wg.Done()
				mirrored, _, mErr = c.Client.List(ctx, mirror, "a3")
			}()
			wg.Wait()
			if pErr != nil || mErr != nil {
				mut.Stop()
				c.Close()
				return nil, fmt.Errorf("a3 sample: %v / %v", pErr, mErr)
			}
			lag := len(primary) - len(mirrored)
			if lag < 0 {
				lag = 0
			}
			if lag > 0 {
				staleReads++
			}
			if lag > maxLag {
				maxLag = lag
			}
			cfg.Scale.Sleep(period / 2)
		}
		mut.Stop()
		table.AddRow(metrics.FmtDur(period), itoa(samples), itoa(staleReads), itoa(maxLag))
		c.Close()
	}
	return table, nil
}
