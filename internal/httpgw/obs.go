package httpgw

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"weaksets/internal/obs"
)

// This file is the gateway's observability surface:
//
//	GET /metrics     Prometheus text exposition (weakness counters,
//	                 storage-engine ops, TCP transports, tracer health)
//	GET /trace       recent sampled traces (root spans)
//	GET /trace?id=   one trace's spans, all registered tracers merged
//	GET /debug/pprof (optional, via EnablePprof)

// UseObs mounts /metrics, /trace, and /cluster. reg supplies the
// per-collection weakness aggregates and rolling windows (nil is
// allowed: the weakness sections are empty); tracers feed /trace and
// the tracer self-metrics — register every process's tracer the gateway
// can see so cross-process traces render whole. Call once, before
// serving.
func (g *Gateway) UseObs(reg *obs.Registry, tracers ...*obs.Tracer) {
	g.weakness = reg
	g.tracers = tracers
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /trace", g.handleTrace)
	g.mux.HandleFunc("GET /cluster", g.handleCluster)
}

// UseJournal mounts GET /events over the given bounded event journal
// and exposes its counters in /metrics and /stats. The same journal
// should be wired into the emitting layers (repo.Server.UseJournal,
// LeaseState.UseJournal, tcprpc.Client.Journal, Registry.UseJournal) so
// every coordination-plane event lands in one queryable place.
func (g *Gateway) UseJournal(j *obs.Journal) {
	g.journal = j
	if g.weakness != nil {
		g.weakness.UseJournal(j)
	}
	g.mux.HandleFunc("GET /events", g.handleEvents)
}

// handleEvents serves the journal: ?type= and ?coll= filter, ?since=
// resumes after a sequence number, ?limit= caps to the most recent N.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.EventFilter{
		Type:       q.Get("type"),
		Collection: q.Get("coll"),
	}
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad since %q", s)
			return
		}
		f.SinceSeq = v
	}
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			jsonError(w, http.StatusBadRequest, "bad limit %q", s)
			return
		}
		f.Limit = v
	}
	events := g.journal.Events(f)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Events []obs.Event      `json:"events"`
		Stats  obs.JournalStats `json:"stats"`
	}{Events: events, Stats: g.journal.Stats()})
}

// localTracer is the gateway process's own tracer — the first one
// registered with UseObs — used to trace queries the gateway itself runs.
func (g *Gateway) localTracer() *obs.Tracer {
	if len(g.tracers) == 0 {
		return nil
	}
	return g.tracers[0]
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
// Off by default: profiling endpoints are a debugging surface, not a
// production one.
func (g *Gateway) EnablePprof() {
	g.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	g.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	g.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	g.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	g.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// handleMetrics serves Prometheus text format 0.0.4. Every family is
// prefixed weaksets_; counters carry _total per convention.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)

	coll := func(c string) obs.Label { return obs.Label{Key: "collection", Value: c} }
	for _, cw := range g.weakness.Snapshot() {
		l := coll(cw.Collection)
		p.Counter("weaksets_weakness_runs_total", "Completed elements runs.", float64(cw.Runs), l)
		p.Counter("weaksets_weakness_invocations_total", "Kernel invocations (fresh pre-states observed).", float64(cw.Invocations), l)
		p.Counter("weaksets_weakness_yielded_total", "Elements delivered to callers.", float64(cw.Yielded), l)
		p.Counter("weaksets_weakness_unreachable_skipped_total", "Members existent but unobservable when runs terminated.", float64(cw.UnreachableSkipped), l)
		p.Counter("weaksets_weakness_ghosts_served_total", "Stale (ghost) copies yielded.", float64(cw.GhostsServed), l)
		p.Counter("weaksets_weakness_duplicates_suppressed_total", "Re-listed members suppressed by the no-duplicates obligation.", float64(cw.DuplicatesSuppressed), l)
		p.Counter("weaksets_weakness_epoch_retries_total", "Prefetched results discarded for read-your-writes.", float64(cw.EpochRetries), l)
		p.Counter("weaksets_weakness_cache_hits_total", "Elements served straight from the element cache, no RPC.", float64(cw.CacheHits), l)
		p.Counter("weaksets_weakness_cache_validated_hits_total", "Elements served from the cache after a NotModified validation.", float64(cw.CacheValidatedHits), l)
		p.Counter("weaksets_weakness_lease_served_total", "Runs whose listing was served under a held lease, no revalidation RPC.", float64(cw.LeaseServed), l)
		p.Gauge("weaksets_weakness_max_lease_age_seconds", "Oldest lease certification a served listing relied on.", obs.Seconds(cw.MaxLeaseAge), l)
		p.Counter("weaksets_replica_served_total", "Runs (or batch fetches) served by a non-home replica.", float64(cw.ReplicaServed), l)
		p.Counter("weaksets_replica_skew_total", "Listing versions the serving replicas lagged the freshest live replica by.", float64(cw.ReplicaSkew), l)
		p.Gauge("weaksets_replica_max_ghost_age_seconds", "Oldest replica staleness (time since last anti-entropy push) a run was served under.", obs.Seconds(cw.MaxGhostAge), l)
		p.Counter("weaksets_weakness_listing_skew_total", "Listing-version changes observed mid-run.", float64(cw.ListingSkew), l)
		p.Counter("weaksets_weakness_partition_skew_total", "Listing partitions snapshotted after a mid-stream write.", float64(cw.PartitionSkew), l)
		p.Counter("weaksets_weakness_fetch_failures_total", "Transport fetch/list failures survived.", float64(cw.FetchFailures), l)
		p.Counter("weaksets_weakness_blocked_seconds_total", "Cumulative virtual time blocked awaiting repair.", obs.Seconds(cw.Blocked), l)
		p.Gauge("weaksets_weakness_max_snapshot_age_seconds", "Oldest governing snapshot served, per collection.", obs.Seconds(cw.MaxSnapshotAge), l)
		for outcome, n := range cw.Outcomes {
			p.Counter("weaksets_weakness_outcome_total", "Run terminal states by outcome.", float64(n), l, obs.Label{Key: "outcome", Value: outcome})
		}
	}

	// Rolling windowed weakness series: quantiles over the sliding
	// window, with the p99 sample carrying the exemplar trace of the
	// worst traced run in the window — /trace?id= explains the outlier.
	const (
		winSecondsHelp = "Rolling-window weakness durations (run latency, snapshot age, lease age) by quantile."
		winEventsHelp  = "Rolling-window per-run weakness counts (skew, ghosts, duplicates, skips) by quantile."
		winRunsHelp    = "Samples in the rolling weakness window."
	)
	for _, cwin := range g.weakness.Windows() {
		l := coll(cwin.Collection)
		emit := func(family, help string, metric string, snap obs.WindowSnapshot, toV func(time.Duration) float64) {
			ml := obs.Label{Key: "metric", Value: metric}
			p.Family(family, "gauge", help)
			p.Sample(family, toV(snap.P50), l, ml, obs.Label{Key: "stat", Value: "p50"})
			p.Sample(family, toV(snap.P95), l, ml, obs.Label{Key: "stat", Value: "p95"})
			var exTrace obs.TraceID
			exValue := 0.0
			if snap.Exemplar != nil {
				exTrace = snap.Exemplar.Trace
				exValue = toV(snap.Exemplar.Value)
			}
			p.SampleExemplar(family, toV(snap.P99), exTrace, exValue, l, ml, obs.Label{Key: "stat", Value: "p99"})
			p.Sample(family, toV(snap.Max), l, ml, obs.Label{Key: "stat", Value: "max"})
			p.Gauge("weaksets_weakness_window_runs", winRunsHelp, float64(snap.Count), l, ml)
		}
		for _, metric := range obs.WindowSecondsMetrics {
			if snap, ok := cwin.Metrics[metric]; ok {
				emit("weaksets_weakness_window_seconds", winSecondsHelp, metric, snap, obs.Seconds)
			}
		}
		for _, metric := range obs.WindowEventMetrics {
			if snap, ok := cwin.Metrics[metric]; ok {
				emit("weaksets_weakness_window_events", winEventsHelp, metric, snap, func(d time.Duration) float64 { return float64(d) })
			}
		}
	}

	if g.journal != nil {
		st := g.journal.Stats()
		types := make([]string, 0, len(st.ByType))
		for typ := range st.ByType {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			p.Counter("weaksets_events_total", "Journal events recorded, by type.", float64(st.ByType[typ]), obs.Label{Key: "type", Value: typ})
		}
		p.Counter("weaksets_events_dropped_total", "Journal events overwritten by the bounded ring.", float64(st.Dropped))
		p.Gauge("weaksets_events_retained", "Journal events currently retained.", float64(st.Retained))
		p.Gauge("weaksets_events_capacity", "Journal ring capacity.", float64(st.Capacity))
	}

	bs := g.client.Bus().Stats()
	p.Counter("weaksets_bus_calls_total", "Simulated-bus RPC calls issued by this process.", float64(bs.Calls))
	p.Counter("weaksets_bus_failures_total", "Simulated-bus RPC transport failures.", float64(bs.Failures))

	node := obs.Label{Key: "node", Value: string(g.dir)}
	if es, err := g.client.StoreStats(r.Context(), g.dir); err != nil {
		p.Gauge("weaksets_store_up", "Whether the directory store answered the stats probe.", 0, node)
	} else {
		p.Gauge("weaksets_store_up", "Whether the directory store answered the stats probe.", 1, node)
		p.Gauge("weaksets_store_objects", "Objects resident in the storage engine.", float64(es.Objects), node)
		p.Gauge("weaksets_store_collections", "Collections resident in the storage engine.", float64(es.Collections), node)
		p.Gauge("weaksets_store_shards", "Storage engine shard count.", float64(es.Shards), node)
		p.Counter("weaksets_store_batch_total", "Engine batch-get round trips.", float64(es.Batch.Batches), node)
		p.Counter("weaksets_store_batched_gets_total", "Gets served through engine batches.", float64(es.Batch.BatchedGets), node)
		p.Counter("weaksets_store_batch_rtt_saved_total", "Round trips avoided by batching.", float64(es.Batch.RTTSaved), node)
		p.Counter("weaksets_store_batch_not_modified_total", "Batch-get entries answered NotModified (version matched).", float64(es.Batch.NotModified), node)
		p.Counter("weaksets_store_batch_bytes_shipped_total", "Object payload bytes shipped by batch gets.", float64(es.Batch.BytesShipped), node)
		p.Counter("weaksets_store_batch_bytes_saved_total", "Object payload bytes elided by NotModified answers.", float64(es.Batch.BytesSaved), node)
		for _, op := range es.Ops {
			l := []obs.Label{node, {Key: "op", Value: op.Op}}
			p.Counter("weaksets_store_op_total", "Storage-engine operations by op.", float64(op.Count), l...)
			p.Counter("weaksets_store_op_errors_total", "Storage-engine operation errors by op.", float64(op.Errors), l...)
			p.Gauge("weaksets_store_op_latency_seconds", "Storage-engine op latency (mean and quantiles).",
				obs.Seconds(op.Mean), append(l, obs.Label{Key: "stat", Value: "mean"})...)
			p.Gauge("weaksets_store_op_latency_seconds", "Storage-engine op latency (mean and quantiles).",
				obs.Seconds(op.P50), append(l, obs.Label{Key: "stat", Value: "p50"})...)
			p.Gauge("weaksets_store_op_latency_seconds", "Storage-engine op latency (mean and quantiles).",
				obs.Seconds(op.P99), append(l, obs.Label{Key: "stat", Value: "p99"})...)
		}
	}

	g.tmu.Lock()
	sources := append([]transportSource(nil), g.transports...)
	g.tmu.Unlock()
	for _, src := range sources {
		ts := src.stats()
		l := obs.Label{Key: "transport", Value: src.name}
		p.Counter("weaksets_transport_dials_total", "TCP transport dials.", float64(ts.Dials), l)
		p.Counter("weaksets_transport_reconnects_total", "TCP transport reconnects.", float64(ts.Reconnects), l)
		p.Gauge("weaksets_transport_inflight", "Calls currently multiplexed in flight.", float64(ts.InFlight), l)
		p.Gauge("weaksets_transport_inflight_max", "High-water mark of multiplexed in-flight calls.", float64(ts.MaxInFlight), l)
		p.Counter("weaksets_transport_calls_total", "TCP transport calls.", float64(ts.Calls), l)
		p.Counter("weaksets_transport_failures_total", "TCP transport call failures.", float64(ts.Failures), l)
		if ts.Codec != "" {
			p.Gauge("weaksets_transport_codec", "Negotiated wire codec (1 for the active codec).",
				1, l, obs.Label{Key: "codec", Value: ts.Codec})
		}
		p.Counter("weaksets_transport_bytes_sent_total", "Wire bytes sent over the TCP transport (all methods, handshakes included).", float64(ts.BytesSent), l)
		p.Counter("weaksets_transport_bytes_received_total", "Wire bytes received over the TCP transport (all methods, handshakes included).", float64(ts.BytesReceived), l)
		for _, m := range ts.Methods {
			ml := []obs.Label{l, {Key: "method", Value: m.Method}}
			p.Counter("weaksets_transport_method_calls_total", "TCP transport calls by method.", float64(m.Count), ml...)
			p.Counter("weaksets_transport_method_errors_total", "TCP transport call errors by method.", float64(m.Errors), ml...)
			p.Counter("weaksets_rpc_bytes_sent_total", "Wire bytes sent, by transport and method.", float64(m.BytesSent), ml...)
			p.Counter("weaksets_rpc_bytes_received_total", "Wire bytes received, by transport and method.", float64(m.BytesReceived), ml...)
			p.Gauge("weaksets_transport_method_rtt_seconds", "TCP transport round-trip time (mean and quantiles).",
				obs.Seconds(m.Mean), append(ml, obs.Label{Key: "stat", Value: "mean"})...)
			p.Gauge("weaksets_transport_method_rtt_seconds", "TCP transport round-trip time (mean and quantiles).",
				obs.Seconds(m.P50), append(ml, obs.Label{Key: "stat", Value: "p50"})...)
			p.Gauge("weaksets_transport_method_rtt_seconds", "TCP transport round-trip time (mean and quantiles).",
				obs.Seconds(m.P99), append(ml, obs.Label{Key: "stat", Value: "p99"})...)
		}
	}

	if g.cache != nil {
		cs := g.cache.Stats()
		p.Gauge("weaksets_cache_entries", "Objects resident in the element cache.", float64(g.cache.Len()))
		p.Counter("weaksets_cache_stores_total", "New entries admitted to the element cache.", float64(cs.Stores))
		p.Counter("weaksets_cache_hits_total", "Cache serves with no RPC (fresh under the governing listing).", float64(cs.Hits))
		p.Counter("weaksets_cache_validated_hits_total", "Cache serves confirmed by a NotModified validation.", float64(cs.ValidatedHits))
		p.Counter("weaksets_cache_negative_hits_total", "Absences served from negative cache entries.", float64(cs.NegativeHits))
		p.Counter("weaksets_cache_bytes_saved_total", "Object payload bytes not re-fetched thanks to the cache.", float64(cs.BytesSaved))
		p.Counter("weaksets_cache_coalesces_total", "Callers that joined another caller's in-flight fetch.", float64(cs.Coalesces))
		p.Counter("weaksets_cache_stale_serves_total", "Stale cached copies served because the owner was unreachable.", float64(cs.StaleServes))
		p.Counter("weaksets_cache_misses_total", "Lookups the cache could not answer.", float64(cs.Misses))
		p.Counter("weaksets_cache_evictions_total", "Entries evicted by the LRU capacity bound.", float64(cs.Evictions))
		p.Counter("weaksets_cache_drops_total", "Entries dropped by local deletes.", float64(cs.Drops))
	}

	if ls := g.client.Leases(); ls != nil {
		st := ls.Stats()
		active := 0.0
		if st.Active {
			active = 1
		}
		p.Gauge("weaksets_lease_active", "Whether a live Watch stream currently backs the client's leases.", active)
		p.Gauge("weaksets_lease_held", "Collections currently covered by an unexpired lease.", float64(st.Held))
		p.Counter("weaksets_lease_grants_total", "Lease grants obtained over the Watch stream.", float64(st.Grants))
		p.Counter("weaksets_lease_renewals_total", "Lease renewals, explicit and piggybacked on RPC replies.", float64(st.Renewals))
		p.Counter("weaksets_lease_invalidations_total", "Invalidations pushed by the directory and applied.", float64(st.Invalidations))
		p.Counter("weaksets_lease_breaks_total", "Leases dropped on stream loss or shutdown.", float64(st.Breaks))
	}

	for _, t := range g.tracers {
		st := t.Stats()
		l := obs.Label{Key: "process", Value: st.Process}
		p.Counter("weaksets_tracer_spans_started_total", "Spans started.", float64(st.Started), l)
		p.Counter("weaksets_tracer_spans_finished_total", "Spans completed into the ring buffer.", float64(st.Finished), l)
		p.Counter("weaksets_tracer_spans_dropped_total", "Completed spans evicted from the ring buffer.", float64(st.Dropped), l)
		p.Counter("weaksets_trace_dropped_total", "Whole traces no longer resolvable because the ring evicted spans.", float64(st.Dropped), l)
		p.Gauge("weaksets_tracer_spans_retained", "Completed spans currently retained.", float64(st.Retained), l)
		p.Gauge("weaksets_tracer_sample", "Sampling divisor (1 = every trace).", float64(st.Sample), l)
	}
	_ = p.Err()
}

// traceSummary is one root span in the no-id /trace listing.
type traceSummary struct {
	ID      obs.TraceID `json:"id"`
	Name    string      `json:"name"`
	Process string      `json:"process"`
	Start   time.Time   `json:"start"`
	Dur     int64       `json:"durationNs"`
	Attrs   []obs.Attr  `json:"attrs,omitempty"`
}

// handleTrace serves one trace's spans (?id=, merged across every
// registered tracer so cross-process traces come back whole) or, without
// an id, the retained root spans newest-first — the menu of trace ids a
// client can ask for.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	idParam := r.URL.Query().Get("id")
	w.Header().Set("Content-Type", "application/json")
	if idParam == "" {
		var roots []traceSummary
		for _, t := range g.tracers {
			for _, rec := range t.Spans() {
				if rec.Parent != 0 {
					continue
				}
				roots = append(roots, traceSummary{
					ID: rec.Trace, Name: rec.Name, Process: rec.Process,
					Start: rec.Start, Dur: int64(rec.Dur), Attrs: rec.Attrs,
				})
			}
		}
		// Newest first: the trace someone just produced is the one they
		// want to look up.
		for i, j := 0, len(roots)-1; i < j; i, j = i+1, j-1 {
			roots[i], roots[j] = roots[j], roots[i]
		}
		_ = json.NewEncoder(w).Encode(struct {
			Traces []traceSummary `json:"traces"`
		}{Traces: roots})
		return
	}
	id, err := obs.ParseTraceID(idParam)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad trace id %q", idParam)
		return
	}
	var spans []obs.SpanRecord
	for _, t := range g.tracers {
		spans = append(spans, t.Trace(id)...)
	}
	if len(spans) == 0 {
		jsonError(w, http.StatusNotFound, "trace %s not retained", id)
		return
	}
	obs.SortSpans(spans)
	_ = json.NewEncoder(w).Encode(struct {
		Trace obs.TraceID      `json:"trace"`
		Spans []obs.SpanRecord `json:"spans"`
	}{Trace: id, Spans: spans})
}
