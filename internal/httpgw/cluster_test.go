package httpgw

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"weaksets/internal/metrics"
	"weaksets/internal/obs"
)

// TestClusterEndpoint builds a 3-node fleet (three gateways, each with
// its own registry), feeds every node a known latency distribution, and
// checks GET /cluster against the ground truth: merged quantiles must
// equal the exact quantiles of the pooled samples, because the pooled
// count stays under the merge reservoir bound — reservoir merging only
// approximates beyond it.
func TestClusterEndpoint(t *testing.T) {
	worlds := make([]*gwWorld, 3)
	regs := make([]*obs.Registry, 3)
	for i := range worlds {
		worlds[i], _, regs[i] = newObsWorld(t)
	}
	exact := metrics.NewHistogram(0)
	var want obs.CollectionWeakness
	want.Collection = "menus"
	for i, reg := range regs {
		for j := 0; j < 100; j++ {
			d := time.Duration(i*100+j+1) * time.Millisecond
			reg.Observe(obs.WeaknessReport{
				Collection: "menus",
				Duration:   d,
				Yielded:    int64(j % 7),
				Outcome:    "returns",
			})
			exact.Record(d)
			want.Runs++
			want.Yielded += int64(j % 7)
		}
	}
	worlds[0].gw.AddPeer("b", worlds[1].srv.URL)
	worlds[0].gw.AddPeer("c", worlds[2].srv.URL)
	worlds[0].gw.AddPeer("dead", "http://127.0.0.1:1")
	worlds[0].gw.PeerTimeout = 5 * time.Second

	resp, body := worlds[0].get(t, "/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out clusterBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	if len(out.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(out.Nodes))
	}
	ok := 0
	for _, n := range out.Nodes {
		if n.OK {
			ok++
		} else if n.Name != "dead" || n.Error == "" {
			t.Errorf("unexpected failed node %+v", n)
		}
	}
	if ok != 3 {
		t.Fatalf("reachable nodes = %d, want 3", ok)
	}

	var menus *clusterCollectionInfo
	for i := range out.Collections {
		if out.Collections[i].Collection == "menus" {
			menus = &out.Collections[i]
		}
	}
	if menus == nil {
		t.Fatalf("no menus collection in %s", body)
	}
	if menus.Nodes != 3 {
		t.Errorf("menus.Nodes = %d, want 3", menus.Nodes)
	}
	if menus.Aggregate.Runs != want.Runs || menus.Aggregate.Yielded != want.Yielded {
		t.Errorf("aggregate = runs %d yielded %d, want runs %d yielded %d",
			menus.Aggregate.Runs, menus.Aggregate.Yielded, want.Runs, want.Yielded)
	}
	if menus.Aggregate.Outcomes["returns"] != want.Runs {
		t.Errorf("outcomes[returns] = %d, want %d", menus.Aggregate.Outcomes["returns"], want.Runs)
	}

	lat, ok2 := menus.Windows[obs.WinLatency]
	if !ok2 {
		t.Fatalf("no latency window in %v", menus.Windows)
	}
	if lat.Count != 300 {
		t.Errorf("latency count = %d, want 300", lat.Count)
	}
	// 300 pooled samples <= the merge bound, so the merged reservoir is
	// the exact union: quantiles must match the pooled histogram exactly.
	wantSnap := obs.SnapshotOf(exact, nil)
	if lat.P50 != wantSnap.P50 || lat.P95 != wantSnap.P95 || lat.P99 != wantSnap.P99 {
		t.Errorf("merged quantiles p50/p95/p99 = %v/%v/%v, want %v/%v/%v",
			lat.P50, lat.P95, lat.P99, wantSnap.P50, wantSnap.P95, wantSnap.P99)
	}
	if lat.Min != wantSnap.Min || lat.Max != wantSnap.Max || lat.Sum != wantSnap.Sum {
		t.Errorf("merged min/max/sum = %v/%v/%v, want %v/%v/%v",
			lat.Min, lat.Max, lat.Sum, wantSnap.Min, wantSnap.Max, wantSnap.Sum)
	}
}

// TestEventsEndpoint drives the journal through the gateway surface:
// recorded events come back through GET /events, and the type,
// collection, since, and limit filters narrow them.
func TestEventsEndpoint(t *testing.T) {
	w, _, _ := newObsWorld(t)
	j := w.gw.journal
	j.Record(obs.Event{Type: obs.EvLeaseGrant, Collection: "menus", Node: "dir"})
	j.Record(obs.Event{Type: obs.EvLeaseBreak, Collection: "menus", Node: "dir"})
	j.Record(obs.Event{Type: obs.EvReconnect, Attrs: map[string]int64{"dials": 2}})

	type eventsBody struct {
		Events []obs.Event      `json:"events"`
		Stats  obs.JournalStats `json:"stats"`
	}
	fetch := func(query string) eventsBody {
		t.Helper()
		resp, body := w.get(t, "/events"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /events%s status = %d: %s", query, resp.StatusCode, body)
		}
		var out eventsBody
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := fetch("")
	if len(all.Events) != 3 || all.Stats.Recorded != 3 || all.Stats.Retained != 3 {
		t.Fatalf("all events = %d (stats %+v), want 3", len(all.Events), all.Stats)
	}
	if all.Events[0].Seq != 1 || all.Events[2].Seq != 3 {
		t.Errorf("events not oldest-first: %+v", all.Events)
	}
	if got := fetch("?type=" + obs.EvLeaseGrant); len(got.Events) != 1 || got.Events[0].Type != obs.EvLeaseGrant {
		t.Errorf("type filter = %+v", got.Events)
	}
	if got := fetch("?coll=menus"); len(got.Events) != 2 {
		t.Errorf("coll filter = %+v", got.Events)
	}
	if got := fetch("?since=1"); len(got.Events) != 2 || got.Events[0].Seq != 2 {
		t.Errorf("since filter = %+v", got.Events)
	}
	if got := fetch("?limit=1"); len(got.Events) != 1 || got.Events[0].Seq != 3 {
		t.Errorf("limit filter = %+v (want the most recent)", got.Events)
	}
	if resp, _ := w.get(t, "/events?since=x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since status = %d", resp.StatusCode)
	}
	if resp, _ := w.get(t, "/events?limit=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", resp.StatusCode)
	}
}

// TestMetricsExemplars checks the tail-explanation loop end to end: the
// p99 sample of a latency window and of a skew window each carry an
// exemplar trace id in /metrics, and that id resolves to retained spans
// via /trace?id=.
func TestMetricsExemplars(t *testing.T) {
	w, _, weakness := newObsWorld(t)
	if resp, body := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	rep, ok := weakness.Last("menus")
	if !ok || rep.Trace == 0 {
		t.Fatalf("query left no traced report: %+v", rep)
	}
	// A skewed run, reusing the traced run's id so the exemplar resolves:
	// the listing moved twice underneath it.
	weakness.Observe(obs.WeaknessReport{
		Collection: "menus", Trace: rep.Trace, Duration: rep.Duration,
		ListingSkew: 2, Outcome: "returns",
	})

	_, body := w.get(t, "/metrics")
	_, exemplars := parsePromText(t, string(body))

	for _, key := range []string{
		`weaksets_weakness_window_seconds{collection="menus",metric="latency",stat="p99"}`,
		`weaksets_weakness_window_events{collection="menus",metric="listing_skew",stat="p99"}`,
	} {
		id, ok := exemplars[key]
		if !ok {
			t.Errorf("no exemplar on %s", key)
			continue
		}
		resp, tbody := w.get(t, "/trace?id="+id)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exemplar %s on %s does not resolve: status %d: %s", id, key, resp.StatusCode, tbody)
			continue
		}
		var out struct {
			Spans []obs.SpanRecord `json:"spans"`
		}
		if err := json.Unmarshal(tbody, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Spans) == 0 {
			t.Errorf("exemplar %s resolved to no spans", id)
		}
	}
}

// TestMetricsFamilyGolden pins the set of /metrics family names (and
// their types) so renames break loudly. Regenerate with
// `go test ./internal/httpgw -run FamilyGolden -update`.
func TestMetricsFamilyGolden(t *testing.T) {
	w, _, _ := newObsWorld(t)
	if resp, body := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	// One journal event so the weaksets_events_total family has a sample.
	w.gw.journal.Record(obs.Event{Type: obs.EvLeaseGrant, Collection: "menus"})

	_, body := w.get(t, "/metrics")
	parsePromText(t, string(body)) // format validity first

	var families []string
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, rest)
		}
	}
	sort.Strings(families)
	got := strings.Join(families, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_families.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("/metrics family set drifted from %s:\n--- got ---\n%s--- want ---\n%s(run with -update if intentional)",
			golden, got, want)
	}
	for _, name := range []string{
		"weaksets_weakness_window_seconds gauge",
		"weaksets_weakness_window_events gauge",
		"weaksets_events_total counter",
		"weaksets_events_dropped_total counter",
		"weaksets_trace_dropped_total counter",
	} {
		if !strings.Contains(got, name+"\n") {
			t.Errorf("family %q missing from /metrics", name)
		}
	}
}
