// Package httpgw exposes weak-set queries over HTTP — the wide-area
// information-system face of the library (§1: "weak sets are more
// generally abstractions useful for … wide-area information systems and
// their applications, e.g., the World Wide Web"). A gateway node serves:
//
//	GET /semantics                     the design space + §4 taxonomy
//	GET /specs/{figure}                the formal spec text
//	GET /collections/{coll}            membership listing (one round trip)
//	GET /query?coll=&q=&sem=           streamed NDJSON query results
//	GET /stats[?coll=]                 storage-engine + TCP transport counters
//	GET /metrics                       Prometheus text-format exposition
//	GET /trace[?id=]                   sampled traces: listing, or one trace's spans
//
// Query results stream one JSON object per element as it is yielded — the
// HTTP rendition of the paper's incremental retrieval — and end with a
// summary record carrying the iterator's outcome (`returns`, `fails`,
// `blocked`).
package httpgw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/query"
	"weaksets/internal/repo"
	"weaksets/internal/spec"
	"weaksets/internal/store"
	"weaksets/internal/tcprpc"
)

// Gateway serves the HTTP surface for one repository client.
type Gateway struct {
	client   *repo.Client
	dir      netsim.NodeID
	lockNode netsim.NodeID
	mux      *http.ServeMux
	// QueryTimeout bounds each query's virtual patience via context.
	// Defaults to 30s wall.
	QueryTimeout time.Duration

	tmu        sync.Mutex
	transports []transportSource

	// cache is the element cache serving the gateway's queries, set by
	// UseCache.
	cache *repo.Cache

	// Observability wiring, set by UseObs / UseJournal.
	weakness *obs.Registry
	tracers  []*obs.Tracer
	journal  *obs.Journal

	// Per-collection replica sets for read routing, set by UseReplicas.
	rmu      sync.Mutex
	replicas map[string]core.ReplicaConfig

	// Cluster scatter-gather wiring, set by AddPeer.
	pmu   sync.Mutex
	peers []clusterPeer
	// PeerTimeout bounds each peer's /stats fetch in /cluster.
	// Defaults to 2s.
	PeerTimeout time.Duration
}

// transportSource is one registered TCP transport feeding /stats.
type transportSource struct {
	name  string
	stats func() tcprpc.TransportStats
}

// AddTransport registers a TCP transport stats source (typically a
// tcprpc Gateway's Stats method) under the given name; /stats then
// reports its connection churn, in-flight gauge, and per-method RTTs
// alongside the storage-engine counters.
func (g *Gateway) AddTransport(name string, stats func() tcprpc.TransportStats) {
	g.tmu.Lock()
	defer g.tmu.Unlock()
	g.transports = append(g.transports, transportSource{name: name, stats: stats})
}

// UseCache wires an element cache into the gateway: /query runs read
// through it (snapshot queries serve warm entries with no RPC,
// current-state queries revalidate by version), and /stats and /metrics
// report its counters. Call it before serving traffic.
func (g *Gateway) UseCache(cache *repo.Cache) {
	g.cache = cache
	g.client.UseCache(cache)
}

// UseReplicas registers a collection's replica set (home first, as
// returned by cluster.Replicate) so /query runs on that collection route
// reads to the closest live replica, scatter partition listings across
// the set, and report replica staleness through the weakness registry.
// Call once per replicated collection, before serving.
func (g *Gateway) UseReplicas(coll string, nodes []netsim.NodeID) {
	g.rmu.Lock()
	defer g.rmu.Unlock()
	if g.replicas == nil {
		g.replicas = make(map[string]core.ReplicaConfig)
	}
	g.replicas[coll] = core.ReplicaConfig{Nodes: nodes}
}

// replicaConfig returns the registered replica set for a collection; the
// zero config (no routing) when none was registered.
func (g *Gateway) replicaConfig(coll string) core.ReplicaConfig {
	g.rmu.Lock()
	defer g.rmu.Unlock()
	return g.replicas[coll]
}

// New builds a gateway reading through client, with collections hosted on
// dir and the lock service on lockNode.
func New(client *repo.Client, dir, lockNode netsim.NodeID) *Gateway {
	g := &Gateway{
		client:       client,
		dir:          dir,
		lockNode:     lockNode,
		mux:          http.NewServeMux(),
		QueryTimeout: 30 * time.Second,
	}
	g.mux.HandleFunc("GET /semantics", g.handleSemantics)
	g.mux.HandleFunc("GET /specs/{figure}", g.handleSpec)
	g.mux.HandleFunc("GET /collections/{coll}", g.handleCollection)
	g.mux.HandleFunc("GET /query", g.handleQuery)
	g.mux.HandleFunc("GET /stats", g.handleStats)
	return g
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// semanticsInfo is one design-space point in the /semantics listing.
type semanticsInfo struct {
	Name        string `json:"name"`
	Figure      string `json:"figure"`
	Constraint  string `json:"constraint"`
	Consistency string `json:"consistency"`
	Currency    string `json:"currency"`
	Snapshot    bool   `json:"usesSnapshot"`
}

func (g *Gateway) handleSemantics(w http.ResponseWriter, _ *http.Request) {
	out := make([]semanticsInfo, 0, len(core.AllSemantics()))
	for _, sem := range core.AllSemantics() {
		cons, curr := spec.Taxonomy(sem.Figure())
		out = append(out, semanticsInfo{
			Name:        sem.String(),
			Figure:      sem.Figure().String(),
			Constraint:  sem.Constraint().String(),
			Consistency: cons.String(),
			Currency:    curr.String(),
			Snapshot:    sem.UsesSnapshot(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (g *Gateway) handleSpec(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("figure")
	for _, fig := range spec.Figures() {
		if fig.String() == name || strings.EqualFold(name, strings.SplitN(fig.String(), "-", 2)[0]) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, spec.Render(fig))
			return
		}
	}
	jsonError(w, http.StatusNotFound, "unknown figure %q", name)
}

// memberInfo is one member in a collection listing.
type memberInfo struct {
	ID        string `json:"id"`
	Node      string `json:"node"`
	Reachable bool   `json:"reachable"`
}

func (g *Gateway) handleCollection(w http.ResponseWriter, r *http.Request) {
	coll := r.PathValue("coll")
	members, version, err := g.client.List(r.Context(), g.dir, coll)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, repo.ErrNoCollection) {
			status = http.StatusNotFound
		}
		jsonError(w, status, "list %q: %v", coll, err)
		return
	}
	out := struct {
		Collection string       `json:"collection"`
		Version    uint64       `json:"version"`
		Members    []memberInfo `json:"members"`
	}{Collection: coll, Version: version, Members: make([]memberInfo, 0, len(members))}
	for _, ref := range members {
		out.Members = append(out.Members, memberInfo{
			ID:        string(ref.ID),
			Node:      string(ref.Node),
			Reachable: g.client.Reachable(ref),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// elementRecord is one streamed query result.
type elementRecord struct {
	Kind  string            `json:"kind"` // "element"
	ID    string            `json:"id"`
	Node  string            `json:"node"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Bytes int               `json:"bytes"`
	Stale bool              `json:"stale,omitempty"`
}

// summaryRecord terminates a query stream.
type summaryRecord struct {
	Kind     string `json:"kind"` // "summary"
	Outcome  string `json:"outcome"`
	Matches  int    `json:"matches"`
	Examined int    `json:"examined"`
	Error    string `json:"error,omitempty"`
}

// opInfo is one engine operation in the /stats body; latencies are
// reported in milliseconds for dashboard friendliness.
type opInfo struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// transportMethodInfo is one method row in a /stats transport block;
// round-trip latencies are reported in milliseconds.
type transportMethodInfo struct {
	Method        string  `json:"method"`
	Count         int64   `json:"count"`
	Errors        int64   `json:"errors"`
	MeanMs        float64 `json:"meanMs"`
	P50Ms         float64 `json:"p50Ms"`
	P99Ms         float64 `json:"p99Ms"`
	BytesSent     int64   `json:"bytesSent"`
	BytesReceived int64   `json:"bytesReceived"`
}

// transportInfo is one registered TCP transport in the /stats body.
type transportInfo struct {
	Name          string                `json:"name"`
	Addr          string                `json:"addr"`
	Codec         string                `json:"codec,omitempty"`
	Dials         int64                 `json:"dials"`
	Reconnects    int64                 `json:"reconnects"`
	InFlight      int64                 `json:"inFlight"`
	MaxInFlight   int64                 `json:"maxInFlight"`
	Calls         int64                 `json:"calls"`
	Failures      int64                 `json:"failures"`
	BytesSent     int64                 `json:"bytesSent"`
	BytesReceived int64                 `json:"bytesReceived"`
	Methods       []transportMethodInfo `json:"methods,omitempty"`
}

// cacheInfo is the element-cache block of /stats. Lease reports the
// client's push-invalidation lease state when one is attached — grants,
// piggybacked renewals, pushed invalidations, and stream breaks — since
// leases are what let the cache answer without revalidating.
type cacheInfo struct {
	Entries int              `json:"entries"`
	Stats   repo.CacheStats  `json:"stats"`
	Lease   *repo.LeaseStats `json:"lease,omitempty"`
}

// collStatsInfo is the optional per-collection block of /stats.
type collStatsInfo struct {
	Collection string `json:"collection"`
	Members    int    `json:"members"`
	Ghosts     int    `json:"ghosts"`
	Pins       int    `json:"pins"`
	Tokens     int    `json:"tokens"`
	Version    uint64 `json:"version"`
	Partitions int    `json:"partitions"`
}

// weaknessStatsInfo is one collection's weakness block in /stats: the
// lifetime aggregate plus the rolling windowed series (with reservoir
// samples, so /cluster can merge per-node series into one view).
type weaknessStatsInfo struct {
	Collection string                        `json:"collection"`
	Aggregate  obs.CollectionWeakness        `json:"aggregate"`
	Windows    map[string]obs.WindowSnapshot `json:"windows"`
}

// weaknessStats assembles the per-collection weakness block from the
// gateway's registry (nil when no registry is wired).
func (g *Gateway) weaknessStats() []weaknessStatsInfo {
	if g.weakness == nil {
		return nil
	}
	aggs := g.weakness.Snapshot()
	byColl := make(map[string]obs.CollectionWeakness, len(aggs))
	for _, cw := range aggs {
		byColl[cw.Collection] = cw
	}
	wins := g.weakness.Windows()
	out := make([]weaknessStatsInfo, 0, len(wins))
	for _, cw := range wins {
		out = append(out, weaknessStatsInfo{
			Collection: cw.Collection,
			Aggregate:  byColl[cw.Collection],
			Windows:    cw.Metrics,
		})
	}
	return out
}

// statsBody is the GET /stats response document. /cluster decodes the
// node and weakness fields of peers' bodies to build its merged view.
type statsBody struct {
	Node        string              `json:"node"`
	Engine      string              `json:"engine"`
	Shards      int                 `json:"shards"`
	Objects     int                 `json:"objects"`
	Collections int                 `json:"collections"`
	Batch       store.BatchStats    `json:"batch"`
	Ops         []opInfo            `json:"ops"`
	Cache       *cacheInfo          `json:"cache,omitempty"`
	Transports  []transportInfo     `json:"transports,omitempty"`
	Weakness    []weaknessStatsInfo `json:"weakness,omitempty"`
	Events      *obs.JournalStats   `json:"events,omitempty"`
	Collection  *collStatsInfo      `json:"collectionStats,omitempty"`
}

// handleStats reports the directory node's storage-engine counters —
// per-operation counts and latency quantiles — plus the per-collection
// weakness block (aggregates + rolling windows) and, with ?coll=, one
// collection's membership counters.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	es, err := g.client.StoreStats(r.Context(), g.dir)
	if err != nil {
		jsonError(w, http.StatusBadGateway, "store stats: %v", err)
		return
	}
	out := statsBody{
		Node:        string(g.dir),
		Engine:      es.Engine,
		Shards:      es.Shards,
		Objects:     es.Objects,
		Collections: es.Collections,
		Batch:       es.Batch,
		Ops:         make([]opInfo, 0, len(es.Ops)),
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, op := range es.Ops {
		out.Ops = append(out.Ops, opInfo{
			Op:     op.Op,
			Count:  op.Count,
			Errors: op.Errors,
			MeanMs: ms(op.Mean),
			P50Ms:  ms(op.P50),
			P99Ms:  ms(op.P99),
		})
	}
	if g.cache != nil {
		out.Cache = &cacheInfo{Entries: g.cache.Len(), Stats: g.cache.Stats()}
	}
	if ls := g.client.Leases(); ls != nil {
		// Leases can be attached without a cache (listing revalidation
		// alone benefits); give them a cache block to live in either way.
		if out.Cache == nil {
			out.Cache = &cacheInfo{}
		}
		st := ls.Stats()
		out.Cache.Lease = &st
	}
	g.tmu.Lock()
	sources := append([]transportSource(nil), g.transports...)
	g.tmu.Unlock()
	for _, src := range sources {
		ts := src.stats()
		ti := transportInfo{
			Name:          src.name,
			Addr:          ts.Addr,
			Codec:         ts.Codec,
			Dials:         ts.Dials,
			Reconnects:    ts.Reconnects,
			InFlight:      ts.InFlight,
			MaxInFlight:   ts.MaxInFlight,
			Calls:         ts.Calls,
			Failures:      ts.Failures,
			BytesSent:     ts.BytesSent,
			BytesReceived: ts.BytesReceived,
		}
		for _, m := range ts.Methods {
			ti.Methods = append(ti.Methods, transportMethodInfo{
				Method:        m.Method,
				Count:         m.Count,
				Errors:        m.Errors,
				MeanMs:        ms(m.Mean),
				P50Ms:         ms(m.P50),
				P99Ms:         ms(m.P99),
				BytesSent:     m.BytesSent,
				BytesReceived: m.BytesReceived,
			})
		}
		out.Transports = append(out.Transports, ti)
	}
	out.Weakness = g.weaknessStats()
	if g.journal != nil {
		st := g.journal.Stats()
		out.Events = &st
	}
	if coll := r.URL.Query().Get("coll"); coll != "" {
		cs, err := g.client.Stats(r.Context(), g.dir, coll)
		if err != nil {
			status := http.StatusBadGateway
			if errors.Is(err, repo.ErrNoCollection) {
				status = http.StatusNotFound
			}
			jsonError(w, status, "stats %q: %v", coll, err)
			return
		}
		out.Collection = &collStatsInfo{
			Collection: coll,
			Members:    cs.Members,
			Ghosts:     cs.Ghosts,
			Pins:       cs.Pins,
			Tokens:     cs.Tokens,
			Version:    cs.Version,
			Partitions: cs.Partitions,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	coll := q.Get("coll")
	if coll == "" {
		jsonError(w, http.StatusBadRequest, "missing coll parameter")
		return
	}
	predicate := q.Get("q")
	if predicate == "" {
		predicate = `true_ == "" || true_ != ""` // match everything
	}
	qry, err := query.New(g.client, g.dir, coll, predicate)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad predicate: %v", err)
		return
	}

	opts := query.Options{}
	// batch tunes the fetch pipeline: ids per batch RPC; 1 disables
	// batching, 0 keeps the default.
	batch := 0
	if bs := q.Get("batch"); bs != "" {
		if parsed, err := strconv.Atoi(bs); err == nil && parsed > 0 {
			batch = parsed
		}
	}
	semName := q.Get("sem")
	if semName == "" {
		semName = "dynamic"
	}
	if semName == "dynamic" {
		opts.Dynamic = true
		width := 8
		if ws := q.Get("width"); ws != "" {
			if parsed, err := strconv.Atoi(ws); err == nil && parsed > 0 {
				width = parsed
			}
		}
		opts.DynOptions = core.DynOptions{Width: width, Batch: batch}
	} else {
		sem, ok := core.SemanticsByName(semName)
		if !ok {
			jsonError(w, http.StatusBadRequest, "unknown semantics %q", semName)
			return
		}
		opts.Semantics = sem
		opts.SetOptions = core.Options{
			LockServer: g.lockNode,
			MaxBlock:   10 * time.Second,
			Fetch:      core.FetchOptions{Batch: batch, Disable: batch == 1, Cache: g.cache},
			Replicas:   g.replicaConfig(coll),
		}
	}

	// Queries the gateway runs are themselves observable: they trace
	// through the gateway's own tracer and feed the weakness registry.
	if opts.Dynamic {
		opts.DynOptions.Tracer = g.localTracer()
		opts.DynOptions.Weakness = g.weakness
	} else {
		opts.SetOptions.Tracer = g.localTracer()
		opts.SetOptions.Weakness = g.weakness
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.QueryTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	matches := 0
	examined, runErr := qry.Stream(ctx, opts, func(res query.Result) bool {
		matches++
		e := res.Element
		_ = enc.Encode(elementRecord{
			Kind:  "element",
			ID:    string(e.Ref.ID),
			Node:  string(e.Ref.Node),
			Attrs: e.Attrs,
			Bytes: len(e.Data),
			Stale: e.Stale,
		})
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})

	summary := summaryRecord{Kind: "summary", Matches: matches, Examined: examined}
	switch {
	case runErr == nil:
		summary.Outcome = "returns"
	case errors.Is(runErr, core.ErrFailure):
		summary.Outcome = "fails"
		summary.Error = runErr.Error()
	case errors.Is(runErr, core.ErrBlocked):
		summary.Outcome = "blocked"
		summary.Error = runErr.Error()
	default:
		summary.Outcome = "error"
		summary.Error = runErr.Error()
	}
	_ = enc.Encode(summary)
}
