package httpgw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"weaksets/internal/metrics"
	"weaksets/internal/obs"
)

// This file is the cluster-wide view: GET /cluster scatter-gathers
// GET /stats from every registered peer gateway, merges each
// collection's weakness windows with reservoir-preserving histogram
// merging (metrics.MergeDump), and reports one snapshot whose quantiles
// describe the whole fleet — the aggregation plane replication's
// replica-staleness accounting will report through.

// clusterPeer is one remote gateway /cluster polls.
type clusterPeer struct {
	name string
	url  string // base URL, e.g. http://host:port
}

// AddPeer registers a peer gateway (by base URL) for /cluster to
// scatter-gather. The local node is always included and needs no
// registration.
func (g *Gateway) AddPeer(name, baseURL string) {
	g.pmu.Lock()
	defer g.pmu.Unlock()
	g.peers = append(g.peers, clusterPeer{name: name, url: baseURL})
}

// clusterNodeInfo is one node's fetch status in the /cluster body.
type clusterNodeInfo struct {
	Name  string `json:"name"`
	URL   string `json:"url,omitempty"`
	Node  string `json:"node,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// clusterCollectionInfo is one collection's merged cluster-wide
// weakness: summed lifetime aggregates and merged rolling windows whose
// quantiles come from reservoir-merged histograms, not averaged
// per-node quantiles.
type clusterCollectionInfo struct {
	Collection string                        `json:"collection"`
	Nodes      int                           `json:"nodes"`
	Aggregate  obs.CollectionWeakness        `json:"aggregate"`
	Windows    map[string]obs.WindowSnapshot `json:"windows"`
}

// clusterBody is the GET /cluster response document.
type clusterBody struct {
	Nodes       []clusterNodeInfo       `json:"nodes"`
	Collections []clusterCollectionInfo `json:"collections"`
}

// peerError classifies a peer fetch failure for the /cluster body. A
// deadline hit is reported as an explicit timeout — the peer may be up
// but drowning — while anything else (connection refused, DNS failure,
// bad JSON) keeps the transport's own words, so operators can tell a
// slow peer from a dead one at a glance.
func peerError(err error, timeout time.Duration) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Sprintf("timeout: no /stats reply within %s", timeout)
	}
	return err.Error()
}

// fetchPeerStats GETs one peer's /stats and decodes the fields the
// merge needs.
func fetchPeerStats(ctx context.Context, url string) (statsBody, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/stats", nil)
	if err != nil {
		return statsBody{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return statsBody{}, err
	}
	defer resp.Body.Close()
	var body statsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return statsBody{}, err
	}
	return body, nil
}

// handleCluster scatter-gathers /stats from every registered peer
// (concurrently, each under PeerTimeout), folds the local registry in
// directly, and merges per-collection weakness into one cluster view.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	g.pmu.Lock()
	peers := append([]clusterPeer(nil), g.peers...)
	g.pmu.Unlock()
	timeout := g.PeerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}

	type fetched struct {
		info     clusterNodeInfo
		weakness []weaknessStatsInfo
	}
	results := make([]fetched, len(peers)+1)
	results[0] = fetched{
		info:     clusterNodeInfo{Name: "local", Node: string(g.dir), OK: true},
		weakness: g.weaknessStats(),
	}
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			info := clusterNodeInfo{Name: p.name, URL: p.url}
			body, err := fetchPeerStats(ctx, p.url)
			if err != nil {
				info.Error = peerError(err, timeout)
				results[i+1] = fetched{info: info}
				return
			}
			info.OK = true
			info.Node = body.Node
			results[i+1] = fetched{info: info, weakness: body.Weakness}
		}()
	}
	wg.Wait()

	out := clusterBody{Nodes: make([]clusterNodeInfo, 0, len(results))}
	merged := make(map[string]*clusterCollectionInfo)
	exemplars := make(map[string]map[string]*obs.Exemplar)
	histograms := make(map[string]map[string]*metrics.Histogram)
	for _, res := range results {
		out.Nodes = append(out.Nodes, res.info)
		for _, ws := range res.weakness {
			cc := merged[ws.Collection]
			if cc == nil {
				cc = &clusterCollectionInfo{
					Collection: ws.Collection,
					Aggregate:  obs.CollectionWeakness{Collection: ws.Collection, Outcomes: map[string]int64{}},
					Windows:    make(map[string]obs.WindowSnapshot),
				}
				merged[ws.Collection] = cc
				exemplars[ws.Collection] = make(map[string]*obs.Exemplar)
				histograms[ws.Collection] = make(map[string]*metrics.Histogram)
			}
			cc.Nodes++
			cc.Aggregate.Merge(ws.Aggregate)
			for metric, snap := range ws.Windows {
				h := histograms[ws.Collection][metric]
				if h == nil {
					h = metrics.NewHistogram(0)
					histograms[ws.Collection][metric] = h
				}
				h.MergeDump(snap.Dump())
				if ex := snap.Exemplar; ex != nil {
					cur := exemplars[ws.Collection][metric]
					if cur == nil || ex.Value >= cur.Value {
						exemplars[ws.Collection][metric] = ex
					}
				}
			}
		}
	}
	for coll, cc := range merged {
		for metric, h := range histograms[coll] {
			cc.Windows[metric] = obs.SnapshotOf(h, exemplars[coll][metric])
		}
		out.Collections = append(out.Collections, *cc)
	}
	sort.Slice(out.Collections, func(i, j int) bool {
		return out.Collections[i].Collection < out.Collections[j].Collection
	})

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
