package httpgw

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"weaksets/internal/cluster"
	"weaksets/internal/tcprpc"
	"weaksets/internal/wais"
)

type gwWorld struct {
	c      *cluster.Cluster
	corpus wais.Corpus
	srv    *httptest.Server
	gw     *Gateway
}

func newGWWorld(t *testing.T) *gwWorld {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	corpus, err := wais.BuildRestaurants(context.Background(), c, 20)
	if err != nil {
		t.Fatal(err)
	}
	gw := New(c.Client, cluster.DirNode, c.LockNode)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	return &gwWorld{c: c, corpus: corpus, srv: srv, gw: gw}
}

func (w *gwWorld) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(w.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSemanticsEndpoint(t *testing.T) {
	w := newGWWorld(t)
	resp, body := w.get(t, "/semantics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out []map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("semantics = %d", len(out))
	}
	last := out[5]
	if last["name"] != "optimistic" || last["consistency"] != "none" || last["currency"] != "first-bound" {
		t.Fatalf("optimistic row = %v", last)
	}
}

func TestSpecEndpoint(t *testing.T) {
	w := newGWWorld(t)
	resp, body := w.get(t, "/specs/Fig6-optimistic")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "remembers yielded") {
		t.Fatalf("spec body:\n%s", body)
	}
	// Short form resolves too.
	resp, _ = w.get(t, "/specs/fig3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("short-form status = %d", resp.StatusCode)
	}
	resp, _ = w.get(t, "/specs/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown figure status = %d", resp.StatusCode)
	}
}

func TestCollectionEndpoint(t *testing.T) {
	w := newGWWorld(t)
	w.c.Net.Isolate(w.c.Storage[0])
	resp, body := w.get(t, "/collections/menus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Collection string `json:"collection"`
		Version    uint64 `json:"version"`
		Members    []struct {
			ID        string `json:"id"`
			Node      string `json:"node"`
			Reachable bool   `json:"reachable"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Members) != 20 || out.Version == 0 {
		t.Fatalf("listing = %+v", out)
	}
	unreachable := 0
	for _, m := range out.Members {
		if !m.Reachable {
			unreachable++
			if m.Node != string(w.c.Storage[0]) {
				t.Fatalf("wrong unreachable node: %+v", m)
			}
		}
	}
	if unreachable != 5 {
		t.Fatalf("unreachable = %d, want 5 of 20", unreachable)
	}

	resp, _ = w.get(t, "/collections/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing collection status = %d", resp.StatusCode)
	}
}

// streamRecords parses an NDJSON query response.
func streamRecords(t *testing.T, body []byte) (elements []map[string]any, summary map[string]any) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch rec["kind"] {
		case "element":
			elements = append(elements, rec)
		case "summary":
			summary = rec
		default:
			t.Fatalf("unknown record kind %v", rec["kind"])
		}
	}
	if summary == nil {
		t.Fatalf("no summary record in:\n%s", body)
	}
	return elements, summary
}

func TestQueryStreaming(t *testing.T) {
	w := newGWWorld(t)
	resp, body := w.get(t, `/query?coll=menus&q=cuisine=="chinese"&sem=optimistic`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("content type = %q", got)
	}
	elements, summary := streamRecords(t, body)
	if len(elements) != 4 {
		t.Fatalf("elements = %d, want 4 chinese of 20", len(elements))
	}
	if summary["outcome"] != "returns" || summary["matches"] != float64(4) || summary["examined"] != float64(20) {
		t.Fatalf("summary = %v", summary)
	}
}

func TestQueryDynamicDefault(t *testing.T) {
	w := newGWWorld(t)
	resp, body := w.get(t, "/query?coll=menus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	elements, summary := streamRecords(t, body)
	if len(elements) != 20 {
		t.Fatalf("elements = %d, want all 20", len(elements))
	}
	if summary["outcome"] != "returns" {
		t.Fatalf("summary = %v", summary)
	}
}

func TestQueryFailureOutcome(t *testing.T) {
	w := newGWWorld(t)
	w.c.Net.Isolate(w.c.Storage[1])
	resp, body := w.get(t, "/query?coll=menus&sem=grow-only")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	_, summary := streamRecords(t, body)
	if summary["outcome"] != "fails" {
		t.Fatalf("summary = %v", summary)
	}
	if summary["error"] == "" {
		t.Fatal("failure summary missing error text")
	}
}

func TestQueryBadRequests(t *testing.T) {
	w := newGWWorld(t)
	tests := []struct {
		path string
		want int
	}{
		{"/query", http.StatusBadRequest},
		{"/query?coll=menus&q=%3D%3Dbroken", http.StatusBadRequest},
		{"/query?coll=menus&sem=nonsense", http.StatusBadRequest},
	}
	for _, tt := range tests {
		resp, body := w.get(t, tt.path)
		if resp.StatusCode != tt.want {
			t.Errorf("%s: status = %d want %d (%s)", tt.path, resp.StatusCode, tt.want, body)
		}
		var out map[string]string
		if err := json.Unmarshal(body, &out); err != nil || out["error"] == "" {
			t.Errorf("%s: error body = %s", tt.path, body)
		}
	}
}

func TestQueryAllSemanticsOverHTTP(t *testing.T) {
	w := newGWWorld(t)
	for _, sem := range []string{"immutable", "immutable-per-run", "snapshot", "grow-only", "grow-only-per-run", "optimistic", "dynamic"} {
		sem := sem
		t.Run(sem, func(t *testing.T) {
			resp, body := w.get(t, fmt.Sprintf(`/query?coll=menus&q=cuisine!=""&sem=%s`, sem))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			elements, summary := streamRecords(t, body)
			if len(elements) != 20 || summary["outcome"] != "returns" {
				t.Fatalf("elements=%d summary=%v", len(elements), summary)
			}
		})
	}
}

func TestStatsEndpoint(t *testing.T) {
	w := newGWWorld(t)
	// Drive some traffic so the engine has counters to report.
	if _, body := w.get(t, "/collections/menus"); len(body) == 0 {
		t.Fatal("empty listing")
	}

	resp, body := w.get(t, "/stats?coll=menus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Node    string `json:"node"`
		Engine  string `json:"engine"`
		Shards  int    `json:"shards"`
		Objects int    `json:"objects"`
		Ops     []struct {
			Op    string  `json:"op"`
			Count int64   `json:"count"`
			P99Ms float64 `json:"p99Ms"`
		} `json:"ops"`
		Collection *struct {
			Collection string `json:"collection"`
			Members    int    `json:"members"`
		} `json:"collectionStats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Engine != "sharded" || out.Shards < 1 {
		t.Fatalf("engine = %q shards = %d", out.Engine, out.Shards)
	}
	lists := int64(0)
	for _, op := range out.Ops {
		if op.Op == "list" {
			lists = op.Count
		}
	}
	if lists == 0 {
		t.Fatalf("no list ops counted: %s", body)
	}
	if out.Collection == nil || out.Collection.Members != 20 {
		t.Fatalf("collection stats = %+v", out.Collection)
	}

	// Unknown collection → 404; bare /stats (no coll) → 200.
	if resp, _ := w.get(t, "/stats?coll=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing coll status = %d", resp.StatusCode)
	}
	if resp, _ := w.get(t, "/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bare stats status = %d", resp.StatusCode)
	}
}

// TestStatsTransports registers a TCP transport stats source and checks
// /stats surfaces its connection churn and per-method RTT rows.
func TestStatsTransports(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	gw := New(c.Client, cluster.DirNode, c.LockNode)
	gw.AddTransport("archive", func() tcprpc.TransportStats {
		return tcprpc.TransportStats{
			Addr:          "127.0.0.1:9999",
			Codec:         tcprpc.CodecWirebin,
			Dials:         3,
			Reconnects:    2,
			MaxInFlight:   8,
			Calls:         120,
			Failures:      1,
			BytesSent:     2048,
			BytesReceived: 8192,
			Methods: []tcprpc.MethodStats{
				{Method: "repo.GetBatch", Count: 60, Mean: 2e6, P50: 2e6, P99: 4e6, BytesSent: 2000, BytesReceived: 8000},
			},
		}
	})
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Transports []struct {
			Name          string `json:"name"`
			Addr          string `json:"addr"`
			Codec         string `json:"codec"`
			Reconnects    int64  `json:"reconnects"`
			MaxInFlight   int64  `json:"maxInFlight"`
			BytesSent     int64  `json:"bytesSent"`
			BytesReceived int64  `json:"bytesReceived"`
			Methods       []struct {
				Method        string  `json:"method"`
				Count         int64   `json:"count"`
				P99Ms         float64 `json:"p99Ms"`
				BytesSent     int64   `json:"bytesSent"`
				BytesReceived int64   `json:"bytesReceived"`
			} `json:"methods"`
		} `json:"transports"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Transports) != 1 {
		t.Fatalf("transports = %s", body)
	}
	tr := out.Transports[0]
	if tr.Name != "archive" || tr.Reconnects != 2 || tr.MaxInFlight != 8 {
		t.Fatalf("transport block = %+v", tr)
	}
	if tr.Codec != tcprpc.CodecWirebin || tr.BytesSent != 2048 || tr.BytesReceived != 8192 {
		t.Fatalf("codec/bytes block = %+v", tr)
	}
	if len(tr.Methods) != 1 || tr.Methods[0].Method != "repo.GetBatch" || tr.Methods[0].P99Ms != 4 {
		t.Fatalf("method rows = %+v", tr.Methods)
	}
	if m := tr.Methods[0]; m.BytesSent != 2000 || m.BytesReceived != 8000 {
		t.Fatalf("method byte attribution = %+v", m)
	}
}
