package httpgw

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"weaksets/internal/cluster"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/tcprpc"
	"weaksets/internal/wais"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newObsWorld is newGWWorld with the observability surface mounted: a
// tracer that samples every query, a weakness registry, an event
// journal, and a fake TCP transport so every /metrics family has data.
func newObsWorld(t *testing.T) (*gwWorld, *obs.Tracer, *obs.Registry) {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	tracer := obs.NewTracer("gateway", obs.Config{})
	weakness := obs.NewRegistry()
	c.UseTracer(tracer)
	corpus, err := wais.BuildRestaurants(context.Background(), c, 20)
	if err != nil {
		t.Fatal(err)
	}
	gw := New(c.Client, cluster.DirNode, c.LockNode)
	gw.UseObs(weakness, tracer)
	gw.UseJournal(obs.NewJournal(0))
	gw.UseCache(repo.NewCache(256))
	gw.AddTransport("archive", func() tcprpc.TransportStats {
		return tcprpc.TransportStats{
			Addr: "127.0.0.1:9999", Codec: tcprpc.CodecWirebin, Dials: 1, Calls: 42,
			BytesSent: 4096, BytesReceived: 16384,
			Methods: []tcprpc.MethodStats{{
				Method: "repo.GetBatch", Count: 42, Mean: 2e6, P50: 2e6, P99: 4e6,
				BytesSent: 4000, BytesReceived: 16000,
			}},
		}
	})
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	return &gwWorld{c: c, corpus: corpus, srv: srv, gw: gw}, tracer, weakness
}

// parsePromText validates Prometheus text format 0.0.4 line by line and
// returns sample lines keyed by name{labels}, plus any exemplar trace ids
// (`# {trace_id="..."} value` suffixes) keyed the same way. Every sample
// must belong to a family whose # HELP and # TYPE headers appeared first,
// exactly once.
func parsePromText(t *testing.T, body string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := make(map[string]float64)
	exemplars := make(map[string]string)
	typed := make(map[string]bool)
	helped := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if helped[parts[0]] {
				t.Fatalf("duplicate HELP for %s", parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if typed[parts[0]] {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			typed[parts[0]] = true
			continue
		}
		// Sample line: name{labels} value, optionally followed by an
		// OpenMetrics exemplar: `# {trace_id="..."} exemplarValue`.
		sample, exemplar, hasEx := strings.Cut(line, " # ")
		var exTrace string
		if hasEx {
			rest, ok := strings.CutPrefix(exemplar, `{trace_id="`)
			if !ok {
				t.Fatalf("malformed exemplar in %q", line)
			}
			id, exVal, ok := strings.Cut(rest, `"} `)
			if !ok || id == "" {
				t.Fatalf("malformed exemplar in %q", line)
			}
			if _, err := strconv.ParseFloat(exVal, 64); err != nil {
				t.Fatalf("bad exemplar value in %q: %v", line, err)
			}
			exTrace = id
		}
		sp := strings.LastIndexByte(sample, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valText := sample[:sp], sample[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = key[:i]
		}
		if !typed[name] || !helped[name] {
			t.Fatalf("sample %q precedes its HELP/TYPE headers", line)
		}
		samples[key] = val
		if exTrace != "" {
			exemplars[key] = exTrace
		}
	}
	return samples, exemplars
}

func TestMetricsEndpoint(t *testing.T) {
	w, _, _ := newObsWorld(t)
	// Drive one dynamic query so weakness counters have substance.
	if resp, body := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}

	resp, body := w.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	samples, _ := parsePromText(t, string(body))

	// The run's weakness shows up as labelled counters.
	for key, want := range map[string]float64{
		`weaksets_weakness_runs_total{collection="menus"}`:                              1,
		`weaksets_weakness_yielded_total{collection="menus"}`:                           20,
		`weaksets_weakness_outcome_total{collection="menus",outcome="returns"}`:         1,
		`weaksets_store_up{node="dir"}`:                                                 1,
		`weaksets_transport_calls_total{transport="archive"}`:                           42,
		`weaksets_transport_codec{codec="wirebin",transport="archive"}`:                 1,
		`weaksets_transport_bytes_sent_total{transport="archive"}`:                      4096,
		`weaksets_transport_bytes_received_total{transport="archive"}`:                  16384,
		`weaksets_rpc_bytes_sent_total{method="repo.GetBatch",transport="archive"}`:     4000,
		`weaksets_rpc_bytes_received_total{method="repo.GetBatch",transport="archive"}`: 16000,
	} {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	// Families that must exist with some activity.
	if samples[`weaksets_bus_calls_total`] == 0 {
		t.Error("no bus calls counted")
	}
	if samples[`weaksets_tracer_spans_started_total{process="gateway"}`] == 0 {
		t.Error("no tracer spans counted")
	}
	found := false
	for key := range samples {
		if strings.HasPrefix(key, "weaksets_store_op_total{") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no per-op store counters")
	}
}

// TestLeaseObservability attaches an invalidation lease to the gateway's
// client and checks both surfaces: the weaksets_lease_* Prometheus
// families and the lease block inside the /stats cache section.
func TestLeaseObservability(t *testing.T) {
	w, _, _ := newObsWorld(t)
	ls := repo.NewLeaseState(w.c.Client, cluster.DirNode, "menus")
	if err := ls.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ls.Stop()
	w.c.Client.UseLeases(ls)

	if resp, body := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}

	resp, body := w.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	samples, _ := parsePromText(t, string(body))
	if got := samples["weaksets_lease_active"]; got != 1 {
		t.Errorf("weaksets_lease_active = %v, want 1", got)
	}
	if got := samples["weaksets_lease_held"]; got != 1 {
		t.Errorf("weaksets_lease_held = %v, want 1", got)
	}
	if got := samples["weaksets_lease_grants_total"]; got < 1 {
		t.Errorf("weaksets_lease_grants_total = %v, want >= 1", got)
	}

	resp, body = w.get(t, "/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var decoded struct {
		Cache *struct {
			Lease *repo.LeaseStats `json:"lease"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Cache == nil || decoded.Cache.Lease == nil {
		t.Fatal("no lease block in the /stats cache section")
	}
	if !decoded.Cache.Lease.Active || decoded.Cache.Lease.Held != 1 || decoded.Cache.Lease.Grants < 1 {
		t.Errorf("lease block = %+v, want active with 1 held and >= 1 grant", decoded.Cache.Lease)
	}
}

func TestTraceEndpoint(t *testing.T) {
	w, tracer, weakness := newObsWorld(t)
	if resp, _ := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	rep, ok := weakness.Last("menus")
	if !ok || rep.Trace == 0 {
		t.Fatalf("query left no traced weakness report: %+v", rep)
	}

	// Without an id: a newest-first menu of root spans.
	resp, body := w.get(t, "/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing status = %d", resp.StatusCode)
	}
	var listing struct {
		Traces []struct {
			ID   obs.TraceID `json:"id"`
			Name string      `json:"name"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) == 0 || listing.Traces[0].ID != rep.Trace {
		t.Fatalf("trace listing = %+v, want %s first", listing.Traces, rep.Trace)
	}

	// With the id: the whole span tree.
	resp, body = w.get(t, "/trace?id="+rep.Trace.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Trace obs.TraceID      `json:"trace"`
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != rep.Trace || len(out.Spans) == 0 {
		t.Fatalf("trace response = %+v", out)
	}
	for _, sp := range out.Spans {
		if sp.Trace != rep.Trace {
			t.Fatalf("span %s belongs to trace %s", sp.Name, sp.Trace)
		}
	}
	if len(tracer.Trace(rep.Trace)) != len(out.Spans) {
		t.Fatalf("endpoint returned %d spans, tracer retains %d", len(out.Spans), len(tracer.Trace(rep.Trace)))
	}

	if resp, _ := w.get(t, "/trace?id=zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d", resp.StatusCode)
	}
	if resp, _ := w.get(t, "/trace?id=ffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", resp.StatusCode)
	}
}

// shapeOf reduces a decoded JSON value to its structural shape: objects
// keep their keys, arrays keep one element, scalars become type names.
func shapeOf(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			out[k] = shapeOf(val)
		}
		return out
	case []any:
		if len(x) == 0 {
			return []any{}
		}
		return []any{shapeOf(x[0])}
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// TestStatsGoldenShape pins the JSON shape of GET /stats — key names and
// value types, not values — so dashboards built on it don't silently
// break. Regenerate with `go test ./internal/httpgw -run Golden -update`.
func TestStatsGoldenShape(t *testing.T) {
	w, _, _ := newObsWorld(t)
	// Touch the collection so ops and collection stats are populated, and
	// drive one query so the weakness block (aggregate + windows) exists.
	if resp, _ := w.get(t, "/collections/menus"); resp.StatusCode != http.StatusOK {
		t.Fatal("listing failed")
	}
	if resp, _ := w.get(t, "/query?coll=menus"); resp.StatusCode != http.StatusOK {
		t.Fatal("query failed")
	}
	resp, body := w.get(t, "/stats?coll=menus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(shapeOf(decoded), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "stats_shape.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("GET /stats shape drifted from %s:\n--- got ---\n%s--- want ---\n%s(run with -update if intentional)",
			golden, got, want)
	}

	// The shape must include every documented top-level key.
	var keys []string
	for k := range decoded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wantKeys := []string{"batch", "cache", "collectionStats", "collections", "engine", "events", "node", "objects", "ops", "shards", "transports", "weakness"}
	if strings.Join(keys, ",") != strings.Join(wantKeys, ",") {
		t.Errorf("top-level keys = %v, want %v", keys, wantKeys)
	}
}
