package spec_test

import (
	"fmt"

	"weaksets/internal/spec"
)

// ExampleCheckRun checks a hand-written run of the optimistic iterator:
// it yields the reachable a, blocks while b is unreachable, then finishes
// after the repair.
func ExampleCheckRun() {
	broken := spec.NewState([]spec.ElemID{"a", "b"}, []spec.ElemID{"a"})
	healed := spec.NewState([]spec.ElemID{"a", "b"}, []spec.ElemID{"a", "b"})
	run := spec.Run{Invocations: []spec.Invocation{
		{Pre: broken, Outcome: spec.Suspended, Yield: "a", HasYield: true},
		{Pre: broken, Outcome: spec.Blocked},
		{Pre: healed, Outcome: spec.Suspended, Yield: "b", HasYield: true},
		{Pre: healed, Outcome: spec.Returned},
	}}

	fmt.Println("Fig6:", spec.CheckRun(spec.Fig6, run))
	// The same behaviour violates the pessimistic Fig 5: it blocked where
	// Fig 5 demands the failure exception.
	fmt.Println("Fig5 conforms:", spec.CheckRun(spec.Fig5, run) == nil)

	// Output:
	// Fig6: <nil>
	// Fig5 conforms: false
}

// ExampleCheckStates verifies constraint clauses over observed states.
func ExampleCheckStates() {
	grew := []spec.State{
		spec.NewState([]spec.ElemID{"a"}, nil),
		spec.NewState([]spec.ElemID{"a", "b"}, nil),
	}
	fmt.Println("grow-only ok:", spec.CheckStates(spec.ConstraintGrowOnly, grew) == nil)
	fmt.Println("immutable ok:", spec.CheckStates(spec.ConstraintImmutable, grew) == nil)

	// Output:
	// grow-only ok: true
	// immutable ok: false
}

// ExampleTaxonomy prints the §4 classification of the design points.
func ExampleTaxonomy() {
	for _, fig := range []spec.Figure{spec.Fig3, spec.Fig4, spec.Fig6} {
		cons, curr := spec.Taxonomy(fig)
		fmt.Printf("%s: %s, %s\n", fig, cons, curr)
	}

	// Output:
	// Fig3-immutable: strong (serializable), first-vintage
	// Fig4-snapshot: weak, first-vintage
	// Fig6-optimistic: none, first-bound
}
