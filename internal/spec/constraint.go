package spec

import "fmt"

// Constraint names one of the paper's constraint clauses — history
// properties that every process touching the set must uphold, formulated
// over pairs of states of a computation (§2.2).
type Constraint int

// The constraint clauses appearing in the paper.
const (
	// ConstraintTrue is the trivial constraint of Figures 4 and 6: the set
	// may change arbitrarily.
	ConstraintTrue Constraint = iota + 1
	// ConstraintImmutable is s_i = s_j for all i < j (Figures 1 and 3).
	ConstraintImmutable
	// ConstraintGrowOnly is s_i ⊆ s_j for all i < j (Figure 5).
	ConstraintGrowOnly
	// ConstraintImmutablePerRun is the §3.1 relaxation: the set may change
	// between runs of the iterator but not between invocations of any one
	// run.
	ConstraintImmutablePerRun
	// ConstraintGrowOnlyPerRun is the §3.3 relaxation: arbitrary mutation
	// between runs, growth only during a run.
	ConstraintGrowOnlyPerRun
)

// String implements fmt.Stringer.
func (c Constraint) String() string {
	switch c {
	case ConstraintTrue:
		return "true"
	case ConstraintImmutable:
		return "immutable"
	case ConstraintGrowOnly:
		return "grow-only"
	case ConstraintImmutablePerRun:
		return "immutable-per-run"
	case ConstraintGrowOnlyPerRun:
		return "grow-only-per-run"
	default:
		return "constraint(?)"
	}
}

// ConstraintOf reports the constraint clause attached to each figure's type
// specification.
func ConstraintOf(fig Figure) Constraint {
	switch fig {
	case Fig1, Fig3:
		return ConstraintImmutable
	case Fig5:
		return ConstraintGrowOnly
	default:
		return ConstraintTrue
	}
}

// CheckStates verifies a constraint over an observed sequence of states.
// For the per-run variants the sequence is taken to be the states observed
// *within* one run (between its first and last invocation); callers enforce
// the between-runs freedom by checking each run's states separately.
// Because both the equality and subset relations are transitive, checking
// consecutive pairs establishes the property for all i < j.
func CheckStates(c Constraint, states []State) error {
	switch c {
	case ConstraintTrue:
		return nil
	case ConstraintImmutable, ConstraintImmutablePerRun:
		for i := 1; i < len(states); i++ {
			if !states[i-1].SameMembers(states[i]) {
				return violatef(0, i, "constraint %s: membership changed from %s to %s",
					c, formatSet(states[i-1].Members), formatSet(states[i].Members))
			}
		}
		return nil
	case ConstraintGrowOnly, ConstraintGrowOnlyPerRun:
		for i := 1; i < len(states); i++ {
			if !states[i-1].MembersSubsetOf(states[i]) {
				return violatef(0, i, "constraint %s: membership shrank: %s then %s",
					c, formatSet(states[i-1].Members), formatSet(states[i].Members))
			}
		}
		return nil
	default:
		return violatef(0, 0, "unknown constraint %d", int(c))
	}
}

// CheckRunConstraint verifies a constraint against the pre-states a run
// observed. This is the observational form: it can refute immutability or
// growth discipline from the iterator's own samples even without a global
// state log.
func CheckRunConstraint(c Constraint, run Run) error {
	states := make([]State, len(run.Invocations))
	for i, inv := range run.Invocations {
		states[i] = inv.Pre
	}
	return CheckStates(c, states)
}

// CheckRuns verifies a constraint across several successive runs of the
// iterator. For the global constraints every observed state across every
// run must satisfy the relation; for the per-run relaxations (§3.1, §3.3)
// each run is checked in isolation — "mutations may occur between
// different uses of the iterator, but not between invocations of any one
// use".
func CheckRuns(c Constraint, runs []Run) error {
	switch c {
	case ConstraintImmutablePerRun, ConstraintGrowOnlyPerRun:
		for i, run := range runs {
			if err := CheckRunConstraint(c, run); err != nil {
				return fmt.Errorf("run %d: %w", i, err)
			}
		}
		return nil
	default:
		var states []State
		for _, run := range runs {
			for _, inv := range run.Invocations {
				states = append(states, inv.Pre)
			}
		}
		return CheckStates(c, states)
	}
}

// Recorder accumulates the invocations of one iterator run. It is used by
// the live iterators (instrumentation) and by the model-level conformance
// harness. Recorder is not safe for concurrent use; each iterator owns one.
type Recorder struct {
	run Run
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one invocation observation.
func (r *Recorder) Record(pre State, outcome Outcome, yield ElemID, hasYield bool) {
	r.run.Invocations = append(r.run.Invocations, Invocation{
		Pre:      pre.Clone(),
		Outcome:  outcome,
		Yield:    yield,
		HasYield: hasYield,
	})
}

// Run returns the recorded run.
func (r *Recorder) Run() Run { return r.run }

// Len reports the number of recorded invocations.
func (r *Recorder) Len() int { return len(r.run.Invocations) }
