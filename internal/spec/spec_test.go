package spec

import (
	"errors"
	"strings"
	"testing"

	"weaksets/internal/sim"
)

func st(members, reach string) State {
	return NewState(split(members), split(reach))
}

func split(s string) []ElemID {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]ElemID, 0, len(parts))
	for _, p := range parts {
		out = append(out, ElemID(p))
	}
	return out
}

func yieldInv(pre State, e ElemID) Invocation {
	return Invocation{Pre: pre, Yield: e, HasYield: true, Outcome: Suspended}
}

func endInv(pre State, o Outcome) Invocation {
	return Invocation{Pre: pre, Outcome: o}
}

func TestStateAlgebra(t *testing.T) {
	s := st("a,b,c", "a,b")
	if got := s.ReachableMembers(); len(got) != 2 || !got["a"] || !got["b"] {
		t.Fatalf("ReachableMembers = %v", got)
	}
	other := map[ElemID]bool{"b": true, "z": true}
	if got := s.ReachableOf(other); len(got) != 1 || !got["b"] {
		t.Fatalf("ReachableOf = %v", got)
	}
	if !s.SameMembers(st("c,b,a", "")) {
		t.Fatal("SameMembers order-sensitive")
	}
	if s.SameMembers(st("a,b", "")) {
		t.Fatal("SameMembers wrong on different sets")
	}
	if !st("a", "").MembersSubsetOf(s) {
		t.Fatal("subset wrong")
	}
	if s.MembersSubsetOf(st("a", "")) {
		t.Fatal("superset claimed subset")
	}
}

func TestStateCloneIndependent(t *testing.T) {
	s := st("a", "a")
	c := s.Clone()
	c.Members["b"] = true
	delete(c.Reach, "a")
	if s.Members["b"] || !s.Reach["a"] {
		t.Fatal("clone aliases original")
	}
}

func TestRunHelpers(t *testing.T) {
	pre := st("a,b", "a,b")
	run := Run{Invocations: []Invocation{
		yieldInv(pre, "a"),
		yieldInv(pre, "b"),
		endInv(pre, Returned),
	}}
	if got := run.First(); !got.SameMembers(pre) {
		t.Fatalf("First = %v", got)
	}
	if y := run.Yielded(2); len(y) != 2 || !y["a"] || !y["b"] {
		t.Fatalf("Yielded(2) = %v", y)
	}
	if !run.Terminated() {
		t.Fatal("Terminated = false")
	}
	if (Run{}).Terminated() {
		t.Fatal("empty run terminated")
	}
}

func TestFig1Conforming(t *testing.T) {
	pre := st("a,b", "a,b")
	run := Run{Invocations: []Invocation{
		yieldInv(pre, "a"),
		yieldInv(pre, "b"),
		endInv(pre, Returned),
	}}
	if err := CheckRun(Fig1, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig1Violations(t *testing.T) {
	pre := st("a,b", "a,b")
	tests := []struct {
		name string
		run  Run
	}{
		{"early return", Run{Invocations: []Invocation{endInv(pre, Returned)}}},
		{"duplicate yield", Run{Invocations: []Invocation{yieldInv(pre, "a"), yieldInv(pre, "a")}}},
		{"foreign yield", Run{Invocations: []Invocation{yieldInv(pre, "z")}}},
		{"yield after done", Run{Invocations: []Invocation{yieldInv(pre, "a"), yieldInv(pre, "b"), yieldInv(st("a,b,c", "c"), "c")}}},
		{"fails though no failures modeled", Run{Invocations: []Invocation{endInv(pre, Failed)}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckRun(Fig1, tt.run)
			if !errors.Is(err, ErrViolation) {
				t.Fatalf("err = %v, want violation", err)
			}
		})
	}
}

func TestFig3ConformingWithFailure(t *testing.T) {
	// s_first = {a,b,c}; b becomes unreachable; after yielding the
	// reachable a and c, the iterator must fail.
	s0 := st("a,b,c", "a,c")
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		yieldInv(s0, "c"),
		endInv(s0, Failed),
	}}
	if err := CheckRun(Fig3, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig3ConformingFullReturn(t *testing.T) {
	s0 := st("a,b", "a,b")
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		yieldInv(s0, "b"),
		endInv(s0, Returned),
	}}
	if err := CheckRun(Fig3, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig3RepairAllowsCompletion(t *testing.T) {
	// b unreachable at first; reachability returns before the iterator
	// exhausts the rest, so it can finish normally.
	broken := st("a,b", "a")
	healed := st("a,b", "a,b")
	run := Run{Invocations: []Invocation{
		yieldInv(broken, "a"),
		yieldInv(healed, "b"),
		endInv(healed, Returned),
	}}
	if err := CheckRun(Fig3, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig3Violations(t *testing.T) {
	s0 := st("a,b,c", "a,c")
	tests := []struct {
		name string
		run  Run
	}{
		{"returns instead of fail", Run{Invocations: []Invocation{
			yieldInv(s0, "a"), yieldInv(s0, "c"), endInv(s0, Returned),
		}}},
		{"fails too early", Run{Invocations: []Invocation{
			yieldInv(s0, "a"), endInv(s0, Failed),
		}}},
		{"yields unreachable", Run{Invocations: []Invocation{
			yieldInv(s0, "b"),
		}}},
		{"yield on fail", Run{Invocations: []Invocation{
			yieldInv(s0, "a"), yieldInv(s0, "c"),
			{Pre: s0, Yield: "b", HasYield: true, Outcome: Failed},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckRun(Fig3, tt.run); !errors.Is(err, ErrViolation) {
				t.Fatalf("err = %v, want violation", err)
			}
		})
	}
}

func TestFig4IgnoresLaterMutations(t *testing.T) {
	// s_first = {a,b}; c is added and a removed mid-run; the snapshot
	// semantics still iterates {a,b} and never sees c.
	s0 := st("a,b", "a,b")
	s1 := st("b,c", "a,b,c")
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		yieldInv(s1, "b"),
		endInv(s1, Returned),
	}}
	if err := CheckRun(Fig4, run); err != nil {
		t.Fatal(err)
	}
	// Yielding the added element violates Fig 4 (it is outside s_first).
	bad := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		yieldInv(s1, "c"),
	}}
	if err := CheckRun(Fig4, bad); !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want violation", err)
	}
}

func TestFig5ConformingGrowth(t *testing.T) {
	s0 := st("a", "a")
	s1 := st("a,b", "a,b") // grew between invocations
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		yieldInv(s1, "b"),
		endInv(s1, Returned),
	}}
	if err := CheckRun(Fig5, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig5PessimisticFailure(t *testing.T) {
	s0 := st("a,b", "a") // b exists but unreachable
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		endInv(s0, Failed),
	}}
	if err := CheckRun(Fig5, run); err != nil {
		t.Fatal(err)
	}
	// Returning instead is a violation: yielded != s_pre.
	bad := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		endInv(s0, Returned),
	}}
	if err := CheckRun(Fig5, bad); !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want violation", err)
	}
}

func TestFig5MissesNothingCurrent(t *testing.T) {
	// An element added after the first call must still be yielded (unlike
	// Fig 4): returning without it violates Fig 5.
	s0 := st("a", "a")
	s1 := st("a,b", "a,b")
	bad := Run{Invocations: []Invocation{
		yieldInv(s0, "a"),
		endInv(s1, Returned),
	}}
	if err := CheckRun(Fig5, bad); !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want violation", err)
	}
}

func TestFig6ConformingWithBlockingAndRepair(t *testing.T) {
	broken := st("a,b", "a")
	healed := st("a,b", "a,b")
	run := Run{Invocations: []Invocation{
		yieldInv(broken, "a"),
		endInv(broken, Blocked), // b unreachable: block, do not fail
		yieldInv(healed, "b"),   // repair arrived
		endInv(healed, Returned),
	}}
	if err := CheckRun(Fig6, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig6SeesAdditionsAndToleratesDeletions(t *testing.T) {
	s0 := st("a,b", "a,b")
	s1 := st("b,c", "b,c") // a deleted, c added
	run := Run{Invocations: []Invocation{
		yieldInv(s0, "a"), // a was in the set in some state: fine
		yieldInv(s1, "b"),
		yieldInv(s1, "c"), // addition not missed
		endInv(s1, Returned),
	}}
	if err := CheckRun(Fig6, run); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Violations(t *testing.T) {
	broken := st("a,b", "a")
	tests := []struct {
		name string
		run  Run
	}{
		{"fails", Run{Invocations: []Invocation{endInv(broken, Failed)}}},
		{"returns early", Run{Invocations: []Invocation{yieldInv(broken, "a"), endInv(broken, Returned)}}},
		{"blocks while reachable work remains", Run{Invocations: []Invocation{endInv(broken, Blocked)}}},
		{"yields unreachable", Run{Invocations: []Invocation{yieldInv(broken, "b")}}},
		{"yields non-member", Run{Invocations: []Invocation{yieldInv(broken, "z")}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckRun(Fig6, tt.run); !errors.Is(err, ErrViolation) {
				t.Fatalf("err = %v, want violation", err)
			}
		})
	}
}

func TestViolationErrorText(t *testing.T) {
	err := CheckRun(Fig6, Run{Invocations: []Invocation{endInv(st("a", "a"), Failed)}})
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %T", err)
	}
	if v.Fig != Fig6 || v.Index != 0 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "Fig6") {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestConstraints(t *testing.T) {
	same := []State{st("a,b", ""), st("a,b", "a"), st("b,a", "")}
	grew := []State{st("a", ""), st("a,b", ""), st("a,b,c", "")}
	shrank := []State{st("a,b", ""), st("a", "")}
	changed := []State{st("a", ""), st("b", "")}

	if err := CheckStates(ConstraintImmutable, same); err != nil {
		t.Fatal(err)
	}
	if err := CheckStates(ConstraintImmutable, grew); !errors.Is(err, ErrViolation) {
		t.Fatalf("immutable accepted growth: %v", err)
	}
	if err := CheckStates(ConstraintGrowOnly, grew); err != nil {
		t.Fatal(err)
	}
	if err := CheckStates(ConstraintGrowOnly, shrank); !errors.Is(err, ErrViolation) {
		t.Fatalf("grow-only accepted shrink: %v", err)
	}
	if err := CheckStates(ConstraintGrowOnly, changed); !errors.Is(err, ErrViolation) {
		t.Fatalf("grow-only accepted replace: %v", err)
	}
	if err := CheckStates(ConstraintTrue, changed); err != nil {
		t.Fatal(err)
	}
	if err := CheckStates(ConstraintImmutablePerRun, same); err != nil {
		t.Fatal(err)
	}
	if err := CheckStates(ConstraintGrowOnlyPerRun, grew); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRunConstraint(t *testing.T) {
	run := Run{Invocations: []Invocation{
		yieldInv(st("a", "a"), "a"),
		endInv(st("a,b", "a,b"), Blocked),
	}}
	if err := CheckRunConstraint(ConstraintGrowOnly, run); err != nil {
		t.Fatal(err)
	}
	if err := CheckRunConstraint(ConstraintImmutable, run); !errors.Is(err, ErrViolation) {
		t.Fatalf("immutable accepted growth: %v", err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	pre := st("a", "a")
	r.Record(pre, Suspended, "a", true)
	r.Record(pre, Returned, "", false)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	run := r.Run()
	if err := CheckRun(Fig6, run); err != nil {
		t.Fatal(err)
	}
	// The recorder must have cloned: mutating pre afterwards must not
	// affect the recorded run.
	pre.Members["z"] = true
	if r.Run().Invocations[0].Pre.Members["z"] {
		t.Fatal("recorder aliased the pre-state")
	}
}

func TestConstraintOf(t *testing.T) {
	tests := []struct {
		fig  Figure
		want Constraint
	}{
		{Fig1, ConstraintImmutable},
		{Fig3, ConstraintImmutable},
		{Fig4, ConstraintTrue},
		{Fig5, ConstraintGrowOnly},
		{Fig6, ConstraintTrue},
	}
	for _, tt := range tests {
		if got := ConstraintOf(tt.fig); got != tt.want {
			t.Errorf("ConstraintOf(%s) = %s, want %s", tt.fig, got, tt.want)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, f := range Figures() {
		if f.String() == "" || strings.HasPrefix(f.String(), "figure(") {
			t.Errorf("figure %d has no name", int(f))
		}
	}
	for _, o := range []Outcome{Suspended, Returned, Failed, Blocked} {
		if o.String() == "" {
			t.Errorf("outcome %d has no name", int(o))
		}
	}
	for _, c := range []Constraint{ConstraintTrue, ConstraintImmutable, ConstraintGrowOnly, ConstraintImmutablePerRun, ConstraintGrowOnlyPerRun} {
		if c.String() == "" || c.String() == "constraint(?)" {
			t.Errorf("constraint %d has no name", int(c))
		}
	}
}

func TestEnvDisciplines(t *testing.T) {
	tests := []struct {
		name       string
		discipline Constraint
		check      Constraint
	}{
		{"immutable env", ConstraintImmutable, ConstraintImmutable},
		{"grow-only env", ConstraintGrowOnly, ConstraintGrowOnly},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			env := NewEnv(sim.NewRand(42), 8, tt.discipline)
			states := []State{env.State()}
			for i := 0; i < 200; i++ {
				env.Step()
				states = append(states, env.State())
			}
			if err := CheckStates(tt.check, states); err != nil {
				t.Fatalf("env broke its own discipline: %v", err)
			}
		})
	}
}

func TestEnvUnconstrainedActuallyMutates(t *testing.T) {
	env := NewEnv(sim.NewRand(1), 8, ConstraintTrue)
	initial := env.State()
	changed := false
	for i := 0; i < 100; i++ {
		env.Step()
		if !env.State().SameMembers(initial) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("unconstrained env never mutated")
	}
}

func TestEnvHealAll(t *testing.T) {
	env := NewEnv(sim.NewRand(3), 8, ConstraintTrue)
	for _, id := range env.Universe() {
		env.SetReach(id, false)
	}
	if got := env.State().ReachableMembers(); len(got) != 0 {
		t.Fatalf("reachable after blackout: %v", got)
	}
	env.HealAll()
	s := env.State()
	for e := range s.Members {
		if !s.Reach[e] {
			t.Fatalf("element %q still unreachable after heal", e)
		}
	}
}

func TestEnvAddRemove(t *testing.T) {
	env := NewEnv(sim.NewRand(5), 4, ConstraintTrue)
	env.Add("x")
	if !env.State().Members["x"] {
		t.Fatal("Add failed")
	}
	env.Remove("x")
	if env.State().Members["x"] {
		t.Fatal("Remove failed")
	}
}

func TestRenderEveryFigure(t *testing.T) {
	for _, fig := range Figures() {
		text := Render(fig)
		if !strings.Contains(text, "elements = iter") {
			t.Errorf("%s rendering missing iterator header:\n%s", fig, text)
		}
		if !strings.Contains(text, "remembers yielded") {
			t.Errorf("%s rendering missing history object", fig)
		}
		if !strings.Contains(text, "constraint") {
			t.Errorf("%s rendering missing constraint clause", fig)
		}
	}
	if Render(Figure(99)) != "unknown figure" {
		t.Error("unknown figure rendering")
	}
	// The optimistic figure has no failure signal; the pessimistic ones do.
	if strings.Contains(Render(Fig6), "signals (failure)") {
		t.Error("Fig6 must not signal failure")
	}
	for _, fig := range []Figure{Fig3, Fig4, Fig5} {
		if !strings.Contains(Render(fig), "signals (failure)") {
			t.Errorf("%s must signal failure", fig)
		}
	}
}

func TestTaxonomyMatchesSection4(t *testing.T) {
	tests := []struct {
		fig  Figure
		cons Consistency
		curr Currency
	}{
		{Fig1, ConsistencyStrong, CurrencyFirstVintage},
		{Fig3, ConsistencyStrong, CurrencyFirstVintage},
		{Fig4, ConsistencyWeak, CurrencyFirstVintage},
		{Fig5, ConsistencyNone, CurrencyFirstBound},
		{Fig6, ConsistencyNone, CurrencyFirstBound},
	}
	for _, tt := range tests {
		cons, curr := Taxonomy(tt.fig)
		if cons != tt.cons || curr != tt.curr {
			t.Errorf("Taxonomy(%s) = (%s, %s), want (%s, %s)", tt.fig, cons, curr, tt.cons, tt.curr)
		}
	}
	if cons, curr := Taxonomy(Figure(99)); cons != 0 || curr != 0 {
		t.Error("unknown figure classified")
	}
	for _, c := range []Consistency{ConsistencyStrong, ConsistencyWeak, ConsistencyNone} {
		if c.String() == "consistency(?)" {
			t.Errorf("consistency %d unnamed", int(c))
		}
	}
	for _, c := range []Currency{CurrencyFirstVintage, CurrencyFirstBound} {
		if c.String() == "currency(?)" {
			t.Errorf("currency %d unnamed", int(c))
		}
	}
}

func TestCheckRunsPerRunRelaxation(t *testing.T) {
	// Two runs: within each the set is constant, but it changed between
	// them. The per-run relaxation accepts this; global immutability does
	// not.
	runA := Run{Invocations: []Invocation{
		yieldInv(st("a", "a"), "a"),
		endInv(st("a", "a"), Returned),
	}}
	runB := Run{Invocations: []Invocation{
		yieldInv(st("b", "b"), "b"),
		endInv(st("b", "b"), Returned),
	}}
	if err := CheckRuns(ConstraintImmutablePerRun, []Run{runA, runB}); err != nil {
		t.Fatalf("per-run relaxation rejected between-run mutation: %v", err)
	}
	if err := CheckRuns(ConstraintImmutable, []Run{runA, runB}); !errors.Is(err, ErrViolation) {
		t.Fatalf("global immutability accepted between-run mutation: %v", err)
	}
	// Mutation *within* a run violates the relaxation too.
	runBad := Run{Invocations: []Invocation{
		yieldInv(st("a", "a"), "a"),
		endInv(st("a,b", "a,b"), Returned),
	}}
	if err := CheckRuns(ConstraintImmutablePerRun, []Run{runBad}); !errors.Is(err, ErrViolation) {
		t.Fatalf("per-run relaxation accepted within-run mutation: %v", err)
	}
	// Grow-only per run: growth within a run is fine, shrink is not.
	grow := Run{Invocations: []Invocation{
		yieldInv(st("a", "a"), "a"),
		endInv(st("a,b", "a,b"), Blocked),
	}}
	if err := CheckRuns(ConstraintGrowOnlyPerRun, []Run{grow, runA}); err != nil {
		t.Fatalf("grow-only per run rejected growth: %v", err)
	}
	shrink := Run{Invocations: []Invocation{
		yieldInv(st("a,b", "a,b"), "a"),
		endInv(st("a", "a"), Returned),
	}}
	if err := CheckRuns(ConstraintGrowOnlyPerRun, []Run{shrink}); !errors.Is(err, ErrViolation) {
		t.Fatalf("grow-only per run accepted shrink: %v", err)
	}
}

func TestCheckersNeverPanicOnArbitraryRuns(t *testing.T) {
	// Property: every checker total-functions over arbitrary (even
	// nonsensical) runs — it returns nil or a violation, never panics.
	rng := sim.NewRand(2718)
	outcomes := []Outcome{Suspended, Returned, Failed, Blocked, Outcome(99)}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6)
		run := Run{}
		for i := 0; i < n; i++ {
			var members, reach []ElemID
			for e := 0; e < rng.Intn(5); e++ {
				id := ElemID(string(rune('a' + rng.Intn(4))))
				if rng.Intn(2) == 0 {
					members = append(members, id)
				}
				if rng.Intn(2) == 0 {
					reach = append(reach, id)
				}
			}
			inv := Invocation{
				Pre:      NewState(members, reach),
				Outcome:  outcomes[rng.Intn(len(outcomes))],
				HasYield: rng.Intn(2) == 0,
				Yield:    ElemID(string(rune('a' + rng.Intn(4)))),
			}
			run.Invocations = append(run.Invocations, inv)
		}
		for _, fig := range Figures() {
			_ = CheckRun(fig, run) // must not panic
		}
		for _, c := range []Constraint{ConstraintTrue, ConstraintImmutable, ConstraintGrowOnly, ConstraintImmutablePerRun, ConstraintGrowOnlyPerRun} {
			_ = CheckRunConstraint(c, run)
			_ = CheckRuns(c, []Run{run, run})
		}
	}
}
