package spec

import (
	"fmt"

	"weaksets/internal/sim"
)

// Env is a model of the environment: the abstract set plus per-element
// reachability, mutated randomly under a chosen constraint discipline. It
// drives the model-level conformance harness: kernels observe Env states,
// the Env mutates between invocations, and the recorded run is checked
// against the figures.
type Env struct {
	rng        *sim.Rand
	universe   []ElemID
	state      State
	discipline Constraint
	// PMutate is the per-step probability that the membership changes.
	PMutate float64
	// PFlipReach is the per-step probability that one element's
	// reachability flips.
	PFlipReach float64
}

// NewEnv creates a model environment over a universe of n elements, with
// roughly half of them initial members and everything initially reachable.
func NewEnv(rng *sim.Rand, n int, discipline Constraint) *Env {
	e := &Env{
		rng:        rng,
		discipline: discipline,
		PMutate:    0.4,
		PFlipReach: 0.3,
	}
	members := make([]ElemID, 0, n)
	reach := make([]ElemID, 0, n)
	for i := 0; i < n; i++ {
		id := ElemID(fmt.Sprintf("e%02d", i))
		e.universe = append(e.universe, id)
		reach = append(reach, id)
		if rng.Float64() < 0.5 {
			members = append(members, id)
		}
	}
	e.state = NewState(members, reach)
	return e
}

// State returns a snapshot of the current model state.
func (e *Env) State() State { return e.state.Clone() }

// Universe returns the element universe.
func (e *Env) Universe() []ElemID { return append([]ElemID(nil), e.universe...) }

// SetReach forces one element's reachability (failure injection).
func (e *Env) SetReach(id ElemID, reachable bool) {
	if reachable {
		e.state.Reach[id] = true
	} else {
		delete(e.state.Reach, id)
	}
}

// Add inserts an element, respecting no discipline checks (callers choose
// legality).
func (e *Env) Add(id ElemID) { e.state.Members[id] = true }

// Remove deletes an element.
func (e *Env) Remove(id ElemID) { delete(e.state.Members, id) }

// Step performs one random environment transition respecting the Env's
// constraint discipline: immutable environments never change membership,
// grow-only environments only add, unconstrained environments add and
// remove. Reachability may flip under any discipline — failures are outside
// the constraint clause.
func (e *Env) Step() {
	if e.rng.Float64() < e.PFlipReach {
		id := e.universe[e.rng.Intn(len(e.universe))]
		if e.state.Reach[id] {
			delete(e.state.Reach, id)
		} else {
			e.state.Reach[id] = true
		}
	}
	if e.rng.Float64() >= e.PMutate {
		return
	}
	switch e.discipline {
	case ConstraintImmutable, ConstraintImmutablePerRun:
		return
	case ConstraintGrowOnly, ConstraintGrowOnlyPerRun:
		id := e.universe[e.rng.Intn(len(e.universe))]
		e.state.Members[id] = true
	default:
		id := e.universe[e.rng.Intn(len(e.universe))]
		if e.state.Members[id] {
			delete(e.state.Members, id)
		} else {
			e.state.Members[id] = true
		}
	}
}

// HealAll makes every element reachable — the "failure has been repaired"
// transition the optimistic semantics waits for.
func (e *Env) HealAll() {
	for _, id := range e.universe {
		e.state.Reach[id] = true
	}
}
