package spec

import (
	"errors"
	"fmt"
)

// Figure names one of the paper's specification points.
type Figure int

// The specification points of the design space.
const (
	// Fig1 is the immutable set ignoring failures (Figure 1).
	Fig1 Figure = iota + 1
	// Fig3 is the immutable set with failures, pessimistic (Figure 3).
	Fig3
	// Fig4 is the mutable set with loss of mutations: everything is
	// evaluated against the snapshot at the first invocation (Figure 4).
	Fig4
	// Fig5 is the grow-only set with pessimistic failure handling
	// (Figure 5).
	Fig5
	// Fig6 is the growing and shrinking set with optimistic failure
	// handling — the weakest point, the one implemented as dynamic sets
	// (Figure 6).
	Fig6
)

// String implements fmt.Stringer.
func (f Figure) String() string {
	switch f {
	case Fig1:
		return "Fig1-immutable-nofail"
	case Fig3:
		return "Fig3-immutable"
	case Fig4:
		return "Fig4-snapshot"
	case Fig5:
		return "Fig5-growonly"
	case Fig6:
		return "Fig6-optimistic"
	default:
		return fmt.Sprintf("figure(%d)", int(f))
	}
}

// Figures lists every checkable ensures-clause specification.
func Figures() []Figure { return []Figure{Fig1, Fig3, Fig4, Fig5, Fig6} }

// ErrViolation is the sentinel wrapped by every conformance violation.
var ErrViolation = errors.New("spec: violation")

// Violation describes where and how a run diverges from a figure's ensures
// clause.
type Violation struct {
	Fig    Figure
	Index  int // invocation index within the run
	Reason string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: invocation %d: %s", v.Fig, v.Index, v.Reason)
}

// Unwrap lets errors.Is(err, ErrViolation) match.
func (v *Violation) Unwrap() error { return ErrViolation }

func violatef(fig Figure, i int, format string, args ...any) error {
	return &Violation{Fig: fig, Index: i, Reason: fmt.Sprintf(format, args...)}
}

// CheckRun verifies a recorded run against the ensures clause of the given
// figure. A nil result means the run conforms. CheckRun checks only the
// iterator's obligations; use the Constraint checkers for the environment's
// obligations (the constraint clause).
func CheckRun(fig Figure, run Run) error {
	first := run.First().Members
	for i, inv := range run.Invocations {
		if err := CheckInvocation(fig, first, run.Yielded(i), i, inv); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvocation verifies a single invocation against the figure's
// ensures clause, given s_first's membership and the `yielded` history
// object as of this invocation. It is the per-step form CheckRun is built
// from, and the hook the exhaustive model checker uses to validate every
// reachable kernel decision.
func CheckInvocation(fig Figure, first map[ElemID]bool, yielded map[ElemID]bool, i int, inv Invocation) error {
	switch fig {
	case Fig1:
		return checkFig1Inv(first, yielded, i, inv)
	case Fig3, Fig4:
		// Figures 3 and 4 share their ensures clause verbatim; they differ
		// only in the constraint clause (immutability vs `true`).
		return checkSnapshotInv(fig, first, yielded, i, inv)
	case Fig5:
		return checkFig5Inv(yielded, i, inv)
	case Fig6:
		return checkFig6Inv(yielded, i, inv)
	default:
		return fmt.Errorf("spec: unknown figure %d", int(fig))
	}
}

// checkFig1Inv verifies the failure-free immutable iterator:
//
//	if yielded_pre ⊊ s_first
//	then yielded_post − yielded_pre = {e} ∧ yielded_post ⊆ s_first ∧ suspends
//	else returns
func checkFig1Inv(first, yielded map[ElemID]bool, i int, inv Invocation) error {
	if strictSubset(yielded, first) {
		if inv.Outcome != Suspended || !inv.HasYield {
			return violatef(Fig1, i, "expected suspend+yield while yielded %s ⊊ first %s, got %s",
				formatSet(yielded), formatSet(first), inv.Outcome)
		}
		if yielded[inv.Yield] {
			return violatef(Fig1, i, "duplicate yield of %q", inv.Yield)
		}
		if !first[inv.Yield] {
			return violatef(Fig1, i, "yielded %q outside s_first %s", inv.Yield, formatSet(first))
		}
		return nil
	}
	if inv.Outcome != Returned {
		return violatef(Fig1, i, "expected return once yielded = s_first, got %s", inv.Outcome)
	}
	if inv.HasYield {
		return violatef(Fig1, i, "yield on returning invocation")
	}
	return nil
}

// checkSnapshotInv verifies the shared ensures clause of Figures 3 and 4,
// everything evaluated against s_first with reachability sampled at the
// invocation's pre-state:
//
//	if yielded_pre ⊂ reachable(s_first)
//	then yield e ∈ reachable(s_first) − yielded_pre, yielded_post ⊆ s_first, suspends
//	else if yielded_pre = reachable(s_first) ∧ yielded_pre ⊂ s_first then fails
//	else returns  (yielded_pre = s_first)
func checkSnapshotInv(fig Figure, first, yielded map[ElemID]bool, i int, inv Invocation) error {
	reachFirst := inv.Pre.ReachableOf(first)
	switch {
	case strictSubset(yielded, reachFirst):
		if inv.Outcome != Suspended || !inv.HasYield {
			return violatef(fig, i, "expected suspend+yield while yielded %s ⊊ reachable(first) %s, got %s",
				formatSet(yielded), formatSet(reachFirst), inv.Outcome)
		}
		if yielded[inv.Yield] {
			return violatef(fig, i, "duplicate yield of %q", inv.Yield)
		}
		if !first[inv.Yield] {
			return violatef(fig, i, "yielded %q outside s_first %s", inv.Yield, formatSet(first))
		}
		if !reachFirst[inv.Yield] {
			return violatef(fig, i, "yielded %q not in reachable(s_first) %s", inv.Yield, formatSet(reachFirst))
		}
	case setsEqual(yielded, reachFirst) && strictSubset(yielded, first):
		if inv.Outcome != Failed {
			return violatef(fig, i, "expected fail: yielded = reachable(first) %s ⊊ first %s, got %s",
				formatSet(reachFirst), formatSet(first), inv.Outcome)
		}
		if inv.HasYield {
			return violatef(fig, i, "yield on failing invocation")
		}
	default:
		if inv.Outcome != Returned {
			return violatef(fig, i, "expected return (yielded %s vs first %s), got %s",
				formatSet(yielded), formatSet(first), inv.Outcome)
		}
		if inv.HasYield {
			return violatef(fig, i, "yield on returning invocation")
		}
	}
	return nil
}

// checkFig5Inv verifies the grow-only pessimistic iterator, everything
// evaluated against the *current* pre-state:
//
//	if yielded_pre ⊂ reachable(s_pre)
//	then yield e ∈ reachable(s_pre) − yielded_pre, yielded_post ⊆ s_pre, suspends
//	else if yielded_pre = s_pre then returns
//	else fails
func checkFig5Inv(yielded map[ElemID]bool, i int, inv Invocation) error {
	pre := inv.Pre.Members
	reachPre := inv.Pre.ReachableOf(pre)
	switch {
	case strictSubset(yielded, reachPre):
		if inv.Outcome != Suspended || !inv.HasYield {
			return violatef(Fig5, i, "expected suspend+yield while yielded %s ⊊ reachable(pre) %s, got %s",
				formatSet(yielded), formatSet(reachPre), inv.Outcome)
		}
		if yielded[inv.Yield] {
			return violatef(Fig5, i, "duplicate yield of %q", inv.Yield)
		}
		if !pre[inv.Yield] {
			return violatef(Fig5, i, "yielded %q outside s_pre %s", inv.Yield, formatSet(pre))
		}
		if !reachPre[inv.Yield] {
			return violatef(Fig5, i, "yielded %q not reachable in pre-state", inv.Yield)
		}
	case setsEqual(yielded, pre):
		if inv.Outcome != Returned {
			return violatef(Fig5, i, "expected return once yielded = s_pre %s, got %s", formatSet(pre), inv.Outcome)
		}
		if inv.HasYield {
			return violatef(Fig5, i, "yield on returning invocation")
		}
	default:
		if inv.Outcome != Failed {
			return violatef(Fig5, i, "expected fail (yielded %s, pre %s, reachable %s), got %s",
				formatSet(yielded), formatSet(pre), formatSet(reachPre), inv.Outcome)
		}
		if inv.HasYield {
			return violatef(Fig5, i, "yield on failing invocation")
		}
	}
	return nil
}

// checkFig6Inv verifies the optimistic grow-and-shrink iterator:
//
//	if ∃ e ∈ s_pre : e ∉ yielded_pre
//	then yield e' with yielded_post − yielded_pre = {e'} ∧ e' ∈ reachable(s_pre), suspends
//	else returns
//
// The iterator never fails; when the unyielded elements are all
// unreachable it blocks (recorded as a Blocked attempt), which is legal
// exactly when no reachable unyielded element exists.
func checkFig6Inv(yielded map[ElemID]bool, i int, inv Invocation) error {
	pre := inv.Pre.Members
	unyielded := difference(pre, yielded)
	reachUnyielded := inv.Pre.ReachableOf(unyielded)
	switch {
	case len(unyielded) > 0:
		switch inv.Outcome {
		case Suspended:
			if !inv.HasYield {
				return violatef(Fig6, i, "suspend without yield")
			}
			if yielded[inv.Yield] {
				return violatef(Fig6, i, "duplicate yield of %q", inv.Yield)
			}
			if !pre[inv.Yield] {
				return violatef(Fig6, i, "yielded %q outside s_pre %s", inv.Yield, formatSet(pre))
			}
			if !inv.Pre.Reach[inv.Yield] {
				return violatef(Fig6, i, "yielded %q not in reachable(s_pre)", inv.Yield)
			}
		case Blocked:
			if len(reachUnyielded) > 0 {
				return violatef(Fig6, i, "blocked although reachable unyielded elements exist: %s",
					formatSet(reachUnyielded))
			}
		case Failed:
			return violatef(Fig6, i, "optimistic iterator must not fail")
		case Returned:
			return violatef(Fig6, i, "returned although unyielded elements exist: %s", formatSet(unyielded))
		}
	default:
		if inv.Outcome != Returned {
			return violatef(Fig6, i, "expected return once every member is yielded, got %s", inv.Outcome)
		}
		if inv.HasYield {
			return violatef(Fig6, i, "yield on returning invocation")
		}
	}
	return nil
}
