package spec

// Render returns the formal text of a figure's specification,
// transliterated from the paper into ASCII. It is documentation the
// checkers are tested against — speccheck -specs prints these so a reader
// can compare the executable checks with the paper's clauses side by side.
func Render(fig Figure) string {
	switch fig {
	case Fig1:
		return `Figure 1 — immutable set, failures ignored
constraint  s_i = s_j                       % set is immutable
elements = iter(s: set) yields (e: elem)
  remembers yielded: set initially {}
  ensures
    if yielded_pre ⊂ s_first                % still more to yield
    then yielded_post − yielded_pre = {e}
         ∧ yielded_post ⊆ s_first
         ∧ suspends
    else returns                            % yielded_pre = s_first`
	case Fig3:
		return `Figure 3 — immutable set with failures (pessimistic)
constraint  s_i = s_j
elements = iter(s: set) yields (e: elem) signals (failure)
  remembers yielded: set initially {}
  ensures
    if yielded_pre ⊂ reachable(s_first)
    then yielded_post − yielded_pre = {e}
         ∧ yielded_post ⊆ s_first
         ∧ e ∈ reachable(s_first)
         ∧ suspends
    else if yielded_pre = reachable(s_first) ∧ yielded_pre ⊂ s_first
    then fails
    else returns                            % yielded_pre = s_first`
	case Fig4:
		return `Figure 4 — mutable set, loss of some mutations
constraint  true                            % the set may change arbitrarily
elements = iter(s: set) yields (e: elem) signals (failure)
  remembers yielded: set initially {}
  ensures
    if yielded_pre ⊂ reachable(s_first)
    then yielded_post − yielded_pre = {e}
         ∧ yielded_post ⊆ s_first
         ∧ e ∈ reachable(s_first)
         ∧ suspends
    else if yielded_pre = reachable(s_first) ∧ yielded_pre ⊂ s_first
    then fails
    else returns                            % yielded_pre = s_first`
	case Fig5:
		return `Figure 5 — growing-only set, pessimistic failure handling
constraint  s_i ⊆ s_j
elements = iter(s: set) yields (e: elem) signals (failure)
  remembers yielded: set initially {}
  ensures
    if yielded_pre ⊂ reachable(s_pre)
    then yielded_post − yielded_pre = {e}
         ∧ yielded_post ⊆ s_pre
         ∧ e ∈ reachable(s_pre)
         ∧ suspends
    else if yielded_pre = s_pre
    then returns
    else fails`
	case Fig6:
		return `Figure 6 — growing and shrinking set, optimistic failure handling
constraint  true
elements = iter(s: set) yields (e: elem)
  remembers yielded: set initially {}
  ensures
    if ∃ e ∈ s_pre : e ∉ yielded_pre
    then yielded_post − yielded_pre = {e}
         ∧ e ∈ reachable(s_pre)
         ∧ suspends                          % blocks while nothing reachable
    else returns`
	default:
		return "unknown figure"
	}
}
