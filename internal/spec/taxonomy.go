package spec

// The paper situates its design points in Garcia-Molina and Wiederhold's
// taxonomy of read-only queries (§4): consistency is "the degree to which
// application constraints on data can be satisfied" (set membership here)
// and currency is "the version of the data returned by the query"
// (mutability here). This file encodes that mapping so tools can label the
// semantics the way the related-work literature would.

// Consistency is the Garcia-Molina/Wiederhold consistency degree.
type Consistency int

// Consistency degrees.
const (
	// ConsistencyStrong is serializable behaviour.
	ConsistencyStrong Consistency = iota + 1
	// ConsistencyWeak permits bounded anomalies.
	ConsistencyWeak
	// ConsistencyNone makes no cross-element promises.
	ConsistencyNone
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case ConsistencyStrong:
		return "strong (serializable)"
	case ConsistencyWeak:
		return "weak"
	case ConsistencyNone:
		return "none"
	default:
		return "consistency(?)"
	}
}

// Currency is the Garcia-Molina/Wiederhold currency class.
type Currency int

// Currency classes.
const (
	// CurrencyFirstVintage: the query sees the data as of its first
	// operation.
	CurrencyFirstVintage Currency = iota + 1
	// CurrencyFirstBound: the query sees data no older than its first
	// operation, but possibly newer.
	CurrencyFirstBound
)

// String implements fmt.Stringer.
func (c Currency) String() string {
	switch c {
	case CurrencyFirstVintage:
		return "first-vintage"
	case CurrencyFirstBound:
		return "first-bound"
	default:
		return "currency(?)"
	}
}

// Taxonomy classifies a figure per §4: "The specification in Figure 3
// corresponds to a strong consistency (serializable), first-vintage query;
// the one in Figure 4, to weak consistency, first-vintage. The other two
// are both no consistency, first-bound under their taxonomy."
func Taxonomy(fig Figure) (Consistency, Currency) {
	switch fig {
	case Fig1, Fig3:
		return ConsistencyStrong, CurrencyFirstVintage
	case Fig4:
		return ConsistencyWeak, CurrencyFirstVintage
	case Fig5, Fig6:
		return ConsistencyNone, CurrencyFirstBound
	default:
		return 0, 0
	}
}
