// Package spec mechanizes the paper's specification framework (§2): states
// and computations, history objects (the iterator's `remembers yielded`
// clause), the novel reachable() construct distinguishing an element's
// existence from its accessibility, the three iterator outcomes (suspends,
// returns, fails — plus the blocking the Fig. 6 optimistic semantics
// exhibits), per-figure conformance checkers for the `ensures` clauses, and
// checkers for the `constraint` clauses over computations.
//
// The checkers are the executable form of Figures 1, 3, 4, 5 and 6 and of
// the two relaxed constraint variants described in prose (§3.1, §3.3). They
// are used two ways: model-level property tests drive the semantic kernels
// over synthetic states and verify exact conformance, and live iterators
// can record their runs for best-effort conformance checking against the
// real distributed substrate.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// ElemID identifies an element of the abstract set.
type ElemID string

// State is the value of the world at one instant, as the specifications see
// it: the set's membership plus the reachability of each element. Elements
// absent from Reach are unreachable. Reach may mention elements outside
// Members (e.g. deleted elements whose nodes are still up); reachable(S)σ
// always intersects with a membership set.
type State struct {
	Members map[ElemID]bool
	Reach   map[ElemID]bool
}

// NewState builds a state from member and reachable element lists.
func NewState(members, reach []ElemID) State {
	s := State{
		Members: make(map[ElemID]bool, len(members)),
		Reach:   make(map[ElemID]bool, len(reach)),
	}
	for _, e := range members {
		s.Members[e] = true
	}
	for _, e := range reach {
		s.Reach[e] = true
	}
	return s
}

// Clone deep-copies the state.
func (s State) Clone() State {
	c := State{
		Members: make(map[ElemID]bool, len(s.Members)),
		Reach:   make(map[ElemID]bool, len(s.Reach)),
	}
	for e := range s.Members {
		c.Members[e] = true
	}
	for e := range s.Reach {
		c.Reach[e] = true
	}
	return c
}

// ReachableMembers is the paper's reachable(x)σ applied to this state's
// membership: the subset of Members that is accessible.
func (s State) ReachableMembers() map[ElemID]bool {
	out := make(map[ElemID]bool)
	for e := range s.Members {
		if s.Reach[e] {
			out[e] = true
		}
	}
	return out
}

// ReachableOf restricts an arbitrary membership set (e.g. s_first) by this
// state's reachability — reachable(s_first) evaluated "now".
func (s State) ReachableOf(members map[ElemID]bool) map[ElemID]bool {
	out := make(map[ElemID]bool)
	for e := range members {
		if s.Reach[e] {
			out[e] = true
		}
	}
	return out
}

// SameMembers reports whether two states have equal membership.
func (s State) SameMembers(o State) bool {
	return setsEqual(s.Members, o.Members)
}

// MembersSubsetOf reports s.Members ⊆ o.Members.
func (s State) MembersSubsetOf(o State) bool {
	return subset(s.Members, o.Members)
}

// Set-algebra helpers shared by the checkers.

func setsEqual(a, b map[ElemID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

func subset(a, b map[ElemID]bool) bool {
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

func strictSubset(a, b map[ElemID]bool) bool {
	return subset(a, b) && len(a) < len(b)
}

func difference(a, b map[ElemID]bool) map[ElemID]bool {
	out := make(map[ElemID]bool)
	for e := range a {
		if !b[e] {
			out[e] = true
		}
	}
	return out
}

func formatSet(s map[ElemID]bool) string {
	ids := make([]string, 0, len(s))
	for e := range s {
		ids = append(ids, string(e))
	}
	sort.Strings(ids)
	return "{" + strings.Join(ids, ",") + "}"
}

// Outcome is the result of one iterator invocation, per §2.1: suspends
// (yielded control normally, not yet terminated), returns (terminated
// normally), fails (terminated with the failure exception). Blocked is the
// additional observable of the Fig. 6 optimistic semantics: the invocation
// did not complete because it is waiting for an unreachable element to
// become reachable again.
type Outcome int

// Invocation outcomes.
const (
	Suspended Outcome = iota + 1
	Returned
	Failed
	Blocked
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Suspended:
		return "suspends"
	case Returned:
		return "returns"
	case Failed:
		return "fails"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Invocation records one call (or resumption, or blocked poll) of the
// elements iterator: the pre-state it observed, and what it did.
type Invocation struct {
	Pre      State
	Yield    ElemID
	HasYield bool
	Outcome  Outcome
}

// Run is one complete use of the iterator: the first call through
// termination (or as far as it got). First-state s_first is the pre-state
// of the first invocation, per the paper's footnote 1.
type Run struct {
	Invocations []Invocation
}

// First returns s_first, the set's value in the state in which the iterator
// was first called. It returns an empty state for an empty run.
func (r Run) First() State {
	if len(r.Invocations) == 0 {
		return NewState(nil, nil)
	}
	return r.Invocations[0].Pre
}

// Yielded reconstructs the iterator's `yielded` history object just before
// invocation i.
func (r Run) Yielded(i int) map[ElemID]bool {
	out := make(map[ElemID]bool)
	for j := 0; j < i && j < len(r.Invocations); j++ {
		if r.Invocations[j].HasYield {
			out[r.Invocations[j].Yield] = true
		}
	}
	return out
}

// Terminated reports whether the run reached a terminal outcome.
func (r Run) Terminated() bool {
	if len(r.Invocations) == 0 {
		return false
	}
	last := r.Invocations[len(r.Invocations)-1].Outcome
	return last == Returned || last == Failed
}
