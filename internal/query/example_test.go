package query_test

import (
	"fmt"
	"log"

	"weaksets/internal/query"
)

// ExampleCompile shows the predicate expression language.
func ExampleCompile() {
	p, err := query.Compile(`cuisine == "chinese" && year >= 1990`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Eval(map[string]string{"cuisine": "chinese", "year": "1994"}))
	fmt.Println(p.Eval(map[string]string{"cuisine": "chinese", "year": "1985"}))
	fmt.Println(p.Eval(map[string]string{"cuisine": "thai", "year": "1994"}))

	// Output:
	// true
	// false
	// false
}

// ExamplePredicate_Eval demonstrates grouping, negation, substring match
// and numeric-vs-lexicographic comparison.
func ExamplePredicate_Eval() {
	p := query.MustCompile(`(dept == "cs" || dept == "ml") && !(title ~= "draft") && rank < 10`)
	fmt.Println(p.Eval(map[string]string{"dept": "cs", "title": "weak sets", "rank": "9"}))
	fmt.Println(p.Eval(map[string]string{"dept": "cs", "title": "weak sets draft", "rank": "9"}))
	fmt.Println(p.Eval(map[string]string{"dept": "cs", "title": "weak sets", "rank": "10"}))

	// Output:
	// true
	// false
	// false
}
