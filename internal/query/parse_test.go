package query

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func attrs(pairs ...string) map[string]string {
	m := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}

func TestCompileAndEval(t *testing.T) {
	tests := []struct {
		src   string
		attrs map[string]string
		want  bool
	}{
		{`cuisine == "chinese"`, attrs("cuisine", "chinese"), true},
		{`cuisine == "chinese"`, attrs("cuisine", "thai"), false},
		{`cuisine != "chinese"`, attrs("cuisine", "thai"), true},
		{`cuisine == 'chinese'`, attrs("cuisine", "chinese"), true},
		{`year >= 1990`, attrs("year", "1991"), true},
		{`year >= 1990`, attrs("year", "1990"), true},
		{`year >= 1990`, attrs("year", "1989"), false},
		{`year < 1990`, attrs("year", "1989"), true},
		{`year <= 1989`, attrs("year", "1989"), true},
		{`year > 1990`, attrs("year", "1989"), false},
		// Numeric comparison, not lexicographic: "9" < "10".
		{`rank < 10`, attrs("rank", "9"), true},
		// Lexicographic fallback when not numeric.
		{`name < "m"`, attrs("name", "alice"), true},
		{`name < "m"`, attrs("name", "zed"), false},
		// Bare identifiers as values.
		{`cuisine == chinese`, attrs("cuisine", "chinese"), true},
		// Substring match.
		{`title ~= "weak"`, attrs("title", "specifying weak sets"), true},
		{`title ~= "strong"`, attrs("title", "specifying weak sets"), false},
		// Conjunction, disjunction, negation, grouping.
		{`a == 1 && b == 2`, attrs("a", "1", "b", "2"), true},
		{`a == 1 && b == 2`, attrs("a", "1", "b", "3"), false},
		{`a == 1 || b == 2`, attrs("a", "0", "b", "2"), true},
		{`!(a == 1)`, attrs("a", "2"), true},
		{`!(a == 1) && !(a == 2)`, attrs("a", "3"), true},
		{`(a == 1 || b == 2) && c == 3`, attrs("b", "2", "c", "3"), true},
		{`(a == 1 || b == 2) && c == 3`, attrs("b", "2", "c", "4"), false},
		// Precedence: && binds tighter than ||.
		{`a == 1 || b == 2 && c == 3`, attrs("a", "1"), true},
		{`a == 1 || b == 2 && c == 3`, attrs("b", "2", "c", "4"), false},
		// Missing attributes compare as empty strings.
		{`missing == ""`, attrs(), true},
		{`missing != "x"`, attrs(), true},
		// Escapes in strings.
		{`name == "a\"b"`, attrs("name", `a"b`), true},
		// Negative numbers.
		{`delta >= -5`, attrs("delta", "-3"), true},
		{`delta < -5`, attrs("delta", "-3"), false},
		// Identifier charset includes dots and dashes.
		{`fs.type == dir`, attrs("fs.type", "dir"), true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			p, err := Compile(tt.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if got := p.Eval(tt.attrs); got != tt.want {
				t.Fatalf("eval(%v) = %v, want %v", tt.attrs, got, tt.want)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`a =`,
		`a = 1`, // single =
		`a == `,
		`a &`,
		`a |`,
		`(a == 1`,
		`a == 1)`,
		`a == 1 &&`,
		`== 1`,
		`a == "unterminated`,
		`a @ 1`,
		`a == 1 b == 2`,
		`~a`,
	}
	for _, src := range bad {
		t.Run(src, func(t *testing.T) {
			if _, err := Compile(src); !errors.Is(err, ErrParse) {
				t.Fatalf("Compile(%q) = %v, want parse error", src, err)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile(`a ==`)
}

func TestPredicateString(t *testing.T) {
	src := `a == 1 && b == 2`
	if got := MustCompile(src).String(); got != src {
		t.Fatalf("String() = %q", got)
	}
}

func TestEvalNeverPanics(t *testing.T) {
	// Property: any predicate that compiles evaluates without panicking on
	// arbitrary attribute maps.
	preds := []*Predicate{
		MustCompile(`a == 1 && (b != 2 || c >= 3) && !(d ~= "x")`),
		MustCompile(`k < "zzz" || k > 10`),
	}
	f := func(k1, v1, k2, v2 string) bool {
		m := map[string]string{k1: v1, k2: v2}
		for _, p := range preds {
			_ = p.Eval(m)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// Property: !(a && b) == (!a || !b) for the compiled forms.
	lhs := MustCompile(`!(x == 1 && y == 2)`)
	rhs := MustCompile(`!(x == 1) || !(y == 2)`)
	f := func(x, y uint8) bool {
		m := attrs("x", itox(x%3), "y", itox(y%3))
		return lhs.Eval(m) == rhs.Eval(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itox(v uint8) string {
	return string(rune('0' + v))
}

func TestLexerOffsets(t *testing.T) {
	_, err := Compile(`a == 1 && b @ 2`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("err = %v, want offset info", err)
	}
}

// FuzzCompile checks the parser is total: any input either fails with
// ErrParse or compiles to a predicate whose Eval never panics.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`a == 1`,
		`cuisine == "chinese" && year >= 1990`,
		`!(a != b) || c ~= "x"`,
		`((a == 1))`,
		`a == "\""`,
		`key-with-dash.dotted == v_1`,
		``,
		`&& ||`,
		`a == `,
		`🦀 == 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			if !errors.Is(err, ErrParse) {
				t.Fatalf("non-parse error: %v", err)
			}
			return
		}
		_ = p.Eval(map[string]string{"a": "1", "cuisine": "chinese"})
		_ = p.Eval(nil)
	})
}
