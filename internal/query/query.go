package query

import (
	"context"
	"fmt"

	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

// Result is one element matched by a query.
type Result struct {
	Element core.Element
}

// Options configures query execution.
type Options struct {
	// Semantics selects the weak-set consistency the query runs under.
	// Mutually exclusive with Dynamic.
	Semantics core.Semantics
	// SetOptions are passed to the underlying weak set when Semantics is
	// used.
	SetOptions core.Options
	// Dynamic, when true, runs the query on a dynamic set (optimistic
	// semantics with parallel, closest-first prefetch).
	Dynamic bool
	// DynOptions are passed to the dynamic set when Dynamic is set.
	DynOptions core.DynOptions
}

// Query is a compiled predicate bound to a collection.
type Query struct {
	pred   *Predicate
	client *repo.Client
	dir    netsim.NodeID
	coll   string
}

// New compiles src and binds it to the collection.
func New(client *repo.Client, dir netsim.NodeID, coll, src string) (*Query, error) {
	pred, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return &Query{pred: pred, client: client, dir: dir, coll: coll}, nil
}

// Predicate exposes the compiled predicate.
func (q *Query) Predicate() *Predicate { return q.pred }

// Stream runs the query and calls fn for every matching element as it is
// yielded — the incremental-retrieval style the paper's iterators are
// designed for. It returns the number of elements examined and the
// iterator's terminal error (nil, ErrFailure, ErrBlocked, or a context
// error). fn returning false stops the query early.
func (q *Query) Stream(ctx context.Context, opts Options, fn func(Result) bool) (examined int, err error) {
	if opts.Dynamic {
		return q.streamDyn(ctx, opts, fn)
	}
	if !opts.Semantics.Valid() {
		return 0, fmt.Errorf("query: invalid semantics %d", int(opts.Semantics))
	}
	setOpts := opts.SetOptions
	setOpts.Semantics = opts.Semantics
	set, err := core.NewSet(q.client, q.dir, q.coll, setOpts)
	if err != nil {
		return 0, err
	}
	it, err := set.Elements(ctx)
	if err != nil {
		return 0, err
	}
	defer func() { _ = it.Close(context.Background()) }()
	for it.Next(ctx) {
		examined++
		e := it.Element()
		if q.pred.Eval(e.Attrs) {
			if !fn(Result{Element: e}) {
				return examined, nil
			}
		}
	}
	return examined, it.Err()
}

func (q *Query) streamDyn(ctx context.Context, opts Options, fn func(Result) bool) (examined int, err error) {
	ds, err := core.OpenDyn(ctx, q.client, q.dir, q.coll, opts.DynOptions)
	if err != nil {
		return 0, err
	}
	defer func() { _ = ds.Close() }()
	for ds.Next(ctx) {
		examined++
		e := ds.Element()
		if q.pred.Eval(e.Attrs) {
			if !fn(Result{Element: e}) {
				return examined, nil
			}
		}
	}
	return examined, ds.Err()
}

// Collect runs the query to completion and returns every match.
func (q *Query) Collect(ctx context.Context, opts Options) ([]Result, error) {
	var out []Result
	_, err := q.Stream(ctx, opts, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// First returns the first match — the latency-critical operation dynamic
// sets optimize ("we would not go hungry if our restaurant search missed
// some…", §1: often any satisfying element will do).
func (q *Query) First(ctx context.Context, opts Options) (Result, bool, error) {
	var (
		res   Result
		found bool
	)
	_, err := q.Stream(ctx, opts, func(r Result) bool {
		res, found = r, true
		return false
	})
	return res, found, err
}

// Count runs the query to completion and returns the number of matches.
func (q *Query) Count(ctx context.Context, opts Options) (int, error) {
	n := 0
	_, err := q.Stream(ctx, opts, func(Result) bool {
		n++
		return true
	})
	return n, err
}
