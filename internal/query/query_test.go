package query

import (
	"context"
	"errors"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/repo"
	"weaksets/internal/wais"
)

func buildQueryWorld(t *testing.T) (*cluster.Cluster, wais.Corpus) {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	corpus, err := wais.BuildRestaurants(context.Background(), c, 20)
	if err != nil {
		t.Fatal(err)
	}
	return c, corpus
}

func TestQueryCollectPerSemantics(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine == "chinese"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range core.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			opts := Options{Semantics: sem}
			if sem == core.ImmutablePerRun {
				opts.SetOptions.LockServer = c.LockNode
			}
			results, err := q.Collect(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 4 {
				t.Fatalf("matches = %d, want 4 of 20", len(results))
			}
			for _, r := range results {
				if r.Element.Attrs["cuisine"] != "chinese" {
					t.Fatalf("bad match: %v", r.Element.Attrs)
				}
			}
		})
	}
}

func TestQueryDynamic(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine == "thai" || cuisine == "indian"`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(context.Background(), Options{Dynamic: true, DynOptions: core.DynOptions{Width: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("count = %d, want 8", n)
	}
}

func TestQueryFirstStopsEarly(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine != ""`)
	if err != nil {
		t.Fatal(err)
	}
	res, found, err := q.First(context.Background(), Options{Semantics: core.Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	if !found || res.Element.Attrs["cuisine"] == "" {
		t.Fatalf("first = %+v found=%v", res, found)
	}
}

func TestQueryStreamExaminedCount(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine == "diner"`)
	if err != nil {
		t.Fatal(err)
	}
	examined, err := q.Stream(context.Background(), Options{Semantics: core.Snapshot}, func(Result) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if examined != 20 {
		t.Fatalf("examined = %d, want 20", examined)
	}
}

func TestQueryInheritsIteratorFailure(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	c.Net.Isolate(c.Storage[0])
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine == "chinese"`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.Collect(context.Background(), Options{Semantics: core.GrowOnly})
	if !errors.Is(err, core.ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}
	// The same query on a dynamic set degrades instead of failing.
	results, err := q.Collect(context.Background(), Options{Dynamic: true, DynOptions: core.DynOptions{Width: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || len(results) > 4 {
		t.Fatalf("dynamic matches = %d", len(results))
	}
}

func TestQueryBadPredicate(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	if _, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine ==`); !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want parse error", err)
	}
}

func TestQueryInvalidOptions(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `a == 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Collect(context.Background(), Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestQuerySeesLiveAdditionsUnderOptimistic(t *testing.T) {
	c, corpus := buildQueryWorld(t)
	ctx := context.Background()
	q, err := New(c.Client, corpus.Dir, corpus.Coll, `cuisine == "fusion"`)
	if err != nil {
		t.Fatal(err)
	}

	// Add a matching element after the first yield, mid-iteration.
	added := false
	var matches int
	_, err = q.Stream(ctx, Options{Semantics: core.Optimistic, SetOptions: core.Options{BlockRetry: time.Millisecond}}, func(r Result) bool {
		matches++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if matches != 0 {
		t.Fatalf("pre-existing fusion restaurants: %d", matches)
	}

	// Now interleave: stream while adding.
	set, err := core.NewSet(c.Client, corpus.Dir, corpus.Coll, core.Options{Semantics: core.Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	it, err := set.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close(ctx)
	pred := q.Predicate()
	matches = 0
	count := 0
	for it.Next(ctx) {
		count++
		if pred.Eval(it.Element().Attrs) {
			matches++
		}
		if !added {
			added = true
			obj := repo.Object{
				ID:    "fusion-1",
				Data:  []byte("menu"),
				Attrs: map[string]string{"cuisine": "fusion"},
			}
			ref, err := c.Client.Put(ctx, c.Storage[1], obj)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Client.Add(ctx, corpus.Dir, corpus.Coll, ref); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if matches != 1 {
		t.Fatalf("live addition matches = %d, want 1", matches)
	}
	if count < 21 {
		t.Fatalf("examined %d, want the original 20 plus the addition", count)
	}
}
