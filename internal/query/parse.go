// Package query provides the database-like queries the paper motivates
// over weak sets (§1.1: "by supporting a set-like abstraction, we can
// support database-like queries, e.g., finding all files that satisfy a
// given predicate"). A predicate is parsed from a small expression
// language over object attributes:
//
//	cuisine == "chinese"
//	author == "wing" && year >= 1990
//	(dept == "cs" || dept == "ml") && user != "user007"
//
// and evaluated client-side against elements streamed by a weak set or
// dynamic set — so a query inherits exactly the consistency semantics of
// the iterator it runs on.
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrParse wraps every syntax error.
var ErrParse = errors.New("query: parse error")

// Predicate is a compiled boolean expression over attribute maps.
type Predicate struct {
	root node
	src  string
}

// String returns the source text the predicate was compiled from.
func (p *Predicate) String() string { return p.src }

// Eval evaluates the predicate against an attribute map. Missing
// attributes compare as empty strings (and as NaN-like failures for
// numeric comparisons, which are false).
func (p *Predicate) Eval(attrs map[string]string) bool {
	return p.root.eval(attrs)
}

// Compile parses the expression.
func Compile(src string) (*Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks, src: src}
	root, err := pr.parseOr()
	if err != nil {
		return nil, err
	}
	if !pr.atEnd() {
		return nil, fmt.Errorf("%w: trailing input at %q", ErrParse, pr.peek().text)
	}
	return &Predicate{root: root, src: src}, nil
}

// MustCompile is Compile panicking on error, for constant predicates.
func MustCompile(src string) *Predicate {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// node is an expression tree node.
type node interface {
	eval(attrs map[string]string) bool
}

type andNode struct{ l, r node }

func (n andNode) eval(a map[string]string) bool { return n.l.eval(a) && n.r.eval(a) }

type orNode struct{ l, r node }

func (n orNode) eval(a map[string]string) bool { return n.l.eval(a) || n.r.eval(a) }

type notNode struct{ inner node }

func (n notNode) eval(a map[string]string) bool { return !n.inner.eval(a) }

type cmpOp int

const (
	opEq cmpOp = iota + 1
	opNeq
	opLt
	opLte
	opGt
	opGte
	opContains
)

type cmpNode struct {
	key string
	op  cmpOp
	val string
}

func (n cmpNode) eval(a map[string]string) bool {
	have := a[n.key]
	switch n.op {
	case opEq:
		return have == n.val
	case opNeq:
		return have != n.val
	case opContains:
		return strings.Contains(have, n.val)
	}
	// Ordered comparisons: numeric when both sides parse, else
	// lexicographic.
	hf, herr := strconv.ParseFloat(have, 64)
	vf, verr := strconv.ParseFloat(n.val, 64)
	if herr == nil && verr == nil {
		switch n.op {
		case opLt:
			return hf < vf
		case opLte:
			return hf <= vf
		case opGt:
			return hf > vf
		case opGte:
			return hf >= vf
		}
	}
	switch n.op {
	case opLt:
		return have < n.val
	case opLte:
		return have <= n.val
	case opGt:
		return have > n.val
	case opGte:
		return have >= n.val
	}
	return false
}

// lexer

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokString
	tokNumber
	tokOp     // == != < <= > >= ~=
	tokAnd    // &&
	tokOr     // ||
	tokNot    // !
	tokLParen // (
	tokRParen // )
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == '&':
			if i+1 >= len(src) || src[i+1] != '&' {
				return nil, fmt.Errorf("%w: expected && at offset %d", ErrParse, i)
			}
			toks = append(toks, token{kind: tokAnd, text: "&&"})
			i += 2
		case c == '|':
			if i+1 >= len(src) || src[i+1] != '|' {
				return nil, fmt.Errorf("%w: expected || at offset %d", ErrParse, i)
			}
			toks = append(toks, token{kind: tokOr, text: "||"})
			i += 2
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "!="})
				i += 2
			} else {
				toks = append(toks, token{kind: tokNot, text: "!"})
				i++
			}
		case c == '=':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("%w: expected == at offset %d (single = not allowed)", ErrParse, i)
			}
			toks = append(toks, token{kind: tokOp, text: "=="})
			i += 2
		case c == '~':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("%w: expected ~= at offset %d", ErrParse, i)
			}
			toks = append(toks, token{kind: tokOp, text: "~="})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokOp, text: op})
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: unterminated string at offset %d", ErrParse, i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String()})
			i = j + 1
		case unicode.IsDigit(rune(c)) || c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1])):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j]})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrParse, c, i)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-'
}

// parser: or := and ( '||' and )* ; and := unary ( '&&' unary )* ;
// unary := '!' unary | '(' or ')' | cmp ; cmp := ident op value

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEnd() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for !p.atEnd() && p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for !p.atEnd() && p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andNode{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{inner: inner}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("%w: missing )", ErrParse)
		}
		p.next()
		return inner, nil
	case tokIdent:
		return p.parseCmp()
	default:
		return nil, fmt.Errorf("%w: unexpected token %q", ErrParse, p.peek().text)
	}
}

func (p *parser) parseCmp() (node, error) {
	key := p.next().text
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("%w: expected comparison after %q, got %q", ErrParse, key, op.text)
	}
	val := p.next()
	if val.kind != tokString && val.kind != tokNumber && val.kind != tokIdent {
		return nil, fmt.Errorf("%w: expected value after %q %s", ErrParse, key, op.text)
	}
	var kind cmpOp
	switch op.text {
	case "==":
		kind = opEq
	case "!=":
		kind = opNeq
	case "<":
		kind = opLt
	case "<=":
		kind = opLte
	case ">":
		kind = opGt
	case ">=":
		kind = opGte
	case "~=":
		kind = opContains
	default:
		return nil, fmt.Errorf("%w: unknown operator %q", ErrParse, op.text)
	}
	return cmpNode{key: key, op: kind, val: val.text}, nil
}
