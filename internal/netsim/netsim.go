// Package netsim simulates the wide-area distributed system the paper
// assumes: "a set of connected nodes, not necessarily strongly connected"
// where "nodes may crash and communication links may fail", and where
// failures are detectable. It provides nodes, per-link latency
// distributions, network partitions, node crashes, and probabilistic
// message loss, all derived deterministically from a seed.
//
// The simulator runs in (scaled) real time: a message delay of 50 virtual
// milliseconds is an actual sleep of 50ms x TimeScale, so goroutine-level
// parallelism — the thing dynamic sets exploit — is real, while experiments
// finish quickly.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"weaksets/internal/sim"
)

// NodeID names a node in the simulated system.
type NodeID string

// Errors reported by the network. These model the paper's single "failure"
// exception: "any kind of failure, e.g., a timeout, node crash, or link
// down, due to the distributed nature of the system" (§2.1).
var (
	// ErrUnreachable is the detectable failure exception of the paper: the
	// destination exists but cannot currently be reached.
	ErrUnreachable = errors.New("netsim: destination unreachable")
	// ErrNoSuchNode reports a destination that was never added.
	ErrNoSuchNode = errors.New("netsim: no such node")
	// ErrDropped reports a message lost in transit (also surfaced as the
	// failure exception after a timeout).
	ErrDropped = errors.New("netsim: message dropped")
)

type linkKey struct {
	a, b NodeID
}

func normLink(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// Config parameterizes a Network.
type Config struct {
	// Seed drives every random choice in the network. Equal seeds with an
	// equal call sequence give equal behaviour.
	Seed int64
	// DefaultLatency is the one-way delay distribution used for links with
	// no per-link override. Defaults to a fixed 10ms.
	DefaultLatency sim.Dist
	// DropProb is the probability that any single message is silently lost.
	DropProb float64
	// Scale maps virtual durations to wall-clock sleeps. The zero value
	// sleeps nothing — latencies are recorded but never waited out, which
	// is right for logical-only tests. Experiments that want wall-clock
	// effects (queueing, timeouts, capacity) must set it explicitly, e.g.
	// to sim.DefaultScale (1000x compression).
	Scale sim.TimeScale
	// DetectTimeout is how long (virtual) a sender waits before declaring a
	// peer unreachable. Defaults to 200ms.
	DetectTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultLatency == nil {
		c.DefaultLatency = sim.Fixed(10 * time.Millisecond)
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = 200 * time.Millisecond
	}
	return c
}

// Network is the simulated wide-area network. All methods are safe for
// concurrent use.
type Network struct {
	cfg Config
	rng *sim.Rand

	mu        sync.RWMutex
	nodes     map[NodeID]bool
	crashed   map[NodeID]bool
	partition map[NodeID]int // partition group; absent => group 0
	links     map[linkKey]sim.Dist
	severed   map[linkKey]bool
}

// New builds an empty network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:       cfg,
		rng:       sim.NewRand(cfg.Seed),
		nodes:     make(map[NodeID]bool),
		crashed:   make(map[NodeID]bool),
		partition: make(map[NodeID]int),
		links:     make(map[linkKey]sim.Dist),
		severed:   make(map[linkKey]bool),
	}
}

// Scale reports the network's virtual-to-real time scale.
func (n *Network) Scale() sim.TimeScale { return n.cfg.Scale }

// Rand exposes the network's seeded random source so substrates can derive
// deterministic sub-streams.
func (n *Network) Rand() *sim.Rand { return n.rng }

// AddNode registers a node. Adding an existing node is a no-op.
func (n *Network) AddNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[id] = true
}

// AddNodes registers several nodes at once and returns their IDs.
func (n *Network) AddNodes(prefix string, count int) []NodeID {
	ids := make([]NodeID, 0, count)
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < count; i++ {
		id := NodeID(fmt.Sprintf("%s%d", prefix, i))
		n.nodes[id] = true
		ids = append(ids, id)
	}
	return ids
}

// Nodes lists all registered nodes in sorted order.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasNode reports whether id is registered.
func (n *Network) HasNode(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.nodes[id]
}

// Crash takes a node down. Messages to or from it fail until Restart.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart brings a crashed node back up.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether the node is currently down.
func (n *Network) Crashed(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[id]
}

// Partition splits the network into the given groups. Nodes not mentioned
// in any group remain in group 0 (together with the first group's nodes
// only if the first group is the implicit one). Passing no groups is
// equivalent to Heal.
func (n *Network) Partition(groups ...[]NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
	for gi, group := range groups {
		for _, id := range group {
			n.partition[id] = gi + 1
		}
	}
}

// Isolate places a single node in its own partition, leaving every other
// node's group unchanged.
func (n *Network) Isolate(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	max := 0
	for _, g := range n.partition {
		if g > max {
			max = g
		}
	}
	n.partition[id] = max + 1
}

// Rejoin returns a node isolated with Isolate to the default group.
func (n *Network) Rejoin(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partition, id)
}

// Heal removes all partitions and severed links (crashed nodes stay down).
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
	n.severed = make(map[linkKey]bool)
}

// SeverLink breaks the direct link between a and b without partitioning
// either node from the rest of the network.
func (n *Network) SeverLink(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.severed[normLink(a, b)] = true
}

// RepairLink restores a severed link.
func (n *Network) RepairLink(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.severed, normLink(a, b))
}

// SetLinkLatency overrides the one-way latency distribution between a and b
// (symmetric).
func (n *Network) SetLinkLatency(a, b NodeID, d sim.Dist) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[normLink(a, b)] = d
}

// Reachable reports whether a message from src would currently be delivered
// to dst: both nodes exist and are up, they are in the same partition
// group, and the link between them is not severed. This is the failure
// detector the paper assumes ("we assume we can detect failures").
func (n *Network) Reachable(src, dst NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.reachableLocked(src, dst)
}

func (n *Network) reachableLocked(src, dst NodeID) bool {
	if !n.nodes[src] || !n.nodes[dst] {
		return false
	}
	if n.crashed[src] || n.crashed[dst] {
		return false
	}
	if src == dst {
		return true
	}
	if n.partition[src] != n.partition[dst] {
		return false
	}
	return !n.severed[normLink(src, dst)]
}

// EstimateRTT reports the expected round-trip time between two nodes based
// on the configured latency distributions. It does not consult
// reachability; it is the "distance" estimate used for closest-first
// fetching.
func (n *Network) EstimateRTT(src, dst NodeID) time.Duration {
	if src == dst {
		return 0
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	d := n.cfg.DefaultLatency
	if ld, ok := n.links[normLink(src, dst)]; ok {
		d = ld
	}
	return 2 * d.Mean()
}

// Transmit models a one-way message: it checks reachability, samples the
// link latency, sleeps the scaled delay, re-checks reachability (a
// partition can form mid-flight), and applies the drop probability. On
// success it returns the virtual latency incurred; on failure it returns
// the virtual time the sender lost before detecting the failure, and the
// error.
func (n *Network) Transmit(src, dst NodeID) (time.Duration, error) {
	n.mu.RLock()
	exists := n.nodes[dst]
	reachable := n.reachableLocked(src, dst)
	dist := n.cfg.DefaultLatency
	if ld, ok := n.links[normLink(src, dst)]; ok {
		dist = ld
	}
	drop := n.cfg.DropProb
	timeout := n.cfg.DetectTimeout
	n.mu.RUnlock()

	if !exists {
		return 0, ErrNoSuchNode
	}
	if !reachable {
		// Failure detection costs the detection timeout.
		n.cfg.Scale.Sleep(timeout)
		return timeout, ErrUnreachable
	}
	if src != dst && drop > 0 && n.rng.Float64() < drop {
		n.cfg.Scale.Sleep(timeout)
		return timeout, ErrDropped
	}
	var lat time.Duration
	if src != dst {
		lat = dist.Sample(n.rng)
		n.cfg.Scale.Sleep(lat)
	}
	if !n.Reachable(src, dst) {
		// The partition formed while the message was in flight.
		rem := timeout - lat
		if rem > 0 {
			n.cfg.Scale.Sleep(rem)
			lat = timeout
		}
		return lat, ErrUnreachable
	}
	return lat, nil
}

// IsFailure reports whether err is one of the network's detectable failure
// exceptions (the paper's "fails" outcome).
func IsFailure(err error) bool {
	return errors.Is(err, ErrUnreachable) || errors.Is(err, ErrDropped) || errors.Is(err, ErrNoSuchNode)
}
