package netsim

import (
	"context"
	"testing"
	"time"
)

func TestScheduleAppliesInOrder(t *testing.T) {
	n := New(Config{Scale: 0.01}) // 100x: 10ms virtual = 100µs real
	n.AddNode("a")
	n.AddNode("b")
	sched := NewSchedule(n,
		// Deliberately out of order; NewSchedule sorts.
		RejoinAt(20*time.Millisecond, "b"),
		IsolateAt(10*time.Millisecond, "b"),
	)
	sched.Start(context.Background())
	sched.Wait()

	applied := sched.Applied()
	if len(applied) != 2 || applied[0] != "isolate b" || applied[1] != "rejoin b" {
		t.Fatalf("applied = %v", applied)
	}
	if !n.Reachable("a", "b") {
		t.Fatal("final state should be healed")
	}
}

func TestScheduleTiming(t *testing.T) {
	n := New(Config{Scale: 0.01})
	n.AddNode("a")
	n.AddNode("b")
	sched := NewSchedule(n, IsolateAt(50*time.Millisecond, "b"))
	sched.Start(context.Background())

	// Immediately after start the event must not have fired yet.
	if !n.Reachable("a", "b") {
		t.Fatal("event fired too early")
	}
	sched.Wait()
	if n.Reachable("a", "b") {
		t.Fatal("event never fired")
	}
}

func TestScheduleStopHaltsReplay(t *testing.T) {
	n := New(Config{Scale: 0.01})
	n.AddNode("a")
	n.AddNode("b")
	sched := NewSchedule(n,
		IsolateAt(5*time.Millisecond, "b"),
		CrashAt(10*time.Second, "a"), // far in the future
	)
	sched.Start(context.Background())
	deadline := time.Now().Add(2 * time.Second)
	for n.Reachable("a", "b") && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	sched.Stop()
	if n.Crashed("a") {
		t.Fatal("stopped schedule applied a future event")
	}
	if got := sched.Applied(); len(got) != 1 {
		t.Fatalf("applied = %v", got)
	}
}

func TestScheduleCrashRestartHeal(t *testing.T) {
	n := New(Config{Scale: 0.01})
	n.AddNode("a")
	n.AddNode("b")
	sched := NewSchedule(n,
		CrashAt(0, "b"),
		RestartAt(10*time.Millisecond, "b"),
		IsolateAt(20*time.Millisecond, "a"),
		HealAt(30*time.Millisecond),
	)
	sched.Start(context.Background())
	sched.Wait()
	if got := sched.Applied(); len(got) != 4 || got[3] != "heal" {
		t.Fatalf("applied = %v", got)
	}
	if !n.Reachable("a", "b") {
		t.Fatal("final state should be fully connected")
	}
}

func TestScheduleContextCancellation(t *testing.T) {
	n := New(Config{Scale: 0.01})
	n.AddNode("a")
	ctx, cancel := context.WithCancel(context.Background())
	sched := NewSchedule(n, CrashAt(time.Hour, "a"))
	sched.Start(ctx)
	cancel()
	done := make(chan struct{})
	go func() {
		sched.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("schedule did not exit on context cancellation")
	}
}
