package netsim

import (
	"errors"
	"testing"
	"time"

	"weaksets/internal/sim"
)

// testNet builds a no-sleep network with nodes a, b, c.
func testNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := New(cfg)
	for _, id := range []NodeID{"a", "b", "c"} {
		n.AddNode(id)
	}
	return n
}

func TestReachableBasics(t *testing.T) {
	n := testNet(t, Config{})
	if !n.Reachable("a", "b") {
		t.Fatal("a should reach b")
	}
	if !n.Reachable("a", "a") {
		t.Fatal("a should reach itself")
	}
	if n.Reachable("a", "zz") {
		t.Fatal("unknown node should be unreachable")
	}
	if n.Reachable("zz", "a") {
		t.Fatal("unknown source should be unreachable")
	}
}

func TestCrashAndRestart(t *testing.T) {
	n := testNet(t, Config{})
	n.Crash("b")
	if n.Reachable("a", "b") {
		t.Fatal("crashed node reachable")
	}
	if n.Reachable("b", "a") {
		t.Fatal("crashed node can send")
	}
	if !n.Crashed("b") {
		t.Fatal("Crashed(b) = false")
	}
	n.Restart("b")
	if !n.Reachable("a", "b") {
		t.Fatal("restarted node unreachable")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := testNet(t, Config{})
	n.Partition([]NodeID{"a"}, []NodeID{"b", "c"})
	if n.Reachable("a", "b") {
		t.Fatal("a reached across partition")
	}
	if !n.Reachable("b", "c") {
		t.Fatal("b and c share a side")
	}
	n.Heal()
	if !n.Reachable("a", "b") {
		t.Fatal("heal did not restore reachability")
	}
}

func TestIsolateRejoin(t *testing.T) {
	n := testNet(t, Config{})
	n.Isolate("c")
	if n.Reachable("a", "c") || n.Reachable("c", "b") {
		t.Fatal("isolated node still reachable")
	}
	if !n.Reachable("a", "b") {
		t.Fatal("isolation affected other nodes")
	}
	n.Rejoin("c")
	if !n.Reachable("a", "c") {
		t.Fatal("rejoin failed")
	}
}

func TestIsolateTwoNodesSeparately(t *testing.T) {
	n := testNet(t, Config{})
	n.Isolate("a")
	n.Isolate("b")
	if n.Reachable("a", "b") {
		t.Fatal("two isolated nodes should not see each other")
	}
	n.Rejoin("a")
	if !n.Reachable("a", "c") {
		t.Fatal("a should rejoin default group")
	}
	if n.Reachable("a", "b") {
		t.Fatal("b is still isolated")
	}
}

func TestSeverLink(t *testing.T) {
	n := testNet(t, Config{})
	n.SeverLink("a", "b")
	if n.Reachable("a", "b") || n.Reachable("b", "a") {
		t.Fatal("severed link still reachable")
	}
	if !n.Reachable("a", "c") || !n.Reachable("b", "c") {
		t.Fatal("severing a-b affected other links")
	}
	n.RepairLink("b", "a") // order should not matter
	if !n.Reachable("a", "b") {
		t.Fatal("repair failed")
	}
}

func TestTransmitSuccessLatency(t *testing.T) {
	n := testNet(t, Config{DefaultLatency: sim.Fixed(30 * time.Millisecond)})
	lat, err := n.Transmit("a", "b")
	if err != nil {
		t.Fatalf("transmit: %v", err)
	}
	if lat != 30*time.Millisecond {
		t.Fatalf("latency = %v, want 30ms", lat)
	}
}

func TestTransmitSelfIsFree(t *testing.T) {
	n := testNet(t, Config{})
	lat, err := n.Transmit("a", "a")
	if err != nil {
		t.Fatalf("self transmit: %v", err)
	}
	if lat != 0 {
		t.Fatalf("self latency = %v, want 0", lat)
	}
}

func TestTransmitUnreachableCostsDetectTimeout(t *testing.T) {
	n := testNet(t, Config{DetectTimeout: 99 * time.Millisecond})
	n.Isolate("b")
	lat, err := n.Transmit("a", "b")
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if lat != 99*time.Millisecond {
		t.Fatalf("detection cost = %v, want 99ms", lat)
	}
}

func TestTransmitToUnknownNode(t *testing.T) {
	n := testNet(t, Config{})
	if _, err := n.Transmit("a", "nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestTransmitDrops(t *testing.T) {
	n := testNet(t, Config{DropProb: 1.0})
	if _, err := n.Transmit("a", "b"); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	// Self-sends never drop.
	if _, err := n.Transmit("a", "a"); err != nil {
		t.Fatalf("self transmit dropped: %v", err)
	}
}

func TestTransmitDropProbabilistic(t *testing.T) {
	n := testNet(t, Config{Seed: 1, DropProb: 0.5})
	drops := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if _, err := n.Transmit("a", "b"); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	if drops < trials/4 || drops > 3*trials/4 {
		t.Fatalf("drop rate %d/%d far from 0.5", drops, trials)
	}
}

func TestEstimateRTT(t *testing.T) {
	n := testNet(t, Config{DefaultLatency: sim.Fixed(10 * time.Millisecond)})
	if got := n.EstimateRTT("a", "b"); got != 20*time.Millisecond {
		t.Fatalf("default RTT = %v, want 20ms", got)
	}
	n.SetLinkLatency("a", "b", sim.Fixed(100*time.Millisecond))
	if got := n.EstimateRTT("a", "b"); got != 200*time.Millisecond {
		t.Fatalf("override RTT = %v, want 200ms", got)
	}
	if got := n.EstimateRTT("b", "a"); got != 200*time.Millisecond {
		t.Fatalf("RTT should be symmetric, got %v", got)
	}
	if got := n.EstimateRTT("a", "a"); got != 0 {
		t.Fatalf("self RTT = %v, want 0", got)
	}
}

func TestPerLinkLatencyUsedByTransmit(t *testing.T) {
	n := testNet(t, Config{DefaultLatency: sim.Fixed(10 * time.Millisecond)})
	n.SetLinkLatency("a", "c", sim.Fixed(70*time.Millisecond))
	lat, err := n.Transmit("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if lat != 70*time.Millisecond {
		t.Fatalf("latency = %v, want 70ms", lat)
	}
}

func TestNodesSortedAndAddNodes(t *testing.T) {
	n := New(Config{})
	ids := n.AddNodes("w", 3)
	if len(ids) != 3 {
		t.Fatalf("AddNodes returned %d ids", len(ids))
	}
	n.AddNode("a")
	got := n.Nodes()
	if len(got) != 4 {
		t.Fatalf("Nodes() = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Nodes() not sorted: %v", got)
		}
	}
	if !n.HasNode("w1") || n.HasNode("w9") {
		t.Fatal("HasNode wrong")
	}
}

func TestIsFailure(t *testing.T) {
	tests := []struct {
		err  error
		want bool
	}{
		{ErrUnreachable, true},
		{ErrDropped, true},
		{ErrNoSuchNode, true},
		{errors.New("app"), false},
		{nil, false},
	}
	for _, tt := range tests {
		if got := IsFailure(tt.err); got != tt.want {
			t.Errorf("IsFailure(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}

func TestDeterministicLatencies(t *testing.T) {
	mk := func() []time.Duration {
		n := New(Config{Seed: 77, DefaultLatency: sim.Uniform{Lo: time.Millisecond, Hi: 50 * time.Millisecond}})
		n.AddNode("a")
		n.AddNode("b")
		var out []time.Duration
		for i := 0; i < 20; i++ {
			lat, err := n.Transmit("a", "b")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, lat)
		}
		return out
	}
	first, second := mk(), mk()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("latency stream not deterministic at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestPartitionFormsMidFlight(t *testing.T) {
	// With a real (tiny) time scale, partition the network while a message
	// sleeps in flight; the transmit must fail.
	n := New(Config{
		Scale:          0.00005, // 100ms -> 5µs
		DefaultLatency: sim.Fixed(100 * time.Millisecond),
		DetectTimeout:  100 * time.Millisecond,
	})
	n.AddNode("a")
	n.AddNode("b")
	go func() {
		// Partition promptly; the in-flight sleep is ~5µs but transmit
		// rechecks reachability after it.
		n.Isolate("b")
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := n.Transmit("a", "b"); err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("err = %v, want ErrUnreachable", err)
			}
			return
		}
	}
	t.Fatal("transmit never observed the partition")
}
