package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event is one scheduled network change: at virtual time At, Apply runs
// against the network.
type Event struct {
	// At is the virtual time offset from schedule start.
	At time.Duration
	// Name labels the event in logs and tests.
	Name string
	// Apply performs the change.
	Apply func(n *Network)
}

// Convenience event constructors.

// IsolateAt schedules a node isolation.
func IsolateAt(at time.Duration, node NodeID) Event {
	return Event{
		At:    at,
		Name:  fmt.Sprintf("isolate %s", node),
		Apply: func(n *Network) { n.Isolate(node) },
	}
}

// RejoinAt schedules a node rejoin.
func RejoinAt(at time.Duration, node NodeID) Event {
	return Event{
		At:    at,
		Name:  fmt.Sprintf("rejoin %s", node),
		Apply: func(n *Network) { n.Rejoin(node) },
	}
}

// CrashAt schedules a node crash.
func CrashAt(at time.Duration, node NodeID) Event {
	return Event{
		At:    at,
		Name:  fmt.Sprintf("crash %s", node),
		Apply: func(n *Network) { n.Crash(node) },
	}
}

// RestartAt schedules a node restart.
func RestartAt(at time.Duration, node NodeID) Event {
	return Event{
		At:    at,
		Name:  fmt.Sprintf("restart %s", node),
		Apply: func(n *Network) { n.Restart(node) },
	}
}

// HealAt schedules a full heal.
func HealAt(at time.Duration) Event {
	return Event{
		At:    at,
		Name:  "heal",
		Apply: func(n *Network) { n.Heal() },
	}
}

// Schedule replays a sequence of timed network events against a network,
// in virtual time. It gives failure scenarios a declarative form:
//
//	sched := netsim.NewSchedule(net,
//	    netsim.IsolateAt(100*time.Millisecond, "s3"),
//	    netsim.RejoinAt(400*time.Millisecond, "s3"),
//	)
//	sched.Start(ctx)
//	defer sched.Stop()
type Schedule struct {
	net    *Network
	events []Event

	mu      sync.Mutex
	applied []string
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewSchedule builds a schedule; events are sorted by time.
func NewSchedule(n *Network, events ...Event) *Schedule {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Schedule{
		net:    n,
		events: sorted,
		done:   make(chan struct{}),
	}
}

// Start launches the replay goroutine.
func (s *Schedule) Start(ctx context.Context) {
	ictx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	go s.run(ictx)
}

// Stop halts the replay and waits for it to exit. Events not yet reached
// are not applied.
func (s *Schedule) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	<-s.done
}

// Wait blocks until every event was applied or the context ended.
func (s *Schedule) Wait() {
	<-s.done
}

// Applied lists the names of the events applied so far, in order.
func (s *Schedule) Applied() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.applied...)
}

func (s *Schedule) run(ctx context.Context) {
	defer close(s.done)
	scale := s.net.Scale()
	var elapsed time.Duration
	for _, ev := range s.events {
		if wait := ev.At - elapsed; wait > 0 {
			if !scale.SleepCtx(ctx, wait) {
				return
			}
			elapsed = ev.At
		}
		if ctx.Err() != nil {
			return
		}
		ev.Apply(s.net)
		s.mu.Lock()
		s.applied = append(s.applied, ev.Name)
		s.mu.Unlock()
	}
}
