package obs

import (
	"sort"
	"sync"
	"time"
)

// WeaknessReport quantifies how weak one `elements` run actually was, in
// the vocabulary of the paper's specifications (Fig. 3–6): which objects
// the run could not observe (reachable(x)σ false although x ∈ s.val),
// which ghost copies it served anyway, what it suppressed as duplicates,
// and how stale its view was. A report is emitted when the iterator
// closes and aggregated per collection in a Registry.
type WeaknessReport struct {
	Collection string `json:"collection"`
	Semantics  string `json:"semantics"`
	// Trace links the report to its span trace when the run was sampled.
	Trace TraceID `json:"trace,omitempty"`
	// Duration is the run's wall-clock time from open to close — the
	// latency the weakness was traded for.
	Duration time.Duration `json:"durationNs"`

	// Invocations counts kernel steps (one fresh pre-state each), the
	// paper's per-invocation granularity.
	Invocations int64 `json:"invocations"`
	// Yielded counts elements delivered to the caller.
	Yielded int64 `json:"yielded"`
	// UnreachableSkipped counts objects that were in the governing
	// membership but never yielded when the run terminated — existent
	// but unobservable, the paper's central weakness.
	UnreachableSkipped int64 `json:"unreachableSkipped"`
	// GhostsServed counts stale (ghost) copies yielded because the
	// authoritative copy was unreachable.
	GhostsServed int64 `json:"ghostsServed"`
	// DuplicatesSuppressed counts members re-listed by a later listing
	// that the run had already yielded (the "no duplicates" obligation
	// doing real work under membership churn).
	DuplicatesSuppressed int64 `json:"duplicatesSuppressed"`
	// EpochRetries counts prefetched results discarded because a local
	// mutation advanced the read-your-writes epoch after they were
	// issued.
	EpochRetries int64 `json:"epochRetries"`
	// CacheHits counts elements served straight from the element cache
	// with no RPC at all (snapshot runs over fresh entries).
	CacheHits int64 `json:"cacheHits"`
	// CacheValidatedHits counts elements served from the cache after the
	// owner confirmed the version via NotModified — a round trip, but no
	// payload.
	CacheValidatedHits int64 `json:"cacheValidatedHits"`
	// LeaseServed counts membership reads served under a held lease with
	// no revalidation RPC: the listing was trusted because the server
	// promised to push any change. Served-stale-under-lease is a legal
	// weakness; this is where it is quantified instead of hidden.
	LeaseServed int64 `json:"leaseServed"`
	// LeaseAge is the oldest lease certification a served read relied on:
	// the time since the server last confirmed (grant or push) the
	// listing version this run trusted.
	LeaseAge time.Duration `json:"leaseAgeNs"`
	// ListingSkew counts listing-version changes observed after the
	// first listing — how unstable membership was during the run.
	ListingSkew int64 `json:"listingSkew"`
	// PartitionSkew counts listing partitions whose snapshot was taken
	// after a write landed mid-stream (PartListing.Skewed frames): the
	// scatter-gather form of membership skew, where partitions of one
	// opening listing reflect different instants.
	PartitionSkew int64 `json:"partitionSkew"`
	// ReplicaSkew counts version steps the run's served listings were
	// behind the freshest replica known at read time (the probe's
	// baseline vector): the quantified staleness of reading from the
	// closest replica instead of the home. Zero on a fully converged
	// replica set.
	ReplicaSkew int64 `json:"replicaSkew"`
	// ReplicaServed counts reads (listing frames, membership reads,
	// element batches) answered by a non-home replica this run.
	ReplicaServed int64 `json:"replicaServed"`
	// GhostAge bounds how stale the replica-served reads could be: the
	// longest time since any serving replica last heard from the home.
	GhostAge time.Duration `json:"ghostAgeNs"`
	// SnapshotAge is how old the captured s_first snapshot was when the
	// run closed (snapshot-governed semantics only).
	SnapshotAge time.Duration `json:"snapshotAgeNs"`
	// Blocked is the cumulative virtual time spent in DecideBlock pauses.
	Blocked time.Duration `json:"blockedNs"`
	// FetchFailures counts transport-level fetch/list errors survived.
	FetchFailures int64 `json:"fetchFailures"`
	// Outcome is the run's terminal state: returns, fails, blocked,
	// abandoned (closed early), or error.
	Outcome string `json:"outcome"`
}

// CollectionWeakness aggregates reports for one collection.
type CollectionWeakness struct {
	Collection           string        `json:"collection"`
	Runs                 int64         `json:"runs"`
	Invocations          int64         `json:"invocations"`
	Yielded              int64         `json:"yielded"`
	UnreachableSkipped   int64         `json:"unreachableSkipped"`
	GhostsServed         int64         `json:"ghostsServed"`
	DuplicatesSuppressed int64         `json:"duplicatesSuppressed"`
	EpochRetries         int64         `json:"epochRetries"`
	CacheHits            int64         `json:"cacheHits"`
	CacheValidatedHits   int64         `json:"cacheValidatedHits"`
	LeaseServed          int64         `json:"leaseServed"`
	ListingSkew          int64         `json:"listingSkew"`
	PartitionSkew        int64         `json:"partitionSkew"`
	ReplicaSkew          int64         `json:"replicaSkew"`
	ReplicaServed        int64         `json:"replicaServed"`
	FetchFailures        int64         `json:"fetchFailures"`
	MaxSnapshotAge       time.Duration `json:"maxSnapshotAgeNs"`
	MaxLeaseAge          time.Duration `json:"maxLeaseAgeNs"`
	MaxGhostAge          time.Duration `json:"maxGhostAgeNs"`
	Blocked              time.Duration `json:"blockedNs"`
	// Outcomes counts terminal states by name.
	Outcomes map[string]int64 `json:"outcomes"`
}

// Merge folds another node's aggregate for the same collection into
// this one: counters sum, ages take the max — the /cluster fold.
func (cw *CollectionWeakness) Merge(other CollectionWeakness) {
	cw.Runs += other.Runs
	cw.Invocations += other.Invocations
	cw.Yielded += other.Yielded
	cw.UnreachableSkipped += other.UnreachableSkipped
	cw.GhostsServed += other.GhostsServed
	cw.DuplicatesSuppressed += other.DuplicatesSuppressed
	cw.EpochRetries += other.EpochRetries
	cw.CacheHits += other.CacheHits
	cw.CacheValidatedHits += other.CacheValidatedHits
	cw.LeaseServed += other.LeaseServed
	cw.ListingSkew += other.ListingSkew
	cw.PartitionSkew += other.PartitionSkew
	cw.ReplicaSkew += other.ReplicaSkew
	cw.ReplicaServed += other.ReplicaServed
	cw.FetchFailures += other.FetchFailures
	cw.Blocked += other.Blocked
	if other.MaxSnapshotAge > cw.MaxSnapshotAge {
		cw.MaxSnapshotAge = other.MaxSnapshotAge
	}
	if other.MaxLeaseAge > cw.MaxLeaseAge {
		cw.MaxLeaseAge = other.MaxLeaseAge
	}
	if other.MaxGhostAge > cw.MaxGhostAge {
		cw.MaxGhostAge = other.MaxGhostAge
	}
	if len(other.Outcomes) > 0 && cw.Outcomes == nil {
		cw.Outcomes = make(map[string]int64, len(other.Outcomes))
	}
	for k, v := range other.Outcomes {
		cw.Outcomes[k] += v
	}
}

// Registry aggregates weakness reports per collection: lifetime
// aggregates (CollectionWeakness), the last report, and rolling
// time-windowed series per weakness metric (see window.go) so the
// answer to "how weak are we right now, at the tail?" is continuous.
// It is safe for concurrent use; a nil *Registry ignores reports.
type Registry struct {
	wcfg    WindowConfig
	journal *Journal

	mu      sync.Mutex
	colls   map[string]*CollectionWeakness
	last    map[string]WeaknessReport
	windows map[string]map[string]*Window
}

// NewRegistry creates an empty registry with default rolling windows.
func NewRegistry() *Registry {
	return NewRegistryWindows(WindowConfig{})
}

// NewRegistryWindows creates a registry whose rolling windows use the
// given config (tests inject a clock; benches shrink the reservoir).
func NewRegistryWindows(cfg WindowConfig) *Registry {
	return &Registry{
		wcfg:    cfg.withDefaults(),
		colls:   make(map[string]*CollectionWeakness),
		last:    make(map[string]WeaknessReport),
		windows: make(map[string]map[string]*Window),
	}
}

// UseJournal makes the registry record skew.listing / skew.partition
// events for runs that observed membership skew. Call before traffic.
func (r *Registry) UseJournal(j *Journal) {
	if r == nil {
		return
	}
	r.journal = j
}

// windowFor returns (creating if needed) one collection's named window.
// Caller holds r.mu.
func (r *Registry) windowFor(coll, metric string) *Window {
	byMetric := r.windows[coll]
	if byMetric == nil {
		byMetric = make(map[string]*Window)
		r.windows[coll] = byMetric
	}
	w := byMetric[metric]
	if w == nil {
		w = NewWindow(r.wcfg)
		byMetric[metric] = w
	}
	return w
}

// Observe folds one run's report into the per-collection aggregate and
// the rolling windows.
func (r *Registry) Observe(rep WeaknessReport) {
	if r == nil {
		return
	}
	r.observeWindows(rep)
	if r.journal != nil {
		if rep.ListingSkew > 0 {
			r.journal.Record(Event{
				Type: EvListingSkew, Collection: rep.Collection, Trace: rep.Trace,
				Attrs: map[string]int64{"skew": rep.ListingSkew},
			})
		}
		if rep.PartitionSkew > 0 {
			r.journal.Record(Event{
				Type: EvPartitionSkew, Collection: rep.Collection, Trace: rep.Trace,
				Attrs: map[string]int64{"skewedParts": rep.PartitionSkew},
			})
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cw := r.colls[rep.Collection]
	if cw == nil {
		cw = &CollectionWeakness{Collection: rep.Collection, Outcomes: make(map[string]int64)}
		r.colls[rep.Collection] = cw
	}
	cw.Runs++
	cw.Invocations += rep.Invocations
	cw.Yielded += rep.Yielded
	cw.UnreachableSkipped += rep.UnreachableSkipped
	cw.GhostsServed += rep.GhostsServed
	cw.DuplicatesSuppressed += rep.DuplicatesSuppressed
	cw.EpochRetries += rep.EpochRetries
	cw.CacheHits += rep.CacheHits
	cw.CacheValidatedHits += rep.CacheValidatedHits
	cw.LeaseServed += rep.LeaseServed
	cw.ListingSkew += rep.ListingSkew
	cw.PartitionSkew += rep.PartitionSkew
	cw.ReplicaSkew += rep.ReplicaSkew
	cw.ReplicaServed += rep.ReplicaServed
	cw.FetchFailures += rep.FetchFailures
	cw.Blocked += rep.Blocked
	if rep.SnapshotAge > cw.MaxSnapshotAge {
		cw.MaxSnapshotAge = rep.SnapshotAge
	}
	if rep.LeaseAge > cw.MaxLeaseAge {
		cw.MaxLeaseAge = rep.LeaseAge
	}
	if rep.GhostAge > cw.MaxGhostAge {
		cw.MaxGhostAge = rep.GhostAge
	}
	if rep.Outcome != "" {
		cw.Outcomes[rep.Outcome]++
	}
	r.last[rep.Collection] = rep
}

// Last returns the most recent report observed for a collection — what a
// CLI's -trace flag prints after a run it just drove through a layer that
// hides the iterator.
func (r *Registry) Last(collection string) (WeaknessReport, bool) {
	if r == nil {
		return WeaknessReport{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.last[collection]
	return rep, ok
}

// observeWindows records one report into the collection's rolling
// series. Duration-valued metrics record only when present (a snapshot
// age of zero just means current-state semantics, not "perfectly
// fresh"); count-valued metrics record every run, zeros included, so
// their quantiles are true per-run rates.
func (r *Registry) observeWindows(rep WeaknessReport) {
	type rec struct {
		metric string
		v      time.Duration
	}
	recs := make([]rec, 0, 8)
	if rep.Duration > 0 {
		recs = append(recs, rec{WinLatency, rep.Duration})
	}
	if rep.SnapshotAge > 0 {
		recs = append(recs, rec{WinSnapshotAge, rep.SnapshotAge})
	}
	if rep.LeaseAge > 0 {
		recs = append(recs, rec{WinLeaseAge, rep.LeaseAge})
	}
	if rep.GhostAge > 0 {
		recs = append(recs, rec{WinGhostAge, rep.GhostAge})
	}
	recs = append(recs,
		rec{WinListingSkew, time.Duration(rep.ListingSkew)},
		rec{WinPartitionSkew, time.Duration(rep.PartitionSkew)},
		rec{WinReplicaSkew, time.Duration(rep.ReplicaSkew)},
		rec{WinGhosts, time.Duration(rep.GhostsServed)},
		rec{WinDuplicates, time.Duration(rep.DuplicatesSuppressed)},
		rec{WinUnreachable, time.Duration(rep.UnreachableSkipped)},
	)
	windows := make([]*Window, len(recs))
	r.mu.Lock()
	for i, rc := range recs {
		windows[i] = r.windowFor(rep.Collection, rc.metric)
	}
	r.mu.Unlock()
	for i, rc := range recs {
		windows[i].Record(rc.v, rep.Trace)
	}
}

// Windows snapshots every collection's rolling series, sorted by
// collection name — the /stats weakness block and the input /cluster
// merges across nodes.
func (r *Registry) Windows() []CollectionWindows {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type namedWins struct {
		coll string
		wins map[string]*Window
	}
	all := make([]namedWins, 0, len(r.windows))
	for coll, byMetric := range r.windows {
		cp := make(map[string]*Window, len(byMetric))
		for m, w := range byMetric {
			cp[m] = w
		}
		all = append(all, namedWins{coll, cp})
	}
	r.mu.Unlock()

	out := make([]CollectionWindows, 0, len(all))
	for _, nw := range all {
		cw := CollectionWindows{Collection: nw.coll, Metrics: make(map[string]WindowSnapshot, len(nw.wins))}
		for m, w := range nw.wins {
			cw.Metrics[m] = w.Snapshot()
		}
		out = append(out, cw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Collection < out[j].Collection })
	return out
}

// Snapshot returns per-collection aggregates sorted by collection name.
func (r *Registry) Snapshot() []CollectionWeakness {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CollectionWeakness, 0, len(r.colls))
	for _, cw := range r.colls {
		cp := *cw
		cp.Outcomes = make(map[string]int64, len(cw.Outcomes))
		for k, v := range cw.Outcomes {
			cp.Outcomes[k] = v
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Collection < out[j].Collection })
	return out
}
