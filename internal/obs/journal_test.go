package obs

import (
	"sync"
	"testing"
	"time"
)

func TestJournalRecordAndFilter(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{Type: EvLeaseGrant, Collection: "menus", Node: "dir"})
	j.Record(Event{Type: EvLeaseBreak, Collection: "menus"})
	j.Record(Event{Type: EvLeaseGrant, Collection: "faces"})

	all := j.Events(EventFilter{})
	if len(all) != 3 || all[0].Seq != 1 || all[2].Seq != 3 {
		t.Fatalf("all = %+v", all)
	}
	if all[0].Time.IsZero() {
		t.Fatal("record did not stamp time")
	}
	byType := j.Events(EventFilter{Type: EvLeaseGrant})
	if len(byType) != 2 || byType[1].Collection != "faces" {
		t.Fatalf("byType = %+v", byType)
	}
	byColl := j.Events(EventFilter{Collection: "menus"})
	if len(byColl) != 2 {
		t.Fatalf("byColl = %+v", byColl)
	}
	since := j.Events(EventFilter{SinceSeq: 2})
	if len(since) != 1 || since[0].Seq != 3 {
		t.Fatalf("since = %+v", since)
	}
	limited := j.Events(EventFilter{Limit: 2})
	if len(limited) != 2 || limited[0].Seq != 2 {
		t.Fatalf("limit should keep the most recent: %+v", limited)
	}
}

func TestJournalBoundedRing(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: EvReconnect})
	}
	evs := j.Events(EventFilter{})
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Oldest retained is seq 7; order is oldest-first.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	st := j.Stats()
	if st.Recorded != 10 || st.Dropped != 6 || st.Retained != 4 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByType[EvReconnect] != 10 {
		t.Fatalf("byType = %+v", st.ByType)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: "x"})
	if j.Events(EventFilter{}) != nil {
		t.Fatal("nil journal events")
	}
	if st := j.Stats(); st.Recorded != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record(Event{Type: EvGhostGC})
				j.Events(EventFilter{Limit: 8})
			}
		}()
	}
	wg.Wait()
	st := j.Stats()
	if st.Recorded != 2000 || st.Dropped != 2000-64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJournalClock(t *testing.T) {
	j := NewJournal(4)
	fixed := time.Date(2026, 8, 9, 0, 0, 0, 0, time.UTC)
	j.SetClock(func() time.Time { return fixed })
	j.Record(Event{Type: "x"})
	if evs := j.Events(EventFilter{}); !evs[0].Time.Equal(fixed) {
		t.Fatalf("time = %v", evs[0].Time)
	}
}
