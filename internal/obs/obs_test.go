package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "root")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if _, sp := tr.StartSpan(ctx, "child"); sp != nil {
		t.Fatal("nil tracer returned a child span")
	}
	// All nil-span methods must be safe no-ops.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	if sp.Context().Valid() || sp.TraceID() != 0 {
		t.Fatal("nil span produced a valid context")
	}
	if tr.Spans() != nil || tr.Trace(1) != nil || tr.Process() != "" {
		t.Fatal("nil tracer retained state")
	}
	if s := tr.Stats(); s != (TracerStats{}) {
		t.Fatalf("nil tracer stats = %+v", s)
	}
}

func TestStartRootSamplingDeterministic(t *testing.T) {
	tr := NewTracer("p", Config{Sample: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		_, sp := tr.StartRoot(context.Background(), "root")
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 4 {
		t.Fatalf("Sample=4 over 16 roots sampled %d, want 4", sampled)
	}
	// Sampled-out roots must not count as started or retained.
	s := tr.Stats()
	if s.Started != 4 || s.Finished != 4 || s.Retained != 4 {
		t.Fatalf("stats = %+v, want 4 started/finished/retained", s)
	}
}

func TestStartSpanJoinsOnly(t *testing.T) {
	tr := NewTracer("p", Config{})

	// No trace in ctx: no orphan spans.
	if _, sp := tr.StartSpan(context.Background(), "child"); sp != nil {
		t.Fatal("StartSpan created an orphan without a sampled parent")
	}
	// An unsampled context must not be joined either.
	ctx := ContextWithSpan(context.Background(), SpanContext{Trace: 7, Span: 8, Sampled: false})
	if _, sp := tr.StartSpan(ctx, "child"); sp != nil {
		t.Fatal("StartSpan joined an unsampled context")
	}

	rctx, root := tr.StartRoot(context.Background(), "root")
	_, child := tr.StartSpan(rctx, "child")
	if child == nil {
		t.Fatal("StartSpan did not join a sampled parent")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.rec.Parent != root.rec.Span {
		t.Fatalf("child parent = %s, want root span %s", child.rec.Parent, root.rec.Span)
	}
	child.End()
	root.End()

	spans := tr.Trace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("Trace returned %d spans, want 2", len(spans))
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer("p", Config{Capacity: 4})
	var traces []TraceID
	for i := 0; i < 6; i++ {
		_, sp := tr.StartRoot(context.Background(), "root")
		sp.SetInt("i", int64(i))
		traces = append(traces, sp.TraceID())
		sp.End()
	}
	s := tr.Stats()
	if s.Retained != 4 || s.Dropped != 2 || s.Finished != 6 {
		t.Fatalf("stats = %+v, want retained 4, dropped 2, finished 6", s)
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("Spans() len = %d, want 4", len(got))
	}
	// Oldest two evicted; survivors in oldest-first order.
	for i, rec := range got {
		if rec.Trace != traces[i+2] {
			t.Fatalf("ring[%d] = trace %s, want %s", i, rec.Trace, traces[i+2])
		}
	}
}

func TestSpanContextPropagation(t *testing.T) {
	sc := SpanContext{Trace: 0xabc, Span: 0xdef, Sampled: true}
	ctx := ContextWithSpan(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext = %+v, want %+v", got, sc)
	}
	// Invalid contexts are not attached at all.
	base := context.Background()
	if ctx := ContextWithSpan(base, SpanContext{}); ctx != base {
		t.Fatal("invalid span context was attached")
	}
	if got := FromContext(base); got.Valid() {
		t.Fatalf("empty ctx yielded %+v", got)
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	id := TraceID(0x1f)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"000000000000001f"` {
		t.Fatalf("marshal = %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip = %s, want %s", back, id)
	}
	if parsed, err := ParseTraceID(id.String()); err != nil || parsed != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), parsed, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestRegistryObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Observe(WeaknessReport{
		Collection: "menus", Yielded: 5, UnreachableSkipped: 2,
		GhostsServed: 1, SnapshotAge: time.Second, Outcome: "returns",
	})
	r.Observe(WeaknessReport{
		Collection: "menus", Yielded: 3, DuplicatesSuppressed: 4,
		SnapshotAge: 2 * time.Second, Outcome: "fails",
	})
	r.Observe(WeaknessReport{Collection: "faces", Yielded: 9, Outcome: "returns"})

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Collection != "faces" || snap[1].Collection != "menus" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	menus := snap[1]
	if menus.Runs != 2 || menus.Yielded != 8 || menus.UnreachableSkipped != 2 ||
		menus.GhostsServed != 1 || menus.DuplicatesSuppressed != 4 ||
		menus.MaxSnapshotAge != 2*time.Second {
		t.Fatalf("menus aggregate = %+v", menus)
	}
	if menus.Outcomes["returns"] != 1 || menus.Outcomes["fails"] != 1 {
		t.Fatalf("menus outcomes = %v", menus.Outcomes)
	}

	// Snapshot hands out copies: mutating one must not corrupt the registry.
	menus.Outcomes["returns"] = 99
	if r.Snapshot()[1].Outcomes["returns"] != 1 {
		t.Fatal("Snapshot shares the Outcomes map with the registry")
	}

	if rep, ok := r.Last("menus"); !ok || rep.Outcome != "fails" || rep.Yielded != 3 {
		t.Fatalf("Last(menus) = %+v, %v", rep, ok)
	}
	if _, ok := r.Last("absent"); ok {
		t.Fatal("Last reported a never-observed collection")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Observe(WeaknessReport{Collection: "x"})
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if _, ok := r.Last("x"); ok {
		t.Fatal("nil registry remembered a report")
	}
}

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("ws_total", "Total things.", 3, Label{Key: "b", Value: "2"}, Label{Key: "a", Value: `q"\` + "\n"})
	p.Sample("ws_total", 4, Label{Key: "a", Value: "other"})
	p.Family("ws_total", "counter", "Total things.") // repeated: must not re-emit headers
	p.Gauge("ws_up", "Up.", 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if strings.Count(out, "# HELP ws_total") != 1 || strings.Count(out, "# TYPE ws_total counter") != 1 {
		t.Fatalf("family headers not emitted exactly once:\n%s", out)
	}
	// Labels sorted by key, values escaped.
	if !strings.Contains(out, `ws_total{a="q\"\\\n",b="2"} 3`) {
		t.Fatalf("missing sorted/escaped sample:\n%s", out)
	}
	if !strings.Contains(out, `ws_total{a="other"} 4`) {
		t.Fatalf("missing second sample:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE ws_up gauge") || !strings.Contains(out, "ws_up 1\n") {
		t.Fatalf("missing gauge:\n%s", out)
	}
}

func TestRenderTraceTree(t *testing.T) {
	tr := NewTracer("proc", Config{})
	rctx, root := tr.StartRoot(context.Background(), "elements")
	_, child := tr.StartSpan(rctx, "rpc.repo.Get")
	child.SetAttr("node", "s1")
	child.End()
	root.End()

	var sb strings.Builder
	RenderTrace(&sb, tr.Trace(root.TraceID()))
	out := sb.String()
	if !strings.Contains(out, "trace "+root.TraceID().String()) ||
		!strings.Contains(out, "elements") ||
		!strings.Contains(out, "rpc.repo.Get") ||
		!strings.Contains(out, "node=s1") {
		t.Fatalf("render missing pieces:\n%s", out)
	}

	sb.Reset()
	RenderTrace(&sb, nil)
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatalf("empty render = %q", sb.String())
	}
}

func TestRenderWeakness(t *testing.T) {
	var sb strings.Builder
	RenderWeakness(&sb, WeaknessReport{
		Collection: "menus", Semantics: "snapshot", Outcome: "returns",
		Yielded: 7, UnreachableSkipped: 2, Trace: 0x99,
	})
	out := sb.String()
	for _, want := range []string{`"menus"`, "snapshot", "returns", "unreachable skipped    2", "0000000000000099"} {
		if !strings.Contains(out, want) {
			t.Fatalf("weakness render missing %q:\n%s", want, out)
		}
	}
}
