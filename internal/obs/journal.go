package obs

import (
	"sync"
	"time"
)

// Event types recorded in the journal. The set is deliberately small:
// each names a coordination-plane transition worth explaining after the
// fact (why did this run revalidate? why did throughput dip at 12:04?),
// not a per-element data-plane step.
const (
	EvLeaseGrant    = "lease.grant"
	EvLeaseBreak    = "lease.break"
	EvListingSkew   = "skew.listing"
	EvPartitionSkew = "skew.partition"
	EvCodecFallback = "codec.fallback"
	EvReconnect     = "rpc.reconnect"
	EvGhostGC       = "ghost.gc"
	EvHandoff       = "replica.handoff"
	EvRepair        = "replica.repair"
)

// Event is one structured journal entry. Seq and Time are assigned by
// the journal at record time; everything else is the emitter's.
type Event struct {
	Seq        int64            `json:"seq"`
	Time       time.Time        `json:"time"`
	Type       string           `json:"type"`
	Process    string           `json:"process,omitempty"`
	Node       string           `json:"node,omitempty"`
	Collection string           `json:"collection,omitempty"`
	Trace      TraceID          `json:"trace,omitempty"`
	Detail     string           `json:"detail,omitempty"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// Journal is a bounded structured event log: a ring buffer of the most
// recent events plus exact counters (total recorded, dropped, per type)
// that survive ring wrap. It is safe for concurrent use; a nil *Journal
// ignores records, which is how journaling stays optional on every
// emission site.
type Journal struct {
	mu       sync.Mutex
	capacity int
	now      func() time.Time
	ring     []Event
	next     int
	full     bool
	seq      int64
	dropped  int64
	byType   map[string]int64
}

// DefaultJournalCapacity bounds a journal created with capacity <= 0.
const DefaultJournalCapacity = 1024

// NewJournal creates a journal retaining at most `capacity` events
// (values <= 0 select DefaultJournalCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{
		capacity: capacity,
		now:      time.Now,
		byType:   make(map[string]int64),
	}
}

// SetClock replaces the journal's clock (tests).
func (j *Journal) SetClock(now func() time.Time) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.now = now
	j.mu.Unlock()
}

// Record appends one event, assigning its sequence number and timestamp.
// When the ring is full the oldest event is overwritten and the dropped
// counter advances — memory is bounded no matter the event rate. No-op
// on a nil journal.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if ev.Time.IsZero() {
		ev.Time = j.now()
	}
	j.byType[ev.Type]++
	if len(j.ring) < j.capacity {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.next] = ev
		j.full = true
		j.dropped++
	}
	j.next = (j.next + 1) % j.capacity
	j.mu.Unlock()
}

// EventFilter selects events from the journal. Zero values match
// everything.
type EventFilter struct {
	// Type keeps only events of this type.
	Type string
	// Collection keeps only events about this collection.
	Collection string
	// SinceSeq keeps only events with Seq > SinceSeq — the resume cursor
	// for a poller.
	SinceSeq int64
	// Limit caps the result to the most recent N matches (0 = all
	// retained).
	Limit int
}

// Events returns retained events matching the filter, oldest first.
func (j *Journal) Events(f EventFilter) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	ordered := make([]Event, 0, len(j.ring))
	if j.full {
		ordered = append(ordered, j.ring[j.next:]...)
		ordered = append(ordered, j.ring[:j.next]...)
	} else {
		ordered = append(ordered, j.ring...)
	}
	j.mu.Unlock()

	out := ordered[:0]
	for _, ev := range ordered {
		if f.Type != "" && ev.Type != f.Type {
			continue
		}
		if f.Collection != "" && ev.Collection != f.Collection {
			continue
		}
		if ev.Seq <= f.SinceSeq {
			continue
		}
		out = append(out, ev)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// JournalStats is the journal's own accounting, for /metrics and /stats.
type JournalStats struct {
	Recorded int64            `json:"recorded"`
	Dropped  int64            `json:"dropped"`
	Retained int              `json:"retained"`
	Capacity int              `json:"capacity"`
	ByType   map[string]int64 `json:"byType"`
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	byType := make(map[string]int64, len(j.byType))
	for k, v := range j.byType {
		byType[k] = v
	}
	return JournalStats{
		Recorded: j.seq,
		Dropped:  j.dropped,
		Retained: len(j.ring),
		Capacity: j.capacity,
		ByType:   byType,
	}
}
