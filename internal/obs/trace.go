// Package obs is the observability subsystem: a lightweight span tracer
// with cross-process context propagation, per-iteration weakness reports
// tied to the paper's semantics (what did this `elements` run actually
// fail to observe?), and Prometheus text-format exposition. It depends
// only on the standard library so every layer — core, store, repo,
// tcprpc, httpgw — can use it without import cycles.
//
// The tracer is sampled and allocation-conscious: sampling is decided
// once at the root span, an unsampled run allocates nothing anywhere in
// the stack (StartSpan returns a nil *Span whose methods are no-ops),
// and completed spans land in a bounded ring buffer, so tracing can stay
// on in production without unbounded memory growth.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace; all spans of one `elements`
// run share it, across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id in the fixed-width hex form used by /trace?id=.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the id in fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON renders trace ids as hex strings, matching /trace?id=.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts the hex string form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// MarshalJSON renders span ids as hex strings.
func (s SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the hex string form.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	v, err := strconv.ParseUint(str, 16, 64)
	if err != nil {
		return fmt.Errorf("obs: bad span id %q: %w", str, err)
	}
	*s = SpanID(v)
	return nil
}

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanContext is the propagated part of a span: what rides in a
// context.Context locally and in the tcprpc request envelope across the
// wire. The zero value is "no trace".
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context belongs to a trace at all.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

type ctxKey struct{}

// ContextWithSpan attaches a span context to ctx for downstream layers
// (the RPC bus, the TCP transport) to pick up. Invalid contexts are not
// attached, so the untraced hot path never pays the context allocation.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the current span context, or the zero value.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as stored in the ring buffer and
// served by /trace?id=. It is immutable once recorded.
type SpanRecord struct {
	Trace   TraceID       `json:"trace"`
	Span    SpanID        `json:"span"`
	Parent  SpanID        `json:"parent,omitempty"`
	Name    string        `json:"name"`
	Process string        `json:"process"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"durationNs"`
	Attrs   []Attr        `json:"attrs,omitempty"`
}

// Span is one in-flight span. It is a single-goroutine control object:
// the goroutine that started it annotates and ends it. A nil *Span is
// valid and inert — the unsampled fast path.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.Span, Sampled: true}
}

// TraceID reports the span's trace, or zero on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value. No-op on nil.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End completes the span and hands it to the tracer's ring buffer. It
// must be called exactly once; calling it on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.rec.Start)
	s.tracer.record(s.rec)
}

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the completed-span ring buffer. Defaults to 4096.
	Capacity int
	// Sample records 1 in Sample root traces (deterministic, counter
	// based). 0 and 1 both mean "every trace".
	Sample int
}

// Tracer creates spans and retains the most recent completed ones in a
// bounded ring. It is safe for concurrent use. A nil *Tracer is valid:
// every method is a no-op, which is how tracing is disabled.
type Tracer struct {
	process  string
	capacity int
	sample   uint64

	roots    atomic.Uint64 // root-span attempts, drives sampling
	ids      atomic.Uint64 // span/trace id sequence
	seed     uint64
	started  atomic.Int64
	finished atomic.Int64
	dropped  atomic.Int64

	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// NewTracer creates a tracer. `process` names this process in every
// span it creates, so cross-process traces stay attributable.
func NewTracer(process string, cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	sample := uint64(cfg.Sample)
	if sample == 0 {
		sample = 1
	}
	return &Tracer{
		process:  process,
		capacity: cfg.Capacity,
		sample:   sample,
		seed:     uint64(time.Now().UnixNano()) | 1,
	}
}

// Process reports the tracer's process name ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// newID derives a fresh id from the process seed and a counter
// (splitmix64), so ids are unique within a process and collide across
// processes only with ~2^-64 probability.
func (t *Tracer) newID() uint64 {
	z := t.seed + t.ids.Add(1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// StartRoot begins a new trace, applying the sampling knob. On the
// sampled-out path (or a nil tracer) it returns ctx unchanged and a nil
// span, and the whole downstream stack stays allocation-free.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if n := t.roots.Add(1); t.sample > 1 && (n-1)%t.sample != 0 {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		rec: SpanRecord{
			Trace:   TraceID(t.newID()),
			Span:    SpanID(t.newID()),
			Name:    name,
			Process: t.process,
			Start:   time.Now(),
		},
	}
	t.started.Add(1)
	return ContextWithSpan(ctx, sp.Context()), sp
}

// StartSpan begins a child of the span context carried by ctx. It joins
// only: with no sampled trace in ctx (or a nil tracer) it returns ctx
// unchanged and a nil span, so layers below an untraced call never
// create orphan traces of their own.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if !parent.Valid() || !parent.Sampled {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		rec: SpanRecord{
			Trace:   parent.Trace,
			Span:    SpanID(t.newID()),
			Parent:  parent.Span,
			Name:    name,
			Process: t.process,
			Start:   time.Now(),
		},
	}
	t.started.Add(1)
	return ContextWithSpan(ctx, sp.Context()), sp
}

func (t *Tracer) record(rec SpanRecord) {
	t.finished.Add(1)
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.full = true
		t.dropped.Add(1)
	}
	t.next = (t.next + 1) % t.capacity
	t.mu.Unlock()
}

// Spans returns a copy of the retained completed spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Trace returns the retained spans of one trace, sorted by start time.
func (t *Tracer) Trace(id TraceID) []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for _, rec := range t.Spans() {
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	SortSpans(out)
	return out
}

// SortSpans orders spans by start time, then span id, for stable
// rendering.
func SortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Span < spans[j].Span
	})
}

// TracerStats is a tracer's own instrumentation, for /metrics.
type TracerStats struct {
	Process  string `json:"process"`
	Started  int64  `json:"started"`
	Finished int64  `json:"finished"`
	Dropped  int64  `json:"dropped"`
	Retained int    `json:"retained"`
	Capacity int    `json:"capacity"`
	Sample   int    `json:"sample"`
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	retained := len(t.ring)
	t.mu.Unlock()
	return TracerStats{
		Process:  t.process,
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Dropped:  t.dropped.Load(),
		Retained: retained,
		Capacity: t.capacity,
		Sample:   int(t.sample),
	}
}
