package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Label is one Prometheus label pair.
type Label struct {
	Key   string
	Value string
}

// PromWriter emits Prometheus text exposition format (version 0.0.4):
// one `# HELP` / `# TYPE` header per metric family followed by its
// samples. It buffers nothing; errors stick and short-circuit later
// writes.
type PromWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter wraps w for exposition output.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family emits the HELP/TYPE header for a metric family once; repeated
// calls for the same name are no-ops so callers can emit samples in any
// grouping.
func (p *PromWriter) Family(name, typ, help string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line: name{labels} value.
func (p *PromWriter) Sample(name string, value float64, labels ...Label) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// SampleExemplar emits one sample line carrying an OpenMetrics-style
// exemplar suffix: name{labels} value # {trace_id="..."} exemplarValue.
// Plain Prometheus text parsers treat everything after the # as a
// comment, so the line stays 0.0.4-compatible while OpenMetrics-aware
// scrapers (and /trace?id= users) get the offending run's trace.
func (p *PromWriter) SampleExemplar(name string, value float64, trace TraceID, exemplarValue float64, labels ...Label) {
	if trace == 0 {
		p.Sample(name, value, labels...)
		return
	}
	p.printf("%s%s %s # {trace_id=\"%s\"} %s\n",
		name, formatLabels(labels), formatValue(value), trace, formatValue(exemplarValue))
}

// Counter is Family+Sample for a single-sample counter family.
func (p *PromWriter) Counter(name, help string, value float64, labels ...Label) {
	p.Family(name, "counter", help)
	p.Sample(name, value, labels...)
}

// Gauge is Family+Sample for a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...Label) {
	p.Family(name, "gauge", help)
	p.Sample(name, value, labels...)
}

// Seconds converts a duration to the float seconds Prometheus expects.
func Seconds(d time.Duration) float64 { return d.Seconds() }

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
