package obs

import (
	"fmt"
	"io"
	"time"
)

// RenderTrace writes a human-readable tree of one trace's spans, used by
// the CLIs' -trace flag and the tcparchive example. Spans may come from
// several tracers (processes); orphans whose parent span is missing are
// rendered at the root.
func RenderTrace(w io.Writer, spans []SpanRecord) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	sorted := make([]SpanRecord, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	children := make(map[SpanID][]SpanRecord)
	byID := make(map[SpanID]bool, len(sorted))
	for _, sp := range sorted {
		byID[sp.Span] = true
	}
	var roots []SpanRecord
	for _, sp := range sorted {
		if sp.Parent != 0 && byID[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	fmt.Fprintf(w, "trace %s (%d spans)\n", sorted[0].Trace, len(sorted))
	var walk func(sp SpanRecord, depth int)
	walk = func(sp SpanRecord, depth int) {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		attrs := ""
		for _, a := range sp.Attrs {
			attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(w, "  %s%-24s %-10s %8v%s\n",
			indent, sp.Name, sp.Process, sp.Dur.Round(10*time.Microsecond), attrs)
		for _, c := range children[sp.Span] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// RenderWeakness writes a human-readable weakness report, used by the
// CLIs' -trace flag.
func RenderWeakness(w io.Writer, rep WeaknessReport) {
	fmt.Fprintf(w, "weakness report for %q (%s semantics, outcome %s):\n",
		rep.Collection, rep.Semantics, rep.Outcome)
	fmt.Fprintf(w, "  invocations            %d\n", rep.Invocations)
	fmt.Fprintf(w, "  yielded                %d\n", rep.Yielded)
	fmt.Fprintf(w, "  unreachable skipped    %d\n", rep.UnreachableSkipped)
	fmt.Fprintf(w, "  ghosts served          %d\n", rep.GhostsServed)
	fmt.Fprintf(w, "  duplicates suppressed  %d\n", rep.DuplicatesSuppressed)
	fmt.Fprintf(w, "  epoch retries          %d\n", rep.EpochRetries)
	fmt.Fprintf(w, "  cache hits             %d\n", rep.CacheHits)
	fmt.Fprintf(w, "  cache validated hits   %d\n", rep.CacheValidatedHits)
	fmt.Fprintf(w, "  listing skew           %d\n", rep.ListingSkew)
	fmt.Fprintf(w, "  fetch failures         %d\n", rep.FetchFailures)
	if rep.Duration > 0 {
		fmt.Fprintf(w, "  duration               %v\n", rep.Duration.Round(time.Millisecond))
	}
	if rep.SnapshotAge > 0 {
		fmt.Fprintf(w, "  snapshot age           %v\n", rep.SnapshotAge.Round(time.Millisecond))
	}
	if rep.Blocked > 0 {
		fmt.Fprintf(w, "  blocked                %v\n", rep.Blocked.Round(time.Millisecond))
	}
	if rep.Trace != 0 {
		fmt.Fprintf(w, "  trace                  %s\n", rep.Trace)
	}
}
