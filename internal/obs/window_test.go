package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowQuantilesAndExemplar(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(WindowConfig{Buckets: 6, BucketLen: 10 * time.Second, Now: clk.now})
	for i := 1; i <= 100; i++ {
		w.Record(time.Duration(i)*time.Millisecond, 0)
	}
	// One traced outlier: it must become the exemplar.
	w.Record(500*time.Millisecond, TraceID(0xabc))

	s := w.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.Max != 500*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Exemplar == nil || s.Exemplar.Trace != TraceID(0xabc) || s.Exemplar.Value != 500*time.Millisecond {
		t.Fatalf("exemplar = %+v", s.Exemplar)
	}
}

func TestWindowForgetsOldBuckets(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(WindowConfig{Buckets: 3, BucketLen: 10 * time.Second, Now: clk.now})
	w.Record(time.Hour, TraceID(1)) // an ancient, huge sample
	if s := w.Snapshot(); s.Count != 1 {
		t.Fatalf("fresh sample not visible: %+v", s)
	}
	// Move past the whole window: the old bucket must fall out.
	clk.advance(31 * time.Second)
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("window did not forget: count=%d max=%v", s.Count, s.Max)
	}
	// New samples land in fresh buckets; the old exemplar stays gone.
	w.Record(5*time.Millisecond, TraceID(2))
	s := w.Snapshot()
	if s.Count != 1 || s.Max != 5*time.Millisecond {
		t.Fatalf("after re-record: %+v", s)
	}
	if s.Exemplar == nil || s.Exemplar.Trace != TraceID(2) {
		t.Fatalf("exemplar = %+v", s.Exemplar)
	}
}

func TestWindowSlidesPartially(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(WindowConfig{Buckets: 3, BucketLen: 10 * time.Second, Now: clk.now})
	w.Record(time.Millisecond, 0)
	clk.advance(10 * time.Second)
	w.Record(2*time.Millisecond, 0)
	clk.advance(10 * time.Second)
	w.Record(3*time.Millisecond, 0)
	if s := w.Snapshot(); s.Count != 3 {
		t.Fatalf("all three buckets should be live: %+v", s)
	}
	// One more step: the first bucket ages out.
	clk.advance(10 * time.Second)
	s := w.Snapshot()
	if s.Count != 2 || s.Min != 2*time.Millisecond {
		t.Fatalf("after slide: count=%d min=%v", s.Count, s.Min)
	}
}

func TestWindowBucketReuseResetsExemplar(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(WindowConfig{Buckets: 2, BucketLen: time.Second, Now: clk.now})
	w.Record(time.Hour, TraceID(7))
	// Wrap the ring onto the same slot two buckets later.
	clk.advance(2 * time.Second)
	w.Record(time.Millisecond, 0)
	s := w.Snapshot()
	if s.Count != 1 || s.Max != time.Millisecond {
		t.Fatalf("stale bucket leaked: %+v", s)
	}
	if s.Exemplar != nil {
		t.Fatalf("stale exemplar leaked: %+v", s.Exemplar)
	}
}

func TestWindowSnapshotDumpRoundTrip(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(WindowConfig{Now: clk.now})
	for i := 1; i <= 50; i++ {
		w.Record(time.Duration(i)*time.Millisecond, 0)
	}
	s := w.Snapshot()
	d := s.Dump()
	if d.Count != 50 || d.Min != time.Millisecond || d.Max != 50*time.Millisecond || len(d.Samples) != 50 {
		t.Fatalf("dump = %+v", d)
	}
}

func TestRegistryWindows(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistryWindows(WindowConfig{Now: clk.now})
	for i := 1; i <= 20; i++ {
		r.Observe(WeaknessReport{
			Collection:  "menus",
			Duration:    time.Duration(i) * time.Millisecond,
			SnapshotAge: time.Duration(i) * time.Millisecond,
			ListingSkew: int64(i % 2),
			Trace:       TraceID(uint64(i)),
		})
	}
	wins := r.Windows()
	if len(wins) != 1 || wins[0].Collection != "menus" {
		t.Fatalf("windows = %+v", wins)
	}
	m := wins[0].Metrics
	lat, ok := m[WinLatency]
	if !ok || lat.Count != 20 {
		t.Fatalf("latency window = %+v", lat)
	}
	if lat.Exemplar == nil || lat.Exemplar.Trace != TraceID(20) {
		t.Fatalf("latency exemplar should name the slowest traced run: %+v", lat.Exemplar)
	}
	// lease_age never recorded (no lease used) — absent, not zero-filled.
	if _, ok := m[WinLeaseAge]; ok {
		t.Fatal("lease_age window present without lease usage")
	}
	// Event metrics record every run, zeros included.
	skew := m[WinListingSkew]
	if skew.Count != 20 || skew.Max != 1 || skew.Min != 0 {
		t.Fatalf("listing_skew window = %+v", skew)
	}
	for _, metric := range []string{WinPartitionSkew, WinGhosts, WinDuplicates, WinUnreachable} {
		if ws, ok := m[metric]; !ok || ws.Count != 20 {
			t.Fatalf("event metric %s = %+v (ok=%v)", metric, ws, ok)
		}
	}
}

func TestRegistryJournalSkewEvents(t *testing.T) {
	j := NewJournal(16)
	r := NewRegistry()
	r.UseJournal(j)
	r.Observe(WeaknessReport{Collection: "menus"})
	r.Observe(WeaknessReport{Collection: "menus", ListingSkew: 3, Trace: TraceID(9)})
	r.Observe(WeaknessReport{Collection: "faces", PartitionSkew: 2})

	evs := j.Events(EventFilter{})
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Type != EvListingSkew || evs[0].Collection != "menus" || evs[0].Trace != TraceID(9) || evs[0].Attrs["skew"] != 3 {
		t.Fatalf("listing skew event = %+v", evs[0])
	}
	if evs[1].Type != EvPartitionSkew || evs[1].Collection != "faces" || evs[1].Attrs["skewedParts"] != 2 {
		t.Fatalf("partition skew event = %+v", evs[1])
	}
}

func TestNilRegistryWindows(t *testing.T) {
	var r *Registry
	r.Observe(WeaknessReport{Collection: "x"}) // must not panic
	if r.Windows() != nil {
		t.Fatal("nil registry windows")
	}
}
