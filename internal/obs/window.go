package obs

import (
	"sync"
	"time"

	"weaksets/internal/metrics"
)

// Window metric names: which per-run weakness quantity a rolling window
// tracks. The *seconds* metrics window durations; the *event* metrics
// window per-run counts (so their quantiles are rates: "p99 runs see
// this much skew").
const (
	WinLatency       = "latency"
	WinSnapshotAge   = "snapshot_age"
	WinLeaseAge      = "lease_age"
	WinGhostAge      = "ghost_age"
	WinListingSkew   = "listing_skew"
	WinPartitionSkew = "partition_skew"
	WinReplicaSkew   = "replica_skew"
	WinGhosts        = "ghosts_served"
	WinDuplicates    = "duplicates_suppressed"
	WinUnreachable   = "unreachable_skipped"
)

// WindowSecondsMetrics are the duration-valued window metrics, in stable
// exposition order.
var WindowSecondsMetrics = []string{WinLatency, WinSnapshotAge, WinLeaseAge, WinGhostAge}

// WindowEventMetrics are the count-valued window metrics (per-run
// counts, not seconds), in stable exposition order.
var WindowEventMetrics = []string{WinListingSkew, WinPartitionSkew, WinReplicaSkew, WinGhosts, WinDuplicates, WinUnreachable}

// WindowConfig tunes rolling weakness windows. The zero value selects
// the defaults: a 60 s sliding window of six 10 s buckets with a
// 512-sample reservoir per bucket.
type WindowConfig struct {
	// Buckets is the ring length. Default 6.
	Buckets int
	// BucketLen is one bucket's span. Default 10 s.
	BucketLen time.Duration
	// Reservoir bounds each bucket's histogram. Default 512.
	Reservoir int
	// Now is the clock, injectable for tests. Default time.Now.
	Now func() time.Time
}

func (cfg WindowConfig) withDefaults() WindowConfig {
	if cfg.Buckets <= 0 {
		cfg.Buckets = 6
	}
	if cfg.BucketLen <= 0 {
		cfg.BucketLen = 10 * time.Second
	}
	if cfg.Reservoir <= 0 {
		cfg.Reservoir = 512
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Window is one rolling time-windowed series: a ring of time-aligned
// buckets, each holding a bounded histogram plus the trace exemplar of
// its worst traced sample. Recording touches exactly one bucket; a
// snapshot merges the buckets still inside the window, so the series
// forgets old load instead of averaging over the process lifetime. It is
// safe for concurrent use.
type Window struct {
	mu      sync.Mutex
	cfg     WindowConfig
	buckets []windowBucket
}

type windowBucket struct {
	epoch   int64 // bucket index = unixNano / BucketLen; 0 = never used
	hist    *metrics.Histogram
	exTrace TraceID
	exValue time.Duration
}

// NewWindow creates a rolling window with the given config.
func NewWindow(cfg WindowConfig) *Window {
	cfg = cfg.withDefaults()
	return &Window{cfg: cfg, buckets: make([]windowBucket, cfg.Buckets)}
}

// Record adds one sample at the current clock. When the run was traced,
// the sample competes to be the bucket's exemplar: the largest traced
// value wins, so the exemplar always names a run that explains the
// bucket's tail.
func (w *Window) Record(v time.Duration, trace TraceID) {
	epoch := w.cfg.Now().UnixNano() / int64(w.cfg.BucketLen)
	w.mu.Lock()
	b := &w.buckets[epoch%int64(len(w.buckets))]
	if b.epoch != epoch {
		b.epoch = epoch
		b.hist = metrics.NewHistogram(w.cfg.Reservoir)
		b.exTrace, b.exValue = 0, 0
	}
	if trace != 0 && (b.exTrace == 0 || v >= b.exValue) {
		b.exTrace, b.exValue = trace, v
	}
	h := b.hist
	w.mu.Unlock()
	h.Record(v)
}

// Exemplar links a histogram tail to the trace of a representative
// offending run.
type Exemplar struct {
	Trace TraceID       `json:"trace"`
	Value time.Duration `json:"valueNs"`
}

// WindowSnapshot is a point-in-time view of one rolling window: the
// merged histogram of every bucket still inside the window, its
// quantiles, the tail exemplar, and the merged reservoir so per-node
// snapshots can aggregate into a cluster view via metrics.MergeDump.
type WindowSnapshot struct {
	Count    int64           `json:"count"`
	Sum      time.Duration   `json:"sumNs"`
	Min      time.Duration   `json:"minNs"`
	Max      time.Duration   `json:"maxNs"`
	P50      time.Duration   `json:"p50Ns"`
	P95      time.Duration   `json:"p95Ns"`
	P99      time.Duration   `json:"p99Ns"`
	Exemplar *Exemplar       `json:"exemplar,omitempty"`
	Samples  []time.Duration `json:"samplesNs,omitempty"`
}

// Dump converts the snapshot back into a mergeable histogram dump — the
// cluster-merge hook.
func (ws WindowSnapshot) Dump() metrics.Dump {
	return metrics.Dump{Count: ws.Count, Sum: ws.Sum, Min: ws.Min, Max: ws.Max, Samples: ws.Samples}
}

// SnapshotOf rebuilds a WindowSnapshot (quantiles and all) from a merged
// histogram plus the winning exemplar — what /cluster uses after folding
// many nodes' dumps together.
func SnapshotOf(h *metrics.Histogram, ex *Exemplar) WindowSnapshot {
	s := h.Snapshot()
	return WindowSnapshot{
		Count:    s.Count,
		Sum:      s.Sum,
		Min:      s.Min,
		Max:      s.Max,
		P50:      s.Quantile(0.50),
		P95:      s.Quantile(0.95),
		P99:      s.Quantile(0.99),
		Exemplar: ex,
		Samples:  s.Samples(),
	}
}

// Snapshot merges the live buckets into one view. Buckets older than the
// window (Buckets x BucketLen behind the clock) are excluded — they are
// lazily overwritten by future Records.
func (w *Window) Snapshot() WindowSnapshot {
	nowEpoch := w.cfg.Now().UnixNano() / int64(w.cfg.BucketLen)
	oldest := nowEpoch - int64(len(w.buckets)) + 1

	w.mu.Lock()
	live := make([]windowBucket, 0, len(w.buckets))
	for _, b := range w.buckets {
		if b.hist != nil && b.epoch >= oldest && b.epoch <= nowEpoch {
			live = append(live, b)
		}
	}
	w.mu.Unlock()

	merged := metrics.NewHistogram(w.cfg.Reservoir)
	var ex *Exemplar
	for _, b := range live {
		merged.MergeDump(b.hist.Dump())
		if b.exTrace != 0 && (ex == nil || b.exValue >= ex.Value) {
			ex = &Exemplar{Trace: b.exTrace, Value: b.exValue}
		}
	}
	return SnapshotOf(merged, ex)
}

// CollectionWindows is one collection's full set of rolling weakness
// series, as exposed in /stats and merged by /cluster.
type CollectionWindows struct {
	Collection string                    `json:"collection"`
	Metrics    map[string]WindowSnapshot `json:"metrics"`
}
