package obs

import (
	"encoding/binary"
	"errors"
)

// errBadSpanContext reports a truncated or malformed binary span context.
var errBadSpanContext = errors.New("obs: bad binary span context")

// AppendBinary appends the compact binary form of the span context: trace
// id and span id as unsigned varints, then one sampled byte. This is the
// envelope format the wirebin transport codec ships across processes
// (DESIGN.md §11); gob connections keep encoding the struct directly.
func (sc SpanContext) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(sc.Trace))
	buf = binary.AppendUvarint(buf, uint64(sc.Span))
	if sc.Sampled {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeSpanContext parses the binary form from the front of b, returning
// the context and how many bytes it consumed.
func DecodeSpanContext(b []byte) (SpanContext, int, error) {
	var sc SpanContext
	t, n := binary.Uvarint(b)
	if n <= 0 {
		return sc, 0, errBadSpanContext
	}
	s, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return sc, 0, errBadSpanContext
	}
	if n+m >= len(b) {
		return sc, 0, errBadSpanContext
	}
	sc.Trace = TraceID(t)
	sc.Span = SpanID(s)
	sc.Sampled = b[n+m] != 0
	return sc, n + m + 1, nil
}
