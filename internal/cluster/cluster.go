// Package cluster assembles the full substrate stack — simulated network,
// RPC bus, repository servers on every node, and a lock service — into one
// handle. Tests, benchmarks, examples and commands all build their worlds
// through it.
package cluster

import (
	"fmt"
	"time"

	"weaksets/internal/locksvc"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/sim"
)

// Well-known node names.
const (
	// HomeNode is the client's workstation.
	HomeNode netsim.NodeID = "home"
	// DirNode is the directory node holding collections and the lock
	// service.
	DirNode netsim.NodeID = "dir"
)

// Config sizes and seeds a cluster.
type Config struct {
	// StorageNodes is the number of object-storage nodes (named s0, s1,
	// ...). Defaults to 4.
	StorageNodes int
	// Seed drives all randomness.
	Seed int64
	// Latency is the default one-way link latency. Defaults to fixed 10ms.
	Latency sim.Dist
	// Scale is the virtual-to-real time scale. The zero value sleeps
	// nothing (logical-only latencies); experiments that want wall-clock
	// queueing and timeouts set it, e.g. to sim.DefaultScale.
	Scale sim.TimeScale
	// DropProb is the per-message loss probability.
	DropProb float64
	// DetectTimeout is the failure-detection timeout. Defaults to 200ms
	// virtual.
	DetectTimeout time.Duration
}

// Cluster is a running substrate: network, bus, one repository server per
// node, a lock server on the directory node, and a client homed at
// HomeNode.
type Cluster struct {
	Net      *netsim.Network
	Bus      *rpc.Bus
	Storage  []netsim.NodeID
	Servers  map[netsim.NodeID]*repo.Server
	LockSrv  *locksvc.Server
	LockNode netsim.NodeID
	Client   *repo.Client
	Rand     *sim.Rand
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.StorageNodes <= 0 {
		cfg.StorageNodes = 4
	}
	if cfg.Latency == nil {
		cfg.Latency = sim.Fixed(10 * time.Millisecond)
	}
	net := netsim.New(netsim.Config{
		Seed:           cfg.Seed,
		DefaultLatency: cfg.Latency,
		DropProb:       cfg.DropProb,
		Scale:          cfg.Scale,
		DetectTimeout:  cfg.DetectTimeout,
	})
	net.AddNode(HomeNode)
	net.AddNode(DirNode)
	storage := net.AddNodes("s", cfg.StorageNodes)

	bus := rpc.NewBus(net)
	servers := make(map[netsim.NodeID]*repo.Server, cfg.StorageNodes+2)
	for _, node := range append([]netsim.NodeID{HomeNode, DirNode}, storage...) {
		srv, err := repo.NewServer(bus, node)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		servers[node] = srv
	}
	lockSrv, err := locksvc.NewServer(bus, DirNode)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &Cluster{
		Net:      net,
		Bus:      bus,
		Storage:  storage,
		Servers:  servers,
		LockSrv:  lockSrv,
		LockNode: DirNode,
		Client:   repo.NewClient(bus, HomeNode),
		Rand:     net.Rand().Fork(),
	}, nil
}

// UseTracer attaches a tracer to the bus and to every repository server,
// so traced runs produce spans at the RPC and store layers. Call it before
// any traffic flows.
func (c *Cluster) UseTracer(t *obs.Tracer) {
	c.Bus.UseTracer(t)
	for _, srv := range c.Servers {
		srv.UseTracer(t)
	}
}

// UseJournal attaches an event journal to every repository server, so
// coordination-plane events (lease grants, ghost GC) land in one
// queryable ring. Call it before any traffic flows.
func (c *Cluster) UseJournal(j *obs.Journal) {
	for _, srv := range c.Servers {
		srv.UseJournal(j)
	}
}

// ClientAt creates an additional client homed at the given node.
func (c *Cluster) ClientAt(node netsim.NodeID) *repo.Client {
	return repo.NewClient(c.Bus, node)
}

// StorageFor deterministically assigns the i-th object to a storage node.
func (c *Cluster) StorageFor(i int) netsim.NodeID {
	return c.Storage[i%len(c.Storage)]
}

// ReplicaSet is the per-collection replica placement map: the home
// (directory) node first, then n-1 storage nodes picked by the same FNV
// hash the listing partitioner uses — so different collections land on
// different replica sets and their partitions scatter *across* the
// cluster, not all behind one node. n is clamped to the nodes available;
// n <= 1 means unreplicated (home only).
func (c *Cluster) ReplicaSet(name string, n int) []netsim.NodeID {
	out := []netsim.NodeID{DirNode}
	if n > len(c.Storage)+1 {
		n = len(c.Storage) + 1
	}
	if n <= 1 || len(c.Storage) == 0 {
		return out
	}
	// FNV-1a over the collection name seeds the placement, matching the
	// partitioner's hash family (store.partOf).
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	start := int(h % uint32(len(c.Storage)))
	for i := 0; len(out) < n; i++ {
		out = append(out, c.Storage[(start+i)%len(c.Storage)])
	}
	return out
}

// Replicate places a collection on n replicas (ReplicaSet placement) and
// starts the home's anti-entropy toward them. It returns the replica set
// for the client side (core.ReplicaConfig.Nodes wants exactly this,
// home first).
func (c *Cluster) Replicate(name string, n int) ([]netsim.NodeID, error) {
	nodes := c.ReplicaSet(name, n)
	if err := c.Servers[DirNode].ReplicateCollection(name, nodes[1:]); err != nil {
		return nil, fmt.Errorf("cluster: replicate %q: %w", name, err)
	}
	return nodes, nil
}

// Close shuts down every server's background work.
func (c *Cluster) Close() {
	for _, srv := range c.Servers {
		srv.Close()
	}
}
