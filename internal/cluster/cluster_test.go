package cluster

import (
	"context"
	"testing"

	"weaksets/internal/repo"
)

func TestNewClusterDefaults(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Storage) != 4 {
		t.Fatalf("storage = %v", c.Storage)
	}
	if !c.Net.HasNode(HomeNode) || !c.Net.HasNode(DirNode) {
		t.Fatal("well-known nodes missing")
	}
	if c.Client.Node() != HomeNode {
		t.Fatalf("client homed at %s", c.Client.Node())
	}
	if c.LockNode != DirNode {
		t.Fatalf("lock node = %s", c.LockNode)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	c, err := New(Config{StorageNodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, DirNode, "c"); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Client.Put(ctx, c.StorageFor(0), repo.Object{ID: "x", Data: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, DirNode, "c", ref); err != nil {
		t.Fatal(err)
	}
	members, _, err := c.Client.List(ctx, DirNode, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("members = %v", members)
	}
}

func TestStorageForWraps(t *testing.T) {
	c, err := New(Config{StorageNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.StorageFor(0) != c.StorageFor(3) {
		t.Fatal("StorageFor does not wrap")
	}
}

func TestClientAt(t *testing.T) {
	c, err := New(Config{StorageNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alt := c.ClientAt(c.Storage[0])
	if alt.Node() != c.Storage[0] {
		t.Fatalf("alt client homed at %s", alt.Node())
	}
	// A client on an isolated node cannot reach the directory.
	c.Net.Isolate(c.Storage[0])
	if _, _, err := alt.List(context.Background(), DirNode, "nope"); err == nil {
		t.Fatal("isolated client reached the directory")
	}
}
