package repo

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"weaksets/internal/netsim"
)

func TestSnapshotRoundTrip(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "dir", "o1", "alpha")
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	r2 := w.mustPut(t, "dir", "o2", "beta")
	if err := w.client.Add(ctx, "dir", "c", r2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Remove(ctx, "dir", "c", "o2"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.dirSrv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": wipe by loading into a fresh server with the same
	// identity (the world's dir server is re-used here; LoadSnapshot
	// replaces its state wholesale after we corrupt it).
	if err := w.client.Delete(ctx, r1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Remove(ctx, "dir", "c", "o1"); err != nil {
		t.Fatal(err)
	}

	if err := w.dirSrv.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	obj, err := w.client.Get(ctx, r1)
	if err != nil {
		t.Fatalf("object lost across snapshot: %v", err)
	}
	if string(obj.Data) != "alpha" {
		t.Fatalf("data = %q", obj.Data)
	}
	members, version, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].ID != "o1" {
		t.Fatalf("members = %v", members)
	}
	if version != 3 {
		t.Fatalf("version = %d, want 3 (two adds + one remove)", version)
	}
}

func TestSnapshotDropsSoftState(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ref := w.mustPut(t, "s1", "m", "x")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Pin(ctx, "dir", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.BeginGrow(ctx, "dir", "c"); err != nil {
		t.Fatal(err)
	}
	if err := w.client.DeleteMember(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.dirSrv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := w.dirSrv.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := w.client.Stats(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pins != 0 || stats.Tokens != 0 || stats.Ghosts != 0 {
		t.Fatalf("soft state survived restart: %+v", stats)
	}
	// The ghosted member was removed from live membership before the
	// snapshot, so after restart it is simply gone.
	if stats.Members != 0 {
		t.Fatalf("members = %d", stats.Members)
	}
}

func TestSnapshotNodeMismatch(t *testing.T) {
	w := newWorld(t)
	var buf bytes.Buffer
	if err := w.dirSrv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := w.s1Srv.LoadSnapshot(&buf); err == nil {
		t.Fatal("cross-node snapshot accepted")
	}
}

func TestSnapshotGarbage(t *testing.T) {
	w := newWorld(t)
	if err := w.dirSrv.LoadSnapshot(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ref := w.mustPut(t, "dir", "o", "data")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dir.snapshot")
	if err := w.dirSrv.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Wipe and restore.
	if _, err := w.client.Remove(ctx, "dir", "c", "o"); err != nil {
		t.Fatal(err)
	}
	if err := w.dirSrv.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	members, _, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("members = %v", members)
	}
}

func TestLoadFileMissing(t *testing.T) {
	w := newWorld(t)
	if err := w.dirSrv.LoadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSnapshotPreservesReplicaConfig(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	if err := w.dirSrv.ReplicateCollection("c", []netsim.NodeID{"s2"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.dirSrv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := w.dirSrv.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A post-restart mutation must still reach the replica.
	ref := w.mustPut(t, "s1", "after", "x")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		members, _, err := w.client.List(ctx, "s2", "c")
		return err == nil && len(members) == 1
	})
}
