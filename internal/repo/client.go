package repo

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
	"weaksets/internal/store"
)

// Client is a node-local handle on the distributed repository. It issues
// RPCs from its home node, so reachability is always judged from the
// client's point in the (possibly partitioned) network.
type Client struct {
	bus  *rpc.Bus
	node netsim.NodeID

	// muts counts mutations issued through this client. Prefetched
	// objects are stamped with the epoch at fetch time; a later epoch
	// invalidates them, preserving read-your-writes through caches.
	muts atomic.Uint64

	// cache is the attached element cache, if any. The client keeps it
	// coherent with its own writes: Put installs the stored version,
	// Delete drops the entry. That write-through is what lets snapshot
	// runs serve warm entries without an RPC and still read the
	// client's own writes.
	cache atomic.Pointer[Cache]

	// leaseState is the attached lease holder, if any: iterators consult
	// it before revalidating a current-state membership read.
	leaseState atomic.Pointer[LeaseState]
}

// Mutations reports the client's mutation epoch: how many mutating calls
// it has issued. It advances even on failed calls, since a mutation that
// errored may still have taken effect server-side.
func (c *Client) Mutations() uint64 { return c.muts.Load() }

// NewClient creates a client that issues calls from node.
func NewClient(bus *rpc.Bus, node netsim.NodeID) *Client {
	return &Client{bus: bus, node: node}
}

// UseCache attaches an element cache. Iterators created from this client
// consult it on the elements hot path (unless opted out per run), and the
// client's own Put/Delete keep it coherent.
func (c *Client) UseCache(cache *Cache) { c.cache.Store(cache) }

// ElementCache reports the attached element cache, or nil.
func (c *Client) ElementCache() *Cache { return c.cache.Load() }

// UseLeases attaches a lease state. Iterators created from this client
// consult it on current-state runs: a valid lease whose certified
// version matches the cached listing serves the run with no RPC at all.
// The caller owns the state's lifecycle (Start/Stop).
func (c *Client) UseLeases(ls *LeaseState) { c.leaseState.Store(ls) }

// Leases reports the attached lease state, or nil.
func (c *Client) Leases() *LeaseState { return c.leaseState.Load() }

// Node reports the client's home node.
func (c *Client) Node() netsim.NodeID { return c.node }

// Bus exposes the underlying RPC bus.
func (c *Client) Bus() *rpc.Bus { return c.bus }

// Reachable reports whether the node holding ref is currently reachable
// from the client — the paper's reachable() oracle evaluated at the
// client's node.
func (c *Client) Reachable(ref Ref) bool {
	return c.bus.Network().Reachable(c.node, ref.Node)
}

// NodeReachable reports whether an arbitrary node is reachable from the
// client.
func (c *Client) NodeReachable(n netsim.NodeID) bool {
	return c.bus.Network().Reachable(c.node, n)
}

// EstimateRTT estimates the round trip to the node holding ref, used for
// closest-first fetch ordering.
func (c *Client) EstimateRTT(ref Ref) time.Duration {
	return c.bus.Network().EstimateRTT(c.node, ref.Node)
}

// Get fetches an object from the node recorded in ref.
func (c *Client) Get(ctx context.Context, ref Ref) (Object, error) {
	return rpc.Invoke[Object](ctx, c.bus, c.node, ref.Node, MethodGet, GetReq{ID: ref.ID})
}

// GetBatch fetches several objects from one node in a single round trip.
// It returns the found objects keyed by ID plus the ids the node had no
// data for; only a transport failure errors the whole batch.
func (c *Client) GetBatch(ctx context.Context, node netsim.NodeID, ids []ObjectID) (map[ObjectID]Object, []ObjectID, error) {
	resp, err := rpc.Invoke[GetBatchResp](ctx, c.bus, c.node, node, MethodGetBatch, GetBatchReq{IDs: ids})
	if err != nil {
		return nil, nil, err
	}
	objs := make(map[ObjectID]Object, len(resp.Objects))
	for _, obj := range resp.Objects {
		objs[obj.ID] = obj
	}
	return objs, resp.Missing, nil
}

// GetBatchValidated is the conditional variant of GetBatch: known maps
// ids to versions the caller already holds, and the node ships full
// objects only for ids whose version moved, answering the rest in
// notModified. Payload bytes for validated ids never cross the wire.
func (c *Client) GetBatchValidated(ctx context.Context, node netsim.NodeID, ids []ObjectID, known map[ObjectID]uint64) (objs map[ObjectID]Object, notModified []ObjectID, missing []ObjectID, err error) {
	resp, err := rpc.Invoke[GetBatchResp](ctx, c.bus, c.node, node, MethodGetBatch, GetBatchReq{IDs: ids, Known: known})
	if err != nil {
		return nil, nil, nil, err
	}
	objs = make(map[ObjectID]Object, len(resp.Objects))
	for _, obj := range resp.Objects {
		objs[obj.ID] = obj
	}
	return objs, resp.NotModified, resp.Missing, nil
}

// Put stores an object on the given node and returns its ref. With a
// cache attached the stored version is written through, so the client's
// next iteration finds its own write warm.
func (c *Client) Put(ctx context.Context, node netsim.NodeID, obj Object) (Ref, error) {
	defer c.muts.Add(1)
	resp, err := rpc.Invoke[PutResp](ctx, c.bus, c.node, node, MethodPut, PutReq{Obj: obj})
	if err != nil {
		return Ref{}, err
	}
	if cache := c.cache.Load(); cache != nil {
		stored := obj.Clone()
		stored.Version = resp.Version
		stored.Tombstone = false
		cache.Put(stored)
	}
	return Ref{ID: obj.ID, Node: node}, nil
}

// Delete removes an object's data from its node. With a cache attached
// the entry is dropped, so the client never serves its own deleted data
// from cache.
func (c *Client) Delete(ctx context.Context, ref Ref) error {
	defer c.muts.Add(1)
	if cache := c.cache.Load(); cache != nil {
		cache.Drop(ref.ID)
	}
	_, _, err := c.bus.Call(ctx, c.node, ref.Node, MethodDelete, DeleteReq{ID: ref.ID})
	return err
}

// CreateCollection creates an empty collection on the directory node dir.
func (c *Client) CreateCollection(ctx context.Context, dir netsim.NodeID, name string) error {
	_, _, err := c.bus.Call(ctx, c.node, dir, MethodCreate, CreateReq{Name: name})
	return err
}

// List reads a collection's current membership from dir.
func (c *Client) List(ctx context.Context, dir netsim.NodeID, name string) ([]Ref, uint64, error) {
	resp, err := rpc.Invoke[ListResp](ctx, c.bus, c.node, dir, MethodList, ListReq{Name: name})
	if err != nil {
		return nil, 0, err
	}
	return resp.Members, resp.Version, nil
}

// ListIfNew reads a collection's membership only if it changed since
// lastVersion (0 forces a full read). On the not-modified path no member
// list crosses the wire; the caller keeps using its cached listing.
func (c *Client) ListIfNew(ctx context.Context, dir netsim.NodeID, name string, lastVersion uint64) (members []Ref, version uint64, notModified bool, err error) {
	resp, err := rpc.Invoke[ListResp](ctx, c.bus, c.node, dir, MethodList, ListReq{Name: name, IfVersion: lastVersion})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Members, resp.Version, resp.NotModified, nil
}

// ListPinned reads a pinned snapshot of a collection.
func (c *Client) ListPinned(ctx context.Context, dir netsim.NodeID, name string, pin int64) ([]Ref, uint64, error) {
	resp, err := rpc.Invoke[ListResp](ctx, c.bus, c.node, dir, MethodList, ListReq{Name: name, Pin: pin})
	if err != nil {
		return nil, 0, err
	}
	return resp.Members, resp.Version, nil
}

// ListParts reads a collection's membership one listing partition at a
// time, invoking fn for each partition's listing as it arrives — over a
// streaming transport that can be while later partitions are still in
// flight. gates is an optional per-partition version vector: a
// partition still at or below its gate answers NotModified with no
// members (a short or empty vector gates nothing). A non-zero pin
// serves that snapshot partitioned on the fly instead of the live
// membership. Peers that predate partitioned listings answer the
// monolithic List method, which fn sees as a single partition (part 0
// of 1), so callers work unchanged across versions. A non-nil error
// from fn abandons the stream and is returned as-is.
func (c *Client) ListParts(ctx context.Context, dir netsim.NodeID, name string, pin int64, gates []uint64, fn func(PartListing) error) error {
	return c.ListPartsSubset(ctx, dir, name, pin, gates, nil, fn)
}

// ListPartsSubset is ListParts restricted to a subset of listing
// partitions — the scatter primitive for replica-parallel reads, where
// each live replica serves its share of the partition space and the
// shares interleave into one fold. A nil/empty parts requests them all.
// The monolithic fallback for old peers only works for full reads, so a
// subset request against such a peer fails with the original error.
func (c *Client) ListPartsSubset(ctx context.Context, node netsim.NodeID, name string, pin int64, gates []uint64, parts []int, fn func(PartListing) error) error {
	out, _, err := c.bus.Call(ctx, c.node, node, MethodListParts, ListPartsReq{Name: name, Pin: pin, IfVersions: gates, Stream: true, Parts: parts})
	if err != nil {
		if errors.Is(err, rpc.ErrNoMethod) && len(parts) == 0 {
			return c.listPartsFallback(ctx, node, name, pin, gates, fn)
		}
		return err
	}
	switch body := out.(type) {
	case rpc.Streamer:
		for {
			chunk, ok := body.Next()
			if !ok {
				return body.Err()
			}
			pl, ok := chunk.(PartListing)
			if !ok {
				drainStream(body)
				return fmt.Errorf("rpc %s: unexpected chunk type %T", MethodListParts, chunk)
			}
			if err := fn(pl); err != nil {
				drainStream(body)
				return err
			}
		}
	case ListPartsResp:
		for _, pl := range body.Parts {
			if err := fn(pl); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("rpc %s: unexpected response type %T", MethodListParts, out)
	}
}

// drainStream runs an abandoned stream to completion. A stream left
// mid-flight would strand its transport call slot (the slot is released
// when the stream ends); draining is cheap because abandonment comes
// with a cancelled stream context, which ends a remote stream on its
// next chunk.
func drainStream(st rpc.Streamer) {
	for {
		if _, ok := st.Next(); !ok {
			return
		}
	}
}

// listPartsFallback serves ListParts against a peer without the method:
// one monolithic listing presented as a single partition. A one-entry
// gate vector maps onto the monolithic IfVersion gate; longer vectors
// cannot (the peer has no partition versions), so they gate nothing.
func (c *Client) listPartsFallback(ctx context.Context, dir netsim.NodeID, name string, pin int64, gates []uint64, fn func(PartListing) error) error {
	var (
		members []Ref
		version uint64
		notMod  bool
		err     error
	)
	switch {
	case pin != 0:
		members, version, err = c.ListPinned(ctx, dir, name, pin)
	case len(gates) == 1:
		members, version, notMod, err = c.ListIfNew(ctx, dir, name, gates[0])
	default:
		members, version, err = c.List(ctx, dir, name)
	}
	if err != nil {
		return err
	}
	return fn(PartListing{Part: 0, Partitions: 1, Members: members, Version: version, NotModified: notMod})
}

// Add inserts a member into a collection.
func (c *Client) Add(ctx context.Context, dir netsim.NodeID, name string, ref Ref) error {
	defer c.muts.Add(1)
	_, err := rpc.Invoke[MutateResp](ctx, c.bus, c.node, dir, MethodAdd, AddReq{Name: name, Ref: ref})
	return err
}

// Remove removes a member from a collection. It reports whether the
// removal was deferred by an open grow-only window.
func (c *Client) Remove(ctx context.Context, dir netsim.NodeID, name string, id ObjectID) (deferred bool, err error) {
	defer c.muts.Add(1)
	resp, err := rpc.Invoke[RemoveResp](ctx, c.bus, c.node, dir, MethodRemove, RemoveReq{Name: name, ID: id})
	if err != nil {
		return false, err
	}
	return resp.Deferred, nil
}

// DeleteMember removes ref from the collection and, unless the server
// deferred the removal (grow-only window), deletes the object's data too.
// This is the paper's model of element deletion: the membership change and
// the object's disappearance are separate, non-atomic steps.
func (c *Client) DeleteMember(ctx context.Context, dir netsim.NodeID, name string, ref Ref) error {
	deferred, err := c.Remove(ctx, dir, name, ref.ID)
	if err != nil {
		return err
	}
	if deferred {
		return nil
	}
	return c.Delete(ctx, ref)
}

// Pin takes an atomic snapshot of the collection's membership and returns
// its handle.
func (c *Client) Pin(ctx context.Context, dir netsim.NodeID, name string) (int64, error) {
	resp, err := rpc.Invoke[PinResp](ctx, c.bus, c.node, dir, MethodPin, PinReq{Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Pin, nil
}

// Unpin releases a snapshot.
func (c *Client) Unpin(ctx context.Context, dir netsim.NodeID, name string, pin int64) error {
	_, _, err := c.bus.Call(ctx, c.node, dir, MethodUnpin, UnpinReq{Name: name, Pin: pin})
	return err
}

// BeginGrow opens a grow-only window on the collection; until the matching
// EndGrow, deletions are deferred as ghosts.
func (c *Client) BeginGrow(ctx context.Context, dir netsim.NodeID, name string) (int64, error) {
	resp, err := rpc.Invoke[BeginGrowResp](ctx, c.bus, c.node, dir, MethodBeginGrow, BeginGrowReq{Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Token, nil
}

// EndGrow closes a grow-only window; when the last window closes the
// server garbage-collects ghosts and reports how many it reclaimed.
func (c *Client) EndGrow(ctx context.Context, dir netsim.NodeID, name string, token int64) (reclaimed int, err error) {
	defer c.muts.Add(1) // ghost GC may delete object data
	resp, err := rpc.Invoke[EndGrowResp](ctx, c.bus, c.node, dir, MethodEndGrow, EndGrowReq{Name: name, Token: token})
	if err != nil {
		return 0, err
	}
	return resp.Reclaimed, nil
}

// Stats fetches collection counters from dir.
func (c *Client) Stats(ctx context.Context, dir netsim.NodeID, name string) (StatsResp, error) {
	return rpc.Invoke[StatsResp](ctx, c.bus, c.node, dir, MethodStats, StatsReq{Name: name})
}

// StoreStats fetches a node's storage-engine instrumentation: per-
// operation counts, error counts, and latency quantiles.
func (c *Client) StoreStats(ctx context.Context, node netsim.NodeID) (store.EngineStats, error) {
	resp, err := rpc.Invoke[StoreStatsResp](ctx, c.bus, c.node, node, MethodStoreStats, StoreStatsReq{})
	if err != nil {
		return store.EngineStats{}, err
	}
	return resp.Stats, nil
}

// Digest fetches a node's anti-entropy digest for one collection: its
// per-partition version vector and how long ago the home last pushed to
// it (AgeMs; -1 when never, which is what the home itself answers). The
// read path uses it both as a liveness/latency probe and as the
// baseline for the staleness (ReplicaSkew) a scattered read reports.
func (c *Client) Digest(ctx context.Context, node netsim.NodeID, name string) (DigestResp, error) {
	return rpc.Invoke[DigestResp](ctx, c.bus, c.node, node, MethodSyncDigest, DigestReq{Name: name})
}
