package repo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/rpc"
	"weaksets/internal/store"
)

// This file is the push-invalidation protocol (DESIGN.md §13): the
// server side grants time-bounded leases on collection listing versions
// and pushes compact Invalidation frames down a long-lived Watch stream;
// the client side holds the leases and answers "is my cached listing
// still current?" without a round trip. A lease is a promise to tell,
// not a lock: a briefly-stale lease-held read is the same legal weakness
// the paper's semantics already tolerate, now measured by
// WeaknessReport.LeaseServed/LeaseAge instead of hidden behind a
// revalidation RPC.
//
// Soundness rests on one ordering rule at each end. The server registers
// a lease before reading the listing version it grants, so any
// concurrent bump lands in the holder's queue (possibly alongside a
// grant that already reflects it — the client folds by max version). The
// client opens its Watch stream before acquiring any lease, so there is
// no window where a granted lease has no stream to be invalidated on.
// Everything else degrades instead of breaking: a dropped connection or
// an expired TTL just ends the stream, the client discards its leases,
// and reads fall back to the conditional revalidation path (PR 5) they
// used before leases existed.

// DefaultLeaseTTL is the lease duration servers grant unless configured
// otherwise. It is wall-clock time: long enough that the client's
// half-TTL renewal cadence is cheap, short enough that a holder that
// vanished without closing its connection stops costing pushes quickly.
const DefaultLeaseTTL = 30 * time.Second

// errWatchMaterialize reports a Watch served to a consumer that cannot
// carry stream chunks (an old peer or a non-streaming transport); the
// caller must run leaseless.
var errWatchMaterialize = errors.New("repo: watch requires a streaming transport")

// invKey coalesces pending invalidations: one slot per (collection,
// partition), latest version wins. A slow or stalled watch consumer
// therefore bounds the server's queue by collections × partitions, not
// by write rate.
type invKey struct {
	coll string
	part int
}

// leaseHolder is one client's lease book and pending push queue, keyed
// by the node the client calls from.
type leaseHolder struct {
	mu      sync.Mutex
	leases  map[string]time.Time // collection -> expiry
	pending map[invKey]Invalidation
	order   []invKey
	// gen numbers the holder's watch streams; a stream whose gen is
	// stale has been superseded and ends. notify is buffered(1) and
	// signaled on every enqueue and supersede.
	gen    int
	notify chan struct{}
}

func (h *leaseHolder) signal() {
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// leaseHub is the server's lease table: every holder, the grant TTL, and
// the fan-out from store change events to holder queues.
type leaseHub struct {
	ttl atomic.Int64 // time.Duration; atomic so tests can shorten it

	mu      sync.Mutex
	holders map[netsim.NodeID]*leaseHolder
	closed  chan struct{}
	once    sync.Once
}

func newLeaseHub(ttl time.Duration) *leaseHub {
	hub := &leaseHub{
		holders: make(map[netsim.NodeID]*leaseHolder),
		closed:  make(chan struct{}),
	}
	hub.ttl.Store(int64(ttl))
	return hub
}

func (hub *leaseHub) leaseTTL() time.Duration { return time.Duration(hub.ttl.Load()) }

func (hub *leaseHub) close() {
	hub.once.Do(func() { close(hub.closed) })
}

func (hub *leaseHub) holder(from netsim.NodeID) *leaseHolder {
	hub.mu.Lock()
	defer hub.mu.Unlock()
	h, ok := hub.holders[from]
	if !ok {
		h = &leaseHolder{
			leases:  make(map[string]time.Time),
			pending: make(map[invKey]Invalidation),
			notify:  make(chan struct{}, 1),
		}
		hub.holders[from] = h
	}
	return h
}

// grant registers (or renews) leases for the caller and reads the
// versions it certifies. The lease is registered before its version is
// read — the ordering that makes a concurrent bump land in the push
// queue rather than vanish.
func (hub *leaseHub) grant(from netsim.NodeID, colls []string, st store.Store) LeaseGrant {
	ttl := hub.leaseTTL()
	h := hub.holder(from)
	expiry := time.Now().Add(ttl)
	h.mu.Lock()
	for _, coll := range colls {
		h.leases[coll] = expiry
	}
	h.mu.Unlock()

	versions := make(map[string]uint64, len(colls))
	var unknown []string
	for _, coll := range colls {
		v, err := st.ListVersion(coll)
		if err != nil {
			unknown = append(unknown, coll)
			continue
		}
		versions[coll] = v
	}
	if len(unknown) > 0 {
		h.mu.Lock()
		for _, coll := range unknown {
			delete(h.leases, coll)
		}
		h.mu.Unlock()
	}
	return LeaseGrant{TTL: ttl, Versions: versions}
}

// touch implicitly renews every unexpired lease the caller holds — the
// piggyback renewal every served RPC performs.
func (hub *leaseHub) touch(from netsim.NodeID) {
	hub.mu.Lock()
	h := hub.holders[from]
	hub.mu.Unlock()
	if h == nil {
		return
	}
	now := time.Now()
	expiry := now.Add(hub.leaseTTL())
	h.mu.Lock()
	for coll, exp := range h.leases {
		if exp.After(now) {
			h.leases[coll] = expiry
		}
	}
	h.mu.Unlock()
}

// invalidate fans one committed listing change out to every holder with
// an unexpired lease on the collection. It runs on the mutating
// goroutine (the store fires change events outside its locks), so it
// only moves the event into per-holder queues; shipping is the watch
// streams' job.
func (hub *leaseHub) invalidate(ev store.ChangeEvent) {
	hub.mu.Lock()
	holders := make([]*leaseHolder, 0, len(hub.holders))
	for _, h := range hub.holders {
		holders = append(holders, h)
	}
	hub.mu.Unlock()
	now := time.Now()
	for _, h := range holders {
		h.enqueue(ev, now)
	}
}

func (h *leaseHolder) enqueue(ev store.ChangeEvent, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	exp, leased := h.leases[ev.Coll]
	if !leased {
		return
	}
	if !exp.After(now) {
		// Lazy expiry: the lease lapsed without renewal, so the holder
		// stops costing pushes here rather than on a timer.
		delete(h.leases, ev.Coll)
		return
	}
	k := invKey{coll: ev.Coll, part: ev.Part}
	if prev, ok := h.pending[k]; ok {
		if ev.Version > prev.Version {
			h.pending[k] = Invalidation{Coll: ev.Coll, Part: ev.Part, Version: ev.Version}
		}
	} else {
		h.pending[k] = Invalidation{Coll: ev.Coll, Part: ev.Part, Version: ev.Version}
		h.order = append(h.order, k)
	}
	h.signal()
}

// watch opens (or supersedes) the holder's invalidation stream.
func (hub *leaseHub) watch(ctx context.Context, from netsim.NodeID) *watchStream {
	h := hub.holder(from)
	h.mu.Lock()
	h.gen++
	gen := h.gen
	h.mu.Unlock()
	// Wake any superseded stream so it notices and exits.
	h.signal()
	return &watchStream{ctx: ctx, hub: hub, h: h, gen: gen}
}

// watchStream delivers a holder's pending invalidations as a long-lived
// rpc.Streamer. Next blocks until an invalidation is queued; the stream
// ends — always cleanly, from the protocol's point of view — when the
// consumer's context is cancelled (connection teardown), the server
// closes, or a newer Watch supersedes it. Lease loss is the client's
// inference from the end of the stream, not an error code.
type watchStream struct {
	ctx context.Context
	hub *leaseHub
	h   *leaseHolder
	gen int
}

func (ws *watchStream) Next() (any, bool) {
	for {
		ws.h.mu.Lock()
		if ws.h.gen != ws.gen {
			ws.h.mu.Unlock()
			// Pass the wakeup on: the superseding stream may be waiting
			// on the same notify channel.
			ws.h.signal()
			return nil, false
		}
		if len(ws.h.order) > 0 {
			k := ws.h.order[0]
			ws.h.order = ws.h.order[1:]
			inv := ws.h.pending[k]
			delete(ws.h.pending, k)
			ws.h.mu.Unlock()
			return inv, true
		}
		ws.h.mu.Unlock()
		select {
		case <-ws.h.notify:
		case <-ws.ctx.Done():
			return nil, false
		case <-ws.hub.closed:
			return nil, false
		}
	}
}

func (ws *watchStream) Err() error { return nil }

// Materialize refuses: a watch has no single-message equivalent, so a
// peer that cannot stream gets this error and runs leaseless — the
// same degradation ladder rung as an old peer without the method.
func (ws *watchStream) Materialize() (any, error) { return nil, errWatchMaterialize }

// --- Client side ---------------------------------------------------------

// LeaseStats is a LeaseState's counter snapshot, surfaced in /stats and
// the Prometheus families.
type LeaseStats struct {
	// Active reports a live watch stream.
	Active bool `json:"active"`
	// Held is the number of collections currently leased.
	Held int `json:"held"`
	// Grants counts first-time lease acquisitions; Renewals counts
	// re-grants of a lease already held.
	Grants   int64 `json:"grants"`
	Renewals int64 `json:"renewals"`
	// Invalidations counts pushed Invalidation frames applied.
	Invalidations int64 `json:"invalidations"`
	// Breaks counts leases lost to stream end (connection drop, server
	// close, Stop).
	Breaks int64 `json:"breaks"`
}

// leaseEntry is one held lease: the latest listing version the server
// has certified (grant or push, folded by max), when it expires, and
// when the version was last confirmed — the age a lease-served read
// reports.
type leaseEntry struct {
	version   uint64
	expiry    time.Time
	confirmed time.Time
}

// LeaseState holds a client's leases against one directory node and owns
// the Watch stream they are invalidated on. Attach it with
// Client.UseLeases; the iterator hot path consults it through Serveable
// and never blocks on it.
//
// Degradation is the design: if the peer predates leases (ErrNoMethod),
// the transport cannot stream, or the stream ends, the state simply
// stops reporting Serveable and reads fall back to conditional
// revalidation. Start must be called again to re-arm after a break.
type LeaseState struct {
	client *Client
	dir    netsim.NodeID

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   chan struct{}

	mu      sync.Mutex
	active  bool
	started bool
	ttl     time.Duration
	leases  map[string]leaseEntry
	want    map[string]struct{}

	grants   atomic.Int64
	renewals atomic.Int64
	invals   atomic.Int64
	breaks   atomic.Int64

	journal *obs.Journal
}

// UseJournal makes the holder record a lease.break event whenever its
// leases drop (stream loss, ErrNoMethod peer). Call before Start.
func (ls *LeaseState) UseJournal(j *obs.Journal) { ls.journal = j }

// NewLeaseState creates a lease holder for collections on the directory
// node dir. The named collections are acquired at Start; more join
// on-demand via Track.
func NewLeaseState(client *Client, dir netsim.NodeID, colls ...string) *LeaseState {
	ls := &LeaseState{
		client: client,
		dir:    dir,
		wake:   make(chan struct{}, 1),
		leases: make(map[string]leaseEntry),
		want:   make(map[string]struct{}, len(colls)),
	}
	for _, coll := range colls {
		ls.want[coll] = struct{}{}
	}
	return ls
}

// Dir reports the directory node this state leases against.
func (ls *LeaseState) Dir() netsim.NodeID { return ls.dir }

// Start opens the Watch stream and acquires the initial leases. It is
// the ordering-sensitive half of the protocol: the stream must exist
// before the first grant, so no invalidation can fall between them.
// A peer that predates leases, or a transport that cannot stream,
// leaves the state inactive (reads run leaseless) and Start returns
// nil; only transport-level failures are reported as errors.
func (ls *LeaseState) Start(ctx context.Context) error {
	ls.mu.Lock()
	if ls.started {
		ls.mu.Unlock()
		return errors.New("repo: lease state already started")
	}
	ls.started = true
	ls.mu.Unlock()
	ls.ctx, ls.cancel = context.WithCancel(ctx)

	out, _, err := ls.client.bus.Call(ls.ctx, ls.client.node, ls.dir, MethodWatch, WatchReq{})
	if err != nil {
		ls.reset()
		if errors.Is(err, rpc.ErrNoMethod) {
			// Old peer: no watch, no leases, no error — the degradation
			// ladder's bottom rung.
			return nil
		}
		return err
	}
	st, ok := out.(rpc.Streamer)
	if !ok {
		// A transport that materialized the watch would have errored
		// above; an unexpected body means the same thing — run leaseless.
		ls.reset()
		return nil
	}

	ls.mu.Lock()
	ls.active = true
	ls.mu.Unlock()

	ls.wg.Add(1)
	go ls.consume(st)
	ls.wg.Add(1)
	go ls.renewLoop()

	// First acquisition is synchronous so callers observe held leases
	// when Start returns.
	ls.acquire()
	return nil
}

// reset marks the state re-startable after a failed or degraded Start.
func (ls *LeaseState) reset() {
	ls.cancel()
	ls.mu.Lock()
	ls.started = false
	ls.mu.Unlock()
}

// Stop cancels the stream and waits out the background goroutines. The
// state can be Started again.
func (ls *LeaseState) Stop() {
	ls.mu.Lock()
	if !ls.started {
		ls.mu.Unlock()
		return
	}
	ls.mu.Unlock()
	ls.cancel()
	ls.wg.Wait()
	ls.mu.Lock()
	ls.started = false
	ls.mu.Unlock()
}

// consume applies pushed invalidations until the stream ends, then
// breaks every held lease: a vanished stream means pushes may have been
// lost, so the leases are no longer trustworthy.
func (ls *LeaseState) consume(st rpc.Streamer) {
	defer ls.wg.Done()
	for {
		chunk, ok := st.Next()
		if !ok {
			break
		}
		inv, ok := chunk.(Invalidation)
		if !ok {
			continue
		}
		ls.apply(inv)
	}
	ls.breakAll()
}

// apply folds one pushed invalidation: the lease survives, its certified
// version advances, and the next read that consults it revalidates
// conditionally (one RPC) before lease-serving resumes.
func (ls *LeaseState) apply(inv Invalidation) {
	now := time.Now()
	ls.mu.Lock()
	if e, ok := ls.leases[inv.Coll]; ok && inv.Version > e.version {
		e.version = inv.Version
		e.confirmed = now
		ls.leases[inv.Coll] = e
	}
	ls.mu.Unlock()
	ls.invals.Add(1)
}

// breakAll drops every lease (stream gone ⇒ pushes may be lost) and
// queues the collections for re-acquisition on a future Start.
func (ls *LeaseState) breakAll() {
	ls.mu.Lock()
	n := len(ls.leases)
	colls := make([]string, 0, n)
	for coll := range ls.leases {
		ls.want[coll] = struct{}{}
		delete(ls.leases, coll)
		colls = append(colls, coll)
	}
	ls.active = false
	ls.mu.Unlock()
	ls.breaks.Add(int64(n))
	for _, coll := range colls {
		ls.journal.Record(obs.Event{
			Type: obs.EvLeaseBreak, Node: string(ls.dir), Collection: coll,
			Detail: "watch stream lost; lease dropped pending re-acquisition",
		})
	}
}

// renewLoop re-grants held leases at half TTL — the client-side clock
// that keeps a read-only holder leased (server-side piggyback renewal
// only helps holders that still make calls) — and picks up Tracked
// collections.
func (ls *LeaseState) renewLoop() {
	defer ls.wg.Done()
	for {
		ls.mu.Lock()
		ttl := ls.ttl
		ls.mu.Unlock()
		if ttl <= 0 {
			ttl = DefaultLeaseTTL
		}
		t := time.NewTimer(ttl / 2)
		select {
		case <-ls.ctx.Done():
			t.Stop()
			return
		case <-ls.wake:
			t.Stop()
		case <-t.C:
		}
		ls.acquire()
	}
}

// acquire grants (or renews) every wanted and held lease in one Lease
// RPC. Failures are left for the next renewal tick; an ErrNoMethod peer
// deactivates leasing outright.
func (ls *LeaseState) acquire() {
	ls.mu.Lock()
	if !ls.active {
		ls.mu.Unlock()
		return
	}
	colls := make([]string, 0, len(ls.want)+len(ls.leases))
	for coll := range ls.want {
		colls = append(colls, coll)
	}
	for coll := range ls.leases {
		if _, ok := ls.want[coll]; !ok {
			colls = append(colls, coll)
		}
	}
	ls.mu.Unlock()
	if len(colls) == 0 {
		return
	}

	// The expiry clock starts before the request goes out: the server
	// measures its TTL from grant time, which is strictly later, so a
	// client that stops believing at asked+TTL can never outlive the
	// server's own bookkeeping — a push dropped after the server reaps
	// is then provably a push the client no longer relies on.
	asked := time.Now()
	grant, err := rpc.Invoke[LeaseGrant](ls.ctx, ls.client.bus, ls.client.node, ls.dir, MethodLease, LeaseReq{Colls: colls})
	if err != nil {
		if errors.Is(err, rpc.ErrNoMethod) {
			ls.breakAll()
		}
		return
	}
	now := asked
	expiry := asked.Add(grant.TTL)
	ls.mu.Lock()
	ls.ttl = grant.TTL
	for _, coll := range colls {
		v, granted := grant.Versions[coll]
		if !granted {
			// Unknown collection: drop it rather than re-asking every
			// tick; a later Track re-queues it.
			delete(ls.want, coll)
			continue
		}
		e, held := ls.leases[coll]
		if !held {
			ls.grants.Add(1)
			e = leaseEntry{version: v, confirmed: now}
		} else {
			ls.renewals.Add(1)
		}
		if v > e.version {
			e.version = v
			e.confirmed = now
		}
		e.expiry = expiry
		ls.leases[coll] = e
		delete(ls.want, coll)
	}
	ls.mu.Unlock()
}

// Track queues a collection for lease acquisition. It is cheap and
// non-blocking — the hot path calls it once per run — and a no-op for
// collections already leased or queued.
func (ls *LeaseState) Track(coll string) {
	ls.mu.Lock()
	_, held := ls.leases[coll]
	_, queued := ls.want[coll]
	if held || queued {
		ls.mu.Unlock()
		return
	}
	ls.want[coll] = struct{}{}
	ls.mu.Unlock()
	select {
	case ls.wake <- struct{}{}:
	default:
	}
}

// Serveable reports whether a read of coll may skip revalidation: ok
// means a live stream and an unexpired lease, version is the latest
// listing version the server certified (grant or push), and age is the
// time since that certification — the staleness bound a lease-served
// read carries into the weakness report. The caller still compares
// version against its own cached listing version; a pushed bump makes
// that comparison fail, which is exactly the conditional-revalidate
// fallback.
func (ls *LeaseState) Serveable(coll string) (version uint64, age time.Duration, ok bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	// Clock the read under the lock: confirmed/expiry are stamped under
	// this same lock, so the age can never come out negative even when a
	// push lands between a caller's clock read and its lock acquisition.
	now := time.Now()
	if !ls.active {
		return 0, 0, false
	}
	e, held := ls.leases[coll]
	if !held || !e.expiry.After(now) {
		return 0, 0, false
	}
	return e.version, now.Sub(e.confirmed), true
}

// Stats snapshots the lease counters.
func (ls *LeaseState) Stats() LeaseStats {
	ls.mu.Lock()
	active, held := ls.active, len(ls.leases)
	ls.mu.Unlock()
	return LeaseStats{
		Active:        active,
		Held:          held,
		Grants:        ls.grants.Load(),
		Renewals:      ls.renewals.Load(),
		Invalidations: ls.invals.Load(),
		Breaks:        ls.breaks.Load(),
	}
}
