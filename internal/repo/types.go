// Package repo implements the distributed object repository over which weak
// sets are defined: "a file system is a special kind of persistent object
// repository where files are objects and directories are collections"
// (§1.2). Objects live on individual nodes; a collection is itself an
// object, held on one node (optionally replicated), whose members may
// reside on entirely different nodes — which is exactly the situation in
// which an accessible collection can contain inaccessible members (§2.1,
// Fig. 2).
//
// The repository also provides the mechanisms the paper says the stronger
// semantics need:
//
//   - pins: atomic membership snapshots for the Fig. 4 "loss of mutations"
//     semantics;
//   - grow tokens: deletion deferral with "ghost" copies garbage-collected
//     on iterator termination, for the Fig. 5 grow-only semantics (§3.3);
//   - lazy replication of collections, so reads can observe stale
//     membership ("cached data may be stale", §3).
package repo

import (
	"weaksets/internal/store"
)

// The repository's data model lives in internal/store (the storage
// engine); these aliases keep repo.Ref and friends working everywhere.

// ObjectID names an object uniquely across the whole repository.
type ObjectID = store.ObjectID

// Ref locates an object: its ID plus the node that stores it.
type Ref = store.Ref

// Object is a stored value. Attrs carry queryable metadata (e.g.
// cuisine=chinese for the restaurant scenario).
type Object = store.Object

// Errors reported by repository servers, re-exported from the storage
// engine. They are application-level: they travel back over a successful
// RPC and do not satisfy netsim.IsFailure.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = store.ErrNotFound
	// ErrNoCollection reports an unknown collection name.
	ErrNoCollection = store.ErrNoCollection
	// ErrCollectionExists reports a duplicate CreateCollection.
	ErrCollectionExists = store.ErrCollectionExists
	// ErrBadPin reports an unknown pin handle.
	ErrBadPin = store.ErrBadPin
	// ErrBadToken reports an unknown grow token.
	ErrBadToken = store.ErrBadToken
)

// The RPC method names and wire structs live in wire.go; their compact
// wirebin marshalers (the negotiated hot-path codec, DESIGN.md §11) live
// in wirebin.go.
