package repo

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCachePutGetLRU(t *testing.T) {
	c := NewCache(2)
	c.Put(Object{ID: "a", Data: []byte("1")})
	c.Put(Object{ID: "b", Data: []byte("2")})
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put(Object{ID: "c", Data: []byte("3")})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	st := c.Stats()
	if st.Stores != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(4)
	c.Put(Object{ID: "a", Data: []byte("old")})
	c.Put(Object{ID: "a", Data: []byte("new")})
	got, ok := c.Get("a")
	if !ok || string(got.Data) != "new" {
		t.Fatalf("got %v %q", ok, got.Data)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheClonesEntries(t *testing.T) {
	c := NewCache(2)
	obj := Object{ID: "a", Data: []byte("abc")}
	c.Put(obj)
	obj.Data[0] = 'X'
	got, _ := c.Get("a")
	if string(got.Data) != "abc" {
		t.Fatal("cache aliased the stored object")
	}
	got.Data[0] = 'Y'
	again, _ := c.Get("a")
	if string(again.Data) != "abc" {
		t.Fatal("cache aliased the returned object")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put(Object{ID: "a"})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestGetThrough(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "obj", "payload")
	cache := NewCache(8)

	// Healthy: fetch succeeds and warms the cache.
	obj, stale, err := cache.GetThrough(ctx, w.client, ref)
	if err != nil || stale {
		t.Fatalf("obj=%v stale=%v err=%v", obj, stale, err)
	}
	if cache.Len() != 1 {
		t.Fatal("fetch did not warm the cache")
	}

	// Disconnected: the cached copy is served, marked stale.
	w.net.Isolate("s1")
	obj, stale, err = cache.GetThrough(ctx, w.client, ref)
	if err != nil {
		t.Fatalf("disconnected serve failed: %v", err)
	}
	if !stale || string(obj.Data) != "payload" {
		t.Fatalf("obj=%q stale=%v", obj.Data, stale)
	}

	// Disconnected miss: error propagates.
	cold := Ref{ID: "never-fetched", Node: "s1"}
	if _, _, err := cache.GetThrough(ctx, w.client, cold); err == nil {
		t.Fatal("cold disconnected fetch succeeded")
	}
	st := cache.Stats()
	if st.StaleServes != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetThroughDoesNotResurrectDeleted(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "gone", "x")
	cache := NewCache(8)
	if _, _, err := cache.GetThrough(ctx, w.client, ref); err != nil {
		t.Fatal(err)
	}
	if err := w.client.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	// The node is reachable and reports NotFound: the cache must not mask
	// the deletion.
	if _, _, err := cache.GetThrough(ctx, w.client, ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				id := ObjectID(fmt.Sprintf("o%d", (g*7+i)%32))
				c.Put(Object{ID: id, Data: []byte{byte(i)}})
				c.Get(id)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
