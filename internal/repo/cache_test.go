package repo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCachePutGetLRU(t *testing.T) {
	c := NewCache(2)
	c.Put(Object{ID: "a", Data: []byte("1")})
	c.Put(Object{ID: "b", Data: []byte("2")})
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put(Object{ID: "c", Data: []byte("3")})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	st := c.Stats()
	if st.Stores != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(4)
	c.Put(Object{ID: "a", Data: []byte("old")})
	c.Put(Object{ID: "a", Data: []byte("new")})
	got, ok := c.Get("a")
	if !ok || string(got.Data) != "new" {
		t.Fatalf("got %v %q", ok, got.Data)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheClonesEntries(t *testing.T) {
	c := NewCache(2)
	obj := Object{ID: "a", Data: []byte("abc")}
	c.Put(obj)
	obj.Data[0] = 'X'
	got, _ := c.Get("a")
	if string(got.Data) != "abc" {
		t.Fatal("cache aliased the stored object")
	}
	got.Data[0] = 'Y'
	again, _ := c.Get("a")
	if string(again.Data) != "abc" {
		t.Fatal("cache aliased the returned object")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put(Object{ID: "a"})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCachePutVersionAware(t *testing.T) {
	c := NewCache(4)
	c.Put(Object{ID: "a", Version: 2, Data: []byte("v2")})
	// A slow fetch completing late must not clobber the newer copy.
	c.Put(Object{ID: "a", Version: 1, Data: []byte("v1")})
	got, ok := c.Get("a")
	if !ok || string(got.Data) != "v2" || got.Version != 2 {
		t.Fatalf("got %v %q v%d", ok, got.Data, got.Version)
	}
	// Equal or newer versions still update in place.
	c.Put(Object{ID: "a", Version: 3, Data: []byte("v3")})
	if got, _ := c.Get("a"); string(got.Data) != "v3" {
		t.Fatalf("newer put ignored: %q", got.Data)
	}
	if st := c.Stats(); st.Stores != 1 {
		t.Fatalf("in-place updates counted as stores: %+v", st)
	}
}

func TestCacheServeFreshStamps(t *testing.T) {
	c := NewCache(4)
	obj := Object{ID: "a", Version: 7, Data: []byte("data")}
	c.PutValidated("coll", 5, obj)

	// Runs at or below the stamp serve with no RPC.
	got, neg, ok := c.ServeFresh("coll", 5, "a")
	if !ok || neg || string(got.Data) != "data" {
		t.Fatalf("serve at stamp: ok=%v neg=%v data=%q", ok, neg, got.Data)
	}
	if _, _, ok := c.ServeFresh("coll", 3, "a"); !ok {
		t.Fatal("older listing image refused a newer entry")
	}
	// A newer listing image must revalidate.
	if _, _, ok := c.ServeFresh("coll", 6, "a"); ok {
		t.Fatal("served past the stamp")
	}
	// Another collection has no stamp for this entry.
	if _, _, ok := c.ServeFresh("other", 1, "a"); ok {
		t.Fatal("served under a collection that never observed the entry")
	}
	// A zero governing version can never prove freshness.
	if _, _, ok := c.ServeFresh("coll", 0, "a"); ok {
		t.Fatal("served with no governing listing version")
	}

	// NotModified advances the stamp; the same image then serves directly.
	if _, ok := c.MarkValidated("coll", 6, "a"); !ok {
		t.Fatal("MarkValidated refused a live entry")
	}
	if _, _, ok := c.ServeFresh("coll", 6, "a"); !ok {
		t.Fatal("stamp did not advance after validation")
	}

	st := c.Stats()
	if st.Hits != 3 || st.ValidatedHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := int64(4 * len(obj.Data)); st.BytesSaved != want {
		t.Fatalf("bytesSaved = %d, want %d", st.BytesSaved, want)
	}
	if _, ok := c.MarkValidated("coll", 6, "never-cached"); ok {
		t.Fatal("validated an entry that is not cached")
	}
}

func TestCacheNegativeEntries(t *testing.T) {
	c := NewCache(4)
	c.PutNegative("coll", 5, "ghost")

	// A fresh negative entry answers "missing" with no round trip.
	_, neg, ok := c.ServeFresh("coll", 5, "ghost")
	if !ok || !neg {
		t.Fatalf("negative serve: ok=%v neg=%v", ok, neg)
	}
	// Past the stamp it must revalidate like any entry.
	if _, _, ok := c.ServeFresh("coll", 6, "ghost"); ok {
		t.Fatal("negative entry served past its stamp")
	}
	// Plain Get wants data, not a membership verdict.
	if _, ok := c.Get("ghost"); ok {
		t.Fatal("Get answered from a negative entry")
	}
	if _, ok := c.Version("ghost"); ok {
		t.Fatal("negative entry offered a version to validate")
	}
	if _, ok := c.MarkValidated("coll", 6, "ghost"); ok {
		t.Fatal("MarkValidated treated a negative entry as data")
	}

	// A missing report older than the cached validation must not win.
	c.PutValidated("coll", 8, Object{ID: "live", Version: 2, Data: []byte("x")})
	c.PutNegative("coll", 7, "live")
	if _, neg, ok := c.ServeFresh("coll", 8, "live"); !ok || neg {
		t.Fatalf("older missing report downgraded a newer entry: ok=%v neg=%v", ok, neg)
	}
	// A newer missing report does win, and a later resurrection wins again.
	c.PutNegative("coll", 9, "live")
	if _, neg, _ := c.ServeFresh("coll", 9, "live"); !neg {
		t.Fatal("newer missing report ignored")
	}
	c.PutValidated("coll", 10, Object{ID: "live", Version: 3, Data: []byte("y")})
	got, neg, ok := c.ServeFresh("coll", 10, "live")
	if !ok || neg || string(got.Data) != "y" {
		t.Fatalf("resurrected entry: ok=%v neg=%v data=%q", ok, neg, got.Data)
	}

	if st := c.Stats(); st.NegativeHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDoCoalesces(t *testing.T) {
	c := NewCache(4)
	const callers = 8
	var executions atomic.Int64
	gate := make(chan struct{})
	results := make(chan int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := c.Do("key", func() any {
				executions.Add(1)
				<-gate // hold the flight open until every caller has arrived
				return 42
			})
			results <- v.(int)
		}()
	}
	// Wait until the leader is inside fn, then give joiners time to queue.
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(results)
	for v := range results {
		if v != 42 {
			t.Fatalf("joiner got %d", v)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn ran %d times", n)
	}
	// Everyone but the leader joined the flight.
	if st := c.Stats(); st.Coalesces != callers-1 {
		t.Fatalf("coalesces = %d, want %d", st.Coalesces, callers-1)
	}
	// Distinct keys do not coalesce.
	if _, shared := c.Do("other", func() any { return 1 }); shared {
		t.Fatal("fresh key reported shared")
	}
}

func TestGetThrough(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "obj", "payload")
	cache := NewCache(8)

	// Healthy: fetch succeeds and warms the cache.
	obj, stale, err := cache.GetThrough(ctx, w.client, ref)
	if err != nil || stale {
		t.Fatalf("obj=%v stale=%v err=%v", obj, stale, err)
	}
	if cache.Len() != 1 {
		t.Fatal("fetch did not warm the cache")
	}

	// Disconnected: the cached copy is served, marked stale.
	w.net.Isolate("s1")
	obj, stale, err = cache.GetThrough(ctx, w.client, ref)
	if err != nil {
		t.Fatalf("disconnected serve failed: %v", err)
	}
	if !stale || string(obj.Data) != "payload" {
		t.Fatalf("obj=%q stale=%v", obj.Data, stale)
	}

	// Disconnected miss: error propagates.
	cold := Ref{ID: "never-fetched", Node: "s1"}
	if _, _, err := cache.GetThrough(ctx, w.client, cold); err == nil {
		t.Fatal("cold disconnected fetch succeeded")
	}
	st := cache.Stats()
	if st.StaleServes != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetThroughDoesNotResurrectDeleted(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "gone", "x")
	cache := NewCache(8)
	if _, _, err := cache.GetThrough(ctx, w.client, ref); err != nil {
		t.Fatal(err)
	}
	if err := w.client.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	// The node is reachable and reports NotFound: the cache must not mask
	// the deletion.
	if _, _, err := cache.GetThrough(ctx, w.client, ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				id := ObjectID(fmt.Sprintf("o%d", (g*7+i)%32))
				c.Put(Object{ID: id, Data: []byte{byte(i)}})
				c.Get(id)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
