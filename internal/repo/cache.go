package repo

import (
	"container/list"
	"context"
	"sync"

	"weaksets/internal/netsim"
)

// The paper's target environment is "a network of (possibly mobile)
// workstations" where "disconnecting a mobile client from the network
// while traveling is an induced failure" (§1.1), and it notes an iterator
// "might keep a cached version" of the set (§3). Cache is that cached
// version for element data: an LRU of fetched objects that can answer when
// the owner is unreachable — the disconnected-operation move of the Coda
// work this paper grew out of. Serving a cached copy of an unreachable
// element is *weaker than Fig. 6* (which only yields reachable elements),
// so the weak-set iterators never use it implicitly; dynamic sets offer it
// as an explicit opt-in (DynOptions.FallbackCache), delivering such
// elements marked Stale.

// CacheStats counts cache activity.
type CacheStats struct {
	// Stores counts successful fetches written into the cache.
	Stores int64
	// StaleServes counts unreachable fetches answered from the cache.
	StaleServes int64
	// Misses counts unreachable fetches the cache could not answer.
	Misses int64
	// Evictions counts entries dropped by the capacity bound.
	Evictions int64
}

// Cache is a bounded LRU of fetched objects, safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[ObjectID]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats
}

type cacheEntry struct {
	id  ObjectID
	obj Object
}

// NewCache creates a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[ObjectID]*list.Element, capacity),
		order:   list.New(),
	}
}

// Put stores a fetched object, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(obj Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[obj.ID]; ok {
		el.Value = cacheEntry{id: obj.ID, obj: obj.Clone()}
		c.order.MoveToFront(el)
		return
	}
	c.entries[obj.ID] = c.order.PushFront(cacheEntry{id: obj.ID, obj: obj.Clone()})
	c.stats.Stores++
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		entry, ok := oldest.Value.(cacheEntry)
		if ok {
			delete(c.entries, entry.id)
		}
		c.stats.Evictions++
	}
}

// Get returns the cached copy of id, if any, marking it recently used.
func (c *Cache) Get(id ObjectID) (Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return Object{}, false
	}
	c.order.MoveToFront(el)
	entry, ok := el.Value.(cacheEntry)
	if !ok {
		return Object{}, false
	}
	return entry.obj.Clone(), true
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) countStale() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.StaleServes++
}

func (c *Cache) countMiss() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
}

// GetThrough fetches ref through client, keeping the cache warm: a
// successful fetch is stored; a transport failure is answered from the
// cache when possible (served=true, stale=true) and otherwise returns the
// original error. Application errors (e.g. ErrNotFound) pass through —
// a deleted object must not be resurrected from cache.
func (c *Cache) GetThrough(ctx context.Context, client *Client, ref Ref) (obj Object, stale bool, err error) {
	obj, err = client.Get(ctx, ref)
	switch {
	case err == nil:
		c.Put(obj)
		return obj, false, nil
	case netsim.IsFailure(err):
		if cached, ok := c.Get(ref.ID); ok {
			c.countStale()
			return cached, true, nil
		}
		c.countMiss()
		return Object{}, false, err
	default:
		return Object{}, false, err
	}
}
