package repo

import (
	"container/list"
	"context"
	"sync"

	"weaksets/internal/netsim"
)

// The paper's target environment is "a network of (possibly mobile)
// workstations" where "disconnecting a mobile client from the network
// while traveling is an induced failure" (§1.1), and it notes an iterator
// "might keep a cached version" of the set (§3). Cache is that cached
// version for element data, in two roles:
//
//   - A coherent, version-validated read-through cache on the elements
//     hot path. Entries carry the object version plus, per collection, the
//     listing version they were last fetched or validated under. Snapshot
//     runs pinned at or below that stamp serve the entry with no RPC at
//     all; current-state runs revalidate by shipping only the known
//     version (GetBatchReq.Known) and get a compact NotModified back.
//     Ghosts and tombstones are cached negatively, so a missing member
//     stops costing a round trip until the listing moves.
//   - An LRU fallback that can answer when the owner is unreachable — the
//     disconnected-operation move of the Coda work this paper grew out
//     of. Serving a cached copy of an unreachable element is *weaker than
//     Fig. 6* (which only yields reachable elements), so the weak-set
//     iterators never use it implicitly; dynamic sets offer it as an
//     explicit opt-in (DynOptions.FallbackCache), delivering such
//     elements marked Stale.
//
// Both roles share one singleflight group, so N concurrent iterators (or
// fallback fetchers) missing on the same data produce one upstream round
// trip.

// CacheStats counts cache activity.
type CacheStats struct {
	// Stores counts new entries written into the cache.
	Stores int64 `json:"stores"`
	// Hits counts elements served directly from a fresh entry with no
	// RPC at all (snapshot runs at or below the entry's stamp).
	Hits int64 `json:"hits"`
	// ValidatedHits counts elements served from cache after the server
	// confirmed the version via NotModified.
	ValidatedHits int64 `json:"validated_hits"`
	// NegativeHits counts missing members answered from a negative entry
	// without a round trip.
	NegativeHits int64 `json:"negative_hits"`
	// BytesSaved totals the payload bytes direct and validated hits kept
	// off the wire.
	BytesSaved int64 `json:"bytes_saved"`
	// Coalesces counts callers that joined another caller's in-flight
	// fetch instead of issuing their own.
	Coalesces int64 `json:"coalesces"`
	// StaleServes counts unreachable fetches answered from the cache.
	StaleServes int64 `json:"stale_serves"`
	// Misses counts unreachable fetches the cache could not answer.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the capacity bound.
	Evictions int64 `json:"evictions"`
	// Drops counts entries invalidated explicitly (the attached client
	// deleted the object).
	Drops int64 `json:"drops"`
}

// Cache is a bounded LRU of fetched objects, safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[ObjectID]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats

	fmu     sync.Mutex
	flights map[string]*flight
}

type cacheEntry struct {
	id  ObjectID
	obj Object
	// negative marks a member the owner reported missing (ghost or
	// tombstone); it answers "missing" without a round trip while fresh.
	negative bool
	// seen maps collection name → the listing version this entry was
	// last fetched or validated under through that collection's elements
	// path. A run governed by listing version v may serve the entry
	// without revalidation iff seen[coll] >= v: the entry is at least as
	// new as the membership image driving the run.
	seen map[string]uint64
}

// NewCache creates a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[ObjectID]*list.Element, capacity),
		order:   list.New(),
		flights: make(map[string]*flight),
	}
}

// Put stores a fetched object, evicting the least recently used entry when
// over capacity. It is version-aware: an older object never overwrites a
// newer cached one, so a slow fetch completing after a faster refetch
// cannot write back stale data.
func (c *Cache) Put(obj Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(obj, "", 0)
}

// putLocked is the shared insert/update path. A non-empty coll stamps the
// entry as observed under that collection's listing version listVer.
func (c *Cache) putLocked(obj Object, coll string, listVer uint64) {
	if el, ok := c.entries[obj.ID]; ok {
		e := el.Value.(*cacheEntry)
		if !e.negative && obj.Version < e.obj.Version {
			// A newer copy is already cached; the incoming object is a
			// stale read completing late. Keep the newer data and leave
			// the stamps alone.
			return
		}
		e.obj = obj.Clone()
		e.negative = false
		c.stampLocked(e, coll, listVer)
		c.order.MoveToFront(el)
		return
	}
	e := &cacheEntry{id: obj.ID, obj: obj.Clone()}
	c.stampLocked(e, coll, listVer)
	c.entries[obj.ID] = c.order.PushFront(e)
	c.stats.Stores++
	c.evictLocked()
}

func (c *Cache) stampLocked(e *cacheEntry, coll string, listVer uint64) {
	if coll == "" {
		return
	}
	if e.seen == nil {
		e.seen = make(map[string]uint64, 1)
	}
	if listVer > e.seen[coll] {
		e.seen[coll] = listVer
	}
}

func (c *Cache) evictLocked() {
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		if e, ok := oldest.Value.(*cacheEntry); ok {
			delete(c.entries, e.id)
		}
		c.stats.Evictions++
	}
}

// PutValidated stores an object the server just shipped for a run over
// coll governed by listing version listVer, stamping it fresh for that
// image.
func (c *Cache) PutValidated(coll string, listVer uint64, obj Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(obj, coll, listVer)
}

// PutNegative records that the owner reported id missing during a run
// over coll governed by listing version listVer. The negative entry
// answers "missing" for runs at or below that stamp; it never downgrades
// an entry already validated at the same or a newer stamp.
func (c *Cache) PutNegative(coll string, listVer uint64, id ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		if !e.negative && e.seen[coll] >= listVer {
			// The positive copy was observed at least as recently; the
			// missing report is the older observation.
			return
		}
		e.negative = true
		e.obj = Object{ID: id}
		c.stampLocked(e, coll, listVer)
		c.order.MoveToFront(el)
		return
	}
	e := &cacheEntry{id: id, obj: Object{ID: id}, negative: true}
	c.stampLocked(e, coll, listVer)
	c.entries[id] = c.order.PushFront(e)
	c.stats.Stores++
	c.evictLocked()
}

// ServeFresh serves id directly from cache for a run over coll governed
// by listing version atVer, with no RPC: it succeeds only when the entry
// was fetched or validated under that listing image (stamp >= atVer).
// negative reports a fresh missing member. ok=false means the caller
// must go to the owner.
func (c *Cache) ServeFresh(coll string, atVer uint64, id ObjectID) (obj Object, negative, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[id]
	if !found || atVer == 0 {
		return Object{}, false, false
	}
	e := el.Value.(*cacheEntry)
	if e.seen[coll] < atVer {
		return Object{}, false, false
	}
	c.order.MoveToFront(el)
	if e.negative {
		c.stats.NegativeHits++
		return Object{}, true, true
	}
	c.stats.Hits++
	c.stats.BytesSaved += int64(len(e.obj.Data))
	return e.obj.Clone(), false, true
}

// Version reports the cached version of id, used to build a conditional
// fetch's Known map. Negative entries carry no version to validate.
func (c *Cache) Version(id ObjectID) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.negative || e.obj.Version == 0 {
		return 0, false
	}
	c.order.MoveToFront(el)
	return e.obj.Version, true
}

// MarkValidated applies a NotModified answer: the server confirmed the
// cached version is current under coll's listing version listVer, so the
// stamp advances and the cached copy serves. ok=false means the entry
// was evicted while the request was in flight and the caller must
// refetch.
func (c *Cache) MarkValidated(coll string, listVer uint64, id ObjectID) (Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[id]
	if !found {
		return Object{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.negative {
		return Object{}, false
	}
	c.stampLocked(e, coll, listVer)
	c.order.MoveToFront(el)
	c.stats.ValidatedHits++
	c.stats.BytesSaved += int64(len(e.obj.Data))
	return e.obj.Clone(), true
}

// Drop invalidates id (the attached client deleted the object).
func (c *Cache) Drop(id ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return
	}
	c.order.Remove(el)
	delete(c.entries, id)
	c.stats.Drops++
}

// Get returns the cached copy of id, if any, marking it recently used.
// Negative entries don't answer: a plain Get wants data, not a
// membership verdict.
func (c *Cache) Get(id ObjectID) (Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return Object{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.negative {
		return Object{}, false
	}
	c.order.MoveToFront(el)
	return e.obj.Clone(), true
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) countStale() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.StaleServes++
}

func (c *Cache) countMiss() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
}

// flight is one in-flight coalesced fetch: the leader runs the work,
// joiners wait on done and share val.
type flight struct {
	done chan struct{}
	val  any
}

// Do coalesces concurrent calls sharing a key: the first caller runs fn;
// callers arriving while it runs block until it finishes and share its
// result. shared reports whether this caller joined another's flight.
// Keys must fully determine fn's result — node, ids and known versions
// for a batch — or a joiner could be handed the wrong answer.
func (c *Cache) Do(key string, fn func() any) (val any, shared bool) {
	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		<-f.done
		c.mu.Lock()
		c.stats.Coalesces++
		c.mu.Unlock()
		return f.val, true
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()
	defer func() {
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(f.done)
	}()
	f.val = fn()
	return f.val, false
}

// throughResult is what one coalesced GetThrough fetch resolved to.
type throughResult struct {
	obj           Object
	served        bool // obj is valid (fetched, or cached fallback)
	stale         bool // obj came from cache after a transport failure
	transportMiss bool // transport failure and nothing cached
	err           error
}

// GetThrough fetches ref through client, keeping the cache warm: a
// successful fetch is stored; a transport failure is answered from the
// cache when possible (served=true, stale=true) and otherwise returns the
// original error. Application errors (e.g. ErrNotFound) pass through —
// a deleted object must not be resurrected from cache. Concurrent calls
// for the same ref coalesce into one upstream RPC.
func (c *Cache) GetThrough(ctx context.Context, client *Client, ref Ref) (obj Object, stale bool, err error) {
	v, _ := c.Do("through|"+string(ref.Node)+"|"+string(ref.ID), func() any {
		obj, err := client.Get(ctx, ref)
		switch {
		case err == nil:
			c.Put(obj)
			return throughResult{obj: obj, served: true}
		case netsim.IsFailure(err):
			if cached, ok := c.Get(ref.ID); ok {
				return throughResult{obj: cached, served: true, stale: true}
			}
			return throughResult{transportMiss: true, err: err}
		default:
			return throughResult{err: err}
		}
	})
	res := v.(throughResult)
	// Stale/miss accounting is per caller, so coalesced attempts still
	// add up: every unreachable attempt is either a stale serve or a
	// miss.
	switch {
	case res.served && res.stale:
		c.countStale()
		return res.obj.Clone(), true, nil
	case res.served:
		return res.obj.Clone(), false, nil
	case res.transportMiss:
		c.countMiss()
		return Object{}, false, res.err
	default:
		return Object{}, false, res.err
	}
}
