//go:build !race

package repo

// raceEnabled reports whether the race detector instruments this build;
// the alloc-budget guard skips itself under -race, where allocation
// counts include instrumentation overhead.
const raceEnabled = false
