package repo

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/rpc"
	"weaksets/internal/store"
)

// Server is one node's repository: a storage engine plus the RPC surface
// over it. The engine (internal/store) owns all object and collection
// state — membership, pins, ghosts, grow tokens — while the server owns
// only the network side: request decoding, replication pushes, and
// remote deletes.
type Server struct {
	bus     *rpc.Bus
	node    netsim.NodeID
	rpc     *rpc.Server
	store   store.Store
	tracer  *obs.Tracer
	journal *obs.Journal
	leases  *leaseHub
	ae      *syncer

	// lastSync tracks, per collection this node replicates, when the
	// home last pushed a sync here (map[string]time.Time) — the staleness
	// age a SyncDigest reports.
	lastSync sync.Map

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates and registers a repository server on node, backed by
// the default sharded storage engine. The node must already exist in the
// bus's network.
func NewServer(bus *rpc.Bus, node netsim.NodeID) (*Server, error) {
	return NewServerWithStore(bus, node, store.NewSharded(store.Config{}))
}

// NewServerWithStore creates a repository server over a caller-supplied
// storage engine.
func NewServerWithStore(bus *rpc.Bus, node netsim.NodeID, st store.Store) (*Server, error) {
	s := &Server{
		bus:    bus,
		node:   node,
		rpc:    rpc.NewServer(node),
		store:  st,
		leases: newLeaseHub(DefaultLeaseTTL),
		closed: make(chan struct{}),
	}
	s.ae = newSyncer(s)
	s.register()
	st.OnListingChange(s.leases.invalidate)
	if err := bus.Register(s.rpc); err != nil {
		return nil, fmt.Errorf("repo server %s: %w", node, err)
	}
	return s, nil
}

// Node reports the node this server runs on.
func (s *Server) Node() netsim.NodeID { return s.node }

// Store exposes the server's storage engine (stats, tests).
func (s *Server) Store() store.Store { return s.store }

// UseTracer makes the server record a span per store operation served,
// joined to the caller's propagated trace (join-only: untraced requests
// cost nothing). Set it before traffic starts; it is not synchronized.
func (s *Server) UseTracer(t *obs.Tracer) { s.tracer = t }

// UseJournal makes the server record coordination-plane events — lease
// grants and ghost reclamation — into the given bounded journal. Call
// before serving traffic.
func (s *Server) UseJournal(j *obs.Journal) { s.journal = j }

// startOp opens the store-shard span for one served operation.
func (s *Server) startOp(ctx context.Context, name string) *obs.Span {
	_, sp := s.tracer.StartSpan(ctx, name)
	sp.SetAttr("node", string(s.node))
	return sp
}

// SetLeaseTTL changes the lease duration granted from now on (tests
// shorten it to exercise expiry).
func (s *Server) SetLeaseTTL(d time.Duration) { s.leases.ttl.Store(int64(d)) }

// Close stops background replication pushes, ends every watch stream,
// and waits for them to finish.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.leases.close()
	s.wg.Wait()
}

func (s *Server) register() {
	s.rpc.Handle(MethodGet, s.renewing(s.handleGet))
	s.rpc.Handle(MethodGetBatch, s.renewing(s.handleGetBatch))
	s.rpc.Handle(MethodPut, s.renewing(s.handlePut))
	s.rpc.Handle(MethodDelete, s.renewing(s.handleDelete))
	s.rpc.Handle(MethodCreate, s.renewing(s.handleCreate))
	s.rpc.Handle(MethodList, s.renewing(s.handleList))
	s.rpc.Handle(MethodListParts, s.renewing(s.handleListParts))
	s.rpc.Handle(MethodAdd, s.renewing(s.handleAdd))
	s.rpc.Handle(MethodRemove, s.renewing(s.handleRemove))
	s.rpc.Handle(MethodPin, s.renewing(s.handlePin))
	s.rpc.Handle(MethodUnpin, s.renewing(s.handleUnpin))
	s.rpc.Handle(MethodBeginGrow, s.renewing(s.handleBeginGrow))
	s.rpc.Handle(MethodEndGrow, s.renewing(s.handleEndGrow))
	s.rpc.Handle(MethodStats, s.renewing(s.handleStats))
	s.rpc.Handle(MethodStoreStats, s.renewing(s.handleStoreStats))
	s.rpc.Handle(MethodSync, s.renewing(s.handleSync))
	s.rpc.Handle(MethodSyncPart, s.renewing(s.handleSyncPart))
	s.rpc.Handle(MethodSyncDigest, s.renewing(s.handleSyncDigest))
	s.rpc.Handle(MethodLease, s.handleLease)
	s.rpc.Handle(MethodWatch, s.handleWatch)
}

// renewing wraps a handler with the piggyback lease renewal: any call a
// lease holder makes extends its unexpired leases by a fresh TTL.
func (s *Server) renewing(h rpc.Handler) rpc.Handler {
	return func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
		s.leases.touch(from)
		return h(ctx, from, req)
	}
}

func (s *Server) handleLease(ctx context.Context, from netsim.NodeID, req any) (any, error) {
	r, ok := req.(LeaseReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	grant := s.leases.grant(from, r.Colls, s.store)
	for _, coll := range r.Colls {
		s.journal.Record(obs.Event{
			Type: obs.EvLeaseGrant, Node: string(s.node), Collection: coll,
			Attrs: map[string]int64{"version": int64(grant.Versions[coll]), "ttlMs": grant.TTL.Milliseconds()},
		})
	}
	return grant, nil
}

// handleWatch opens the caller's invalidation stream. The returned
// Streamer lives until the handler context is cancelled (connection
// teardown on a real transport, caller cancellation in process), the
// server closes, or a newer Watch from the same caller supersedes it.
func (s *Server) handleWatch(ctx context.Context, from netsim.NodeID, req any) (any, error) {
	if _, ok := req.(WatchReq); !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	return s.leases.watch(ctx, from), nil
}

func (s *Server) handleGet(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(GetReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.get")
	obj, err := s.store.GetObject(r.ID)
	sp.End()
	if err != nil {
		return nil, err
	}
	return obj, nil
}

func (s *Server) handleGetBatch(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(GetBatchReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.getBatch")
	sp.SetInt("ids", int64(len(r.IDs)))
	sp.SetInt("known", int64(len(r.Known)))
	objs, notModified, missing := s.store.GetBatch(r.IDs, r.Known)
	sp.SetInt("notModified", int64(len(notModified)))
	sp.End()
	return GetBatchResp{Objects: objs, NotModified: notModified, Missing: missing}, nil
}

func (s *Server) handlePut(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(PutReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.put")
	v, err := s.store.PutObject(r.Obj)
	sp.End()
	if err != nil {
		return nil, err
	}
	return PutResp{Version: v}, nil
}

func (s *Server) handleDelete(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(DeleteReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	if err := s.store.DeleteObject(r.ID); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleCreate(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(CreateReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	if err := s.store.CreateCollection(r.Name); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleList(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(ListReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.list")
	defer sp.End()
	var (
		members []Ref
		version uint64
		err     error
	)
	if r.Pin != 0 {
		members, version, err = s.store.ListPinned(r.Name, r.Pin)
	} else {
		if r.IfVersion != 0 {
			// Version-gated read: skip copying and shipping the listing
			// when the client already holds the current version.
			v, verr := s.store.ListVersion(r.Name)
			if verr != nil {
				return nil, verr
			}
			if v == r.IfVersion {
				return ListResp{Version: v, NotModified: true}, nil
			}
		}
		members, version, err = s.store.List(r.Name)
	}
	if err != nil {
		return nil, err
	}
	return ListResp{Members: members, Version: version}, nil
}

// partStream serves a partitioned listing one partition at a time. Each
// Next takes the next partition's copy-on-write snapshot only when
// asked, so a streaming transport ships partition 0 while partition 1's
// snapshot has not been taken yet — writers that land in between are
// simply the per-partition skew the weak semantics already tolerate
// (and the WeaknessReport measures).
type partStream struct {
	store store.Store
	name  string
	total int
	// parts are the partition indices to serve, in order — all of them
	// for a whole-listing read, a subset for a replica-scattered one.
	parts []int
	gates []uint64
	// openVer is the collection version when the stream opened; a
	// partition whose version exceeds it was snapshotted after a write
	// landed mid-stream, and its frame is stamped Skewed so the client
	// can count the anomaly.
	openVer uint64
	next    int
	err     error
}

func (ps *partStream) Next() (any, bool) {
	if ps.err != nil || ps.next >= len(ps.parts) {
		return nil, false
	}
	part := ps.parts[ps.next]
	ps.next++
	var gate uint64
	if part < len(ps.gates) {
		gate = ps.gates[part]
	}
	members, version, notMod, err := ps.store.ListPart(ps.name, part, gate)
	if err != nil {
		ps.err = err
		return nil, false
	}
	return PartListing{
		Part:        part,
		Partitions:  ps.total,
		Members:     members,
		Version:     version,
		NotModified: notMod,
		Skewed:      version > ps.openVer,
	}, true
}

func (ps *partStream) Err() error { return ps.err }

func (ps *partStream) Materialize() (any, error) {
	resp := ListPartsResp{Parts: make([]PartListing, 0, len(ps.parts))}
	for {
		chunk, ok := ps.Next()
		if !ok {
			break
		}
		resp.Parts = append(resp.Parts, chunk.(PartListing))
	}
	if ps.err != nil {
		return nil, ps.err
	}
	return resp, nil
}

// sliceStream streams an already-materialized set of partition listings
// (the pinned path: the pin is one immutable snapshot, partitioned on
// the fly).
type sliceStream struct {
	parts []PartListing
	next  int
}

func (ss *sliceStream) Next() (any, bool) {
	if ss.next >= len(ss.parts) {
		return nil, false
	}
	p := ss.parts[ss.next]
	ss.next++
	return p, true
}

func (ss *sliceStream) Err() error { return nil }

func (ss *sliceStream) Materialize() (any, error) {
	return ListPartsResp{Parts: ss.parts}, nil
}

func (s *Server) handleListParts(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(ListPartsReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.listParts")
	defer sp.End()
	total, err := s.store.Partitions(r.Name)
	if err != nil {
		return nil, err
	}
	sp.SetInt("partitions", int64(total))
	want := r.Parts
	if len(want) == 0 {
		want = make([]int, total)
		for i := range want {
			want[i] = i
		}
	} else {
		for _, p := range want {
			if p < 0 || p >= total {
				return nil, fmt.Errorf("list %q partition %d of %d: %w", r.Name, p, total, store.ErrBadPartition)
			}
		}
	}

	var st rpc.Streamer
	if r.Pin != 0 {
		// A pin is one immutable snapshot; split it into `total`
		// contiguous ranges so the client's incremental machinery works
		// the same way it does on live partitions. Pins carry no
		// per-partition versions, so IfVersions does not apply.
		members, version, lerr := s.store.ListPinned(r.Name, r.Pin)
		if lerr != nil {
			return nil, lerr
		}
		parts := make([]PartListing, 0, len(want))
		for _, i := range want {
			lo, hi := i*len(members)/total, (i+1)*len(members)/total
			parts = append(parts, PartListing{Part: i, Partitions: total, Members: members[lo:hi], Version: version})
		}
		st = &sliceStream{parts: parts}
	} else {
		openVer, verr := s.store.ListVersion(r.Name)
		if verr != nil {
			return nil, verr
		}
		st = &partStream{store: s.store, name: r.Name, total: total, parts: want, gates: r.IfVersions, openVer: openVer}
	}
	if !r.Stream {
		return st.Materialize()
	}
	return st, nil
}

func (s *Server) handleAdd(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(AddReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.add")
	v, err := s.store.Add(r.Name, r.Ref)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.ae.kick(r.Name)
	return MutateResp{Version: v}, nil
}

func (s *Server) handleRemove(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(RemoveReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.remove")
	_, deferred, v, err := s.store.Remove(r.Name, r.ID)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.ae.kick(r.Name)
	return RemoveResp{Deferred: deferred, Version: v}, nil
}

func (s *Server) handlePin(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(PinReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	sp := s.startOp(ctx, "store.pin")
	pin, err := s.store.Pin(r.Name)
	sp.End()
	if err != nil {
		return nil, err
	}
	return PinResp{Pin: pin}, nil
}

func (s *Server) handleUnpin(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(UnpinReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	if err := s.store.Unpin(r.Name, r.Pin); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleBeginGrow(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(BeginGrowReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	token, err := s.store.BeginGrow(r.Name)
	if err != nil {
		return nil, err
	}
	return BeginGrowResp{Token: token}, nil
}

func (s *Server) handleEndGrow(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(EndGrowReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	reclaim, err := s.store.EndGrow(r.Name, r.Token)
	if err != nil {
		return nil, err
	}
	for _, ref := range reclaim {
		s.asyncDelete(ref)
	}
	if len(reclaim) > 0 {
		s.ae.kick(r.Name)
		s.journal.Record(obs.Event{
			Type: obs.EvGhostGC, Node: string(s.node), Collection: r.Name,
			Attrs: map[string]int64{"reclaimed": int64(len(reclaim))},
		})
	}
	return EndGrowResp{Reclaimed: len(reclaim)}, nil
}

func (s *Server) handleStats(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(StatsReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	c, err := s.store.CollStats(r.Name)
	if err != nil {
		return nil, err
	}
	return StatsResp{
		Members:    c.Members,
		Ghosts:     c.Ghosts,
		Pins:       c.Pins,
		Tokens:     c.Tokens,
		Version:    c.Version,
		Partitions: c.Partitions,
	}, nil
}

func (s *Server) handleStoreStats(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	if _, ok := req.(StoreStatsReq); !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	return StoreStatsResp{Stats: s.store.Stats()}, nil
}

// handleSync applies a replication push. Stale pushes (version <= last
// applied) are ignored, which is what makes replicas observably lag.
func (s *Server) handleSync(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(SyncReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	// Install replicated object data before exposing the membership that
	// lists it, so a reader landing between the two finds the data.
	for i := range r.Objects {
		s.store.InstallObject(r.Objects[i])
	}
	s.store.ApplySync(r.Name, r.Members, r.Version)
	s.lastSync.Store(r.Name, time.Now())
	return struct{}{}, nil
}

// ReplicateCollection registers replica nodes for a collection and
// brings them up to date immediately; from then on every committed
// mutation kicks an asynchronous anti-entropy round (see antientropy.go).
func (s *Server) ReplicateCollection(name string, replicas []netsim.NodeID) error {
	if err := s.store.SetReplicas(name, replicas); err != nil {
		return err
	}
	s.ae.setReplicas(name, replicas)
	s.ae.kick(name)
	return nil
}

// SetAntiEntropy starts the background anti-entropy ticker: every
// interval, each replicated collection gets a repair round even with no
// write traffic, so a replica that missed pushes while partitioned
// converges once healed. Call at most once, before Close.
func (s *Server) SetAntiEntropy(interval time.Duration) {
	s.ae.startTicker(interval)
}

// asyncDelete deletes object data, possibly on a remote node, without
// blocking the caller.
func (s *Server) asyncDelete(ref Ref) {
	if ref.Node == s.node {
		_ = s.store.DeleteObject(ref.ID)
		return
	}
	select {
	case <-s.closed:
		return
	default:
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_, _, _ = s.bus.Call(context.Background(), s.node, ref.Node, MethodDelete, DeleteReq{ID: ref.ID})
	}()
}

// ObjectCount reports the number of objects stored locally (test hook).
func (s *Server) ObjectCount() int {
	return s.store.ObjectCount()
}
