package repo

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

// collection is the server-side state of one collection.
type collection struct {
	name    string
	version uint64
	members map[ObjectID]Ref
	// ghosts holds members removed while a grow-only window was open; they
	// are still listed so that, during the window, the set only grows
	// (§3.3: "create copies of any deleted objects and then garbage collect
	// these 'ghost' copies upon termination").
	ghosts map[ObjectID]Ref
	// pendingDelete are object refs whose data must be deleted once the
	// last grow token drains (unless the member was re-added meanwhile).
	pendingDelete map[ObjectID]Ref
	pins          map[int64][]Ref
	nextPin       int64
	tokens        map[int64]bool
	nextToken     int64
	// replicas are nodes receiving lazy pushes of this collection.
	replicas []netsim.NodeID
	// replicaVersion, on a replica, is the version of the last applied
	// sync; pushes with older versions are ignored.
	replicaVersion uint64
}

func (c *collection) listedMembers() []Ref {
	out := make([]Ref, 0, len(c.members)+len(c.ghosts))
	for _, r := range c.members {
		out = append(out, r)
	}
	for id, r := range c.ghosts {
		if _, live := c.members[id]; !live {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Server is one node's repository: an object store plus the collections
// this node is the directory for.
type Server struct {
	bus  *rpc.Bus
	node netsim.NodeID
	rpc  *rpc.Server

	mu          sync.Mutex
	objects     map[ObjectID]Object
	collections map[string]*collection

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates and registers a repository server on node. The node
// must already exist in the bus's network.
func NewServer(bus *rpc.Bus, node netsim.NodeID) (*Server, error) {
	s := &Server{
		bus:         bus,
		node:        node,
		rpc:         rpc.NewServer(node),
		objects:     make(map[ObjectID]Object),
		collections: make(map[string]*collection),
		closed:      make(chan struct{}),
	}
	s.register()
	if err := bus.Register(s.rpc); err != nil {
		return nil, fmt.Errorf("repo server %s: %w", node, err)
	}
	return s, nil
}

// Node reports the node this server runs on.
func (s *Server) Node() netsim.NodeID { return s.node }

// Close stops background replication pushes and waits for them to finish.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.wg.Wait()
}

func (s *Server) register() {
	s.rpc.Handle(MethodGet, s.handleGet)
	s.rpc.Handle(MethodPut, s.handlePut)
	s.rpc.Handle(MethodDelete, s.handleDelete)
	s.rpc.Handle(MethodCreate, s.handleCreate)
	s.rpc.Handle(MethodList, s.handleList)
	s.rpc.Handle(MethodAdd, s.handleAdd)
	s.rpc.Handle(MethodRemove, s.handleRemove)
	s.rpc.Handle(MethodPin, s.handlePin)
	s.rpc.Handle(MethodUnpin, s.handleUnpin)
	s.rpc.Handle(MethodBeginGrow, s.handleBeginGrow)
	s.rpc.Handle(MethodEndGrow, s.handleEndGrow)
	s.rpc.Handle(MethodStats, s.handleStats)
	s.rpc.Handle(MethodSync, s.handleSync)
}

func (s *Server) handleGet(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(GetReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, found := s.objects[r.ID]
	if !found {
		return nil, fmt.Errorf("get %q: %w", r.ID, ErrNotFound)
	}
	return obj.Clone(), nil
}

func (s *Server) handlePut(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(PutReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := r.Obj.Clone()
	obj.Version = s.objects[obj.ID].Version + 1
	obj.Tombstone = false
	s.objects[obj.ID] = obj
	return PutResp{Version: obj.Version}, nil
}

func (s *Server) handleDelete(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(DeleteReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, found := s.objects[r.ID]; !found {
		return nil, fmt.Errorf("delete %q: %w", r.ID, ErrNotFound)
	}
	delete(s.objects, r.ID)
	return struct{}{}, nil
}

func (s *Server) handleCreate(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(CreateReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.collections[r.Name]; exists {
		return nil, fmt.Errorf("create %q: %w", r.Name, ErrCollectionExists)
	}
	s.collections[r.Name] = &collection{
		name:          r.Name,
		members:       make(map[ObjectID]Ref),
		ghosts:        make(map[ObjectID]Ref),
		pendingDelete: make(map[ObjectID]Ref),
		pins:          make(map[int64][]Ref),
		tokens:        make(map[int64]bool),
	}
	return struct{}{}, nil
}

func (s *Server) coll(name string) (*collection, error) {
	c, ok := s.collections[name]
	if !ok {
		return nil, fmt.Errorf("collection %q: %w", name, ErrNoCollection)
	}
	return c, nil
}

func (s *Server) handleList(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(ListReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(r.Name)
	if err != nil {
		return nil, err
	}
	if r.Pin != 0 {
		snap, found := c.pins[r.Pin]
		if !found {
			return nil, fmt.Errorf("list %q pin %d: %w", r.Name, r.Pin, ErrBadPin)
		}
		return ListResp{Members: append([]Ref(nil), snap...), Version: c.version}, nil
	}
	return ListResp{Members: c.listedMembers(), Version: c.version}, nil
}

func (s *Server) handleAdd(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(AddReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	c, err := s.coll(r.Name)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	c.members[r.Ref.ID] = r.Ref
	// Re-adding a ghosted member revives it: the deferred delete must not
	// fire.
	delete(c.ghosts, r.Ref.ID)
	delete(c.pendingDelete, r.Ref.ID)
	c.version++
	v := c.version
	s.mu.Unlock()
	s.pushReplicas(r.Name)
	return MutateResp{Version: v}, nil
}

func (s *Server) handleRemove(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(RemoveReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	c, err := s.coll(r.Name)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	ref, member := c.members[r.ID]
	if !member {
		s.mu.Unlock()
		return nil, fmt.Errorf("remove %q from %q: %w", r.ID, r.Name, ErrNotFound)
	}
	deferred := len(c.tokens) > 0
	if deferred {
		// Grow-only window open: keep a ghost so the set, as listed, only
		// grows for the duration of the window.
		c.ghosts[r.ID] = ref
		c.pendingDelete[r.ID] = ref
	}
	delete(c.members, r.ID)
	c.version++
	v := c.version
	s.mu.Unlock()
	s.pushReplicas(r.Name)
	return RemoveResp{Deferred: deferred, Version: v}, nil
}

func (s *Server) handlePin(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(PinReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(r.Name)
	if err != nil {
		return nil, err
	}
	c.nextPin++
	snap := make([]Ref, 0, len(c.members))
	for _, ref := range c.members {
		snap = append(snap, ref)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID })
	c.pins[c.nextPin] = snap
	return PinResp{Pin: c.nextPin}, nil
}

func (s *Server) handleUnpin(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(UnpinReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(r.Name)
	if err != nil {
		return nil, err
	}
	if _, found := c.pins[r.Pin]; !found {
		return nil, fmt.Errorf("unpin %q pin %d: %w", r.Name, r.Pin, ErrBadPin)
	}
	delete(c.pins, r.Pin)
	return struct{}{}, nil
}

func (s *Server) handleBeginGrow(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(BeginGrowReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(r.Name)
	if err != nil {
		return nil, err
	}
	c.nextToken++
	c.tokens[c.nextToken] = true
	return BeginGrowResp{Token: c.nextToken}, nil
}

func (s *Server) handleEndGrow(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(EndGrowReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	c, err := s.coll(r.Name)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if !c.tokens[r.Token] {
		s.mu.Unlock()
		return nil, fmt.Errorf("end grow %q token %d: %w", r.Name, r.Token, ErrBadToken)
	}
	delete(c.tokens, r.Token)
	var reclaim []Ref
	if len(c.tokens) == 0 {
		// Last token drained: garbage collect the ghosts (§3.3).
		for id, ref := range c.pendingDelete {
			if _, live := c.members[id]; !live {
				reclaim = append(reclaim, ref)
			}
		}
		c.ghosts = make(map[ObjectID]Ref)
		c.pendingDelete = make(map[ObjectID]Ref)
	}
	s.mu.Unlock()

	for _, ref := range reclaim {
		s.asyncDelete(ref)
	}
	if len(reclaim) > 0 {
		s.pushReplicas(r.Name)
	}
	return EndGrowResp{Reclaimed: len(reclaim)}, nil
}

func (s *Server) handleStats(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(StatsReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(r.Name)
	if err != nil {
		return nil, err
	}
	return StatsResp{
		Members: len(c.members),
		Ghosts:  len(c.ghosts),
		Pins:    len(c.pins),
		Tokens:  len(c.tokens),
		Version: c.version,
	}, nil
}

// handleSync applies a replication push. Stale pushes (version <= last
// applied) are ignored, which is what makes replicas observably lag.
func (s *Server) handleSync(_ netsim.NodeID, req any) (any, error) {
	r, ok := req.(SyncReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, found := s.collections[r.Name]
	if !found {
		c = &collection{
			name:          r.Name,
			members:       make(map[ObjectID]Ref),
			ghosts:        make(map[ObjectID]Ref),
			pendingDelete: make(map[ObjectID]Ref),
			pins:          make(map[int64][]Ref),
			tokens:        make(map[int64]bool),
		}
		s.collections[r.Name] = c
	}
	if r.Version <= c.replicaVersion {
		return struct{}{}, nil
	}
	c.replicaVersion = r.Version
	c.version = r.Version
	c.members = make(map[ObjectID]Ref, len(r.Members))
	for _, ref := range r.Members {
		c.members[ref.ID] = ref
	}
	return struct{}{}, nil
}

// ReplicateCollection registers replica nodes for a collection and pushes
// the current membership to them immediately.
func (s *Server) ReplicateCollection(name string, replicas []netsim.NodeID) error {
	s.mu.Lock()
	c, err := s.coll(name)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	c.replicas = append([]netsim.NodeID(nil), replicas...)
	s.mu.Unlock()
	s.pushReplicas(name)
	return nil
}

// pushReplicas asynchronously pushes the collection's live membership to
// its replicas. Each push rides the simulated network, so replicas lag by
// at least one link latency — the stale-read window the optimistic
// semantics tolerate.
func (s *Server) pushReplicas(name string) {
	s.mu.Lock()
	c, found := s.collections[name]
	if !found || len(c.replicas) == 0 {
		s.mu.Unlock()
		return
	}
	req := SyncReq{
		Name:    name,
		Members: c.listedMembers(),
		Version: c.version,
	}
	replicas := append([]netsim.NodeID(nil), c.replicas...)
	s.mu.Unlock()

	select {
	case <-s.closed:
		return
	default:
	}
	for _, replica := range replicas {
		replica := replica
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Best effort: a push lost to a partition simply leaves the
			// replica stale until the next mutation.
			_, _, _ = s.bus.Call(context.Background(), s.node, replica, MethodSync, req)
		}()
	}
}

// asyncDelete deletes object data, possibly on a remote node, without
// blocking the caller.
func (s *Server) asyncDelete(ref Ref) {
	if ref.Node == s.node {
		s.mu.Lock()
		delete(s.objects, ref.ID)
		s.mu.Unlock()
		return
	}
	select {
	case <-s.closed:
		return
	default:
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_, _, _ = s.bus.Call(context.Background(), s.node, ref.Node, MethodDelete, DeleteReq{ID: ref.ID})
	}()
}

// ObjectCount reports the number of objects stored locally (test hook).
func (s *Server) ObjectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}
