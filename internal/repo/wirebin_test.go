package repo

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weaksets/internal/netsim"
	"weaksets/internal/wirebin"
)

// roundGob round-trips v through a fresh gob stream, the way the
// transport's fallback envelope carries it: encoded as an interface so
// the concrete type name rides along.
func roundGob(t testing.TB, v any) any {
	t.Helper()
	gob.Register(GetReq{})
	gob.Register(Object{})
	gob.Register(GetBatchReq{})
	gob.Register(GetBatchResp{})
	gob.Register(ListReq{})
	gob.Register(ListResp{})
	gob.Register(ListPartsReq{})
	gob.Register(PartListing{})
	gob.Register(ListPartsResp{})
	gob.Register(LeaseReq{})
	gob.Register(LeaseGrant{})
	gob.Register(WatchReq{})
	gob.Register(Invalidation{})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// roundWirebin round-trips v through the registered wirebin codec.
func roundWirebin(t testing.TB, v any) any {
	t.Helper()
	id, enc, ok := wirebin.Lookup(v)
	if !ok {
		t.Fatalf("no wirebin codec for %T", v)
	}
	frame := enc(nil, v)
	dec, ok := wirebin.ByID(id)
	if !ok {
		t.Fatalf("no wirebin decoder for id %d", id)
	}
	var r wirebin.Reader
	r.Reset(frame)
	out := dec(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("wirebin decode %T: %v", v, err)
	}
	if r.Len() != 0 {
		t.Fatalf("wirebin decode %T left %d bytes", v, r.Len())
	}
	return out
}

// TestWirebinGobConformance is the byte-level equivalence proof the
// negotiation relies on: for every hot message type and every tricky
// shape (nil vs empty slices and maps, zero versions, tombstones,
// unicode ids, big varints), decoding the wirebin form must yield
// exactly what decoding the gob form yields — so a wirebin connection
// and a gob connection are observationally identical.
func TestWirebinGobConformance(t *testing.T) {
	attrs := map[string]string{"cuisine": "chinese", "città": "米兰"}
	obj := Object{ID: "obj-1", Data: []byte("payload"), Attrs: attrs, Version: 7, Tombstone: true}
	cases := []any{
		GetReq{},
		GetReq{ID: "e0001"},
		GetReq{ID: "unicode-идентификатор-🦉"},
		Object{},
		Object{ID: "bare"},
		obj,
		Object{ID: "empties", Data: []byte{}, Attrs: map[string]string{}},
		Object{ID: "maxver", Version: 1<<64 - 1},
		GetBatchReq{},
		GetBatchReq{IDs: []ObjectID{"a", "b", "a"}},
		GetBatchReq{IDs: []ObjectID{}, Known: map[ObjectID]uint64{}},
		GetBatchReq{IDs: []ObjectID{"x"}, Known: map[ObjectID]uint64{"x": 3, "y": 1 << 40}},
		GetBatchResp{},
		GetBatchResp{Objects: []Object{obj, {ID: "two"}}, NotModified: []ObjectID{"nm"}, Missing: []ObjectID{"gone", "gone2"}},
		GetBatchResp{Objects: []Object{}, NotModified: []ObjectID{}, Missing: []ObjectID{}},
		ListReq{},
		ListReq{Name: "snap", Pin: -42, IfVersion: 9},
		ListReq{Name: "snap", Pin: 1 << 40},
		ListResp{},
		ListResp{Members: []Ref{{ID: "a", Node: "n1"}, {ID: "b", Node: "n2"}}, Version: 12},
		ListResp{Members: []Ref{}, Version: 3, NotModified: true},
		ListPartsReq{},
		ListPartsReq{Name: "c", Pin: -7, Stream: true},
		ListPartsReq{Name: "c", IfVersions: []uint64{0, 9, 1 << 40}},
		ListPartsReq{Name: "c", IfVersions: []uint64{}},
		PartListing{},
		PartListing{Part: 3, Partitions: 16, Members: []Ref{{ID: "a", Node: "n1"}}, Version: 8},
		PartListing{Part: 15, Partitions: 16, Version: 1<<64 - 1, NotModified: true, Skewed: true},
		PartListing{Members: []Ref{}},
		ListPartsResp{},
		ListPartsResp{Parts: []PartListing{
			{Part: 0, Partitions: 2, Members: []Ref{{ID: "a", Node: "n1"}, {ID: "c", Node: "n2"}}, Version: 4},
			{Part: 1, Partitions: 2, Version: 3, NotModified: true},
		}},
		ListPartsResp{Parts: []PartListing{}},
		LeaseReq{},
		LeaseReq{Colls: []string{"a", "b", "a"}},
		LeaseReq{Colls: []string{}},
		LeaseReq{Colls: []string{"unicode-коллекция-🦉"}},
		LeaseGrant{},
		LeaseGrant{TTL: 30000000000, Versions: map[string]uint64{"c": 7, "d": 1 << 40}},
		LeaseGrant{Versions: map[string]uint64{}},
		WatchReq{},
		Invalidation{},
		Invalidation{Coll: "c", Part: -1, Version: 9},
		Invalidation{Coll: "c", Part: 15, Version: 1<<64 - 1},
	}
	for _, in := range cases {
		in := in
		t.Run(fmt.Sprintf("%T", in), func(t *testing.T) {
			viaGob := roundGob(t, in)
			viaWB := roundWirebin(t, in)
			if !reflect.DeepEqual(viaGob, viaWB) {
				t.Fatalf("codecs disagree:\n gob     → %#v\n wirebin → %#v", viaGob, viaWB)
			}
		})
	}
}

// TestWirebinDecodePartialFrameErrors holds every typed decoder to the
// truncation contract: any prefix of a valid frame must produce a reader
// error, never a panic or a silently short message.
func TestWirebinDecodePartialFrameErrors(t *testing.T) {
	msgs := []any{
		GetBatchResp{
			Objects:     []Object{{ID: "a", Data: []byte("dddd"), Version: 2}, {ID: "b", Attrs: map[string]string{"k": "v"}}},
			NotModified: []ObjectID{"nm1"},
			Missing:     []ObjectID{"m1"},
		},
		ListPartsReq{Name: "c", Pin: -3, IfVersions: []uint64{1, 2, 3}, Stream: true},
		PartListing{Part: 2, Partitions: 4, Members: []Ref{{ID: "a", Node: "n1"}, {ID: "b", Node: "n2"}}, Version: 9, Skewed: true},
		ListPartsResp{Parts: []PartListing{
			{Part: 0, Partitions: 2, Members: []Ref{{ID: "a", Node: "n1"}}, Version: 2},
			{Part: 1, Partitions: 2, Version: 1, NotModified: true},
		}},
		LeaseReq{Colls: []string{"c1", "c2"}},
		LeaseGrant{TTL: 30000000000, Versions: map[string]uint64{"c1": 4, "c2": 9}},
		Invalidation{Coll: "c1", Part: 3, Version: 12},
	}
	for _, msg := range msgs {
		msg := msg
		t.Run(fmt.Sprintf("%T", msg), func(t *testing.T) {
			id, enc, ok := wirebin.Lookup(msg)
			if !ok {
				t.Fatalf("no wirebin codec for %T", msg)
			}
			frame := enc(nil, msg)
			dec, _ := wirebin.ByID(id)
			for cut := 0; cut < len(frame); cut++ {
				var r wirebin.Reader
				r.Reset(frame[:cut])
				_ = dec(&r)
				if r.Err() == nil && r.Len() == 0 && cut < len(frame) {
					// A clean decode of a strict prefix would mean the format
					// is ambiguous about its own end.
					t.Fatalf("cut=%d decoded cleanly", cut)
				}
			}
		})
	}
}

// FuzzWirebinDecode throws arbitrary bytes at every registered hot-type
// decoder. The server feeds these decoders straight from the socket, so
// they must never panic and never allocate proportionally to a lying
// length prefix (the reader bounds every count by the remaining frame).
func FuzzWirebinDecode(f *testing.F) {
	seedVals := []any{
		GetReq{ID: "seed"},
		Object{ID: "o", Data: []byte("data"), Attrs: map[string]string{"a": "b"}, Version: 1},
		GetBatchReq{IDs: []ObjectID{"x", "y"}, Known: map[ObjectID]uint64{"x": 1}},
		GetBatchResp{Objects: []Object{{ID: "o"}}, Missing: []ObjectID{"m"}},
		ListReq{Name: "c", Pin: -1, IfVersion: 2},
		ListResp{Members: []Ref{{ID: "a", Node: "n"}}, Version: 5},
		ListPartsReq{Name: "c", IfVersions: []uint64{1, 2}, Stream: true},
		PartListing{Part: 1, Partitions: 4, Members: []Ref{{ID: "a", Node: "n"}}, Version: 3, Skewed: true},
		ListPartsResp{Parts: []PartListing{{Part: 0, Partitions: 1, Members: []Ref{{ID: "a", Node: "n"}}}}},
		LeaseReq{Colls: []string{"c1", "c2"}},
		LeaseGrant{TTL: 30000000000, Versions: map[string]uint64{"c1": 4}},
		Invalidation{Coll: "c1", Part: 3, Version: 12},
	}
	for _, v := range seedVals {
		_, enc, _ := wirebin.Lookup(v)
		f.Add(enc(nil, v))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	ids := []uint16{wbGetReq, wbObject, wbGetBatchReq, wbGetBatchResp, wbListReq, wbListResp, wbListPartsReq, wbPartListing, wbListPartsRsp,
		wbLeaseReq, wbLeaseGrant, wbWatchReq, wbInvalidation}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, id := range ids {
			dec, _ := wirebin.ByID(id)
			var r wirebin.Reader
			r.Reset(data)
			_ = dec(&r) // must not panic, any error is fine
		}
	})
}

// loadAllocBudget reads the checked-in allocs/op ceilings from the repo
// root. The budget file is the CI regression guard's contract: raising a
// number is a reviewed decision, not a silent drift.
func loadAllocBudget(t *testing.T) map[string]float64 {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_budget.json"))
	if err != nil {
		t.Fatalf("alloc budget file: %v", err)
	}
	var doc struct {
		AllocsPerOp map[string]float64 `json:"allocsPerOp"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("alloc budget file: %v", err)
	}
	return doc.AllocsPerOp
}

// benchListResp builds the 64-member listing the budget paths measure,
// ids spread over four node names like the bench cluster's.
func benchListResp() ListResp {
	members := make([]Ref, 64)
	for i := range members {
		members[i] = Ref{
			ID:   ObjectID(fmt.Sprintf("e%04d", i)),
			Node: netsim.NodeID(fmt.Sprintf("storage%d", i%4)),
		}
	}
	return ListResp{Members: members, Version: 42}
}

// benchPartListing builds one streamed partition frame of 64 members —
// the per-frame unit of the scatter-gather listing path.
func benchPartListing() PartListing {
	members := make([]Ref, 64)
	for i := range members {
		members[i] = Ref{
			ID:   ObjectID(fmt.Sprintf("e%04d", i)),
			Node: netsim.NodeID(fmt.Sprintf("storage%d", i%4)),
		}
	}
	return PartListing{Part: 3, Partitions: 16, Members: members, Version: 42}
}

// benchGetBatchResp builds a 16-object batch with 256B payloads — the
// fetch pipeline's default batch shape.
func benchGetBatchResp() GetBatchResp {
	objs := make([]Object, 16)
	for i := range objs {
		objs[i] = Object{
			ID:      ObjectID(fmt.Sprintf("e%04d", i)),
			Data:    bytes.Repeat([]byte{byte(i)}, 256),
			Version: uint64(i + 1),
		}
	}
	return GetBatchResp{Objects: objs}
}

// TestAllocBudget is the hot-path allocation regression guard: the
// wirebin encode and decode paths for the elements hot path must stay
// within the checked-in allocs/op ceilings (BENCH_budget.json at the
// repo root). `make bench-rpc` runs it, so CI fails loudly if a change
// sneaks allocations back onto the path gob was retired from.
func TestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race instrumentation")
	}
	budget := loadAllocBudget(t)

	listResp := benchListResp()
	listFrame := appendListResp(nil, listResp)
	batchResp := benchGetBatchResp()
	batchFrame := appendGetBatchResp(nil, batchResp)
	partListing := benchPartListing()
	partFrame := appendPartListing(nil, partListing)
	inv := Invalidation{Coll: "set", Part: 3, Version: 42}
	invFrame := appendInvalidation(nil, inv)
	var r wirebin.Reader
	// Warm the intern table so the measurement sees the steady state a
	// long-lived connection sees (ids repeat run after run).
	r.Reset(listFrame)
	_ = decodeListResp(&r)
	r.Reset(batchFrame)
	_ = decodeGetBatchResp(&r)
	r.Reset(partFrame)
	_ = decodePartListing(&r)
	r.Reset(invFrame)
	_ = decodeInvalidation(&r)

	scratch := make([]byte, 0, len(batchFrame)+len(listFrame))
	paths := map[string]func(){
		"encodeListResp": func() {
			scratch = appendListResp(scratch[:0], listResp)
		},
		"decodeListResp": func() {
			r.Reset(listFrame)
			if v := decodeListResp(&r); len(v.Members) != len(listResp.Members) || r.Err() != nil {
				t.Fatalf("bad decode: %d members, err %v", len(v.Members), r.Err())
			}
		},
		"encodeGetBatchResp": func() {
			scratch = appendGetBatchResp(scratch[:0], batchResp)
		},
		"decodeGetBatchResp": func() {
			r.Reset(batchFrame)
			if v := decodeGetBatchResp(&r); len(v.Objects) != len(batchResp.Objects) || r.Err() != nil {
				t.Fatalf("bad decode: %d objects, err %v", len(v.Objects), r.Err())
			}
		},
		"encodePartListing": func() {
			scratch = appendPartListing(scratch[:0], partListing)
		},
		"decodePartListing": func() {
			r.Reset(partFrame)
			if v := decodePartListing(&r); len(v.Members) != len(partListing.Members) || r.Err() != nil {
				t.Fatalf("bad decode: %d members, err %v", len(v.Members), r.Err())
			}
		},
		// The invalidation push fires once per listing change on every
		// watch stream: per-event allocations would scale with write rate
		// times watchers, so the whole encode/decode path must be free.
		"encodeInvalidation": func() {
			scratch = appendInvalidation(scratch[:0], inv)
		},
		"decodeInvalidation": func() {
			r.Reset(invFrame)
			if v := decodeInvalidation(&r); v != inv || r.Err() != nil {
				t.Fatalf("bad decode: %+v, err %v", v, r.Err())
			}
		},
	}
	for name, fn := range paths {
		max, ok := budget[name]
		if !ok {
			t.Fatalf("no allocs/op budget for %q in BENCH_budget.json", name)
		}
		got := testing.AllocsPerRun(200, fn)
		t.Logf("%s: %.1f allocs/op (budget %.0f)", name, got, max)
		if got > max {
			t.Errorf("%s allocates %.1f/op, budget is %.0f — BENCH_budget.json is the regression gate; "+
				"fix the codec or raise the budget deliberately", name, got, max)
		}
	}
}

// BenchmarkWirebinCodec reports the codec-layer cost of the two hot
// response types against their gob equivalents; ReportAllocs makes the
// near-zero-alloc claim visible in `go test -bench`.
func BenchmarkWirebinCodec(b *testing.B) {
	listResp := benchListResp()
	batchResp := benchGetBatchResp()

	b.Run("encodeListResp/wirebin", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendListResp(buf[:0], listResp)
		}
	})
	b.Run("encodeListResp/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(listResp); err != nil {
				b.Fatal(err)
			}
		}
	})
	listFrame := appendListResp(nil, listResp)
	b.Run("decodeListResp/wirebin", func(b *testing.B) {
		var r wirebin.Reader
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(listFrame)
			if v := decodeListResp(&r); len(v.Members) != 64 {
				b.Fatal("bad decode")
			}
		}
	})
	var gobList bytes.Buffer
	if err := gob.NewEncoder(&gobList).Encode(listResp); err != nil {
		b.Fatal(err)
	}
	b.Run("decodeListResp/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var v ListResp
			if err := gob.NewDecoder(bytes.NewReader(gobList.Bytes())).Decode(&v); err != nil {
				b.Fatal(err)
			}
		}
	})
	batchFrame := appendGetBatchResp(nil, batchResp)
	b.Run("decodeGetBatchResp/wirebin", func(b *testing.B) {
		var r wirebin.Reader
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(batchFrame)
			if v := decodeGetBatchResp(&r); len(v.Objects) != 16 {
				b.Fatal("bad decode")
			}
		}
	})
	var gobBatch bytes.Buffer
	if err := gob.NewEncoder(&gobBatch).Encode(batchResp); err != nil {
		b.Fatal(err)
	}
	b.Run("decodeGetBatchResp/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var v GetBatchResp
			if err := gob.NewDecoder(bytes.NewReader(gobBatch.Bytes())).Decode(&v); err != nil {
				b.Fatal(err)
			}
		}
	})
}
