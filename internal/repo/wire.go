package repo

import (
	"time"

	"weaksets/internal/store"
)

// This file is the repository's wire surface: the RPC method names and
// the request/response structs copied at every RPC boundary. The structs
// are deliberately codec-agnostic — gob encodes them by reflection on the
// cold paths, and wirebin.go registers hand-rolled binary marshalers for
// the hot half-dozen so the TCP transport can retire gob per connection
// (DESIGN.md §11).

// RPC method names served by every repository server.
const (
	MethodGet        = "repo.Get"
	MethodGetBatch   = "repo.GetBatch"
	MethodPut        = "repo.Put"
	MethodDelete     = "repo.Delete"
	MethodCreate     = "repo.CreateCollection"
	MethodList       = "repo.List"
	MethodListParts  = "repo.ListParts"
	MethodAdd        = "repo.Add"
	MethodRemove     = "repo.Remove"
	MethodPin        = "repo.Pin"
	MethodUnpin      = "repo.Unpin"
	MethodBeginGrow  = "repo.BeginGrow"
	MethodEndGrow    = "repo.EndGrow"
	MethodStats      = "repo.CollStats"
	MethodStoreStats = "repo.StoreStats"
	MethodSync       = "repo.Sync"
	MethodSyncPart   = "repo.SyncPart"
	MethodSyncDigest = "repo.SyncDigest"
	MethodLease      = "repo.Lease"
	MethodWatch      = "repo.Watch"
)

// Wire types. Every request and response is a value type copied at the RPC
// boundary.
type (
	// GetReq fetches an object by ID.
	GetReq struct{ ID ObjectID }
	// GetBatchReq fetches several objects from one node in a single round
	// trip. Known optionally maps ids to versions the caller already
	// holds: the server ships full objects only for ids whose stored
	// version differs, answering the rest with a compact NotModified
	// list — the batch analogue of ListReq.IfVersion.
	GetBatchReq struct {
		IDs   []ObjectID
		Known map[ObjectID]uint64
	}
	// GetBatchResp carries the found objects in request order; ids with no
	// stored object come back in Missing rather than failing the batch,
	// and ids whose Known version still matches come back in NotModified
	// with no payload.
	GetBatchResp struct {
		Objects     []Object
		NotModified []ObjectID
		Missing     []ObjectID
	}
	// PutReq stores (or overwrites) an object.
	PutReq struct{ Obj Object }
	// PutResp reports the stored version.
	PutResp struct{ Version uint64 }
	// DeleteReq removes an object's data.
	DeleteReq struct{ ID ObjectID }
	// CreateReq creates an empty collection.
	CreateReq struct{ Name string }
	// ListReq reads a collection's membership; Pin selects a snapshot
	// (0 means the live membership). A non-zero IfVersion makes the read
	// version-gated: if the live listing is still at that version the
	// server answers NotModified without shipping the members.
	ListReq struct {
		Name      string
		Pin       int64
		IfVersion uint64
	}
	// ListResp carries the membership and the collection version it
	// reflects. When NotModified is true the listing is unchanged since
	// the requested IfVersion and Members is empty.
	ListResp struct {
		Members     []Ref
		Version     uint64
		NotModified bool
	}
	// ListPartsReq reads a collection's membership a listing partition
	// at a time. IfVersions is the per-partition form of
	// ListReq.IfVersion: a version vector indexed by partition, where a
	// partition whose version is still at or below its gate answers
	// NotModified instead of shipping members (a short or empty vector
	// gates nothing). Pin selects a pinned snapshot, partitioned on the
	// fly (pins are immutable, so its listings carry no version and
	// ignore IfVersions). Stream asks the server to deliver each
	// PartListing as its own frame as that partition's snapshot is
	// taken; transports or peers that cannot stream fall back to one
	// ListPartsResp.
	ListPartsReq struct {
		Name       string
		Pin        int64
		IfVersions []uint64
		Stream     bool
		// Parts optionally restricts the read to a subset of partition
		// indices (empty means all) — how a replica-scattered read asks
		// each replica for only the partitions assigned to it.
		Parts []int
	}
	// PartListing is one listing partition: self-contained, so a client
	// can start fetching this partition's elements while later ones are
	// still in flight. Partitions is the collection's total partition
	// count, stamped on every frame so each is interpretable alone (and
	// so a client gating with a stale vector length notices). Skewed
	// marks a partition whose snapshot was taken after a write landed
	// mid-stream — earlier partitions in the same response may not
	// reflect that write. That is legal under every weak semantics here
	// (the paper's membership skew, now per partition); the flag exists
	// so clients can measure it.
	PartListing struct {
		Part        int
		Partitions  int
		Members     []Ref
		Version     uint64
		NotModified bool
		Skewed      bool
	}
	// ListPartsResp is the materialized (non-streamed) form: every
	// partition's listing in partition order.
	ListPartsResp struct {
		Parts []PartListing
	}
	// AddReq inserts a member.
	AddReq struct {
		Name string
		Ref  Ref
	}
	// RemoveReq removes a member.
	RemoveReq struct {
		Name string
		ID   ObjectID
	}
	// RemoveResp reports whether the removal was deferred by an active grow
	// token; when Deferred is true the server owns eventual deletion of the
	// object data.
	RemoveResp struct {
		Deferred bool
		Version  uint64
	}
	// MutateResp reports the new collection version.
	MutateResp struct{ Version uint64 }
	// PinReq snapshots a collection's membership.
	PinReq struct{ Name string }
	// PinResp returns the snapshot handle.
	PinResp struct{ Pin int64 }
	// UnpinReq releases a snapshot.
	UnpinReq struct {
		Name string
		Pin  int64
	}
	// BeginGrowReq starts a grow-only window on the collection.
	BeginGrowReq struct{ Name string }
	// BeginGrowResp returns the token ending the window.
	BeginGrowResp struct{ Token int64 }
	// EndGrowReq closes a grow-only window.
	EndGrowReq struct {
		Name  string
		Token int64
	}
	// EndGrowResp reports how many ghost objects were reclaimed when the
	// last token drained.
	EndGrowResp struct{ Reclaimed int }
	// StatsReq asks for collection counters.
	StatsReq struct{ Name string }
	// StatsResp reports collection counters for experiments (ghost
	// accounting, E8).
	StatsResp struct {
		Members    int
		Ghosts     int
		Pins       int
		Tokens     int
		Version    uint64
		Partitions int
	}
	// StoreStatsReq asks a node for its storage-engine instrumentation.
	StoreStatsReq struct{}
	// StoreStatsResp carries the engine's per-operation counters and
	// latency quantiles.
	StoreStatsResp struct{ Stats store.EngineStats }
	// SyncReq is the replication push: full membership at a version,
	// plus the data of home-resident members so a fresh replica can
	// serve batch reads immediately (per-partition rounds keep it
	// current afterwards).
	SyncReq struct {
		Name    string
		Members []Ref
		Version uint64
		Objects []Object
	}
	// SyncPartReq is the per-partition replication push: one partition's
	// listed membership at a version, out of Partitions total. It carries
	// the sender's partition count so a layout disagreement is detected
	// and declined rather than misapplied.
	SyncPartReq struct {
		Name       string
		Partitions int
		Part       int
		Members    []Ref
		Version    uint64
		// Objects carries the data of the pushed members that live on the
		// home node itself, so replicas can answer GetBatch for them and a
		// scattered read never has to detour back to the home for its own
		// objects. Members homed elsewhere replicate by reference only.
		Objects []Object
	}
	// SyncPartResp reports whether the push was applied; Applied=false
	// asks the sender to fall back to a full SyncReq.
	SyncPartResp struct {
		Applied bool
	}
	// DigestReq asks a replica for its anti-entropy digest of one
	// collection.
	DigestReq struct {
		Name string
	}
	// DigestResp is the replica's view: its per-partition version vector
	// and how long ago the home last confirmed it (AgeMs, -1 when it has
	// never been synced) — the staleness bound a scattered read reports
	// as GhostAge instead of hiding.
	DigestResp struct {
		Partitions int
		Versions   []uint64
		AgeMs      int64
	}
	// LeaseReq asks the server to grant (or renew) listing-version
	// leases on the named collections. A lease is a promise to push an
	// Invalidation down the holder's Watch stream whenever a leased
	// collection's listing moves, for the grant's TTL — renewed
	// implicitly by any call the holder makes.
	LeaseReq struct {
		Colls []string
	}
	// LeaseGrant answers a LeaseReq: the server's lease TTL and, for
	// every collection it agreed to lease, the listing version current
	// at (or after) the moment the lease was registered. Unknown
	// collections are simply absent from Versions.
	LeaseGrant struct {
		TTL      time.Duration
		Versions map[string]uint64
	}
	// WatchReq opens the holder's invalidation stream. The response is a
	// stream of Invalidation frames that stays open until the connection
	// drops, the server closes, or the caller abandons it; a peer or
	// transport that cannot stream gets an error and must run leaseless.
	WatchReq struct{}
	// Invalidation is one pushed listing change on a leased collection:
	// the partition that moved (store.PartAll, shipped as -1, when
	// several did) and the listing version after the change. Versions on
	// one collection are monotonic per partition but frames may arrive
	// coalesced — only the latest version per collection/partition is
	// guaranteed to be delivered.
	Invalidation struct {
		Coll    string
		Part    int
		Version uint64
	}
)
