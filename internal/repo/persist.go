package repo

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"weaksets/internal/netsim"
)

// The paper frames weak sets over *persistent* object repositories (§1.2).
// This file gives a Server durable state: a snapshot of its objects and
// collection memberships that survives a process restart. Run-scoped soft
// state — pins, grow windows, ghosts — is deliberately not persisted: it
// belongs to iterator runs, and a restarted node correctly forgets runs
// that died with it (their leases expire; their pins were per-run).

// persistedCollection is the durable subset of a collection.
type persistedCollection struct {
	Name           string
	Version        uint64
	ReplicaVersion uint64
	Members        []Ref
	Replicas       []netsim.NodeID
}

// persistedState is the gob image of a server.
type persistedState struct {
	Node        netsim.NodeID
	Objects     map[ObjectID]Object
	Collections []persistedCollection
}

// SaveSnapshot writes the server's durable state to w.
func (s *Server) SaveSnapshot(w io.Writer) error {
	s.mu.Lock()
	state := persistedState{
		Node:    s.node,
		Objects: make(map[ObjectID]Object, len(s.objects)),
	}
	for id, obj := range s.objects {
		state.Objects[id] = obj.Clone()
	}
	for name, c := range s.collections {
		pc := persistedCollection{
			Name:           name,
			Version:        c.version,
			ReplicaVersion: c.replicaVersion,
			Members:        make([]Ref, 0, len(c.members)),
			Replicas:       append([]netsim.NodeID(nil), c.replicas...),
		}
		for _, ref := range c.members {
			pc.Members = append(pc.Members, ref)
		}
		state.Collections = append(state.Collections, pc)
	}
	s.mu.Unlock()

	if err := gob.NewEncoder(w).Encode(&state); err != nil {
		return fmt.Errorf("repo: save snapshot of %s: %w", s.node, err)
	}
	return nil
}

// LoadSnapshot replaces the server's durable state with the snapshot read
// from r. The snapshot must have been taken from a server with the same
// node identity.
func (s *Server) LoadSnapshot(r io.Reader) error {
	var state persistedState
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return fmt.Errorf("repo: load snapshot: %w", err)
	}
	if state.Node != s.node {
		return fmt.Errorf("repo: load snapshot: node mismatch: snapshot %s, server %s", state.Node, s.node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[ObjectID]Object, len(state.Objects))
	for id, obj := range state.Objects {
		s.objects[id] = obj.Clone()
	}
	s.collections = make(map[string]*collection, len(state.Collections))
	for _, pc := range state.Collections {
		c := &collection{
			name:           pc.Name,
			version:        pc.Version,
			replicaVersion: pc.ReplicaVersion,
			members:        make(map[ObjectID]Ref, len(pc.Members)),
			ghosts:         make(map[ObjectID]Ref),
			pendingDelete:  make(map[ObjectID]Ref),
			pins:           make(map[int64][]Ref),
			tokens:         make(map[int64]bool),
			replicas:       append([]netsim.NodeID(nil), pc.Replicas...),
		}
		for _, ref := range pc.Members {
			c.members[ref.ID] = ref
		}
		s.collections[pc.Name] = c
	}
	return nil
}

// SaveFile writes the snapshot to a file (atomically via rename).
func (s *Server) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	if err := s.SaveSnapshot(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a snapshot from a file.
func (s *Server) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("repo: load %s: %w", path, err)
	}
	defer f.Close()
	return s.LoadSnapshot(f)
}
