package repo

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"weaksets/internal/netsim"
	"weaksets/internal/store"
)

// The paper frames weak sets over *persistent* object repositories (§1.2).
// This file gives a Server durable state: a snapshot of its objects and
// collection memberships that survives a process restart. Run-scoped soft
// state — pins, grow windows, ghosts — is deliberately not persisted: it
// belongs to iterator runs, and a restarted node correctly forgets runs
// that died with it (their leases expire; their pins were per-run).

// persistedCollection is the durable subset of a collection.
type persistedCollection struct {
	Name           string
	Version        uint64
	ReplicaVersion uint64
	Members        []Ref
	Replicas       []netsim.NodeID
	// Partitions is the listing partition count. Snapshots from before
	// partitioned listings decode it as 0, which Import maps to the
	// engine's default (gob ignores unknown fields in both directions).
	Partitions int
}

// persistedState is the gob image of a server.
type persistedState struct {
	Node        netsim.NodeID
	Objects     map[ObjectID]Object
	Collections []persistedCollection
}

// SaveSnapshot writes the server's durable state to w.
func (s *Server) SaveSnapshot(w io.Writer) error {
	st := s.store.Export()
	state := persistedState{
		Node:    s.node,
		Objects: make(map[ObjectID]Object, len(st.Objects)),
	}
	for _, obj := range st.Objects {
		state.Objects[obj.ID] = obj
	}
	for _, cs := range st.Collections {
		state.Collections = append(state.Collections, persistedCollection{
			Name:           cs.Name,
			Version:        cs.Version,
			ReplicaVersion: cs.ReplicaVersion,
			Members:        cs.Members,
			Replicas:       cs.Replicas,
			Partitions:     cs.Partitions,
		})
	}

	if err := gob.NewEncoder(w).Encode(&state); err != nil {
		return fmt.Errorf("repo: save snapshot of %s: %w", s.node, err)
	}
	return nil
}

// LoadSnapshot replaces the server's durable state with the snapshot read
// from r. The snapshot must have been taken from a server with the same
// node identity.
func (s *Server) LoadSnapshot(r io.Reader) error {
	var state persistedState
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return fmt.Errorf("repo: load snapshot: %w", err)
	}
	if state.Node != s.node {
		return fmt.Errorf("repo: load snapshot: node mismatch: snapshot %s, server %s", state.Node, s.node)
	}
	st := store.State{Objects: make([]Object, 0, len(state.Objects))}
	for _, obj := range state.Objects {
		st.Objects = append(st.Objects, obj)
	}
	for _, pc := range state.Collections {
		st.Collections = append(st.Collections, store.CollectionState{
			Name:           pc.Name,
			Version:        pc.Version,
			ReplicaVersion: pc.ReplicaVersion,
			Members:        append([]Ref(nil), pc.Members...),
			Replicas:       append([]netsim.NodeID(nil), pc.Replicas...),
			Partitions:     pc.Partitions,
		})
	}
	s.store.Import(st)
	return nil
}

// SaveFile writes the snapshot to a file (atomically via rename).
func (s *Server) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	if err := s.SaveSnapshot(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("repo: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a snapshot from a file.
func (s *Server) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("repo: load %s: %w", path, err)
	}
	defer f.Close()
	return s.LoadSnapshot(f)
}
