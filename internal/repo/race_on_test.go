//go:build race

package repo

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
