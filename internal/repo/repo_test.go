package repo

import (
	"context"
	"errors"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

type world struct {
	net    *netsim.Network
	bus    *rpc.Bus
	client *Client
	dirSrv *Server
	s1Srv  *Server
	s2Srv  *Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	n := netsim.New(netsim.Config{})
	for _, id := range []netsim.NodeID{"home", "dir", "s1", "s2"} {
		n.AddNode(id)
	}
	b := rpc.NewBus(n)
	w := &world{net: n, bus: b, client: NewClient(b, "home")}
	var err error
	if w.dirSrv, err = NewServer(b, "dir"); err != nil {
		t.Fatal(err)
	}
	if w.s1Srv, err = NewServer(b, "s1"); err != nil {
		t.Fatal(err)
	}
	if w.s2Srv, err = NewServer(b, "s2"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.dirSrv.Close()
		w.s1Srv.Close()
		w.s2Srv.Close()
	})
	return w
}

func (w *world) mustPut(t *testing.T, node netsim.NodeID, id ObjectID, data string) Ref {
	t.Helper()
	ref, err := w.client.Put(context.Background(), node, Object{ID: id, Data: []byte(data)})
	if err != nil {
		t.Fatalf("put %q: %v", id, err)
	}
	return ref
}

func (w *world) mustColl(t *testing.T, name string) {
	t.Helper()
	if err := w.client.CreateCollection(context.Background(), "dir", name); err != nil {
		t.Fatalf("create collection: %v", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "obj1", "hello")

	obj, err := w.client.Get(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != "hello" {
		t.Fatalf("data = %q", obj.Data)
	}
	if obj.Version != 1 {
		t.Fatalf("version = %d, want 1", obj.Version)
	}

	if err := w.client.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Get(ctx, ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutIncrementsVersion(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.mustPut(t, "s1", "v", "one")
	w.mustPut(t, "s1", "v", "two")
	obj, err := w.client.Get(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Version != 2 || string(obj.Data) != "two" {
		t.Fatalf("obj = %+v", obj)
	}
}

func TestGetBatchRPC(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustPut(t, "s1", "a", "A")
	w.mustPut(t, "s1", "b", "B")

	objs, missing, err := w.client.GetBatch(ctx, "s1", []ObjectID{"a", "nope", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || string(objs["a"].Data) != "A" || string(objs["b"].Data) != "B" {
		t.Fatalf("objs = %v", objs)
	}
	if len(missing) != 1 || missing[0] != "nope" {
		t.Fatalf("missing = %v", missing)
	}

	// A whole batch against an unreachable node fails as one transport
	// error — the client sees one failed round trip, not N.
	w.net.Partition([]netsim.NodeID{"home", "dir", "s2"}, []netsim.NodeID{"s1"})
	calls := w.bus.MethodCalls(MethodGetBatch)
	if _, _, err := w.client.GetBatch(ctx, "s1", []ObjectID{"a", "b"}); !netsim.IsFailure(err) {
		t.Fatalf("partitioned batch err = %v, want transport failure", err)
	}
	if got := w.bus.MethodCalls(MethodGetBatch) - calls; got != 1 {
		t.Fatalf("partitioned batch issued %d calls, want 1", got)
	}
}

func TestListIfNew(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ra := w.mustPut(t, "s1", "a", "A")
	if err := w.client.Add(ctx, "dir", "c", ra); err != nil {
		t.Fatal(err)
	}

	members, v, nm, err := w.client.ListIfNew(ctx, "dir", "c", 0)
	if err != nil || nm {
		t.Fatalf("initial list: nm=%v err=%v", nm, err)
	}
	if len(members) != 1 || members[0].ID != "a" {
		t.Fatalf("members = %v", members)
	}

	// Unchanged listing: not-modified, no members shipped.
	members, v2, nm, err := w.client.ListIfNew(ctx, "dir", "c", v)
	if err != nil || !nm || v2 != v || len(members) != 0 {
		t.Fatalf("gated list: members=%v v=%d nm=%v err=%v", members, v2, nm, err)
	}

	// A mutation invalidates the gate.
	rb := w.mustPut(t, "s1", "b", "B")
	if err := w.client.Add(ctx, "dir", "c", rb); err != nil {
		t.Fatal(err)
	}
	members, v3, nm, err := w.client.ListIfNew(ctx, "dir", "c", v)
	if err != nil || nm || v3 <= v || len(members) != 2 {
		t.Fatalf("post-add gated list: members=%v v=%d nm=%v err=%v", members, v3, nm, err)
	}
}

func TestClientMutationEpoch(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if w.client.Mutations() != 0 {
		t.Fatalf("fresh client epoch = %d", w.client.Mutations())
	}
	ref := w.mustPut(t, "s1", "a", "A")
	if w.client.Mutations() != 1 {
		t.Fatalf("after put epoch = %d", w.client.Mutations())
	}
	if _, err := w.client.Get(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.client.GetBatch(ctx, "s1", []ObjectID{"a"}); err != nil {
		t.Fatal(err)
	}
	if w.client.Mutations() != 1 {
		t.Fatalf("reads bumped epoch: %d", w.client.Mutations())
	}
	if err := w.client.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if w.client.Mutations() != 2 {
		t.Fatalf("after delete epoch = %d", w.client.Mutations())
	}
	// Failed mutations still advance the epoch: the server may have
	// applied the change before the reply was lost.
	_ = w.client.Delete(ctx, ref)
	if w.client.Mutations() != 3 {
		t.Fatalf("after failed delete epoch = %d", w.client.Mutations())
	}
}

func TestGetMissing(t *testing.T) {
	w := newWorld(t)
	if _, err := w.client.Get(context.Background(), Ref{ID: "nope", Node: "s1"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestObjectCloneIsolation(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref, err := w.client.Put(ctx, "s1", Object{
		ID:    "iso",
		Data:  []byte("abc"),
		Attrs: map[string]string{"k": "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.client.Get(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	got.Data[0] = 'X'
	got.Attrs["k"] = "mutated"
	again, err := w.client.Get(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(again.Data) != "abc" || again.Attrs["k"] != "v" {
		t.Fatal("server state aliased by client mutation")
	}
}

func TestCollectionMembership(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "s1", "m1", "a")
	r2 := w.mustPut(t, "s2", "m2", "b")

	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	if err := w.client.Add(ctx, "dir", "c", r2); err != nil {
		t.Fatal(err)
	}
	members, version, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	if members[0].ID != "m1" || members[1].ID != "m2" {
		t.Fatalf("listing not sorted: %v", members)
	}
	if version != 2 {
		t.Fatalf("version = %d, want 2", version)
	}

	if _, err := w.client.Remove(ctx, "dir", "c", "m1"); err != nil {
		t.Fatal(err)
	}
	members, _, err = w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].ID != "m2" {
		t.Fatalf("members after remove = %v", members)
	}
}

func TestCollectionErrors(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if _, _, err := w.client.List(ctx, "dir", "nope"); !errors.Is(err, ErrNoCollection) {
		t.Fatalf("err = %v, want ErrNoCollection", err)
	}
	w.mustColl(t, "dup")
	if err := w.client.CreateCollection(ctx, "dir", "dup"); !errors.Is(err, ErrCollectionExists) {
		t.Fatalf("err = %v, want ErrCollectionExists", err)
	}
	if _, err := w.client.Remove(ctx, "dir", "dup", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPinSnapshotIsolation(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "s1", "m1", "a")
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}

	pin, err := w.client.Pin(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}

	// Mutate after the pin.
	r2 := w.mustPut(t, "s1", "m2", "b")
	if err := w.client.Add(ctx, "dir", "c", r2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Remove(ctx, "dir", "c", "m1"); err != nil {
		t.Fatal(err)
	}

	snap, _, err := w.client.ListPinned(ctx, "dir", "c", pin)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].ID != "m1" {
		t.Fatalf("pinned view = %v, want [m1]", snap)
	}
	live, _, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].ID != "m2" {
		t.Fatalf("live view = %v, want [m2]", live)
	}

	if err := w.client.Unpin(ctx, "dir", "c", pin); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.client.ListPinned(ctx, "dir", "c", pin); !errors.Is(err, ErrBadPin) {
		t.Fatalf("err = %v, want ErrBadPin", err)
	}
}

func TestGrowWindowDefersDeletion(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "s1", "m1", "a")
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}

	token, err := w.client.BeginGrow(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}

	// Delete during the window: membership must keep listing the ghost and
	// the data must remain fetchable.
	if err := w.client.DeleteMember(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	members, _, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].ID != "m1" {
		t.Fatalf("ghost not listed: %v", members)
	}
	if _, err := w.client.Get(ctx, r1); err != nil {
		t.Fatalf("ghost data gone during window: %v", err)
	}
	stats, err := w.client.Stats(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ghosts != 1 || stats.Tokens != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	reclaimed, err := w.client.EndGrow(ctx, "dir", "c", token)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", reclaimed)
	}
	members, _, err = w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("ghost survived window close: %v", members)
	}
	// Object data is deleted asynchronously by the directory server.
	w.dirSrv.Close() // waits for the async delete
	if _, err := w.client.Get(ctx, r1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost object not reclaimed: %v", err)
	}
}

func TestGrowWindowReviveCancelsDelete(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "s1", "m1", "a")
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	token, err := w.client.BeginGrow(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.DeleteMember(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	// Re-add before the window closes: the delete must not fire.
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := w.client.EndGrow(ctx, "dir", "c", token)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 {
		t.Fatalf("reclaimed = %d, want 0", reclaimed)
	}
	if _, err := w.client.Get(ctx, r1); err != nil {
		t.Fatalf("revived member's data was deleted: %v", err)
	}
}

func TestNestedGrowWindows(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	r1 := w.mustPut(t, "s1", "m1", "a")
	if err := w.client.Add(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	t1, err := w.client.BeginGrow(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := w.client.BeginGrow(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.DeleteMember(ctx, "dir", "c", r1); err != nil {
		t.Fatal(err)
	}
	// Closing one window keeps the ghost alive for the other.
	if _, err := w.client.EndGrow(ctx, "dir", "c", t1); err != nil {
		t.Fatal(err)
	}
	members, _, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("ghost reclaimed while a window was open: %v", members)
	}
	if _, err := w.client.EndGrow(ctx, "dir", "c", t2); err != nil {
		t.Fatal(err)
	}
	if members, _, _ = w.client.List(ctx, "dir", "c"); len(members) != 0 {
		t.Fatalf("ghost survived: %v", members)
	}
	if _, err := w.client.EndGrow(ctx, "dir", "c", t2); !errors.Is(err, ErrBadToken) {
		t.Fatalf("err = %v, want ErrBadToken", err)
	}
}

func TestDeleteMemberWithoutWindowDeletesData(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ref := w.mustPut(t, "s2", "m", "x")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	if err := w.client.DeleteMember(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Get(ctx, ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("data survived: %v", err)
	}
}

func TestReplicationPropagatesAndLags(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ref := w.mustPut(t, "s1", "m1", "a")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	if err := w.dirSrv.ReplicateCollection("c", []netsim.NodeID{"s2"}); err != nil {
		t.Fatal(err)
	}
	// Wait for the push (async, zero scale so nearly immediate).
	waitFor(t, time.Second, func() bool {
		members, _, err := w.client.List(ctx, "s2", "c")
		return err == nil && len(members) == 1
	})

	// Partition the replica; mutate the primary; the replica must lag.
	w.net.Isolate("s2")
	r2 := w.mustPut(t, "s1", "m2", "b")
	if err := w.client.Add(ctx, "dir", "c", r2); err != nil {
		t.Fatal(err)
	}
	w.net.Rejoin("s2")
	members, _, err := w.client.List(ctx, "s2", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("replica should be stale, got %v", members)
	}

	// The next mutation re-pushes the full membership and catches it up.
	r3 := w.mustPut(t, "s1", "m3", "c")
	if err := w.client.Add(ctx, "dir", "c", r3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		members, _, err := w.client.List(ctx, "s2", "c")
		return err == nil && len(members) == 3
	})
}

func TestReplicaIgnoresStaleSync(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	// Push version 5 then version 3 directly; replica must keep 5.
	if _, err := rpc.Invoke[struct{}](ctx, w.bus, "home", "s1", MethodSync, SyncReq{
		Name:    "r",
		Members: []Ref{{ID: "new", Node: "s2"}},
		Version: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.Invoke[struct{}](ctx, w.bus, "home", "s1", MethodSync, SyncReq{
		Name:    "r",
		Members: []Ref{{ID: "old", Node: "s2"}},
		Version: 3,
	}); err != nil {
		t.Fatal(err)
	}
	members, version, err := w.client.List(ctx, "s1", "r")
	if err != nil {
		t.Fatal(err)
	}
	if version != 5 || len(members) != 1 || members[0].ID != "new" {
		t.Fatalf("replica applied stale sync: v%d %v", version, members)
	}
}

func waitFor(t *testing.T, limit time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestClientAccessors(t *testing.T) {
	w := newWorld(t)
	if w.client.Node() != "home" {
		t.Fatalf("node = %s", w.client.Node())
	}
	if w.client.Bus() != w.bus {
		t.Fatal("bus accessor wrong")
	}
	ref := Ref{ID: "x", Node: "s1"}
	if !w.client.Reachable(ref) || !w.client.NodeReachable("s2") {
		t.Fatal("healthy nodes unreachable")
	}
	if w.client.EstimateRTT(ref) <= 0 {
		t.Fatal("rtt estimate not positive")
	}
	w.net.Isolate("s1")
	if w.client.Reachable(ref) {
		t.Fatal("isolated node reachable")
	}
	if w.s1Srv.Node() != "s1" {
		t.Fatalf("server node = %s", w.s1Srv.Node())
	}
	if w.s1Srv.ObjectCount() != 0 {
		t.Fatalf("object count = %d", w.s1Srv.ObjectCount())
	}
}

func TestSaveFileFailures(t *testing.T) {
	w := newWorld(t)
	if err := w.dirSrv.SaveFile("/nonexistent-dir/snap"); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}
