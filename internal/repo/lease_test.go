package repo

import (
	"context"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
	"weaksets/internal/store"
)

func startLeases(t *testing.T, w *world, colls ...string) *LeaseState {
	t.Helper()
	ls := NewLeaseState(w.client, "dir", colls...)
	if err := ls.Start(context.Background()); err != nil {
		t.Fatalf("lease start: %v", err)
	}
	t.Cleanup(ls.Stop)
	return ls
}

func TestLeaseGrantCertifiesVersion(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ref := w.mustPut(t, "s1", "a", "A")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	_, wantVer, err := w.client.List(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}

	ls := startLeases(t, w, "c")
	v, age, ok := ls.Serveable("c")
	if !ok {
		t.Fatal("lease not serveable after Start")
	}
	if v != wantVer {
		t.Fatalf("certified version = %d, want %d", v, wantVer)
	}
	if age < 0 {
		t.Fatalf("age = %v", age)
	}
	st := ls.Stats()
	if !st.Active || st.Held != 1 || st.Grants != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeaseUnknownCollectionNotGranted(t *testing.T) {
	w := newWorld(t)
	ls := startLeases(t, w, "nope")
	if _, _, ok := ls.Serveable("nope"); ok {
		t.Fatal("lease granted on unknown collection")
	}
	if st := ls.Stats(); st.Held != 0 {
		t.Fatalf("held = %d, want 0", st.Held)
	}
}

func TestLeasePushAdvancesVersion(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ls := startLeases(t, w, "c")
	v0, _, ok := ls.Serveable("c")
	if !ok {
		t.Fatal("lease not serveable")
	}

	ref := w.mustPut(t, "s1", "a", "A")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		v, _, ok := ls.Serveable("c")
		return ok && v > v0
	})
	if st := ls.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want pushed invalidations", st)
	}
}

// TestLeaseGrantRaceWithWrite pins the ordering soundness rule: a write
// committed concurrently with the grant must be visible to the holder,
// either in the granted version or as a push — never silently missed.
func TestLeaseGrantRaceWithWrite(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")
	ls := startLeases(t, w, "c")

	for i := 0; i < 20; i++ {
		ref := w.mustPut(t, "s1", ObjectID(string(rune('a'+i))), "x")
		if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
			t.Fatal(err)
		}
	}
	wantVer, err := w.dirSrv.Store().ListVersion("c")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		v, _, ok := ls.Serveable("c")
		return ok && v >= wantVer
	})
}

func TestLeaseCoalescesPending(t *testing.T) {
	// Hub-level: many bumps on one partition with no consumer collapse to
	// one pending invalidation carrying the latest version.
	hub := newLeaseHub(time.Minute)
	st := store.NewSharded(store.Config{})
	if err := st.CreateCollection("c"); err != nil {
		t.Fatal(err)
	}
	hub.grant("home", []string{"c"}, st)
	for v := uint64(1); v <= 50; v++ {
		hub.invalidate(store.ChangeEvent{Coll: "c", Part: 3, Version: v})
	}
	h := hub.holder("home")
	h.mu.Lock()
	pending, queued := len(h.pending), len(h.order)
	inv := h.pending[invKey{coll: "c", part: 3}]
	h.mu.Unlock()
	if pending != 1 || queued != 1 {
		t.Fatalf("pending = %d queued = %d, want 1/1", pending, queued)
	}
	if inv.Version != 50 {
		t.Fatalf("coalesced version = %d, want 50", inv.Version)
	}
}

func TestLeaseExpiryStopsPushes(t *testing.T) {
	hub := newLeaseHub(10 * time.Millisecond)
	st := store.NewSharded(store.Config{})
	if err := st.CreateCollection("c"); err != nil {
		t.Fatal(err)
	}
	hub.grant("home", []string{"c"}, st)
	time.Sleep(25 * time.Millisecond)
	hub.invalidate(store.ChangeEvent{Coll: "c", Part: 0, Version: 9})
	h := hub.holder("home")
	h.mu.Lock()
	pending := len(h.pending)
	_, stillLeased := h.leases["c"]
	h.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending = %d after expiry, want 0", pending)
	}
	if stillLeased {
		t.Fatal("expired lease not reaped")
	}
}

func TestLeaseServerCloseBreaksLeases(t *testing.T) {
	w := newWorld(t)
	w.mustColl(t, "c")
	ls := startLeases(t, w, "c")
	if _, _, ok := ls.Serveable("c"); !ok {
		t.Fatal("lease not serveable")
	}

	w.dirSrv.Close()
	waitFor(t, 5*time.Second, func() bool {
		_, _, ok := ls.Serveable("c")
		return !ok
	})
	if st := ls.Stats(); st.Active || st.Breaks == 0 {
		t.Fatalf("stats = %+v, want inactive with breaks", st)
	}
}

func TestLeaseStopBreaksLeases(t *testing.T) {
	w := newWorld(t)
	w.mustColl(t, "c")
	ls := startLeases(t, w, "c")
	ls.Stop()
	if _, _, ok := ls.Serveable("c"); ok {
		t.Fatal("serveable after Stop")
	}
	// Stopped state can re-arm.
	if err := ls.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, _, ok := ls.Serveable("c")
		return ok
	})
}

// TestLeaseOldPeerDegrades pins the compat story: a peer that predates
// the lease protocol answers ErrNoMethod and the client runs leaseless,
// with no error surfaced.
func TestLeaseOldPeerDegrades(t *testing.T) {
	w := newWorld(t)
	w.net.AddNode("old")
	// A server with no handlers at all: every method is ErrNoMethod, the
	// same answer an old repository peer gives for Watch/Lease.
	if err := w.bus.Register(rpc.NewServer(netsim.NodeID("old"))); err != nil {
		t.Fatal(err)
	}
	ls := NewLeaseState(w.client, "old", "c")
	if err := ls.Start(context.Background()); err != nil {
		t.Fatalf("start against old peer: %v", err)
	}
	if st := ls.Stats(); st.Active {
		t.Fatalf("stats = %+v, want inactive", st)
	}
	if _, _, ok := ls.Serveable("c"); ok {
		t.Fatal("serveable with no lease protocol")
	}
}

func TestLeaseWatchSupersede(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	w.mustColl(t, "c")

	out1, _, err := w.bus.Call(ctx, "home", "dir", MethodWatch, WatchReq{})
	if err != nil {
		t.Fatal(err)
	}
	st1 := out1.(rpc.Streamer)
	out2, _, err := w.bus.Call(ctx, "home", "dir", MethodWatch, WatchReq{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := out2.(rpc.Streamer)

	// The superseded stream ends cleanly; the new one still delivers.
	if _, ok := st1.Next(); ok {
		t.Fatal("superseded stream delivered a chunk")
	}
	w.dirSrv.leases.grant("home", []string{"c"}, w.dirSrv.Store())
	ref := w.mustPut(t, "s1", "a", "A")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	chunk, ok := st2.Next()
	if !ok {
		t.Fatalf("live stream ended: %v", st2.Err())
	}
	inv := chunk.(Invalidation)
	if inv.Coll != "c" || inv.Version == 0 {
		t.Fatalf("invalidation = %+v", inv)
	}
}
