package repo

import (
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/wirebin"
)

// This file registers hand-rolled wirebin marshalers for the hot-path
// wire structs — the messages the elements hot path ships on every run:
// ListReq/ListResp (membership), GetReq/Object (single fetch),
// GetBatchReq/GetBatchResp (the pipelined batch fetch, including the
// Known-versions and NotModified vectors). Everything else stays on gob
// inside the transport's envelope; see DESIGN.md §11 for the frame
// layout and the negotiation that turns these on.
//
// Conventions (held to gob's observable round-trip semantics, which the
// conformance tests in wirebin_test.go enforce):
//
//   - empty slices and byte blobs encode as count 0 and decode as nil,
//     exactly as a gob round trip leaves them; maps carry a presence
//     sentinel (0 = nil, n+1 = n entries) because gob preserves empty
//     non-nil maps;
//   - strings decode through the reader's intern table, so the ids and
//     node names that repeat across batches allocate once per connection;
//   - Object.Data decodes as a view into the frame buffer (the transport
//     keeps aliased frames out of its buffer pool), so a wide GetBatchResp
//     decodes with O(1) allocations, not O(objects).

// Stable wirebin type ids. These are part of the negotiated protocol:
// both ends of a wirebin connection run the same table, guaranteed by the
// handshake confirming the codec as a unit. Never renumber — add.
const (
	wbGetReq       = 1
	wbObject       = 2
	wbGetBatchReq  = 3
	wbGetBatchResp = 4
	wbListReq      = 5
	wbListResp     = 6
	wbListPartsReq = 7
	wbPartListing  = 8
	wbListPartsRsp = 9
	wbLeaseReq     = 10
	wbLeaseGrant   = 11
	wbWatchReq     = 12
	wbInvalidation = 13
	wbSyncPartReq  = 14
	wbSyncPartResp = 15
	wbDigestReq    = 16
	wbDigestResp   = 17
)

func init() {
	wirebin.Register(wbGetReq, GetReq{},
		func(buf []byte, v any) []byte { return appendGetReq(buf, v.(GetReq)) },
		func(r *wirebin.Reader) any { return decodeGetReq(r) },
	)
	wirebin.Register(wbObject, Object{},
		func(buf []byte, v any) []byte { return appendObject(buf, v.(Object)) },
		func(r *wirebin.Reader) any { return decodeObject(r) },
	)
	wirebin.Register(wbGetBatchReq, GetBatchReq{},
		func(buf []byte, v any) []byte { return appendGetBatchReq(buf, v.(GetBatchReq)) },
		func(r *wirebin.Reader) any { return decodeGetBatchReq(r) },
	)
	wirebin.Register(wbGetBatchResp, GetBatchResp{},
		func(buf []byte, v any) []byte { return appendGetBatchResp(buf, v.(GetBatchResp)) },
		func(r *wirebin.Reader) any { return decodeGetBatchResp(r) },
	)
	wirebin.Register(wbListReq, ListReq{},
		func(buf []byte, v any) []byte { return appendListReq(buf, v.(ListReq)) },
		func(r *wirebin.Reader) any { return decodeListReq(r) },
	)
	wirebin.Register(wbListResp, ListResp{},
		func(buf []byte, v any) []byte { return appendListResp(buf, v.(ListResp)) },
		func(r *wirebin.Reader) any { return decodeListResp(r) },
	)
	wirebin.Register(wbListPartsReq, ListPartsReq{},
		func(buf []byte, v any) []byte { return appendListPartsReq(buf, v.(ListPartsReq)) },
		func(r *wirebin.Reader) any { return decodeListPartsReq(r) },
	)
	wirebin.Register(wbPartListing, PartListing{},
		func(buf []byte, v any) []byte { return appendPartListing(buf, v.(PartListing)) },
		func(r *wirebin.Reader) any { return decodePartListing(r) },
	)
	wirebin.Register(wbListPartsRsp, ListPartsResp{},
		func(buf []byte, v any) []byte { return appendListPartsResp(buf, v.(ListPartsResp)) },
		func(r *wirebin.Reader) any { return decodeListPartsResp(r) },
	)
	wirebin.Register(wbLeaseReq, LeaseReq{},
		func(buf []byte, v any) []byte { return appendLeaseReq(buf, v.(LeaseReq)) },
		func(r *wirebin.Reader) any { return decodeLeaseReq(r) },
	)
	wirebin.Register(wbLeaseGrant, LeaseGrant{},
		func(buf []byte, v any) []byte { return appendLeaseGrant(buf, v.(LeaseGrant)) },
		func(r *wirebin.Reader) any { return decodeLeaseGrant(r) },
	)
	wirebin.Register(wbWatchReq, WatchReq{},
		func(buf []byte, v any) []byte { return buf },
		func(r *wirebin.Reader) any { return WatchReq{} },
	)
	wirebin.Register(wbInvalidation, Invalidation{},
		func(buf []byte, v any) []byte { return appendInvalidation(buf, v.(Invalidation)) },
		func(r *wirebin.Reader) any { return decodeInvalidation(r) },
	)
	wirebin.Register(wbSyncPartReq, SyncPartReq{},
		func(buf []byte, v any) []byte { return appendSyncPartReq(buf, v.(SyncPartReq)) },
		func(r *wirebin.Reader) any { return decodeSyncPartReq(r) },
	)
	wirebin.Register(wbSyncPartResp, SyncPartResp{},
		func(buf []byte, v any) []byte { return wirebin.AppendBool(buf, v.(SyncPartResp).Applied) },
		func(r *wirebin.Reader) any { return SyncPartResp{Applied: r.Bool()} },
	)
	wirebin.Register(wbDigestReq, DigestReq{},
		func(buf []byte, v any) []byte { return wirebin.AppendString(buf, v.(DigestReq).Name) },
		func(r *wirebin.Reader) any { return DigestReq{Name: r.String()} },
	)
	wirebin.Register(wbDigestResp, DigestResp{},
		func(buf []byte, v any) []byte { return appendDigestResp(buf, v.(DigestResp)) },
		func(r *wirebin.Reader) any { return decodeDigestResp(r) },
	)
}

func appendGetReq(buf []byte, v GetReq) []byte {
	return wirebin.AppendString(buf, string(v.ID))
}

func decodeGetReq(r *wirebin.Reader) GetReq {
	return GetReq{ID: ObjectID(r.String())}
}

// appendMapLen writes the map presence sentinel: 0 for nil, n+1 for a
// non-nil map with n entries. gob transmits empty non-nil maps (unlike
// empty slices), so the codec must tell the two apart on the wire.
func appendMapLen(buf []byte, n int, isNil bool) []byte {
	if isNil {
		return wirebin.AppendUvarint(buf, 0)
	}
	return wirebin.AppendUvarint(buf, uint64(n)+1)
}

func appendObject(buf []byte, o Object) []byte {
	buf = wirebin.AppendString(buf, string(o.ID))
	buf = wirebin.AppendBytes(buf, o.Data)
	buf = wirebin.AppendUvarint(buf, o.Version)
	buf = wirebin.AppendBool(buf, o.Tombstone)
	buf = appendMapLen(buf, len(o.Attrs), o.Attrs == nil)
	for k, v := range o.Attrs {
		buf = wirebin.AppendString(buf, k)
		buf = wirebin.AppendString(buf, v)
	}
	return buf
}

func decodeObject(r *wirebin.Reader) Object {
	var o Object
	decodeObjectInto(r, &o)
	return o
}

func decodeObjectInto(r *wirebin.Reader, o *Object) {
	o.ID = ObjectID(r.String())
	o.Data = r.Bytes()
	o.Version = r.Uvarint()
	o.Tombstone = r.Bool()
	sentinel := r.Uvarint()
	if sentinel == 0 || r.Err() != nil {
		o.Attrs = nil
		return
	}
	// Each entry costs at least two length prefixes; CheckCount rejects
	// counts the remaining frame could not hold before sizing the map.
	n := r.CheckCount(sentinel-1, 2)
	if r.Err() != nil {
		return
	}
	attrs := make(map[string]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		attrs[k] = r.String()
	}
	o.Attrs = attrs
}

func appendIDs(buf []byte, ids []ObjectID) []byte {
	buf = wirebin.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = wirebin.AppendString(buf, string(id))
	}
	return buf
}

func decodeIDs(r *wirebin.Reader) []ObjectID {
	n := r.Count(1)
	if n == 0 || r.Err() != nil {
		return nil
	}
	ids := make([]ObjectID, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		ids = append(ids, ObjectID(r.String()))
	}
	return ids
}

func appendGetBatchReq(buf []byte, v GetBatchReq) []byte {
	buf = appendIDs(buf, v.IDs)
	buf = appendMapLen(buf, len(v.Known), v.Known == nil)
	for id, ver := range v.Known {
		buf = wirebin.AppendString(buf, string(id))
		buf = wirebin.AppendUvarint(buf, ver)
	}
	return buf
}

func decodeGetBatchReq(r *wirebin.Reader) GetBatchReq {
	var v GetBatchReq
	v.IDs = decodeIDs(r)
	sentinel := r.Uvarint()
	if sentinel == 0 || r.Err() != nil {
		return v
	}
	n := r.CheckCount(sentinel-1, 2)
	if r.Err() != nil {
		return v
	}
	known := make(map[ObjectID]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := ObjectID(r.String())
		known[id] = r.Uvarint()
	}
	v.Known = known
	return v
}

func appendGetBatchResp(buf []byte, v GetBatchResp) []byte {
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Objects)))
	for i := range v.Objects {
		buf = appendObject(buf, v.Objects[i])
	}
	buf = appendIDs(buf, v.NotModified)
	return appendIDs(buf, v.Missing)
}

func decodeGetBatchResp(r *wirebin.Reader) GetBatchResp {
	var v GetBatchResp
	// Each object costs at least 5 bytes on the wire (four length
	// prefixes and a bool); bound the slice by that.
	n := r.Count(5)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		objs := make([]Object, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			decodeObjectInto(r, &objs[i])
		}
		v.Objects = objs
	}
	v.NotModified = decodeIDs(r)
	v.Missing = decodeIDs(r)
	return v
}

func appendListReq(buf []byte, v ListReq) []byte {
	buf = wirebin.AppendString(buf, v.Name)
	buf = wirebin.AppendVarint(buf, v.Pin)
	return wirebin.AppendUvarint(buf, v.IfVersion)
}

func decodeListReq(r *wirebin.Reader) ListReq {
	return ListReq{
		Name:      r.String(),
		Pin:       r.Varint(),
		IfVersion: r.Uvarint(),
	}
}

func appendListResp(buf []byte, v ListResp) []byte {
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Members)))
	for _, ref := range v.Members {
		buf = wirebin.AppendString(buf, string(ref.ID))
		buf = wirebin.AppendString(buf, string(ref.Node))
	}
	buf = wirebin.AppendUvarint(buf, v.Version)
	return wirebin.AppendBool(buf, v.NotModified)
}

func decodeListResp(r *wirebin.Reader) ListResp {
	var v ListResp
	n := r.Count(2)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		members := make([]Ref, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			id := ObjectID(r.String())
			node := netsim.NodeID(r.String())
			members = append(members, Ref{ID: id, Node: node})
		}
		v.Members = members
	}
	v.Version = r.Uvarint()
	v.NotModified = r.Bool()
	return v
}

func appendListPartsReq(buf []byte, v ListPartsReq) []byte {
	buf = wirebin.AppendString(buf, v.Name)
	buf = wirebin.AppendVarint(buf, v.Pin)
	buf = wirebin.AppendUvarint(buf, uint64(len(v.IfVersions)))
	for _, gate := range v.IfVersions {
		buf = wirebin.AppendUvarint(buf, gate)
	}
	buf = wirebin.AppendBool(buf, v.Stream)
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Parts)))
	for _, p := range v.Parts {
		buf = wirebin.AppendVarint(buf, int64(p))
	}
	return buf
}

func decodeListPartsReq(r *wirebin.Reader) ListPartsReq {
	var v ListPartsReq
	v.Name = r.String()
	v.Pin = r.Varint()
	n := r.Count(1)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		gates := make([]uint64, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			gates = append(gates, r.Uvarint())
		}
		v.IfVersions = gates
	}
	v.Stream = r.Bool()
	if n := r.Count(1); n > 0 && r.Err() == nil {
		parts := make([]int, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			parts = append(parts, int(r.Varint()))
		}
		v.Parts = parts
	}
	return v
}

func appendPartListing(buf []byte, v PartListing) []byte {
	buf = wirebin.AppendVarint(buf, int64(v.Part))
	buf = wirebin.AppendVarint(buf, int64(v.Partitions))
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Members)))
	for _, ref := range v.Members {
		buf = wirebin.AppendString(buf, string(ref.ID))
		buf = wirebin.AppendString(buf, string(ref.Node))
	}
	buf = wirebin.AppendUvarint(buf, v.Version)
	buf = wirebin.AppendBool(buf, v.NotModified)
	return wirebin.AppendBool(buf, v.Skewed)
}

func decodePartListing(r *wirebin.Reader) PartListing {
	var v PartListing
	decodePartListingInto(r, &v)
	return v
}

func decodePartListingInto(r *wirebin.Reader, v *PartListing) {
	v.Part = int(r.Varint())
	v.Partitions = int(r.Varint())
	n := r.Count(2)
	if r.Err() != nil {
		return
	}
	if n > 0 {
		members := make([]Ref, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			id := ObjectID(r.String())
			node := netsim.NodeID(r.String())
			members = append(members, Ref{ID: id, Node: node})
		}
		v.Members = members
	}
	v.Version = r.Uvarint()
	v.NotModified = r.Bool()
	v.Skewed = r.Bool()
}

func appendListPartsResp(buf []byte, v ListPartsResp) []byte {
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Parts)))
	for i := range v.Parts {
		buf = appendPartListing(buf, v.Parts[i])
	}
	return buf
}

func decodeListPartsResp(r *wirebin.Reader) ListPartsResp {
	var v ListPartsResp
	// Each partition listing costs at least 5 bytes (two varints, a
	// member count, a version, a bool); bound the slice by that.
	n := r.Count(5)
	if n == 0 || r.Err() != nil {
		return v
	}
	parts := make([]PartListing, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		decodePartListingInto(r, &parts[i])
	}
	v.Parts = parts
	return v
}

func appendLeaseReq(buf []byte, v LeaseReq) []byte {
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Colls)))
	for _, c := range v.Colls {
		buf = wirebin.AppendString(buf, c)
	}
	return buf
}

func decodeLeaseReq(r *wirebin.Reader) LeaseReq {
	var v LeaseReq
	n := r.Count(1)
	if n == 0 || r.Err() != nil {
		return v
	}
	colls := make([]string, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		colls = append(colls, r.String())
	}
	v.Colls = colls
	return v
}

func appendLeaseGrant(buf []byte, v LeaseGrant) []byte {
	buf = wirebin.AppendVarint(buf, int64(v.TTL))
	buf = appendMapLen(buf, len(v.Versions), v.Versions == nil)
	for coll, ver := range v.Versions {
		buf = wirebin.AppendString(buf, coll)
		buf = wirebin.AppendUvarint(buf, ver)
	}
	return buf
}

func decodeLeaseGrant(r *wirebin.Reader) LeaseGrant {
	var v LeaseGrant
	v.TTL = time.Duration(r.Varint())
	sentinel := r.Uvarint()
	if sentinel == 0 || r.Err() != nil {
		return v
	}
	n := r.CheckCount(sentinel-1, 2)
	if r.Err() != nil {
		return v
	}
	versions := make(map[string]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		coll := r.String()
		versions[coll] = r.Uvarint()
	}
	v.Versions = versions
	return v
}

// Invalidation is the push hot path: one frame per listing change on a
// leased collection, so the encode must not allocate and the decode must
// intern the collection name (the same few collections repeat for the
// life of a watch stream).
func appendInvalidation(buf []byte, v Invalidation) []byte {
	buf = wirebin.AppendString(buf, v.Coll)
	buf = wirebin.AppendVarint(buf, int64(v.Part))
	return wirebin.AppendUvarint(buf, v.Version)
}

func decodeInvalidation(r *wirebin.Reader) Invalidation {
	return Invalidation{
		Coll:    r.String(),
		Part:    int(r.Varint()),
		Version: r.Uvarint(),
	}
}

func appendSyncPartReq(buf []byte, v SyncPartReq) []byte {
	buf = wirebin.AppendString(buf, v.Name)
	buf = wirebin.AppendVarint(buf, int64(v.Partitions))
	buf = wirebin.AppendVarint(buf, int64(v.Part))
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Members)))
	for _, ref := range v.Members {
		buf = wirebin.AppendString(buf, string(ref.ID))
		buf = wirebin.AppendString(buf, string(ref.Node))
	}
	buf = wirebin.AppendUvarint(buf, v.Version)
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Objects)))
	for i := range v.Objects {
		buf = appendObject(buf, v.Objects[i])
	}
	return buf
}

func decodeSyncPartReq(r *wirebin.Reader) SyncPartReq {
	var v SyncPartReq
	v.Name = r.String()
	v.Partitions = int(r.Varint())
	v.Part = int(r.Varint())
	n := r.Count(2)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		members := make([]Ref, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			id := ObjectID(r.String())
			node := netsim.NodeID(r.String())
			members = append(members, Ref{ID: id, Node: node})
		}
		v.Members = members
	}
	v.Version = r.Uvarint()
	n = r.Count(5)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		objs := make([]Object, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			decodeObjectInto(r, &objs[i])
		}
		v.Objects = objs
	}
	return v
}

func appendDigestResp(buf []byte, v DigestResp) []byte {
	buf = wirebin.AppendVarint(buf, int64(v.Partitions))
	buf = wirebin.AppendUvarint(buf, uint64(len(v.Versions)))
	for _, ver := range v.Versions {
		buf = wirebin.AppendUvarint(buf, ver)
	}
	return wirebin.AppendVarint(buf, v.AgeMs)
}

func decodeDigestResp(r *wirebin.Reader) DigestResp {
	var v DigestResp
	v.Partitions = int(r.Varint())
	n := r.Count(1)
	if r.Err() != nil {
		return v
	}
	if n > 0 {
		versions := make([]uint64, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			versions = append(versions, r.Uvarint())
		}
		v.Versions = versions
	}
	v.AgeMs = r.Varint()
	return v
}
