package repo

import (
	"context"

	"fmt"
	"sync"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/rpc"
)

// This file is the home side of replication anti-entropy. Writes commit
// on the home node only; the syncer then reconciles each replica against
// the home's per-partition version vector: digest the replica
// (MethodSyncDigest), push only the partitions it is behind on
// (MethodSyncPart), fall back to a full MethodSync push for old peers or
// layout disagreements. A replica lost to a partition or crash is marked
// pending (the hinted-handoff bookkeeping, journaled as EvHandoff) and
// repaired by the next kick or background tick that reaches it
// (EvRepair) — divergence is legal under the paper's weak semantics and
// is surfaced, never hidden, through the digest ages the read path
// reports as GhostAge.

// syncer coalesces anti-entropy rounds per collection: a kick while a
// round is running marks the collection dirty and the running round
// loops once more, so a write burst costs one round, not one per write.
type syncer struct {
	s *Server

	mu    sync.Mutex
	colls map[string]*collSync
}

// collSync is one collection's sync state on the home node.
type collSync struct {
	replicas []netsim.NodeID
	running  bool
	dirty    bool
	// pending marks replicas whose last round failed (unreachable or
	// erroring): the hinted-handoff set a later round repairs.
	pending map[netsim.NodeID]bool
}

func newSyncer(s *Server) *syncer {
	return &syncer{s: s, colls: make(map[string]*collSync)}
}

// setReplicas records the replica set the syncer maintains for name.
func (sy *syncer) setReplicas(name string, replicas []netsim.NodeID) {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	cs := sy.colls[name]
	if cs == nil {
		cs = &collSync{pending: make(map[netsim.NodeID]bool)}
		sy.colls[name] = cs
	}
	cs.replicas = append([]netsim.NodeID(nil), replicas...)
}

// state returns (creating from the store's persisted replica set if
// needed) the collection's sync state. A collection restored by Import
// carries its replicas in the engine but was never ReplicateCollection'd
// this process; the first kick adopts them here.
func (sy *syncer) state(name string) *collSync {
	sy.mu.Lock()
	cs := sy.colls[name]
	sy.mu.Unlock()
	if cs != nil {
		return cs
	}
	_, _, replicas, _ := sy.s.store.SyncState(name)
	sy.mu.Lock()
	defer sy.mu.Unlock()
	if cs = sy.colls[name]; cs == nil {
		cs = &collSync{replicas: replicas, pending: make(map[netsim.NodeID]bool)}
		sy.colls[name] = cs
	}
	return cs
}

// names lists the collections with at least one replica (ticker input).
func (sy *syncer) names() []string {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	out := make([]string, 0, len(sy.colls))
	for name, cs := range sy.colls {
		if len(cs.replicas) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// kick schedules an asynchronous anti-entropy round for name. Rounds
// coalesce: at most one runs per collection, and kicks landing mid-round
// make it loop once more.
func (sy *syncer) kick(name string) {
	cs := sy.state(name)
	sy.mu.Lock()
	if len(cs.replicas) == 0 {
		sy.mu.Unlock()
		return
	}
	if cs.running {
		cs.dirty = true
		sy.mu.Unlock()
		return
	}
	cs.running = true
	sy.mu.Unlock()

	select {
	case <-sy.s.closed:
		sy.mu.Lock()
		cs.running = false
		sy.mu.Unlock()
		return
	default:
	}
	sy.s.wg.Add(1)
	go func() {
		defer sy.s.wg.Done()
		for {
			sy.mu.Lock()
			replicas := append([]netsim.NodeID(nil), cs.replicas...)
			sy.mu.Unlock()
			sy.round(name, cs, replicas)
			sy.mu.Lock()
			done := !cs.dirty
			cs.dirty = false
			if done {
				cs.running = false
			}
			sy.mu.Unlock()
			if done {
				return
			}
			select {
			case <-sy.s.closed:
				sy.mu.Lock()
				cs.running = false
				sy.mu.Unlock()
				return
			default:
			}
		}
	}()
}

// startTicker runs periodic repair rounds until the server closes.
func (sy *syncer) startTicker(interval time.Duration) {
	if interval <= 0 {
		return
	}
	sy.s.wg.Add(1)
	go func() {
		defer sy.s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-sy.s.closed:
				return
			case <-t.C:
				for _, name := range sy.names() {
					sy.kick(name)
				}
			}
		}
	}()
}

// round reconciles every replica once, concurrently, and settles the
// hinted-handoff bookkeeping: a replica that failed flips to pending
// (EvHandoff, once per outage), a pending replica that caught up is
// repaired (EvRepair).
func (sy *syncer) round(name string, cs *collSync, replicas []netsim.NodeID) {
	var wg sync.WaitGroup
	for _, replica := range replicas {
		replica := replica
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sy.syncReplica(context.Background(), name, replica)
			sy.mu.Lock()
			wasPending := cs.pending[replica]
			if err != nil {
				cs.pending[replica] = true
			} else {
				delete(cs.pending, replica)
			}
			sy.mu.Unlock()
			switch {
			case err != nil && !wasPending:
				sy.s.journal.Record(obs.Event{
					Type: obs.EvHandoff, Node: string(replica), Collection: name,
					Detail: err.Error(),
				})
			case err == nil && wasPending:
				sy.s.journal.Record(obs.Event{
					Type: obs.EvRepair, Node: string(replica), Collection: name,
				})
			}
		}()
	}
	wg.Wait()
}

// syncReplica brings one replica up to date with the home's current
// per-partition versions: digest, then push only the stale partitions.
// Old peers (no SyncDigest/SyncPart method) and layout disagreements
// fall back to the legacy full-membership push. A transport failure
// returns the error — the caller's handoff bookkeeping owns it.
func (sy *syncer) syncReplica(ctx context.Context, name string, replica netsim.NodeID) error {
	st := sy.s.store
	homeVers, err := st.PartVersions(name)
	if err != nil {
		return nil // collection gone; nothing to sync
	}
	digest, err := rpc.Invoke[DigestResp](ctx, sy.s.bus, sy.s.node, replica, MethodSyncDigest, DigestReq{Name: name})
	if err != nil {
		if netsim.IsFailure(err) {
			return err
		}
		// Not a transport failure: an old peer (no SyncDigest method) or
		// a replica that has never seen the collection. Either way one
		// full push settles it.
		return sy.pushFull(ctx, name, replica)
	}
	if digest.Partitions != len(homeVers) {
		// Layout disagreement (or a replica that has never seen the
		// collection at this partition count): full push rebuilds it.
		return sy.pushFull(ctx, name, replica)
	}
	for part, homeVer := range homeVers {
		var replicaVer uint64
		if part < len(digest.Versions) {
			replicaVer = digest.Versions[part]
		}
		if homeVer <= replicaVer {
			continue
		}
		members, version, _, lerr := st.ListPart(name, part, 0)
		if lerr != nil {
			return nil // collection gone mid-round
		}
		// Ship the data of home-resident members along with the listing,
		// so the replica can serve GetBatch for them. Members homed on
		// other nodes travel by reference only — their data is already
		// where the ref points.
		var objs []Object
		for _, ref := range members {
			if ref.Node != sy.s.node {
				continue
			}
			obj, gerr := st.GetObject(ref.ID)
			if gerr != nil {
				continue // deleted since listing; a later round settles it
			}
			objs = append(objs, obj)
		}
		req := SyncPartReq{Name: name, Partitions: len(homeVers), Part: part, Members: members, Version: version, Objects: objs}
		resp, perr := rpc.Invoke[SyncPartResp](ctx, sy.s.bus, sy.s.node, replica, MethodSyncPart, req)
		if perr != nil {
			if netsim.IsFailure(perr) {
				return perr
			}
			return sy.pushFull(ctx, name, replica)
		}
		if !resp.Applied {
			// The replica declined (layout raced or the push was stale
			// against a newer one): one full push settles it.
			return sy.pushFull(ctx, name, replica)
		}
	}
	return nil
}

// pushFull is the whole-membership push — the fallback for old peers,
// layout disagreements, and replicas seeing the collection for the
// first time. It ships home-resident member data along with the
// listing: after a full push the replica's versions match the home's,
// so no per-partition round would ever carry the objects later.
func (sy *syncer) pushFull(ctx context.Context, name string, replica netsim.NodeID) error {
	members, version, _, ok := sy.s.store.SyncState(name)
	if !ok {
		return nil
	}
	var objs []Object
	for _, ref := range members {
		if ref.Node != sy.s.node {
			continue
		}
		obj, gerr := sy.s.store.GetObject(ref.ID)
		if gerr != nil {
			continue // deleted since listing; a later round settles it
		}
		objs = append(objs, obj)
	}
	req := SyncReq{Name: name, Members: members, Version: version, Objects: objs}
	_, _, err := sy.s.bus.Call(ctx, sy.s.node, replica, MethodSync, req)
	return err
}

// handleSyncPart applies a per-partition replication push on a replica.
func (s *Server) handleSyncPart(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(SyncPartReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	// Install replicated object data before exposing the membership that
	// lists it, so a reader landing between the two finds the data.
	for i := range r.Objects {
		s.store.InstallObject(r.Objects[i])
	}
	applied := s.store.ApplySyncPart(r.Name, r.Partitions, r.Part, r.Members, r.Version)
	if applied {
		s.lastSync.Store(r.Name, time.Now())
	}
	return SyncPartResp{Applied: applied}, nil
}

// handleSyncDigest reports this node's anti-entropy digest for one
// collection: the per-partition version vector plus how long ago the
// home last pushed here (AgeMs; -1 when it never has — on the home
// itself, or a replica that has never been synced).
func (s *Server) handleSyncDigest(ctx context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(DigestReq)
	if !ok {
		return nil, fmt.Errorf("repo: bad request type %T", req)
	}
	vers, err := s.store.PartVersions(r.Name)
	if err != nil {
		return nil, err
	}
	age := int64(-1)
	if at, ok := s.lastSync.Load(r.Name); ok {
		age = time.Since(at.(time.Time)).Milliseconds()
	}
	return DigestResp{Partitions: len(vers), Versions: vers, AgeMs: age}, nil
}
