package repo

import (
	"context"
	"fmt"
	"testing"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

// partFor mirrors the store's FNV-1a partition map so tests can aim
// mutations at a chosen partition.
func partFor(id ObjectID, total int) int {
	if total == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(total))
}

func seedParts(t *testing.T, w *world, n int) map[ObjectID]bool {
	t.Helper()
	w.mustColl(t, "c")
	ids := make(map[ObjectID]bool, n)
	for i := 0; i < n; i++ {
		ref := w.mustPut(t, "s1", ObjectID(fmt.Sprintf("p%03d", i)), "x")
		if err := w.client.Add(context.Background(), "dir", "c", ref); err != nil {
			t.Fatal(err)
		}
		ids[ref.ID] = true
	}
	return ids
}

func collectParts(t *testing.T, w *world, gates []uint64) []PartListing {
	t.Helper()
	var out []PartListing
	err := w.client.ListParts(context.Background(), "dir", "c", 0, gates, func(pl PartListing) error {
		out = append(out, pl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestListPartsReassemblesMembership(t *testing.T) {
	w := newWorld(t)
	want := seedParts(t, w, 50)
	parts := collectParts(t, w, nil)
	if len(parts) < 2 {
		t.Fatalf("got %d partitions, want a partitioned listing", len(parts))
	}
	got := make(map[ObjectID]bool)
	for _, pl := range parts {
		if pl.Partitions != len(parts) {
			t.Fatalf("frame %d stamps Partitions=%d, want %d", pl.Part, pl.Partitions, len(parts))
		}
		for _, m := range pl.Members {
			if got[m.ID] {
				t.Fatalf("member %s listed twice", m.ID)
			}
			got[m.ID] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d members, want %d", len(got), len(want))
	}
}

func TestListPartsVersionVectorGating(t *testing.T) {
	w := newWorld(t)
	seedParts(t, w, 50)
	first := collectParts(t, w, nil)
	gates := make([]uint64, len(first))
	for _, pl := range first {
		gates[pl.Part] = pl.Version
	}
	// Gated at the current vector every partition answers NotModified.
	for _, pl := range collectParts(t, w, gates) {
		if !pl.NotModified || len(pl.Members) != 0 {
			t.Fatalf("part %d: notMod=%v members=%d under current gate", pl.Part, pl.NotModified, len(pl.Members))
		}
	}
	// One add invalidates exactly that member's partition.
	ref := w.mustPut(t, "s1", "fresh-member", "x")
	if err := w.client.Add(context.Background(), "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	target := partFor(ref.ID, len(first))
	for _, pl := range collectParts(t, w, gates) {
		if pl.Part == target {
			if pl.NotModified {
				t.Fatalf("mutated partition %d still NotModified", pl.Part)
			}
		} else if !pl.NotModified {
			t.Fatalf("untouched partition %d shipped members", pl.Part)
		}
	}
}

// TestListPartsSkewStamping mutates the collection between partition
// snapshots of one streamed listing: the partition snapshotted after
// the write must carry the Skewed mark (and the write), while
// partitions taken before it don't.
func TestListPartsSkewStamping(t *testing.T) {
	w := newWorld(t)
	seedParts(t, w, 50)
	total := len(collectParts(t, w, nil))
	// An id hashing past partition 0, so the mid-stream add lands in a
	// partition not yet snapshotted when frame 0 is delivered.
	var lateID ObjectID
	for i := 0; ; i++ {
		id := ObjectID(fmt.Sprintf("late-%d", i))
		if partFor(id, total) > 0 {
			lateID = id
			break
		}
	}
	ctx := context.Background()
	var (
		sawSkew bool
		sawLate bool
	)
	err := w.client.ListParts(ctx, "dir", "c", 0, nil, func(pl PartListing) error {
		if pl.Part == 0 {
			if pl.Skewed {
				t.Fatal("first partition marked Skewed before any mid-stream write")
			}
			ref := w.mustPut(t, "s1", lateID, "x")
			if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
				t.Fatal(err)
			}
			return nil
		}
		if pl.Skewed {
			sawSkew = true
		}
		for _, m := range pl.Members {
			if m.ID == lateID {
				sawLate = true
				if !pl.Skewed {
					t.Fatal("partition listing the mid-stream add is not marked Skewed")
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawSkew {
		t.Fatal("no partition marked Skewed after a mid-stream write")
	}
	if !sawLate {
		t.Fatal("mid-stream add never surfaced in a later partition")
	}
}

// TestListPartsFallbackOldPeer points ListParts at a directory that
// predates the method: the client must synthesize a single-partition
// listing from the monolithic List, and a one-entry gate vector must
// map onto the monolithic IfVersion gate.
func TestListPartsFallbackOldPeer(t *testing.T) {
	w := newWorld(t)
	want := seedParts(t, w, 30)
	// Simulate an old peer: the method answers ErrNoMethod.
	w.dirSrv.rpc.Handle(MethodListParts, func(context.Context, netsim.NodeID, any) (any, error) {
		return nil, fmt.Errorf("old peer: %w", rpc.ErrNoMethod)
	})
	parts := collectParts(t, w, nil)
	if len(parts) != 1 || parts[0].Part != 0 || parts[0].Partitions != 1 {
		t.Fatalf("fallback shape = %+v, want one partition 0 of 1", parts)
	}
	if len(parts[0].Members) != len(want) {
		t.Fatalf("fallback listed %d members, want %d", len(parts[0].Members), len(want))
	}
	// A one-entry vector gates the monolithic read.
	gated := collectParts(t, w, []uint64{parts[0].Version})
	if len(gated) != 1 || !gated[0].NotModified || len(gated[0].Members) != 0 {
		t.Fatalf("gated fallback = %+v, want NotModified", gated)
	}
}

func TestListPartsPinnedSnapshot(t *testing.T) {
	w := newWorld(t)
	want := seedParts(t, w, 40)
	ctx := context.Background()
	pin, err := w.client.Pin(ctx, "dir", "c")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.client.Unpin(ctx, "dir", "c", pin) }()
	// Mutations after the pin must not show in the pinned listing.
	ref := w.mustPut(t, "s1", "post-pin", "x")
	if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
		t.Fatal(err)
	}
	got := make(map[ObjectID]bool)
	err = w.client.ListParts(ctx, "dir", "c", pin, nil, func(pl PartListing) error {
		for _, m := range pl.Members {
			got[m.ID] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pinned listing has %d members, want %d", len(got), len(want))
	}
	if got["post-pin"] {
		t.Fatal("pinned listing leaked a post-pin add")
	}
}
