package repo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheStressRaw hammers a small-capacity cache from many goroutines
// mixing Put, Get, Len, and Stats, then checks the counter algebra. Run
// with -race this doubles as the data-race check for the LRU internals.
func TestCacheStressRaw(t *testing.T) {
	const (
		capacity = 32
		workers  = 8
		iters    = 2000
		keySpace = 128
	)
	c := NewCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ObjectID(fmt.Sprintf("k%03d", (i*7+w*13)%keySpace))
				switch i % 3 {
				case 0:
					c.Put(Object{ID: id, Data: []byte{byte(w)}})
				case 1:
					if obj, ok := c.Get(id); ok && obj.ID != id {
						t.Errorf("got %q for key %q", obj.ID, id)
						return
					}
				default:
					if c.Len() > capacity {
						t.Errorf("len %d exceeds cap %d", c.Len(), capacity)
						return
					}
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if c.Len() > capacity {
		t.Fatalf("final len %d exceeds cap %d", c.Len(), capacity)
	}
	// Every store either still resides in the cache or was evicted:
	// Stores − Evictions must equal the live entry count exactly.
	if live := st.Stores - st.Evictions; live != int64(c.Len()) {
		t.Fatalf("stores(%d) − evictions(%d) = %d, but len = %d",
			st.Stores, st.Evictions, live, c.Len())
	}
	if st.StaleServes != 0 || st.Misses != 0 {
		t.Fatalf("raw Put/Get produced fetch counters: %+v", st)
	}
}

// TestCacheStressCoherent hammers the coherence surface — PutValidated,
// ServeFresh, MarkValidated, PutNegative, Version, Drop — from many
// goroutines over a key space larger than capacity, then checks that the
// entry ledger balances: every store is still resident, was evicted, or
// was dropped. With -race this is the data-race check for the stamp maps.
func TestCacheStressCoherent(t *testing.T) {
	const (
		capacity = 32
		workers  = 8
		iters    = 2000
		keySpace = 96
		colls    = 3
	)
	c := NewCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ObjectID(fmt.Sprintf("k%03d", (i*11+w*17)%keySpace))
				coll := fmt.Sprintf("c%d", (i+w)%colls)
				ver := uint64(i%50 + 1)
				switch i % 6 {
				case 0:
					c.PutValidated(coll, ver, Object{ID: id, Version: ver, Data: []byte{byte(w)}})
				case 1:
					if obj, neg, ok := c.ServeFresh(coll, ver, id); ok && !neg && obj.ID != id {
						t.Errorf("served %q for key %q", obj.ID, id)
						return
					}
				case 2:
					if obj, ok := c.MarkValidated(coll, ver, id); ok && obj.ID != id {
						t.Errorf("validated %q for key %q", obj.ID, id)
						return
					}
				case 3:
					c.PutNegative(coll, ver, id)
				case 4:
					c.Version(id)
					if c.Len() > capacity {
						t.Errorf("len %d exceeds cap %d", c.Len(), capacity)
						return
					}
				default:
					c.Drop(id)
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := c.Stats()
	if c.Len() > capacity {
		t.Fatalf("final len %d exceeds cap %d", c.Len(), capacity)
	}
	// Every stored entry is still live, was evicted by capacity, or was
	// dropped by an invalidation — nothing leaks, nothing double-counts.
	if live := st.Stores - st.Evictions - st.Drops; live != int64(c.Len()) {
		t.Fatalf("stores(%d) − evictions(%d) − drops(%d) = %d, but len = %d",
			st.Stores, st.Evictions, st.Drops, live, c.Len())
	}
	if st.StaleServes != 0 || st.Misses != 0 {
		t.Fatalf("coherence ops produced fetch counters: %+v", st)
	}
}

// TestLeaseStressPushExpiryRace soaks the lease protocol under -race: a
// tiny server TTL keeps grant, piggyback renewal, client renewal, lazy
// expiry reaping, and invalidation pushes all racing, while reader
// goroutines hammer the hot-path surface (Serveable/Track/Stats) the
// way concurrent iterators on one shared client do. The invariant under
// all that churn: the certified version each reader observes never goes
// backwards, and the counter algebra stays coherent.
func TestLeaseStressPushExpiryRace(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	const (
		readers = 6
		writes  = 300
	)
	w.mustColl(t, "c")
	// 20ms TTL: short enough that the writer's quiet gaps (30ms, below)
	// lapse the lease server-side and exercise lazy expiry reaping, long
	// enough that the client's TTL/2 renewals keep it alive in between.
	w.dirSrv.SetLeaseTTL(20 * time.Millisecond)
	ls := NewLeaseState(w.client, "dir", "c")
	if err := ls.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer ls.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < writes; i++ {
			id := ObjectID(fmt.Sprintf("s%04d", i))
			ref := w.mustPut(t, "s1", id, "x")
			if err := w.client.Add(ctx, "dir", "c", ref); err != nil {
				t.Errorf("add %s: %v", id, err)
				return
			}
			if i%32 == 0 {
				// Go quiet past a full TTL so server-side reaping actually
				// fires (piggyback renewal on the writes otherwise keeps
				// the lease alive throughout).
				time.Sleep(30 * time.Millisecond)
			}
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var last uint64
			for i := 0; !stop.Load(); i++ {
				v, age, ok := ls.Serveable("c")
				if ok {
					if v < last {
						t.Errorf("reader %d: certified version went backwards: %d after %d", g, v, last)
						return
					}
					last = v
					if age < 0 {
						t.Errorf("reader %d: negative lease age %v", g, age)
						return
					}
				}
				if i%8 == 0 {
					ls.Track("c")
					ls.Stats()
				}
				// Yield the processor each pass: on a small GOMAXPROCS a
				// spin loop would starve the renew/consume goroutines and
				// turn the soak into a clock test instead of a race test.
				time.Sleep(50 * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce, then check the ledger: the final listing version must be
	// catchable through the lease alone (re-grant or push), and the
	// counters must reflect real traffic.
	wantVer, err := w.dirSrv.Store().ListVersion("c")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		v, _, ok := ls.Serveable("c")
		return ok && v >= wantVer
	})
	st := ls.Stats()
	if !st.Active || st.Held != 1 {
		t.Fatalf("post-soak stats = %+v, want active with 1 held", st)
	}
	if st.Grants == 0 || st.Invalidations == 0 {
		t.Fatalf("soak exercised nothing: %+v", st)
	}
}

// TestCacheStressGetThrough drives GetThrough concurrently across a
// connect → partition → heal cycle and checks the stale-serve accounting:
// while the owner is unreachable every attempt is either answered stale
// from the cache or counted as a miss, never both, never neither.
func TestCacheStressGetThrough(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	const (
		nObjects = 24
		capacity = 16 // smaller than nObjects: some entries must evict
		workers  = 6
		iters    = 120
	)
	refs := make([]Ref, nObjects)
	for i := range refs {
		refs[i] = w.mustPut(t, "s1", ObjectID(fmt.Sprintf("o%02d", i)), "payload")
	}
	c := NewCache(capacity)

	// Phase 1: connected. Every fetch succeeds and warms the cache.
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ref := refs[(i+g*17)%nObjects]
				obj, stale, err := c.GetThrough(ctx, w.client, ref)
				if err != nil || stale {
					t.Errorf("connected fetch %q: stale=%v err=%v", ref.ID, stale, err)
					return
				}
				if obj.ID != ref.ID {
					t.Errorf("fetched %q for ref %q", obj.ID, ref.ID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	warm := c.Stats()
	if warm.StaleServes != 0 || warm.Misses != 0 {
		t.Fatalf("connected phase recorded failures: %+v", warm)
	}
	if c.Len() != capacity || warm.Evictions != warm.Stores-int64(capacity) {
		t.Fatalf("warm cache: len=%d stats=%+v", c.Len(), warm)
	}

	// Phase 2: owner unreachable. Each attempt must resolve to exactly one
	// of stale-serve (cache hit) or miss (cache cold for that ID).
	w.net.Isolate("s1")
	var attempts, served atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ref := refs[(i*5+g*29)%nObjects]
				attempts.Add(1)
				obj, stale, err := c.GetThrough(ctx, w.client, ref)
				switch {
				case err == nil && stale:
					served.Add(1)
					if obj.ID != ref.ID {
						t.Errorf("stale serve returned %q for %q", obj.ID, ref.ID)
						return
					}
				case err == nil:
					t.Errorf("fresh fetch of %q through a partition", ref.ID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	part := c.Stats()
	if part.Stores != warm.Stores || part.Evictions != warm.Evictions {
		t.Fatalf("partitioned phase stored entries: %+v", part)
	}
	if got := part.StaleServes + part.Misses; got != attempts.Load() {
		t.Fatalf("staleServes(%d) + misses(%d) = %d, want %d attempts",
			part.StaleServes, part.Misses, got, attempts.Load())
	}
	if part.StaleServes != served.Load() {
		t.Fatalf("counted %d stale serves, observed %d", part.StaleServes, served.Load())
	}
	if part.StaleServes == 0 {
		t.Fatal("no stale serves despite a warm cache")
	}

	// Phase 3: healed. Fetches succeed again and store fresh copies.
	w.net.Heal()
	if obj, stale, err := c.GetThrough(ctx, w.client, refs[0]); err != nil || stale || obj.ID != refs[0].ID {
		t.Fatalf("healed fetch: %+v stale=%v err=%v", obj, stale, err)
	}
	healed := c.Stats()
	if healed.StaleServes != part.StaleServes || healed.Misses != part.Misses {
		t.Fatalf("healed fetch counted as failure: %+v", healed)
	}
}
