package tcprpc

import (
	"context"
	"fmt"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

// Gateway splices a TCP-served remote server into a simulated cluster: it
// registers an rpc.Server on the given node whose handlers forward every
// listed method over the wire. To the rest of the cluster — weak sets,
// dynamic sets, queries — the remote process is just another node, still
// subject to the simulated network's latency and partitions on the local
// leg.
//
// Handlers run on their callers' goroutines and the underlying Client
// multiplexes, so concurrent bus calls to the gateway node (e.g. the
// iterator prefetcher's in-flight GetBatches) overlap on the one socket
// instead of queueing behind a per-connection lock.
type Gateway struct {
	client *Client
	node   netsim.NodeID
	// CallTimeout bounds each forwarded call. It is enforced per call
	// through the client's pending map, so one expiring call never
	// disturbs the others sharing the stream. Defaults to 10s.
	CallTimeout time.Duration
}

// NewGateway registers the gateway on bus at node, proxying methods to the
// remote client. The node must already exist in the bus's network.
func NewGateway(bus *rpc.Bus, node netsim.NodeID, client *Client, methods []string) (*Gateway, error) {
	g := &Gateway{
		client:      client,
		node:        node,
		CallTimeout: 10 * time.Second,
	}
	srv := rpc.NewServer(node)
	for _, method := range methods {
		method := method
		srv.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			// Derive from the incoming context so the caller's trace
			// context (and cancellation) flows onto the wire.
			ctx, cancel := context.WithTimeout(ctx, g.CallTimeout)
			defer cancel()
			return g.client.Call(ctx, method, req)
		})
	}
	if err := bus.Register(srv); err != nil {
		return nil, fmt.Errorf("tcprpc: gateway at %s: %w", node, err)
	}
	return g, nil
}

// Node reports the cluster node the gateway impersonates.
func (g *Gateway) Node() netsim.NodeID { return g.node }

// Stats snapshots the underlying client's transport instrumentation —
// the hook httpgw's /stats uses to surface gateway transport health.
func (g *Gateway) Stats() TransportStats { return g.client.Stats() }

// Close closes the underlying connection.
func (g *Gateway) Close() { g.client.Close() }
