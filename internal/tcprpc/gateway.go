package tcprpc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// Gateway splices a TCP-served remote server into a simulated cluster: it
// registers an rpc.Server on the given node whose handlers forward every
// listed method over the wire. To the rest of the cluster — weak sets,
// dynamic sets, queries — the remote process is just another node, still
// subject to the simulated network's latency and partitions on the local
// leg.
//
// Handlers run on their callers' goroutines and the underlying Client
// multiplexes, so concurrent bus calls to the gateway node (e.g. the
// iterator prefetcher's in-flight GetBatches) overlap on the one socket
// instead of queueing behind a per-connection lock.
type Gateway struct {
	client *Client
	node   netsim.NodeID
	// CallTimeout bounds each forwarded call. It is enforced per call
	// through the client's pending map, so one expiring call never
	// disturbs the others sharing the stream. Defaults to 10s.
	CallTimeout time.Duration
}

// NewGateway registers the gateway on bus at node, proxying methods to the
// remote client. The node must already exist in the bus's network.
func NewGateway(bus *rpc.Bus, node netsim.NodeID, client *Client, methods []string) (*Gateway, error) {
	g := &Gateway{
		client:      client,
		node:        node,
		CallTimeout: 10 * time.Second,
	}
	srv := rpc.NewServer(node)
	for _, method := range methods {
		method := method
		srv.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			// A streaming listing request is bridged end-to-end: the
			// remote chunks become an rpc.Streamer the bus hands to the
			// local consumer, so partition 0 is being fetched against
			// while partition N-1 is still crossing the socket.
			if r, ok := req.(repo.ListPartsReq); ok && r.Stream {
				return g.forwardStream(ctx, method, req)
			}
			// A watch is a long-lived push channel: bridge it end-to-end
			// with no CallTimeout (its lifetime is the lease holder's, not
			// a call's).
			if _, ok := req.(repo.WatchReq); ok {
				return g.forwardWatch(ctx, method, req)
			}
			// Derive from the incoming context so the caller's trace
			// context (and cancellation) flows onto the wire.
			ctx, cancel := context.WithTimeout(ctx, g.CallTimeout)
			defer cancel()
			return g.client.Call(ctx, method, req)
		})
	}
	if err := bus.Register(srv); err != nil {
		return nil, fmt.Errorf("tcprpc: gateway at %s: %w", node, err)
	}
	return g, nil
}

// forwardStream forwards a streamed call, returning an rpc.Streamer
// that the handler's caller consumes after the handler returns. The
// CallTimeout bounds the whole consumption, and its cancel fires when
// the stream retires rather than when this function returns — the
// stream outlives the handler by design. Connections that did not
// negotiate streaming fall back to one materialized call.
func (g *Gateway) forwardStream(ctx context.Context, method string, req any) (any, error) {
	sctx, cancel := context.WithTimeout(ctx, g.CallTimeout)
	st, err := g.client.CallStream(sctx, method, req)
	if err != nil {
		defer cancel()
		if errors.Is(err, ErrNoStreams) {
			// The remote materializes streamable bodies for such peers.
			return g.client.Call(sctx, method, req)
		}
		return nil, err
	}
	return &gatewayStream{st: st, cancel: cancel}, nil
}

// forwardWatch bridges a Watch push stream. Unlike forwardStream it is
// deliberately unbounded in time — invalidations arrive for as long as
// the lease holder lives — and it degrades to rpc.ErrNoMethod when the
// connection cannot stream, so the lease layer runs leaseless exactly as
// it would against a pre-lease peer.
func (g *Gateway) forwardWatch(ctx context.Context, method string, req any) (any, error) {
	sctx, cancel := context.WithCancel(ctx)
	st, err := g.client.CallStream(sctx, method, req)
	if err != nil {
		cancel()
		if errors.Is(err, ErrNoStreams) {
			return nil, rpc.ErrNoMethod
		}
		return nil, err
	}
	return &gatewayStream{st: st, cancel: cancel}, nil
}

// gatewayStream adapts a ClientStream into the bus-facing Streamer,
// releasing the per-call timeout when the stream ends.
type gatewayStream struct {
	st     *ClientStream
	cancel context.CancelFunc
}

func (gs *gatewayStream) Next() (any, bool) {
	chunk, ok := gs.st.Next()
	if !ok {
		gs.cancel()
	}
	return chunk, ok
}

func (gs *gatewayStream) Err() error { return gs.st.Err() }

func (gs *gatewayStream) Materialize() (any, error) {
	defer gs.cancel()
	var resp repo.ListPartsResp
	for {
		chunk, ok := gs.st.Next()
		if !ok {
			break
		}
		if pl, ok := chunk.(repo.PartListing); ok {
			resp.Parts = append(resp.Parts, pl)
		}
	}
	return resp, gs.st.Err()
}

// Node reports the cluster node the gateway impersonates.
func (g *Gateway) Node() netsim.NodeID { return g.node }

// Stats snapshots the underlying client's transport instrumentation —
// the hook httpgw's /stats uses to surface gateway transport health.
func (g *Gateway) Stats() TransportStats { return g.client.Stats() }

// Close closes the underlying connection.
func (g *Gateway) Close() { g.client.Close() }
