package tcprpc

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/metrics"
)

// MethodStats is one method's transport-level counters and round-trip
// latency summary (encode → dispatch → decode, as the caller sees it).
type MethodStats struct {
	Method string        `json:"method"`
	Count  int64         `json:"count"`
	Errors int64         `json:"errors"`
	Mean   time.Duration `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
	// BytesSent and BytesReceived are the wire bytes this method's
	// envelopes cost (post-compression, as they crossed the socket).
	BytesSent     int64 `json:"bytesSent"`
	BytesReceived int64 `json:"bytesReceived"`
}

// TransportStats is a client's transport instrumentation snapshot:
// connection churn, the in-flight gauge and its high-water mark, and
// per-method RTT histograms. Surfaced through Client.Stats,
// Gateway.Stats, and the httpgw /stats endpoint.
type TransportStats struct {
	Addr string `json:"addr"`
	// Codec is the codec the live connection negotiated ("gob",
	// "wirebin"; empty before the first dial).
	Codec string `json:"codec,omitempty"`
	// Dials counts every connection established; Reconnects is the
	// subset that replaced a previously live connection (dials - 1,
	// floored at 0 — i.e. redials after transport errors).
	Dials      int64 `json:"dials"`
	Reconnects int64 `json:"reconnects"`
	// InFlight is the current number of calls sharing the stream;
	// MaxInFlight is the high-water mark over the client's lifetime.
	InFlight    int64 `json:"inFlight"`
	MaxInFlight int64 `json:"maxInFlight"`
	// Calls and Failures count completed calls and the subset that
	// returned an error (application or transport).
	Calls    int64 `json:"calls"`
	Failures int64 `json:"failures"`
	// BytesSent and BytesReceived total the wire bytes across all
	// methods (including handshakes and unattributed frames).
	BytesSent     int64         `json:"bytesSent"`
	BytesReceived int64         `json:"bytesReceived"`
	Methods       []MethodStats `json:"methods"`
}

// methodRec accumulates one method's counters and RTT reservoir.
type methodRec struct {
	count atomic.Int64
	errs  atomic.Int64
	sent  atomic.Int64
	recv  atomic.Int64
	rtt   metrics.Histogram
}

// transportInstruments is the client's counter block. The zero value is
// ready to use.
type transportInstruments struct {
	dials      atomic.Int64
	reconnects atomic.Int64

	inflight    atomic.Int64
	maxInflight atomic.Int64

	calls    atomic.Int64
	failures atomic.Int64

	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	mu      sync.RWMutex
	codec   string
	methods map[string]*methodRec
}

// setCodec records the codec the live connection negotiated.
func (in *transportInstruments) setCodec(name string) {
	in.mu.Lock()
	in.codec = name
	in.mu.Unlock()
}

// addSent attributes sent wire bytes to a method ("" totals only).
func (in *transportInstruments) addSent(method string, n int) {
	in.bytesSent.Add(int64(n))
	if method != "" {
		in.rec(method).sent.Add(int64(n))
	}
}

// addRecv attributes received wire bytes to a method ("" totals only —
// responses whose callers already abandoned them).
func (in *transportInstruments) addRecv(method string, n int) {
	in.bytesRecv.Add(int64(n))
	if method != "" {
		in.rec(method).recv.Add(int64(n))
	}
}

// inflightUp bumps the in-flight gauge and its high-water mark.
func (in *transportInstruments) inflightUp() {
	n := in.inflight.Add(1)
	for {
		cur := in.maxInflight.Load()
		if n <= cur || in.maxInflight.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (in *transportInstruments) inflightDown() {
	in.inflight.Add(-1)
}

// rec returns (creating if needed) the method's record. The method set
// is tiny and stabilizes immediately, so the read lock wins after the
// first few calls.
func (in *transportInstruments) rec(method string) *methodRec {
	in.mu.RLock()
	r := in.methods[method]
	in.mu.RUnlock()
	if r != nil {
		return r
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.methods == nil {
		in.methods = make(map[string]*methodRec)
	}
	if r = in.methods[method]; r == nil {
		r = &methodRec{}
		in.methods[method] = r
	}
	return r
}

// observe records one completed call.
func (in *transportInstruments) observe(method string, start time.Time, err error) {
	in.calls.Add(1)
	r := in.rec(method)
	r.count.Add(1)
	if err != nil {
		in.failures.Add(1)
		r.errs.Add(1)
	}
	r.rtt.Record(time.Since(start))
}

// snapshot renders the counters, methods sorted by name.
func (in *transportInstruments) snapshot(addr string) TransportStats {
	out := TransportStats{
		Addr:          addr,
		Dials:         in.dials.Load(),
		Reconnects:    in.reconnects.Load(),
		InFlight:      in.inflight.Load(),
		MaxInFlight:   in.maxInflight.Load(),
		Calls:         in.calls.Load(),
		Failures:      in.failures.Load(),
		BytesSent:     in.bytesSent.Load(),
		BytesReceived: in.bytesRecv.Load(),
	}
	in.mu.RLock()
	out.Codec = in.codec
	names := make([]string, 0, len(in.methods))
	for m := range in.methods {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		r := in.methods[m]
		// One consistent histogram snapshot per method: mean and both
		// quantiles describe the same instant instead of three separate
		// lock acquisitions interleaving with writers.
		snap := r.rtt.Snapshot()
		out.Methods = append(out.Methods, MethodStats{
			Method:        m,
			Count:         r.count.Load(),
			Errors:        r.errs.Load(),
			Mean:          snap.Mean,
			P50:           snap.Quantile(0.5),
			P99:           snap.Quantile(0.99),
			BytesSent:     r.sent.Load(),
			BytesReceived: r.recv.Load(),
		})
	}
	in.mu.RUnlock()
	return out
}
