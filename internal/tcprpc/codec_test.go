package tcprpc

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// codecEchoDispatch serves "echo" (returns an Object echoing the
// requested ID with a fixed payload) and "put" (accepts a PutReq — a
// type with no wirebin marshaler, so it rides the gob-blob path inside
// wirebin frames).
func codecEchoDispatch(payload []byte) *rpc.Server {
	srv := rpc.NewServer("remote")
	srv.Handle("echo", func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
		in, ok := req.(repo.GetReq)
		if !ok {
			return nil, fmt.Errorf("echo: bad body %T", req)
		}
		return repo.Object{ID: in.ID, Data: payload, Version: 7}, nil
	})
	srv.Handle("put", func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
		in, ok := req.(repo.PutReq)
		if !ok {
			return nil, fmt.Errorf("put: bad body %T", req)
		}
		return repo.PutResp{Version: in.Obj.Version + 1}, nil
	})
	return srv
}

func callEcho(t *testing.T, client *Client, id repo.ObjectID, want []byte) {
	t.Helper()
	out, err := client.Call(context.Background(), "echo", repo.GetReq{ID: id})
	if err != nil {
		t.Fatalf("echo %s: %v", id, err)
	}
	obj, ok := out.(repo.Object)
	if !ok {
		t.Fatalf("echo %s returned %T", id, out)
	}
	if obj.ID != id || !bytes.Equal(obj.Data, want) || obj.Version != 7 {
		t.Fatalf("echo %s returned wrong object (id=%s, %d data bytes, v%d)",
			id, obj.ID, len(obj.Data), obj.Version)
	}
}

// TestNegotiatesWirebin pairs a codec-aware client with a codec-aware
// server: the connection must negotiate wirebin, round-trip registered
// and unregistered (gob-blob) bodies, and account wire bytes per method.
func TestNegotiatesWirebin(t *testing.T) {
	payload := bytes.Repeat([]byte("weak"), 64)
	srv, err := Serve("127.0.0.1:0", codecEchoDispatch(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	defer client.Close()

	callEcho(t, client, "a", payload)
	callEcho(t, client, "b", payload)

	// An unregistered body must still cross a wirebin connection (as a
	// self-contained gob blob inside the frame).
	out, err := client.Call(context.Background(), "put", repo.PutReq{
		Obj: repo.Object{ID: "blob", Data: []byte("x"), Version: 3},
	})
	if err != nil {
		t.Fatalf("put over wirebin: %v", err)
	}
	if v := out.(repo.PutResp).Version; v != 4 {
		t.Fatalf("put returned version %d, want 4", v)
	}

	st := client.Stats()
	if st.Codec != CodecWirebin {
		t.Fatalf("negotiated codec = %q, want %q", st.Codec, CodecWirebin)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("byte totals not accounted: %+v", st)
	}
	var sawEcho, sawHello bool
	for _, m := range st.Methods {
		switch m.Method {
		case "echo":
			sawEcho = true
			if m.BytesSent == 0 || m.BytesReceived == 0 {
				t.Fatalf("echo bytes not attributed: %+v", m)
			}
			if m.BytesReceived < int64(len(payload)) {
				t.Fatalf("echo received %d bytes, payload alone is %d", m.BytesReceived, len(payload))
			}
		case methodHello:
			sawHello = true
			if m.BytesSent == 0 || m.BytesReceived == 0 {
				t.Fatalf("hello bytes not attributed: %+v", m)
			}
		}
	}
	if !sawEcho || !sawHello {
		t.Fatalf("missing per-method byte attribution (echo=%v hello=%v): %+v", sawEcho, sawHello, st.Methods)
	}
}

// TestOldServerFallsBackToGob pairs a codec-aware client with a server
// built to predate negotiation (hello falls through to dispatch and
// fails with ErrNoMethod): the client must settle on gob with zero
// semantic difference.
func TestOldServerFallsBackToGob(t *testing.T) {
	payload := []byte("legacy")
	srv, err := ServeConfig("127.0.0.1:0", codecEchoDispatch(payload), ServerConfig{DisableNegotiation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	defer client.Close()

	callEcho(t, client, "a", payload)
	if st := client.Stats(); st.Codec != CodecGob {
		t.Fatalf("codec = %q, want %q after ErrNoMethod fallback", st.Codec, CodecGob)
	}
	// The failed hello must not burn a redial: one dial, no reconnects.
	if st := client.Stats(); st.Dials != 1 || st.Reconnects != 0 {
		t.Fatalf("fallback cost connections: %+v", st)
	}
}

// TestOldClientAgainstNewServer pins a client to gob (standing in for a
// pre-codec build that never sends a hello): the codec-aware server must
// treat its first request as an ordinary call.
func TestOldClientAgainstNewServer(t *testing.T) {
	payload := []byte("old-client")
	srv, err := Serve("127.0.0.1:0", codecEchoDispatch(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	client.Codec = CodecGob
	defer client.Close()

	callEcho(t, client, "first", payload)
	callEcho(t, client, "second", payload)
	if st := client.Stats(); st.Codec != CodecGob {
		t.Fatalf("codec = %q, want %q", st.Codec, CodecGob)
	}
}

// TestRedialRenegotiates kills the server under a wirebin connection and
// brings a new one up on the same address: the client's redial must run
// a fresh handshake and come back on wirebin.
func TestRedialRenegotiates(t *testing.T) {
	payload := []byte("redial")
	srv, err := Serve("127.0.0.1:0", codecEchoDispatch(payload))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := Dial(addr, "tester")
	defer client.Close()

	callEcho(t, client, "before", payload)
	srv.Close()

	// Rebind the freed address; brief races with the released socket are
	// retried.
	var srv2 *Server
	for i := 0; i < 50; i++ {
		srv2, err = Serve(addr, codecEchoDispatch(payload))
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The dead connection surfaces as one failed call; the next call
	// redials and renegotiates.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = client.Call(context.Background(), "echo", repo.GetReq{ID: "after"})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("call after restart kept failing: %v", err)
		}
	}
	st := client.Stats()
	if st.Codec != CodecWirebin {
		t.Fatalf("codec after redial = %q, want %q", st.Codec, CodecWirebin)
	}
	if st.Dials < 2 || st.Reconnects < 1 {
		t.Fatalf("expected a redial: %+v", st)
	}
}

// TestCompressionThreshold negotiates compression with an explicit
// threshold: payloads above it must cross the wire smaller than raw,
// payloads below must not pay the compressor, and both must round-trip
// intact.
func TestCompressionThreshold(t *testing.T) {
	big := bytes.Repeat([]byte("compressible "), 512) // ~6.5 KiB, highly redundant
	srv, err := Serve("127.0.0.1:0", codecEchoDispatch(big))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := Dial(srv.Addr(), "tester")
	client.Compress = true
	client.CompressMin = 512
	defer client.Close()

	callEcho(t, client, "zip", big)
	st := client.Stats()
	if st.Codec != CodecWirebin {
		t.Fatalf("codec = %q, want %q", st.Codec, CodecWirebin)
	}
	for _, m := range st.Methods {
		if m.Method == "echo" && m.BytesReceived >= int64(len(big)) {
			t.Fatalf("compressed echo response cost %d wire bytes for a %d-byte payload",
				m.BytesReceived, len(big))
		}
	}

	// Below the threshold the frame goes out raw — and still intact.
	small := []byte("tiny")
	srvSmall, err := Serve("127.0.0.1:0", codecEchoDispatch(small))
	if err != nil {
		t.Fatal(err)
	}
	defer srvSmall.Close()
	cSmall := Dial(srvSmall.Addr(), "tester")
	cSmall.Compress = true
	cSmall.CompressMin = 512
	defer cSmall.Close()
	callEcho(t, cSmall, "raw", small)
}

// TestCompressionExactBoundary drives the writer straight at the
// threshold: an envelope exactly CompressMin bytes long must compress,
// one byte shorter must not. Observed at the frame level through a pipe.
func TestCompressionExactBoundary(t *testing.T) {
	for _, tc := range []struct {
		name     string
		rawLen   int
		wantComp bool
	}{
		{name: "at-threshold", rawLen: 256, wantComp: true},
		{name: "below-threshold", rawLen: 255, wantComp: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cli, srv := net.Pipe()
			defer cli.Close()
			defer srv.Close()
			w := newWirebinCodec(newFrameIO(cli), "", true, 256)
			r := newWirebinCodec(newFrameIO(srv), "peer", true, 256)

			// A compressible error text sized so the whole envelope hits
			// rawLen exactly: seq varint (1) + flags (1) + two string
			// headers (1 + 2) bring the fixed part to 5 bytes.
			resp := &response{Seq: 1, IsErr: true, ErrText: string(bytes.Repeat([]byte("e"), tc.rawLen-5))}
			done := make(chan error, 1)
			var wire int
			go func() {
				var err error
				wire, err = func() (int, error) { return w.writeResponse(resp) }()
				done <- err
			}()
			var in response
			if _, err := r.readResponse(&in); err != nil {
				t.Fatalf("read: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("write: %v", err)
			}
			if in.ErrText != resp.ErrText {
				t.Fatalf("payload corrupted across the boundary")
			}
			compressed := wire < tc.rawLen
			if compressed != tc.wantComp {
				t.Fatalf("rawLen %d: wire %d bytes, compressed=%v, want %v",
					tc.rawLen, wire, compressed, tc.wantComp)
			}
		})
	}
}

// TestCompressedFrameRejectedWithoutNegotiation feeds a compressed frame
// to a codec that never negotiated compression: a strict protocol
// violation that must fail the read, not silently inflate.
func TestCompressedFrameRejectedWithoutNegotiation(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	w := newWirebinCodec(newFrameIO(cli), "", true, 64) // compresses eagerly
	r := newWirebinCodec(newFrameIO(srv), "peer", false, 0)

	resp := &response{Seq: 9, IsErr: true, ErrText: string(bytes.Repeat([]byte("z"), 4096))}
	go func() { _, _ = w.writeResponse(resp) }()
	var in response
	if _, err := r.readResponse(&in); err == nil {
		t.Fatal("un-negotiated compressed frame decoded cleanly; want an error")
	}
}
