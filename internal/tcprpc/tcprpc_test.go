package tcprpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// remoteProcess simulates a separate OS process hosting a repository
// server: its own network, bus, and repo server, exposed only over TCP.
type remoteProcess struct {
	srv     *Server
	repoSrv *repo.Server
	bus     *rpc.Bus
}

func startRemote(t *testing.T, node netsim.NodeID) *remoteProcess {
	t.Helper()
	net := netsim.New(netsim.Config{})
	net.AddNode(node)
	bus := rpc.NewBus(net)
	repoSrv, err := repo.NewServer(bus, node)
	if err != nil {
		t.Fatal(err)
	}
	tcpSrv, err := Serve("127.0.0.1:0", busBackedDispatch(bus, node))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tcpSrv.Close()
		repoSrv.Close()
	})
	return &remoteProcess{srv: tcpSrv, repoSrv: repoSrv, bus: bus}
}

// busBackedDispatch builds an rpc.Server whose handlers forward to the
// node's bus-registered servers with zero simulated latency (the remote
// bus has no configured delays).
func busBackedDispatch(bus *rpc.Bus, node netsim.NodeID) *rpc.Server {
	srv := rpc.NewServer(node)
	for _, method := range RepoMethods() {
		method := method
		srv.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			// The TCP server's per-connection context flows through: a
			// dropped connection must cancel whatever the dispatched
			// handler holds open (a Watch stream, most importantly).
			out, _, err := bus.Call(ctx, node, node, method, req)
			return out, err
		})
	}
	return srv
}

func TestRoundTripOverTCP(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()

	if _, err := client.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	obj := repo.Object{ID: "x", Data: []byte("payload"), Attrs: map[string]string{"k": "v"}}
	if _, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: obj}); err != nil {
		t.Fatal(err)
	}
	out, err := client.Call(ctx, repo.MethodGet, repo.GetReq{ID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(repo.Object)
	if !ok {
		t.Fatalf("response type %T", out)
	}
	if string(got.Data) != "payload" || got.Attrs["k"] != "v" {
		t.Fatalf("got %+v", got)
	}
}

// TestGetBatchOverTCP round-trips the batch RPC through gob: found
// objects, missing ids, and the version-gated List all cross the socket.
func TestGetBatchOverTCP(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()

	for _, id := range []repo.ObjectID{"a", "b"} {
		obj := repo.Object{ID: id, Data: []byte("d-" + id)}
		if _, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: obj}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := client.Call(ctx, repo.MethodGetBatch, repo.GetBatchReq{IDs: []repo.ObjectID{"b", "nope", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := out.(repo.GetBatchResp)
	if !ok {
		t.Fatalf("response type %T", out)
	}
	if len(resp.Objects) != 2 || resp.Objects[0].ID != "b" || resp.Objects[1].ID != "a" {
		t.Fatalf("objects = %+v", resp.Objects)
	}
	if len(resp.Missing) != 1 || resp.Missing[0] != "nope" {
		t.Fatalf("missing = %v", resp.Missing)
	}

	// Version-gated List over the wire: NotModified survives gob.
	if _, err := client.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(ctx, repo.MethodAdd, repo.AddReq{Name: "c", Ref: repo.Ref{ID: "a", Node: "archive"}}); err != nil {
		t.Fatal(err)
	}
	out, err = client.Call(ctx, repo.MethodList, repo.ListReq{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	full := out.(repo.ListResp)
	if full.NotModified || len(full.Members) != 1 {
		t.Fatalf("full list = %+v", full)
	}
	out, err = client.Call(ctx, repo.MethodList, repo.ListReq{Name: "c", IfVersion: full.Version})
	if err != nil {
		t.Fatal(err)
	}
	gated := out.(repo.ListResp)
	if !gated.NotModified || len(gated.Members) != 0 || gated.Version != full.Version {
		t.Fatalf("gated list = %+v", gated)
	}
}

// TestConditionalGetBatchOverTCP round-trips a conditional batch through
// gob: the Known version map rides the request and the compact
// NotModified list rides the response, with only changed objects shipped.
func TestConditionalGetBatchOverTCP(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()

	versions := make(map[repo.ObjectID]uint64)
	for _, id := range []repo.ObjectID{"a", "b", "c"} {
		obj := repo.Object{ID: id, Data: []byte("d-" + id)}
		out, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: obj})
		if err != nil {
			t.Fatal(err)
		}
		versions[id] = out.(repo.PutResp).Version
	}
	// Move "b" past the version the client knows.
	if _, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: repo.Object{ID: "b", Data: []byte("newer")}}); err != nil {
		t.Fatal(err)
	}

	out, err := client.Call(ctx, repo.MethodGetBatch, repo.GetBatchReq{
		IDs:   []repo.ObjectID{"a", "b", "c", "nope"},
		Known: versions,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := out.(repo.GetBatchResp)
	if len(resp.Objects) != 1 || resp.Objects[0].ID != "b" || string(resp.Objects[0].Data) != "newer" {
		t.Fatalf("objects = %+v, want just the changed b", resp.Objects)
	}
	if len(resp.NotModified) != 2 || resp.NotModified[0] != "a" || resp.NotModified[1] != "c" {
		t.Fatalf("notModified = %v", resp.NotModified)
	}
	if len(resp.Missing) != 1 || resp.Missing[0] != "nope" {
		t.Fatalf("missing = %v", resp.Missing)
	}
}

func TestSentinelErrorsCrossTheWire(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()

	if _, err := client.Call(ctx, repo.MethodGet, repo.GetReq{ID: "missing"}); !errors.Is(err, repo.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound across the wire", err)
	}
	if _, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "nope"}); !errors.Is(err, repo.ErrNoCollection) {
		t.Fatalf("err = %v, want ErrNoCollection across the wire", err)
	}
	if _, err := client.Call(ctx, "bogus.method", repo.GetReq{}); !errors.Is(err, rpc.ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod across the wire", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	remote := startRemote(t, "archive")
	ctx := context.Background()
	seed := Dial(remote.srv.Addr(), "seeder")
	defer seed.Close()
	if _, err := seed.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "c"}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := Dial(remote.srv.Addr(), fmt.Sprintf("w%d", i))
			defer client.Close()
			for j := 0; j < 20; j++ {
				id := repo.ObjectID(fmt.Sprintf("o-%d-%d", i, j))
				if _, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: repo.Object{ID: id, Data: []byte("d")}}); err != nil {
					errs <- err
					return
				}
				if _, err := client.Call(ctx, repo.MethodAdd, repo.AddReq{Name: "c", Ref: repo.Ref{ID: id, Node: "archive"}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	out, err := seed.Call(ctx, repo.MethodList, repo.ListReq{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.(repo.ListResp).Members); got != 160 {
		t.Fatalf("members = %d, want 160", got)
	}
}

func TestClientRedialsAfterServerRestart(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()
	if _, err := client.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	// Kill the connection server-side; next call fails, the one after
	// redials... but the listener is gone too, so both fail.
	remote.srv.Close()
	if _, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "c"}); err == nil {
		t.Fatal("call succeeded against closed server")
	}
}

func TestClientClosed(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	client.Close()
	if _, err := client.Call(context.Background(), repo.MethodList, repo.ListReq{Name: "c"}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
}

func TestCallContextDeadline(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "c"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestWeakSetOverTCPGateway is the headline integration: a weak set in a
// simulated cluster iterates a collection whose members live on a node
// that is actually a separate TCP-served repository process.
func TestWeakSetOverTCPGateway(t *testing.T) {
	remote := startRemote(t, "archive")

	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Splice the remote process in as cluster node "archive".
	c.Net.AddNode("archive")
	gw, err := NewGateway(c.Bus, "archive", Dial(remote.srv.Addr(), "gateway"), RepoMethods())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Build a collection on the cluster's directory whose members live on
	// the remote archive.
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "papers"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("p%d", i)), Data: []byte("paper body")}
		ref, err := c.Client.Put(ctx, "archive", obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "papers", ref); err != nil {
			t.Fatal(err)
		}
	}

	set, err := core.NewSet(c.Client, cluster.DirNode, "papers", core.Options{Semantics: core.Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	elems, err := set.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 5 {
		t.Fatalf("collected %d over TCP, want 5", len(elems))
	}
	for _, e := range elems {
		if string(e.Data) != "paper body" {
			t.Fatalf("element %s data %q", e.Ref.ID, e.Data)
		}
	}

	// And the simulated partition still governs the local leg: isolating
	// the gateway node makes the archive unreachable for a pessimistic
	// run.
	c.Net.Isolate("archive")
	pess, err := core.NewSet(c.Client, cluster.DirNode, "papers", core.Options{Semantics: core.GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pess.Collect(ctx); !errors.Is(err, core.ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure under partition", err)
	}
}

func TestDynSetOverTCPGateway(t *testing.T) {
	remote := startRemote(t, "archive")
	c, err := cluster.New(cluster.Config{StorageNodes: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.Net.AddNode("archive")
	gw, err := NewGateway(c.Bus, "archive", Dial(remote.srv.Addr(), "gateway"), RepoMethods())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("f%02d", i)), Data: []byte("x")}
		ref, err := c.Client.Put(ctx, "archive", obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "d", ref); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := core.OpenDyn(ctx, c.Client, cluster.DirNode, "d", core.DynOptions{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	n := 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && ds.Next(ctx) {
		n++
	}
	if n != 12 {
		t.Fatalf("dynamic set over TCP yielded %d, want 12", n)
	}
}
