package tcprpc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// seedCollection puts n objects on the remote and adds them to
// collection c, returning the member ids.
func seedCollection(t *testing.T, client *Client, c string, n int) map[repo.ObjectID]bool {
	t.Helper()
	ctx := context.Background()
	if _, err := client.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: c}); err != nil {
		t.Fatal(err)
	}
	ids := make(map[repo.ObjectID]bool, n)
	for i := 0; i < n; i++ {
		id := repo.ObjectID(fmt.Sprintf("m%03d", i))
		if _, err := client.Call(ctx, repo.MethodPut, repo.PutReq{Obj: repo.Object{ID: id, Data: []byte("x")}}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Call(ctx, repo.MethodAdd, repo.AddReq{Name: c, Ref: repo.Ref{ID: id, Node: "archive"}}); err != nil {
			t.Fatal(err)
		}
		ids[id] = true
	}
	return ids
}

// TestListPartsStreamsOverTCP drives the streamed partitioned listing
// over a real socket: each partition arrives as its own frame, the
// reassembled membership is exact, and the stream ends clean.
func TestListPartsStreamsOverTCP(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	want := seedCollection(t, client, "c", 60)

	st, err := client.CallStream(context.Background(), repo.MethodListParts,
		repo.ListPartsReq{Name: "c", Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	got := make(map[repo.ObjectID]bool)
	var total int
	for {
		chunk, ok := st.Next()
		if !ok {
			break
		}
		pl, ok := chunk.(repo.PartListing)
		if !ok {
			t.Fatalf("chunk type %T", chunk)
		}
		frames++
		total = pl.Partitions
		for _, m := range pl.Members {
			if got[m.ID] {
				t.Fatalf("member %s delivered twice", m.ID)
			}
			got[m.ID] = true
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream err: %v", err)
	}
	if total <= 1 {
		t.Fatalf("partitions = %d, want a partitioned collection", total)
	}
	if frames != total {
		t.Fatalf("got %d frames, want one per partition (%d)", frames, total)
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d members, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("member %s missing from streamed listing", id)
		}
	}
}

// TestStreamInterleavesWithCalls opens a stream and, before consuming
// it, runs ordinary calls on the same connection: stream frames and
// unary responses multiplex over one socket without blocking each other
// (the client buffers stream frames unboundedly precisely so the read
// loop never waits on a slow stream consumer).
func TestStreamInterleavesWithCalls(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	seedCollection(t, client, "c", 40)
	ctx := context.Background()

	st, err := client.CallStream(ctx, repo.MethodListParts, repo.ListPartsReq{Name: "c", Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	// Unary traffic while every stream frame sits buffered client-side.
	for i := 0; i < 5; i++ {
		out, err := client.Call(ctx, repo.MethodGet, repo.GetReq{ID: "m000"})
		if err != nil {
			t.Fatalf("interleaved call %d: %v", i, err)
		}
		if _, ok := out.(repo.Object); !ok {
			t.Fatalf("interleaved call returned %T", out)
		}
	}
	n := 0
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if err := st.Err(); err != nil || n == 0 {
		t.Fatalf("stream after interleaving: %d frames, err %v", n, err)
	}
}

// TestStreamCancelMidway abandons a stream by context cancellation after
// one frame: Next must end with the context's error, and the connection
// must remain healthy for subsequent calls (the call slot is released).
func TestStreamCancelMidway(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	seedCollection(t, client, "c", 40)

	ctx, cancel := context.WithCancel(context.Background())
	st, err := client.CallStream(ctx, repo.MethodListParts, repo.ListPartsReq{Name: "c", Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatalf("first frame: stream ended early (%v)", st.Err())
	}
	cancel()
	// The stream must terminate: remaining buffered frames may still be
	// delivered, but the end must come promptly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled stream kept producing")
		}
	}
	// The connection still serves calls afterwards.
	for i := 0; i < 3; i++ {
		if _, err := client.Call(context.Background(), repo.MethodGet, repo.GetReq{ID: "m000"}); err != nil {
			t.Fatalf("call after cancelled stream: %v", err)
		}
	}
}

// TestStreamRequiresNegotiation pairs a streaming client with a server
// predating negotiation: CallStream must refuse with ErrNoStreams, and
// the plain Call path must deliver the same listing materialized as one
// ListPartsResp — the cross-version fallback the gateway leans on.
func TestStreamRequiresNegotiation(t *testing.T) {
	remote := startRemoteConfig(t, "archive", ServerConfig{DisableNegotiation: true})
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()
	want := seedCollection(t, client, "c", 30)

	if _, err := client.CallStream(context.Background(), repo.MethodListParts,
		repo.ListPartsReq{Name: "c", Stream: true}); !errors.Is(err, ErrNoStreams) {
		t.Fatalf("CallStream without negotiation: %v, want ErrNoStreams", err)
	}
	out, err := client.Call(context.Background(), repo.MethodListParts,
		repo.ListPartsReq{Name: "c", Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := out.(repo.ListPartsResp)
	if !ok {
		t.Fatalf("materialized response type %T", out)
	}
	got := 0
	for _, pl := range resp.Parts {
		got += len(pl.Members)
	}
	if got != len(want) {
		t.Fatalf("materialized listing has %d members, want %d", got, len(want))
	}
}

// TestStreamServerError surfaces a server-side stream failure through
// Err: listing a collection that does not exist fails the stream with
// the repo sentinel, not a silent empty listing.
func TestStreamServerError(t *testing.T) {
	remote := startRemote(t, "archive")
	client := Dial(remote.srv.Addr(), "tester")
	defer client.Close()

	st, err := client.CallStream(context.Background(), repo.MethodListParts,
		repo.ListPartsReq{Name: "missing", Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if err := st.Err(); !errors.Is(err, repo.ErrNoCollection) {
		t.Fatalf("stream err = %v, want ErrNoCollection", err)
	}
}

func startRemoteConfig(t *testing.T, node netsim.NodeID, cfg ServerConfig) *remoteProcess {
	t.Helper()
	net := netsim.New(netsim.Config{})
	net.AddNode(node)
	bus := rpc.NewBus(net)
	repoSrv, err := repo.NewServer(bus, node)
	if err != nil {
		t.Fatal(err)
	}
	tcpSrv, err := ServeConfig("127.0.0.1:0", busBackedDispatch(bus, node), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tcpSrv.Close()
		repoSrv.Close()
	})
	return &remoteProcess{srv: tcpSrv, repoSrv: repoSrv}
}
