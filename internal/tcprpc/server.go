package tcprpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

// Server serves an rpc.Server's dispatch table over TCP.
type Server struct {
	lis      net.Listener
	dispatch *rpc.Server

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts serving dispatch on addr ("127.0.0.1:0" for an ephemeral
// port) and returns immediately; use Addr for the bound address and Close
// to stop.
func Serve(addr string, dispatch *rpc.Server) (*Server, error) {
	registerWireTypes()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcprpc: listen %s: %w", addr, err)
	}
	s := &Server{
		lis:      lis,
		dispatch: dispatch,
		conns:    make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, closes every connection, and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	_ = s.lis.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Peer went away mid-frame or sent garbage; either way the
				// stream is unusable.
				return
			}
			return
		}
		body, err := s.dispatch.Dispatch(netsim.NodeID(req.From), req.Method, req.Body)
		resp := response{Seq: req.Seq, Body: body}
		if err != nil {
			resp.IsErr = true
			resp.ErrText, resp.ErrCode = encodeErr(err)
			resp.Body = nil
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}
