package tcprpc

import (
	"context"
	"fmt"
	"net"
	"sync"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/rpc"
)

// DefaultConnWorkers is the per-connection worker-pool size Serve uses.
const DefaultConnWorkers = 8

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Workers bounds the per-connection worker pool: how many decoded
	// requests one connection may have executing at once. Defaults to
	// DefaultConnWorkers. 1 restores strictly sequential handling.
	Workers int
	// Tracer, when set, records a server-side span per request whose
	// envelope carries a sampled trace context, joined to that trace.
	Tracer *obs.Tracer
	// DisableNegotiation makes the server behave like a pre-codec build:
	// hello requests fall through to dispatch (failing with ErrNoMethod)
	// and every connection stays on gob. For compatibility testing.
	DisableNegotiation bool
}

// Server serves an rpc.Server's dispatch table over TCP. Each decoded
// request is handed to a bounded per-connection worker pool, so a slow
// call (a large GetBatch, say) no longer head-of-line-blocks the fast
// Get/List traffic multiplexed on the same socket; responses are
// serialized back through a per-connection write lock and may return
// out of request order (clients dispatch by sequence number). When the
// pool and the request queue are both full the decode loop blocks,
// pushing backpressure onto the socket rather than buffering
// unboundedly.
type Server struct {
	lis         net.Listener
	dispatch    *rpc.Server
	workers     int
	tracer      *obs.Tracer
	noNegotiate bool

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts serving dispatch on addr ("127.0.0.1:0" for an ephemeral
// port) and returns immediately; use Addr for the bound address and Close
// to stop.
func Serve(addr string, dispatch *rpc.Server) (*Server, error) {
	return ServeConfig(addr, dispatch, ServerConfig{})
}

// ServeConfig is Serve with explicit tuning.
func ServeConfig(addr string, dispatch *rpc.Server, cfg ServerConfig) (*Server, error) {
	registerWireTypes()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcprpc: listen %s: %w", addr, err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultConnWorkers
	}
	s := &Server{
		lis:         lis,
		dispatch:    dispatch,
		workers:     workers,
		tracer:      cfg.Tracer,
		noNegotiate: cfg.DisableNegotiation,
		conns:       make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, closes every connection, and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	_ = s.lis.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	fio := newFrameIO(conn)
	var cdc codec = newGobCodec(fio)

	// The first request decides the connection's codec: a codec-aware
	// client always leads with a hello (and sends nothing else until the
	// reply arrives, so the stream is quiet across the switch); anything
	// else is an old client speaking plain gob for the duration.
	var first request
	if _, err := cdc.readRequest(&first); err != nil {
		return
	}
	var pendingFirst *request
	// streams records whether this connection's client negotiated
	// multi-frame responses; without the hello saying so, every
	// streamable body is materialized into one response.
	var streams bool
	if hr, ok := first.Body.(helloReq); ok && first.Method == methodHello && !s.noNegotiate {
		confirmed := negotiate(hr)
		resp := response{Seq: first.Seq, Body: confirmed}
		if _, err := cdc.writeResponse(&resp); err != nil {
			return
		}
		if confirmed.Codec == CodecWirebin {
			cdc = newWirebinCodec(fio, hr.From, confirmed.Compress, confirmed.CompressMin)
		}
		streams = confirmed.Streams
	} else {
		pendingFirst = &first
	}

	// connCtx is the per-connection dispatch base: it is cancelled when
	// the decode loop breaks, so server-side resources bound to a call's
	// context — a Watch stream blocked waiting for the next invalidation,
	// say — observe the connection's death instead of leaking forever.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	// wmu serializes response envelopes from concurrent workers onto the
	// shared stream.
	var wmu sync.Mutex
	reqCh := make(chan request, s.workers)
	var pool, streamers sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for req := range reqCh {
				// Rebuild the caller's trace context from the envelope so
				// this process's spans join the cross-process trace.
				ctx := obs.ContextWithSpan(connCtx, req.Trace)
				ctx, sp := s.tracer.StartSpan(ctx, "rpc.serve")
				sp.SetAttr("method", req.Method)
				body, err := s.dispatch.Dispatch(ctx, netsim.NodeID(req.From), req.Method, req.Body)
				sp.End()
				if st, ok := body.(rpc.Streamer); ok {
					// A streamable body: ship it chunk-by-chunk when this
					// client negotiated streams, else collapse it to the
					// single-response form right here. Shipping runs on a
					// dedicated goroutine: a stream may outlive ordinary
					// calls by hours (a Watch push channel), and parking it
					// on a pool worker would let a handful of streams
					// starve the connection's entire request pipeline.
					if streams {
						streamers.Add(1)
						go func(seq uint64, st rpc.Streamer) {
							defer streamers.Done()
							if !writeStream(cdc, &wmu, seq, st) {
								_ = conn.Close()
							}
						}(req.Seq, st)
						continue
					}
					body, err = st.Materialize()
				}
				resp := response{Seq: req.Seq, Body: body}
				if err != nil {
					resp.IsErr = true
					resp.ErrText, resp.ErrCode = encodeErr(err)
					resp.Body = nil
				}
				wmu.Lock()
				_, werr := cdc.writeResponse(&resp)
				wmu.Unlock()
				if werr != nil {
					// The stream is unusable; closing the socket unblocks
					// the decode loop so the connection tears down. Workers
					// keep draining (their encodes fail fast on the dead
					// stream) until the queue closes.
					_ = conn.Close()
				}
			}
		}()
	}
	if pendingFirst != nil {
		reqCh <- *pendingFirst
	}
	for {
		var req request
		if _, err := cdc.readRequest(&req); err != nil {
			// Peer went away (EOF / closed socket) or sent garbage
			// mid-frame; either way the stream is unusable.
			break
		}
		reqCh <- req
	}
	close(reqCh)
	// Cancel before waiting: long-lived streams (Watch) end only when
	// their dispatch context dies.
	connCancel()
	pool.Wait()
	streamers.Wait()
}

// writeStream ships a Streamer body as a sequence of More-flagged
// responses on seq, closed by an empty final response (or an IsErr
// final when production failed). Each chunk takes the write lock
// separately, so chunks interleave freely with other calls' responses
// on the shared socket — production of the next chunk (taking the next
// partition snapshot, say) overlaps the previous chunk's transmission.
// It reports whether the connection is still usable.
func writeStream(cdc codec, wmu *sync.Mutex, seq uint64, st rpc.Streamer) bool {
	for {
		chunk, ok := st.Next()
		if !ok {
			break
		}
		resp := response{Seq: seq, Body: chunk, More: true}
		wmu.Lock()
		_, werr := cdc.writeResponse(&resp)
		wmu.Unlock()
		if werr != nil {
			return false
		}
	}
	final := response{Seq: seq}
	if err := st.Err(); err != nil {
		final.IsErr = true
		final.ErrText, final.ErrCode = encodeErr(err)
	}
	wmu.Lock()
	_, werr := cdc.writeResponse(&final)
	wmu.Unlock()
	return werr == nil
}

// negotiate picks the connection settings a hello asked for: the best
// codec both sides speak, and compression (with its threshold) only when
// the client requested it on a wirebin connection.
func negotiate(hr helloReq) helloResp {
	out := helloResp{Codec: CodecGob, Streams: hr.Streams}
	for _, name := range hr.Codecs {
		if name == CodecWirebin {
			out.Codec = CodecWirebin
			break
		}
	}
	if out.Codec == CodecWirebin && hr.Compress {
		out.Compress = true
		out.CompressMin = hr.CompressMin
		if out.CompressMin <= 0 {
			out.CompressMin = defaultCompressMin
		}
	}
	return out
}
