package tcprpc

// Transport edge cases for the multiplexed client/server: out-of-order
// response dispatch, per-call deadlines and cancellation on a shared
// stream, connection drops with many calls in flight, slow-reader
// backpressure, and concurrent Calls on one client under -race.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// echoDispatch serves "echo": it returns an Object whose ID copies the
// requested one. With a positive delay the handler sleeps first —
// standing in for a slow disk or WAN hop.
func echoDispatch(delay time.Duration) *rpc.Server {
	srv := rpc.NewServer("remote")
	srv.Handle("echo", func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		in, ok := req.(repo.GetReq)
		if !ok {
			return nil, fmt.Errorf("echo: bad body %T", req)
		}
		return repo.Object{ID: in.ID}, nil
	})
	return srv
}

// TestOutOfOrderResponses runs a raw protocol server that reads two
// requests and answers them in reverse order: each caller must still
// receive its own response via the seq-keyed pending map.
func TestOutOfOrderResponses(t *testing.T) {
	registerWireTypes()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		var reqs [2]request
		for i := range reqs {
			if err := dec.Decode(&reqs[i]); err != nil {
				return
			}
		}
		for i := len(reqs) - 1; i >= 0; i-- { // deliberately reversed
			in := reqs[i].Body.(repo.GetReq)
			resp := response{Seq: reqs[i].Seq, Body: repo.Object{ID: in.ID}}
			if err := enc.Encode(&resp); err != nil {
				return
			}
		}
	}()

	client := Dial(lis.Addr().String(), "tester")
	client.Codec = CodecGob // the raw server above speaks only plain gob
	defer client.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, id := range []repo.ObjectID{"first", "second"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := client.Call(ctx, "echo", repo.GetReq{ID: id})
			if err != nil {
				errs <- err
				return
			}
			if got := out.(repo.Object).ID; got != id {
				errs <- fmt.Errorf("call %s got response for %s", id, got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCancelInFlightCall cancels a context with no deadline while its
// call is in flight against a server that never responds: the call must
// return promptly with context.Canceled (the old transport only checked
// ctx.Err() at entry and then hung in Decode).
func TestCancelInFlightCall(t *testing.T) {
	registerWireTypes()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req request
		_ = gob.NewDecoder(conn).Decode(&req) // swallow; never answer
		time.Sleep(10 * time.Second)
	}()

	client := Dial(lis.Addr().String(), "tester")
	client.Codec = CodecGob // the raw server above speaks only plain gob
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Call(ctx, "echo", repo.GetReq{ID: "x"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call still blocked after 2s")
	}
}

// TestDeadlineDoesNotClobberOtherCalls overlaps a short-deadline call
// with a long slow call on the same stream: the short call must time
// out alone, and the slow call must still succeed. (The old transport
// applied each call's deadline to the shared socket, so an expiring
// call killed its neighbours.)
func TestDeadlineDoesNotClobberOtherCalls(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoDispatch(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	defer client.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "echo", repo.GetReq{ID: "slow"})
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // slow call is on the wire

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, "echo", repo.GetReq{ID: "fast"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short-deadline call: err = %v, want DeadlineExceeded", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call on the same stream failed: %v", err)
	}
}

// TestConnDropFailsAllInFlight drops the connection server-side with
// many calls in flight: every caller must get a transport error (none
// may hang), and the next call must redial and succeed.
func TestConnDropFailsAllInFlight(t *testing.T) {
	registerWireTypes()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	const inflight = 16
	go func() {
		// First connection: read the calls, then slam the socket shut.
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		dec := gob.NewDecoder(conn)
		for i := 0; i < inflight; i++ {
			var req request
			if err := dec.Decode(&req); err != nil {
				break
			}
		}
		_ = conn.Close()
		// Second connection (the redial): behave properly.
		conn, err = lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec = gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		in := req.Body.(repo.GetReq)
		_ = enc.Encode(&response{Seq: req.Seq, Body: repo.Object{ID: in.ID}})
	}()

	client := Dial(lis.Addr().String(), "tester")
	client.Codec = CodecGob // the raw server above speaks only plain gob
	defer client.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < inflight; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Call(ctx, "echo", repo.GetReq{ID: repo.ObjectID(fmt.Sprintf("c%d", i))}); err != nil {
				failures.Add(1)
			}
		}()
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight calls still blocked 5s after connection drop")
	}
	if got := failures.Load(); got != inflight {
		t.Fatalf("%d of %d in-flight calls failed, want all", got, inflight)
	}

	out, err := client.Call(ctx, "echo", repo.GetReq{ID: "after"})
	if err != nil {
		t.Fatalf("call after redial: %v", err)
	}
	if got := out.(repo.Object).ID; got != "after" {
		t.Fatalf("redialed call got %q", got)
	}
	if st := client.Stats(); st.Dials != 2 || st.Reconnects != 1 {
		t.Fatalf("stats = %+v, want 2 dials / 1 reconnect", st)
	}
}

// TestSlowReaderBackpressure floods a real server with requests from a
// raw client that refuses to read responses for a while: the bounded
// worker pool plus blocking writes must push backpressure onto the
// socket instead of buffering responses unboundedly, and every response
// must still arrive once the reader drains.
func TestSlowReaderBackpressure(t *testing.T) {
	registerWireTypes()
	payload := make([]byte, 64<<10)
	srv, err := ServeConfig("127.0.0.1:0", func() *rpc.Server {
		s := rpc.NewServer("remote")
		s.Handle("blob", func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
			in := req.(repo.GetReq)
			return repo.Object{ID: in.ID, Data: payload}, nil
		})
		return s
	}(), ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	const calls = 128 // 128 × 64KiB of responses ≫ socket buffers
	writeDone := make(chan error, 1)
	go func() {
		for i := 0; i < calls; i++ {
			req := request{Seq: uint64(i + 1), From: "flood", Method: "blob",
				Body: repo.GetReq{ID: repo.ObjectID(fmt.Sprintf("b%03d", i))}}
			if err := enc.Encode(&req); err != nil {
				writeDone <- err
				return
			}
		}
		writeDone <- nil
	}()

	time.Sleep(100 * time.Millisecond) // let the server jam against the unread socket

	dec := gob.NewDecoder(conn)
	seen := make(map[uint64]bool, calls)
	for len(seen) < calls {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("after %d responses: %v", len(seen), err)
		}
		if resp.IsErr {
			t.Fatalf("seq %d: remote error %s", resp.Seq, resp.ErrText)
		}
		if seen[resp.Seq] {
			t.Fatalf("seq %d delivered twice", resp.Seq)
		}
		seen[resp.Seq] = true
	}
	if err := <-writeDone; err != nil {
		t.Fatalf("request writer: %v", err)
	}
}

// TestConcurrentCallsSharedClient hammers one client from many
// goroutines (the -race part of the suite): every call must get its own
// response back through the shared stream.
func TestConcurrentCallsSharedClient(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoDispatch(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	defer client.Close()
	ctx := context.Background()

	const workers, calls = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < calls; j++ {
				id := repo.ObjectID(fmt.Sprintf("w%d-c%d", w, j))
				out, err := client.Call(ctx, "echo", repo.GetReq{ID: id})
				if err != nil {
					errs <- err
					return
				}
				if got := out.(repo.Object).ID; got != id {
					errs <- fmt.Errorf("call %s got response for %s", id, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Calls != workers*calls || st.Failures != 0 {
		t.Fatalf("stats = %+v, want %d clean calls", st, workers*calls)
	}
	if st.MaxInFlight < 2 {
		t.Fatalf("maxInFlight = %d; concurrent calls never overlapped", st.MaxInFlight)
	}
}

// TestSerialBudget pins MaxInflight to 1: concurrent callers still all
// succeed, but the stream carries one call at a time — the serialized
// baseline the -rpc sweep compares against.
func TestSerialBudget(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoDispatch(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr(), "tester")
	client.MaxInflight = 1
	defer client.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				id := repo.ObjectID(fmt.Sprintf("s%d-%d", w, j))
				out, err := client.Call(ctx, "echo", repo.GetReq{ID: id})
				if err != nil {
					errs <- err
					return
				}
				if got := out.(repo.Object).ID; got != id {
					errs <- fmt.Errorf("call %s got response for %s", id, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := client.Stats(); st.MaxInFlight != 1 {
		t.Fatalf("maxInFlight = %d, want 1 under a serial budget", st.MaxInFlight)
	}
}
