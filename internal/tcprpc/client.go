package tcprpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/obs"
)

// ErrClientClosed reports calls on a closed client.
var ErrClientClosed = errors.New("tcprpc: client closed")

// sendBacklog bounds the client's encode queue. The writer goroutine
// drains it as fast as gob can encode; the bound only matters when the
// kernel socket buffer backs up, at which point callers block in Call
// (transport backpressure) instead of buffering unboundedly.
const sendBacklog = 128

// Client is a multiplexed TCP connection to a Server. Many calls share
// one persistent gob stream concurrently: a dedicated writer goroutine
// serializes request envelopes onto the socket and a reader goroutine
// dispatches response envelopes to their callers through a seq-keyed
// pending-call map, so responses may return in any order and slow calls
// never head-of-line-block fast ones. Per-call cancellation and
// deadlines are enforced at the pending map — never via conn.SetDeadline,
// which would clobber the deadlines of every other call sharing the
// socket. A transport error fails every in-flight call and the next
// call redials. Client is safe for concurrent use.
type Client struct {
	addr string
	from string
	// DialTimeout bounds connection establishment. Defaults to 5s.
	// Set before the first Call.
	DialTimeout time.Duration
	// MaxInflight bounds how many calls may share the stream at once
	// (0 = unlimited). 1 degenerates to the serialized one-RPC-per-
	// round-trip transport — the baseline `weakbench -rpc` sweeps
	// against. Set before the first Call.
	MaxInflight int
	// Tracer, when set, records a wire span per traced call (join-only).
	// The span's context rides the request envelope, so the server's
	// spans nest under it. Set before the first Call.
	Tracer *obs.Tracer

	mu     sync.Mutex
	cc     *clientConn
	sem    chan struct{}
	closed bool

	seq atomic.Uint64
	ins transportInstruments
}

// call is one RPC awaiting its response.
type call struct {
	ch chan response // buffered(1); the reader delivers at most once
}

// clientConn is one live connection with its goroutines and in-flight
// calls. It is immutable except through fail, which runs once.
type clientConn struct {
	conn   net.Conn
	sendCh chan *request

	done     chan struct{}
	failOnce sync.Once
	err      error // written before done closes; read only after <-done

	pmu     sync.Mutex
	pending map[uint64]*call
}

// Dial creates a client for the server at addr. `from` identifies the
// caller to handlers (the node name handlers see). The connection is
// established lazily on first call.
func Dial(addr, from string) *Client {
	registerWireTypes()
	return &Client{addr: addr, from: from, DialTimeout: 5 * time.Second}
}

// Addr reports the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Close shuts the connection down; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		cc.fail(ErrClientClosed)
	}
}

// Stats snapshots the client's transport instrumentation.
func (c *Client) Stats() TransportStats {
	return c.ins.snapshot(c.addr)
}

// conn returns the live connection, dialing a fresh one if the previous
// connection died (or none exists yet).
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.cc != nil {
		select {
		case <-c.cc.done:
			c.cc = nil // dead; redial below
		default:
			return c.cc, nil
		}
	}
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("tcprpc: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{
		conn:    conn,
		sendCh:  make(chan *request, sendBacklog),
		done:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	go cc.writeLoop(gob.NewEncoder(conn))
	go cc.readLoop(gob.NewDecoder(conn))
	if c.ins.dials.Add(1) > 1 {
		c.ins.reconnects.Add(1)
	}
	c.cc = cc
	return cc, nil
}

// acquire takes an in-flight slot when MaxInflight bounds the stream.
// The returned release is non-nil even when no budget is configured.
func (c *Client) acquire(ctx context.Context) (func(), error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.MaxInflight > 0 && c.sem == nil {
		c.sem = make(chan struct{}, c.MaxInflight)
	}
	sem := c.sem
	c.mu.Unlock()
	if sem == nil {
		return func() {}, nil
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Call performs one RPC. Calls may overlap freely on the shared stream;
// the context's cancellation or deadline abandons this call only (the
// connection and every other in-flight call stay live).
func (c *Client) Call(ctx context.Context, method string, req any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	ctx, span := c.Tracer.StartSpan(ctx, "tcp."+method)
	span.SetAttr("addr", c.addr)

	start := time.Now()
	resp, err := c.do(ctx, method, req)
	c.ins.observe(method, start, err)
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return resp, err
}

func (c *Client) do(ctx context.Context, method string, req any) (any, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}

	seq := c.seq.Add(1)
	ca := &call{ch: make(chan response, 1)}
	cc.pmu.Lock()
	cc.pending[seq] = ca
	cc.pmu.Unlock()
	c.ins.inflightUp()
	defer func() {
		cc.pmu.Lock()
		delete(cc.pending, seq)
		cc.pmu.Unlock()
		c.ins.inflightDown()
	}()

	out := &request{Seq: seq, From: c.from, Method: method, Body: req, Trace: obs.FromContext(ctx)}
	select {
	case cc.sendCh <- out:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cc.done:
		return nil, fmt.Errorf("tcprpc: %s: %w", method, cc.err)
	}

	select {
	case in := <-ca.ch:
		return finish(in)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cc.done:
		// The response may have raced in just before the connection
		// died; prefer it.
		select {
		case in := <-ca.ch:
			return finish(in)
		default:
		}
		return nil, fmt.Errorf("tcprpc: %s: %w", method, cc.err)
	}
}

// finish unpacks one response envelope.
func finish(in response) (any, error) {
	if in.IsErr {
		return nil, decodeErr(in.ErrText, in.ErrCode)
	}
	return in.Body, nil
}

// writeLoop is the connection's dedicated writer: the only goroutine
// that touches the gob encoder.
func (cc *clientConn) writeLoop(enc *gob.Encoder) {
	for {
		select {
		case out := <-cc.sendCh:
			if err := enc.Encode(out); err != nil {
				cc.fail(fmt.Errorf("send %s: %w", out.Method, err))
				return
			}
		case <-cc.done:
			return
		}
	}
}

// readLoop is the connection's dedicated reader: it decodes response
// envelopes and dispatches each to its caller by sequence number.
// Responses for abandoned calls (cancelled contexts) are dropped.
func (cc *clientConn) readLoop(dec *gob.Decoder) {
	for {
		var in response
		if err := dec.Decode(&in); err != nil {
			cc.fail(fmt.Errorf("recv: %w", err))
			return
		}
		cc.pmu.Lock()
		ca, ok := cc.pending[in.Seq]
		if ok {
			delete(cc.pending, in.Seq)
		}
		cc.pmu.Unlock()
		if ok {
			ca.ch <- in
		}
	}
}

// fail marks the connection dead exactly once: every in-flight and
// future waiter on this connection observes err through done.
func (cc *clientConn) fail(err error) {
	cc.failOnce.Do(func() {
		cc.err = err
		close(cc.done)
		_ = cc.conn.Close()
	})
}
