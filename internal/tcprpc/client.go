package tcprpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed reports calls on a closed client.
var ErrClientClosed = errors.New("tcprpc: client closed")

// Client is a TCP connection to a Server. Calls are serialized on one
// persistent gob stream; a transport error drops the connection and the
// next call redials. Client is safe for concurrent use.
type Client struct {
	addr string
	from string
	// DialTimeout bounds connection establishment. Defaults to 5s.
	DialTimeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	seq    uint64
	closed bool
}

// Dial creates a client for the server at addr. `from` identifies the
// caller to handlers (the node name handlers see). The connection is
// established lazily on first call.
func Dial(addr, from string) *Client {
	registerWireTypes()
	return &Client{addr: addr, from: from, DialTimeout: 5 * time.Second}
}

// Close shuts the connection down; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.dropLocked()
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.enc = nil
		c.dec = nil
	}
}

func (c *Client) ensureLocked() error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.DialTimeout)
	if err != nil {
		return fmt.Errorf("tcprpc: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Call performs one RPC. The context's deadline, if any, is applied to the
// socket for this call.
func (c *Client) Call(ctx context.Context, method string, req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}

	c.seq++
	out := request{Seq: c.seq, From: c.from, Method: method, Body: req}
	if err := c.enc.Encode(&out); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("tcprpc: send %s: %w", method, err)
	}
	var in response
	if err := c.dec.Decode(&in); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("tcprpc: recv %s: %w", method, err)
	}
	if in.Seq != out.Seq {
		c.dropLocked()
		return nil, fmt.Errorf("tcprpc: %s: response out of sequence (%d != %d)", method, in.Seq, out.Seq)
	}
	if in.IsErr {
		return nil, decodeErr(in.ErrText, in.ErrCode)
	}
	return in.Body, nil
}
