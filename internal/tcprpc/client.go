package tcprpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/obs"
	"weaksets/internal/rpc"
)

// ErrClientClosed reports calls on a closed client.
var ErrClientClosed = errors.New("tcprpc: client closed")

// ErrNoStreams reports a CallStream against a connection that did not
// negotiate multi-frame responses (an old server, or a gob-pinned
// handshake-free connection). Callers fall back to a plain Call — the
// server materializes streamable bodies for such peers anyway.
var ErrNoStreams = errors.New("tcprpc: connection did not negotiate streams")

// sendBacklog bounds the client's encode queue. The writer goroutine
// drains it as fast as gob can encode; the bound only matters when the
// kernel socket buffer backs up, at which point callers block in Call
// (transport backpressure) instead of buffering unboundedly.
const sendBacklog = 128

// Client is a multiplexed TCP connection to a Server. Many calls share
// one persistent gob stream concurrently: a dedicated writer goroutine
// serializes request envelopes onto the socket and a reader goroutine
// dispatches response envelopes to their callers through a seq-keyed
// pending-call map, so responses may return in any order and slow calls
// never head-of-line-block fast ones. Per-call cancellation and
// deadlines are enforced at the pending map — never via conn.SetDeadline,
// which would clobber the deadlines of every other call sharing the
// socket. A transport error fails every in-flight call and the next
// call redials. Client is safe for concurrent use.
type Client struct {
	addr string
	from string
	// DialTimeout bounds connection establishment. Defaults to 5s.
	// Set before the first Call.
	DialTimeout time.Duration
	// MaxInflight bounds how many calls may share the stream at once
	// (0 = unlimited). 1 degenerates to the serialized one-RPC-per-
	// round-trip transport — the baseline `weakbench -rpc` sweeps
	// against. Set before the first Call.
	MaxInflight int
	// Tracer, when set, records a wire span per traced call (join-only).
	// The span's context rides the request envelope, so the server's
	// spans nest under it. Set before the first Call.
	Tracer *obs.Tracer
	// Journal, when set, records transport events — redials after a
	// connection death, codec negotiation falling back to gob — into a
	// bounded event journal. Set before the first Call.
	Journal *obs.Journal
	// Codec selects the wire codec to negotiate. "" and CodecWirebin
	// advertise wirebin in the connection handshake, falling back to gob
	// when the server doesn't speak it; CodecGob skips negotiation and
	// pins the connection to gob. Set before the first Call.
	Codec string
	// Compress asks for negotiated per-frame deflate on wirebin frames of
	// at least CompressMin bytes (0 = defaultCompressMin). Only takes
	// effect when wirebin is negotiated. Set before the first Call.
	Compress    bool
	CompressMin int

	mu     sync.Mutex
	cc     *clientConn
	sem    chan struct{}
	closed bool
	// helloFailed latches after a handshake dies at the transport level
	// (a peer so old it kills the stream on an unknown method, rather than
	// answering ErrNoMethod); every later dial skips the hello and speaks
	// plain gob.
	helloFailed bool

	seq atomic.Uint64
	ins transportInstruments
}

// call is one RPC awaiting its response. method lets the read loop
// attribute response bytes to the method that earned them. A streamed
// call carries a chunk queue instead of the one-shot channel: the read
// loop appends every More-flagged response there and keeps the call
// pending until the final frame.
type call struct {
	method string
	ch     chan response // buffered(1); the reader delivers at most once
	stream *streamQ      // non-nil for CallStream calls
}

// streamQ is the unbounded buffer between the connection's read loop
// and a stream's consumer. It must never block the read loop: the
// consumer may itself be waiting on other calls multiplexed on this
// very socket (an iterator fetching elements of partition 0 while
// partition 5's listing arrives), so a bounded queue could deadlock
// the connection against its own traffic.
type streamQ struct {
	mu     sync.Mutex
	chunks []response
	closed bool
	notify chan struct{} // buffered(1); signaled on push and close
}

func newStreamQ() *streamQ {
	return &streamQ{notify: make(chan struct{}, 1)}
}

func (q *streamQ) push(in response, final bool) {
	q.mu.Lock()
	q.chunks = append(q.chunks, in)
	if final {
		q.closed = true
	}
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop takes the next queued response; done reports an empty, closed
// queue (the stream is over).
func (q *streamQ) pop() (in response, got bool, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.chunks) > 0 {
		in = q.chunks[0]
		q.chunks = q.chunks[1:]
		return in, true, false
	}
	return response{}, false, q.closed
}

// clientConn is one live connection with its goroutines and in-flight
// calls. It is immutable except through fail, which runs once.
type clientConn struct {
	conn    net.Conn
	cdc     codec
	ins     *transportInstruments
	streams bool // the hello negotiated multi-frame responses
	sendCh  chan *request

	done     chan struct{}
	failOnce sync.Once
	err      error // written before done closes; read only after <-done

	pmu     sync.Mutex
	pending map[uint64]*call
}

// Dial creates a client for the server at addr. `from` identifies the
// caller to handlers (the node name handlers see). The connection is
// established lazily on first call.
func Dial(addr, from string) *Client {
	registerWireTypes()
	return &Client{addr: addr, from: from, DialTimeout: 5 * time.Second}
}

// Addr reports the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Close shuts the connection down; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		cc.fail(ErrClientClosed)
	}
}

// Stats snapshots the client's transport instrumentation.
func (c *Client) Stats() TransportStats {
	return c.ins.snapshot(c.addr)
}

// conn returns the live connection, dialing a fresh one if the previous
// connection died (or none exists yet).
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.cc != nil {
		select {
		case <-c.cc.done:
			c.cc = nil // dead; redial below
		default:
			return c.cc, nil
		}
	}
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("tcprpc: dial %s: %w", c.addr, err)
	}
	fio := newFrameIO(conn)
	gc := newGobCodec(fio)
	var cdc codec = gc
	var streams bool
	if c.Codec != CodecGob && !c.helloFailed {
		hr, err := c.hello(conn, gc, timeout)
		switch {
		case err == nil:
			if hr.Codec == CodecWirebin {
				cdc = newWirebinCodec(fio, "", hr.Compress, hr.CompressMin)
			}
			streams = hr.Streams
		case errors.Is(err, rpc.ErrNoMethod):
			// Pre-negotiation server: it answered the hello like any
			// unknown method. The connection is healthy — speak gob.
			c.Journal.Record(obs.Event{
				Type: obs.EvCodecFallback, Node: c.addr,
				Detail: "peer predates codec negotiation; speaking gob",
			})
		default:
			// The handshake died at the transport level; assume a peer
			// that tears the stream down on unknown methods, latch the
			// fallback, and redial once speaking plain gob.
			c.helloFailed = true
			c.Journal.Record(obs.Event{
				Type: obs.EvCodecFallback, Node: c.addr,
				Detail: "handshake died at transport level; gob latched for future dials",
			})
			_ = conn.Close()
			conn, err = net.DialTimeout("tcp", c.addr, timeout)
			if err != nil {
				return nil, fmt.Errorf("tcprpc: dial %s: %w", c.addr, err)
			}
			fio = newFrameIO(conn)
			cdc = newGobCodec(fio)
		}
	}
	c.ins.setCodec(cdc.name())
	cc := &clientConn{
		conn:    conn,
		cdc:     cdc,
		ins:     &c.ins,
		streams: streams,
		sendCh:  make(chan *request, sendBacklog),
		done:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	go cc.writeLoop()
	go cc.readLoop()
	if dials := c.ins.dials.Add(1); dials > 1 {
		c.ins.reconnects.Add(1)
		c.Journal.Record(obs.Event{
			Type: obs.EvReconnect, Node: c.addr,
			Attrs: map[string]int64{"dials": dials},
		})
	}
	c.cc = cc
	return cc, nil
}

// hello runs the synchronous codec handshake on a fresh connection,
// before the read/write loops exist — the one moment the stream is
// guaranteed quiet, so the codec can switch cleanly right after the
// reply. The whole exchange runs under the dial timeout.
func (c *Client) hello(conn net.Conn, gc *gobCodec, timeout time.Duration) (helloResp, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()

	out := &request{
		Seq:    c.seq.Add(1),
		From:   c.from,
		Method: methodHello,
		Body: helloReq{
			From:        c.from,
			Codecs:      []string{CodecWirebin},
			Compress:    c.Compress,
			CompressMin: c.CompressMin,
			Streams:     true,
		},
	}
	sent, err := gc.writeRequest(out)
	if err != nil {
		return helloResp{}, err
	}
	var in response
	recv, err := gc.readResponse(&in)
	if err != nil {
		return helloResp{}, err
	}
	c.ins.addSent(methodHello, sent)
	c.ins.addRecv(methodHello, recv)
	if in.Seq != out.Seq {
		return helloResp{}, fmt.Errorf("tcprpc: hello reply for seq %d, want %d", in.Seq, out.Seq)
	}
	body, err := finish(in)
	if err != nil {
		return helloResp{}, err
	}
	hr, ok := body.(helloResp)
	if !ok {
		return helloResp{}, fmt.Errorf("tcprpc: hello reply is %T", body)
	}
	return hr, nil
}

// acquire takes an in-flight slot when MaxInflight bounds the stream.
// The returned release is non-nil even when no budget is configured.
func (c *Client) acquire(ctx context.Context) (func(), error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.MaxInflight > 0 && c.sem == nil {
		c.sem = make(chan struct{}, c.MaxInflight)
	}
	sem := c.sem
	c.mu.Unlock()
	if sem == nil {
		return func() {}, nil
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Call performs one RPC. Calls may overlap freely on the shared stream;
// the context's cancellation or deadline abandons this call only (the
// connection and every other in-flight call stay live).
func (c *Client) Call(ctx context.Context, method string, req any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	ctx, span := c.Tracer.StartSpan(ctx, "tcp."+method)
	span.SetAttr("addr", c.addr)

	start := time.Now()
	resp, err := c.do(ctx, method, req)
	c.ins.observe(method, start, err)
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return resp, err
}

func (c *Client) do(ctx context.Context, method string, req any) (any, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}

	seq := c.seq.Add(1)
	ca := &call{method: method, ch: make(chan response, 1)}
	cc.pmu.Lock()
	cc.pending[seq] = ca
	cc.pmu.Unlock()
	c.ins.inflightUp()
	defer func() {
		cc.pmu.Lock()
		delete(cc.pending, seq)
		cc.pmu.Unlock()
		c.ins.inflightDown()
	}()

	out := &request{Seq: seq, From: c.from, Method: method, Body: req, Trace: obs.FromContext(ctx)}
	select {
	case cc.sendCh <- out:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cc.done:
		return nil, fmt.Errorf("tcprpc: %s: %w", method, cc.err)
	}

	select {
	case in := <-ca.ch:
		return finish(in)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cc.done:
		// The response may have raced in just before the connection
		// died; prefer it.
		select {
		case in := <-ca.ch:
			return finish(in)
		default:
		}
		return nil, fmt.Errorf("tcprpc: %s: %w", method, cc.err)
	}
}

// ClientStream is a streamed response being consumed: an rpc.Streamer
// whose chunks arrive over the socket while the consumer works. It is
// single-consumer, like every Streamer.
type ClientStream struct {
	ctx     context.Context
	cc      *clientConn
	method  string
	seq     uint64
	q       *streamQ
	cleanup func() // runs once, when the stream retires
	ended   bool
	err     error
}

// Next returns the next chunk; ok=false ends the stream (Err reports
// whether it ended cleanly). It respects the stream's context — a
// cancellation abandons the stream (late chunks are absorbed by the
// queue and dropped with it).
func (s *ClientStream) Next() (any, bool) {
	if s.ended {
		return nil, false
	}
	for {
		in, got, done := s.q.pop()
		switch {
		case got && in.IsErr:
			s.end(decodeErr(in.ErrText, in.ErrCode))
			return nil, false
		case got && !in.More:
			// Clean final frame: empty by construction.
			s.end(nil)
			return nil, false
		case got:
			return in.Body, true
		case done:
			s.end(nil)
			return nil, false
		}
		select {
		case <-s.q.notify:
		case <-s.ctx.Done():
			s.abandon()
			s.end(s.ctx.Err())
			return nil, false
		case <-s.cc.done:
			s.end(fmt.Errorf("tcprpc: %s: %w", s.method, s.cc.err))
			return nil, false
		}
	}
}

// Err reports how the stream ended, once Next has returned ok=false.
func (s *ClientStream) Err() error { return s.err }

// Materialize drains the stream and returns the chunks as a slice. The
// transport does not know the application's single-message form, so
// callers that need one (a ListPartsResp, say) issue a plain Call
// instead; this exists to satisfy rpc.Streamer.
func (s *ClientStream) Materialize() (any, error) {
	var chunks []any
	for {
		chunk, ok := s.Next()
		if !ok {
			break
		}
		chunks = append(chunks, chunk)
	}
	return chunks, s.err
}

func (s *ClientStream) end(err error) {
	if s.ended {
		return
	}
	s.ended = true
	s.err = err
	s.cleanup()
}

// abandon deregisters a stream the consumer walked away from, so the
// read loop stops queueing its late chunks.
func (s *ClientStream) abandon() {
	s.cc.pmu.Lock()
	if ca, ok := s.cc.pending[s.seq]; ok && ca.stream == s.q {
		delete(s.cc.pending, s.seq)
	}
	s.cc.pmu.Unlock()
}

// CallStream performs one RPC whose response arrives as a stream of
// chunks. It fails fast with ErrNoStreams when the connection did not
// negotiate streaming — callers then issue a plain Call and receive the
// materialized body (the server collapses streamable responses for such
// peers on its own). The context governs the whole consumption, not
// just the send.
func (c *Client) CallStream(ctx context.Context, method string, req any) (*ClientStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	if !cc.streams {
		return nil, ErrNoStreams
	}
	release, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}

	seq := c.seq.Add(1)
	q := newStreamQ()
	ca := &call{method: method, stream: q}
	cc.pmu.Lock()
	cc.pending[seq] = ca
	cc.pmu.Unlock()
	c.ins.inflightUp()

	st := &ClientStream{ctx: ctx, cc: cc, method: method, seq: seq, q: q}
	var once sync.Once
	st.cleanup = func() {
		once.Do(func() {
			c.ins.inflightDown()
			release()
		})
	}

	out := &request{Seq: seq, From: c.from, Method: method, Body: req, Trace: obs.FromContext(ctx)}
	select {
	case cc.sendCh <- out:
	case <-ctx.Done():
		st.abandon()
		st.end(ctx.Err())
		return nil, ctx.Err()
	case <-cc.done:
		st.abandon()
		err := fmt.Errorf("tcprpc: %s: %w", method, cc.err)
		st.end(err)
		return nil, err
	}
	return st, nil
}

// finish unpacks one response envelope.
func finish(in response) (any, error) {
	if in.IsErr {
		return nil, decodeErr(in.ErrText, in.ErrCode)
	}
	return in.Body, nil
}

// writeLoop is the connection's dedicated writer: the only goroutine
// that touches the codec's encode side.
func (cc *clientConn) writeLoop() {
	for {
		select {
		case out := <-cc.sendCh:
			n, err := cc.cdc.writeRequest(out)
			if err != nil {
				cc.fail(fmt.Errorf("send %s: %w", out.Method, err))
				return
			}
			cc.ins.addSent(out.Method, n)
		case <-cc.done:
			return
		}
	}
}

// readLoop is the connection's dedicated reader: it decodes response
// envelopes and dispatches each to its caller by sequence number.
// Responses for abandoned calls (cancelled contexts) are dropped.
func (cc *clientConn) readLoop() {
	for {
		var in response
		n, err := cc.cdc.readResponse(&in)
		if err != nil {
			cc.fail(fmt.Errorf("recv: %w", err))
			return
		}
		// A stream chunk keeps its call pending: further responses on
		// the same seq are still coming. The final frame (More false,
		// or an error) retires the entry.
		final := !in.More || in.IsErr
		cc.pmu.Lock()
		ca, ok := cc.pending[in.Seq]
		if ok && (final || ca.stream == nil) {
			delete(cc.pending, in.Seq)
		}
		cc.pmu.Unlock()
		if !ok {
			cc.ins.addRecv("", n)
			continue
		}
		cc.ins.addRecv(ca.method, n)
		if ca.stream != nil {
			ca.stream.push(in, final)
		} else {
			ca.ch <- in
		}
	}
}

// fail marks the connection dead exactly once: every in-flight and
// future waiter on this connection observes err through done.
func (cc *clientConn) fail(err error) {
	cc.failOnce.Do(func() {
		cc.err = err
		close(cc.done)
		_ = cc.conn.Close()
	})
}
