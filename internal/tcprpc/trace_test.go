package tcprpc

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// startTracedRemote is startRemote with the remote process's own tracer
// wired through its bus, repo server, and TCP server, so spans recorded
// there join traces whose context arrives in request envelopes.
func startTracedRemote(t *testing.T, node netsim.NodeID, tracer *obs.Tracer) *remoteProcess {
	t.Helper()
	net := netsim.New(netsim.Config{})
	net.AddNode(node)
	bus := rpc.NewBus(net)
	bus.UseTracer(tracer)
	repoSrv, err := repo.NewServer(bus, node)
	if err != nil {
		t.Fatal(err)
	}
	repoSrv.UseTracer(tracer)
	tcpSrv, err := ServeConfig("127.0.0.1:0", busBackedDispatch(bus, node), ServerConfig{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tcpSrv.Close()
		repoSrv.Close()
	})
	return &remoteProcess{srv: tcpSrv, repoSrv: repoSrv}
}

// TestCrossProcessTrace is the observability acceptance test: one
// `elements` run whose members live on a TCP-served remote process must
// produce ONE coherent trace — every span on both sides carrying the same
// trace id, stitched by the context propagated in the gob envelopes.
// Run it with -race: span recording happens concurrently with the
// fetcher goroutines and the remote's worker pool.
func TestCrossProcessTrace(t *testing.T) {
	archiveTracer := obs.NewTracer("archive", obs.Config{})
	clientTracer := obs.NewTracer("client", obs.Config{})
	weakness := obs.NewRegistry()

	remote := startTracedRemote(t, "archive", archiveTracer)

	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.UseTracer(clientTracer)
	ctx := context.Background()

	c.Net.AddNode("archive")
	conn := Dial(remote.srv.Addr(), "gateway")
	conn.Tracer = clientTracer
	gw, err := NewGateway(c.Bus, "archive", conn, RepoMethods())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "papers"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ref, err := c.Client.Put(ctx, "archive", repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("p%d", i)),
			Data: []byte("body"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "papers", ref); err != nil {
			t.Fatal(err)
		}
	}

	set, err := core.NewSet(c.Client, cluster.DirNode, "papers", core.Options{
		Semantics: core.Optimistic,
		Tracer:    clientTracer,
		Weakness:  weakness,
	})
	if err != nil {
		t.Fatal(err)
	}
	elems, err := set.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 6 {
		t.Fatalf("collected %d, want 6", len(elems))
	}

	// The weakness report links the run to its trace.
	rep, ok := weakness.Last("papers")
	if !ok {
		t.Fatal("no weakness report recorded")
	}
	if rep.Trace == 0 {
		t.Fatal("weakness report carries no trace id")
	}
	if rep.Yielded != 6 || rep.Outcome != "returns" {
		t.Fatalf("report = %+v, want 6 yielded / returns", rep)
	}

	// Both processes retained spans of the SAME trace.
	clientSpans := clientTracer.Trace(rep.Trace)
	archiveSpans := archiveTracer.Trace(rep.Trace)
	if len(clientSpans) == 0 {
		t.Fatal("client tracer has no spans for the run's trace")
	}
	if len(archiveSpans) == 0 {
		t.Fatal("archive tracer has no spans for the run's trace — context did not cross the socket")
	}
	for _, sp := range clientSpans {
		if sp.Process != "client" {
			t.Fatalf("client-side span %q labelled process %q", sp.Name, sp.Process)
		}
	}
	for _, sp := range archiveSpans {
		if sp.Process != "archive" {
			t.Fatalf("archive-side span %q labelled process %q", sp.Name, sp.Process)
		}
	}

	// The trace must cover every layer of the read path on both sides.
	all := append(clientSpans, archiveSpans...)
	for _, want := range []string{"elements", "iter.list", "fetch.batch", "rpc.", "tcp.", "rpc.serve", "store."} {
		if !hasSpan(all, want) {
			names := make([]string, 0, len(all))
			for _, sp := range all {
				names = append(names, sp.Process+"/"+sp.Name)
			}
			t.Fatalf("trace has no %q span; spans: %v", want, names)
		}
	}

	// Exactly one root, and every other span is parented (to a span that
	// may live in the other process's ring — ids still line up).
	ids := make(map[obs.SpanID]bool, len(all))
	roots := 0
	for _, sp := range all {
		ids[sp.Span] = true
	}
	for _, sp := range all {
		if sp.Parent == 0 {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("span %s/%s has parent %s not in the trace", sp.Process, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1", roots)
	}
}

func hasSpan(spans []obs.SpanRecord, nameOrPrefix string) bool {
	for _, sp := range spans {
		if sp.Name == nameOrPrefix || strings.HasPrefix(sp.Name, nameOrPrefix) {
			return true
		}
	}
	return false
}
