// Package tcprpc carries the same RPC surface as internal/rpc over real
// TCP sockets with gob encoding. It exists to show the weak-set stack is
// not tied to the simulator: a repository server can be served from a
// separate process over the wire, and a Gateway splices such a remote
// server into a simulated cluster as an ordinary node, so weak sets and
// dynamic sets iterate over it unchanged.
//
// The protocol is a persistent gob stream per connection carrying
// sequence-numbered request/response envelopes, multiplexed: a client
// keeps many calls in flight on one stream and matches responses to
// callers by sequence number, and a server executes decoded requests on
// a bounded per-connection worker pool, so responses may legally return
// in any order. See DESIGN.md §8 for the framing, dispatch, and failure
// semantics. Well-known sentinel errors (repo.ErrNotFound and friends)
// are mapped to wire codes so errors.Is keeps working across the socket.
package tcprpc

import (
	"encoding/gob"
	"errors"
	"fmt"

	"weaksets/internal/locksvc"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// request is one call envelope. Trace carries the caller's span context
// across the process boundary, so a sampled `elements()` run produces one
// coherent trace whose spans come from both sides of the socket.
type request struct {
	Seq    uint64
	From   string
	Method string
	Body   any
	Trace  obs.SpanContext
}

// response is one reply envelope. More marks a stream chunk: the call
// has further responses coming under the same Seq, and the final one
// (More false, and empty unless the stream failed) closes it. Peers
// that predate streaming never see More set — servers only stream to
// clients that negotiated it in the hello (gob ignores the unknown
// field in either direction regardless).
type response struct {
	Seq     uint64
	Body    any
	ErrText string
	ErrCode string
	IsErr   bool
	More    bool
}

// methodHello is the reserved codec-negotiation method. A codec-aware
// client sends it as the very first request on a fresh connection, always
// in gob; a codec-aware server intercepts it before dispatch. On a server
// that predates negotiation it falls through to dispatch and fails with
// rpc.ErrNoMethod, which the client reads as "speak gob" — old and new
// peers interoperate in every pairing.
const methodHello = "tcprpc.Hello"

// helloReq opens codec negotiation.
type helloReq struct {
	// From identifies the caller for the connection's lifetime; wirebin
	// envelopes omit the per-request From field and the server stamps
	// this value instead.
	From string
	// Codecs lists the codecs the client speaks, most preferred first
	// (gob is always implied as the fallback).
	Codecs []string
	// Compress asks for per-frame deflate on frames clearing CompressMin.
	Compress bool
	// CompressMin is the client's preferred minimum frame size to
	// compress; 0 lets the server pick the default.
	CompressMin int
	// Streams declares the client can consume multi-frame responses
	// (response.More); without it the server materializes streamable
	// bodies into one response.
	Streams bool
}

// helloResp confirms the negotiated settings, authoritative for both
// directions of the connection.
type helloResp struct {
	Codec       string
	Compress    bool
	CompressMin int
	Streams     bool
}

// sentinelCodes maps well-known errors onto stable wire codes.
var sentinelCodes = []struct {
	code string
	err  error
}{
	{code: "repo.not_found", err: repo.ErrNotFound},
	{code: "repo.no_collection", err: repo.ErrNoCollection},
	{code: "repo.collection_exists", err: repo.ErrCollectionExists},
	{code: "repo.bad_pin", err: repo.ErrBadPin},
	{code: "repo.bad_token", err: repo.ErrBadToken},
	{code: "lock.not_held", err: locksvc.ErrNotHeld},
	{code: "rpc.no_method", err: rpc.ErrNoMethod},
}

// encodeErr maps err onto (text, code) for the wire.
func encodeErr(err error) (string, string) {
	if err == nil {
		return "", ""
	}
	for _, s := range sentinelCodes {
		if errors.Is(err, s.err) {
			return err.Error(), s.code
		}
	}
	return err.Error(), ""
}

// decodeErr reconstructs an error from the wire so sentinel matching
// works on the client side.
func decodeErr(text, code string) error {
	if code != "" {
		for _, s := range sentinelCodes {
			if s.code == code {
				return fmt.Errorf("%s (remote: %w)", text, s.err)
			}
		}
	}
	return errors.New(text)
}

// registerWireTypes registers every concrete type that can ride in a
// request or response body. gob requires this once per process; the
// encoder/decoder constructors call it.
func registerWireTypes() {
	gob.Register(struct{}{})
	// Negotiation wire types.
	gob.Register(helloReq{})
	gob.Register(helloResp{})
	// Repository wire types.
	gob.Register(repo.GetReq{})
	gob.Register(repo.GetBatchReq{})
	gob.Register(repo.GetBatchResp{})
	gob.Register(repo.PutReq{})
	gob.Register(repo.PutResp{})
	gob.Register(repo.DeleteReq{})
	gob.Register(repo.CreateReq{})
	gob.Register(repo.ListReq{})
	gob.Register(repo.ListResp{})
	gob.Register(repo.ListPartsReq{})
	gob.Register(repo.PartListing{})
	gob.Register(repo.ListPartsResp{})
	gob.Register(repo.AddReq{})
	gob.Register(repo.RemoveReq{})
	gob.Register(repo.RemoveResp{})
	gob.Register(repo.MutateResp{})
	gob.Register(repo.PinReq{})
	gob.Register(repo.PinResp{})
	gob.Register(repo.UnpinReq{})
	gob.Register(repo.BeginGrowReq{})
	gob.Register(repo.BeginGrowResp{})
	gob.Register(repo.EndGrowReq{})
	gob.Register(repo.EndGrowResp{})
	gob.Register(repo.StatsReq{})
	gob.Register(repo.StatsResp{})
	gob.Register(repo.StoreStatsReq{})
	gob.Register(repo.StoreStatsResp{})
	gob.Register(repo.SyncReq{})
	gob.Register(repo.SyncPartReq{})
	gob.Register(repo.SyncPartResp{})
	gob.Register(repo.DigestReq{})
	gob.Register(repo.DigestResp{})
	gob.Register(repo.LeaseReq{})
	gob.Register(repo.LeaseGrant{})
	gob.Register(repo.WatchReq{})
	gob.Register(repo.Invalidation{})
	gob.Register(repo.Object{})
	// Lock service wire types.
	gob.Register(locksvc.AcquireReq{})
	gob.Register(locksvc.AcquireResp{})
	gob.Register(locksvc.ReleaseReq{})
}

// RepoMethods is the full repository method surface, for gateways that
// proxy a remote repository server.
func RepoMethods() []string {
	return []string{
		repo.MethodGet,
		repo.MethodGetBatch,
		repo.MethodPut,
		repo.MethodDelete,
		repo.MethodCreate,
		repo.MethodList,
		repo.MethodListParts,
		repo.MethodAdd,
		repo.MethodRemove,
		repo.MethodPin,
		repo.MethodUnpin,
		repo.MethodBeginGrow,
		repo.MethodEndGrow,
		repo.MethodStats,
		repo.MethodStoreStats,
		repo.MethodSync,
		repo.MethodSyncPart,
		repo.MethodSyncDigest,
		repo.MethodLease,
		repo.MethodWatch,
	}
}
