package tcprpc

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"

	"weaksets/internal/obs"
	"weaksets/internal/wirebin"
)

// Codec names, as they appear in the hello exchange and in TransportStats.
const (
	// CodecGob is the reflection-based gob stream every peer speaks; it is
	// the universal fallback and the only codec pre-negotiation builds know.
	CodecGob = "gob"
	// CodecWirebin is the compact length-prefixed binary codec negotiated
	// for hot-path messages (DESIGN.md §11).
	CodecWirebin = "wirebin"
)

const (
	// maxFrame bounds one wirebin frame and its decompressed size; a
	// length prefix beyond it fails the connection before any allocation
	// is sized from it.
	maxFrame = 64 << 20
	// defaultCompressMin is the per-frame compression threshold used when
	// a client asks for compression without naming one.
	defaultCompressMin = 1024
)

// Frame flag bits (the byte after the length prefix).
const (
	frCompressed = 1 << 0 // payload is a deflate stream prefixed with its raw length
)

// Envelope flag bits (inside the frame).
const (
	bfGobBody = 1 << 0 // body is a self-contained gob blob, not a registered type
	bfTraced  = 1 << 1 // request: envelope carries a span context
	bfIsErr   = 1 << 1 // response: envelope carries an error, not a body
	bfNilBody = 1 << 2 // body is absent
	bfMore    = 1 << 3 // response: stream chunk; more responses follow on this seq
)

// codec reads and writes envelope messages on one connection, reporting
// the wire bytes each message cost. Implementations are not safe for
// concurrent use per direction; the transport guarantees a single writer
// (the client's write loop, the server's write lock) and a single reader
// per connection.
type codec interface {
	name() string
	writeRequest(req *request) (int, error)
	readRequest(req *request) (int, error)
	writeResponse(resp *response) (int, error)
	readResponse(resp *response) (int, error)
}

// frameIO is the buffered, byte-counting channel both codecs share. A
// connection builds exactly one, so the gob handshake phase and a
// negotiated wirebin phase read the same buffered stream — no bytes get
// stranded in a stale buffer across the codec switch.
type frameIO struct {
	br *bufio.Reader
	bw *bufio.Writer
	cr countingReader
	cw countingWriter
}

func newFrameIO(conn net.Conn) *frameIO {
	f := &frameIO{
		br: bufio.NewReader(conn),
		bw: bufio.NewWriter(conn),
	}
	f.cr.r = f.br
	f.cw.w = f.bw
	return f
}

// countingReader counts the bytes the codec consumes. It implements
// io.ByteReader so gob does not interpose its own read-ahead buffer —
// read-ahead would steal bytes that belong to the codec taking over
// after the handshake.
type countingReader struct {
	r *bufio.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

type countingWriter struct {
	w *bufio.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// gobCodec is the fallback codec: the classic persistent gob stream.
// Encoder and decoder live for the connection (gob streams are stateful —
// type descriptors are sent once), so the handshake and any post-
// handshake gob traffic share them.
type gobCodec struct {
	fio *frameIO
	enc *gob.Encoder
	dec *gob.Decoder
}

func newGobCodec(fio *frameIO) *gobCodec {
	return &gobCodec{fio: fio, enc: gob.NewEncoder(&fio.cw), dec: gob.NewDecoder(&fio.cr)}
}

func (c *gobCodec) name() string { return CodecGob }

func (c *gobCodec) writeRequest(req *request) (int, error) { return c.write(req) }

func (c *gobCodec) writeResponse(resp *response) (int, error) { return c.write(resp) }

func (c *gobCodec) write(v any) (int, error) {
	start := c.fio.cw.n
	if err := c.enc.Encode(v); err != nil {
		return 0, err
	}
	if err := c.fio.bw.Flush(); err != nil {
		return 0, err
	}
	return c.fio.cw.n - start, nil
}

func (c *gobCodec) readRequest(req *request) (int, error) { return c.read(req) }

func (c *gobCodec) readResponse(resp *response) (int, error) { return c.read(resp) }

func (c *gobCodec) read(v any) (int, error) {
	start := c.fio.cr.n
	if err := c.dec.Decode(v); err != nil {
		return 0, err
	}
	return c.fio.cr.n - start, nil
}

// wirebinCodec frames hand-rolled binary envelopes: a varint length
// prefix, a flags byte, then the (optionally deflate-compressed) raw
// envelope. Registered hot types encode through their wirebin marshalers;
// everything else rides as a self-contained gob blob inside the frame, so
// the whole RPC surface works on a wirebin connection. See DESIGN.md §11
// for the byte diagram.
type wirebinCodec struct {
	fio *frameIO

	// from is the peer identity the client hoisted into its hello; the
	// server-side codec stamps it onto every decoded request, so From
	// never rides the per-request hot path. Empty on the client side.
	from string

	// Compression settings, negotiated as a unit in the handshake. A
	// compressed frame on a connection that never negotiated compression
	// is a protocol violation and fails the connection.
	compressOK  bool
	compressMin int

	r    wirebin.Reader
	fw   *flate.Writer
	fr   io.ReadCloser
	zbuf bytes.Buffer
}

func newWirebinCodec(fio *frameIO, from string, compress bool, compressMin int) *wirebinCodec {
	if compressMin <= 0 {
		compressMin = defaultCompressMin
	}
	return &wirebinCodec{fio: fio, from: from, compressOK: compress, compressMin: compressMin}
}

func (c *wirebinCodec) name() string { return CodecWirebin }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// writeFrame ships one raw envelope, compressing it when the connection
// negotiated compression, the envelope clears the threshold, and deflate
// actually wins (incompressible payloads go out raw).
func (c *wirebinCodec) writeFrame(raw []byte) (int, error) {
	flags := byte(0)
	payload := raw
	if c.compressOK && len(raw) >= c.compressMin {
		c.zbuf.Reset()
		var rl [binary.MaxVarintLen64]byte
		c.zbuf.Write(rl[:binary.PutUvarint(rl[:], uint64(len(raw)))])
		if c.fw == nil {
			c.fw, _ = flate.NewWriter(&c.zbuf, flate.BestSpeed)
		} else {
			c.fw.Reset(&c.zbuf)
		}
		if _, err := c.fw.Write(raw); err != nil {
			return 0, err
		}
		if err := c.fw.Close(); err != nil {
			return 0, err
		}
		if c.zbuf.Len() < len(raw) {
			flags |= frCompressed
			payload = c.zbuf.Bytes()
		}
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hn := binary.PutUvarint(hdr[:], uint64(1+len(payload)))
	hdr[hn] = flags
	hn++
	if _, err := c.fio.bw.Write(hdr[:hn]); err != nil {
		return 0, err
	}
	if _, err := c.fio.bw.Write(payload); err != nil {
		return 0, err
	}
	if err := c.fio.bw.Flush(); err != nil {
		return 0, err
	}
	return hn + len(payload), nil
}

// readFrame returns one raw envelope in a pooled buffer (the caller
// decides whether it may be pooled again — decoded bodies can alias it)
// and the wire bytes the frame cost.
func (c *wirebinCodec) readFrame() ([]byte, int, error) {
	ln, err := binary.ReadUvarint(c.fio.br)
	if err != nil {
		return nil, 0, err
	}
	if ln == 0 || ln > maxFrame {
		return nil, 0, fmt.Errorf("tcprpc: frame length %d out of range", ln)
	}
	wire := uvarintLen(ln) + int(ln)
	buf := growBuf(wirebin.GetBuf(), int(ln))
	if _, err := io.ReadFull(c.fio.br, buf); err != nil {
		wirebin.PutBuf(buf)
		return nil, 0, err
	}
	flags := buf[0]
	raw := buf[1:]
	if flags&frCompressed == 0 {
		return raw, wire, nil
	}
	if !c.compressOK {
		wirebin.PutBuf(buf)
		return nil, 0, errors.New("tcprpc: compressed frame without negotiated compression")
	}
	rawLen, n := binary.Uvarint(raw)
	if n <= 0 || rawLen == 0 || rawLen > maxFrame {
		wirebin.PutBuf(buf)
		return nil, 0, fmt.Errorf("tcprpc: compressed frame raw length %d out of range", rawLen)
	}
	zr := bytes.NewReader(raw[n:])
	if c.fr == nil {
		c.fr = flate.NewReader(zr)
	} else if err := c.fr.(flate.Resetter).Reset(zr, nil); err != nil {
		wirebin.PutBuf(buf)
		return nil, 0, err
	}
	out := growBuf(wirebin.GetBuf(), int(rawLen))
	if _, err := io.ReadFull(c.fr, out); err != nil {
		wirebin.PutBuf(buf)
		wirebin.PutBuf(out)
		return nil, 0, fmt.Errorf("tcprpc: inflate: %w", err)
	}
	wirebin.PutBuf(buf)
	return out, wire, nil
}

// growBuf sizes a pooled buffer to n bytes, reallocating only when the
// pooled capacity is short.
func growBuf(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func (c *wirebinCodec) writeRequest(req *request) (int, error) {
	raw := wirebin.GetBuf()
	defer func() { wirebin.PutBuf(raw) }()
	raw = wirebin.AppendUvarint(raw, req.Seq)
	traced := req.Trace != (obs.SpanContext{})
	id, encFn, typed := wirebin.Lookup(req.Body)
	var bflags byte
	switch {
	case req.Body == nil:
		bflags |= bfNilBody
	case !typed:
		bflags |= bfGobBody
	}
	if traced {
		bflags |= bfTraced
	}
	raw = append(raw, bflags)
	if traced {
		raw = req.Trace.AppendBinary(raw)
	}
	raw = wirebin.AppendString(raw, req.Method)
	switch {
	case req.Body == nil:
	case typed:
		raw = wirebin.AppendUvarint(raw, uint64(id))
		raw = encFn(raw, req.Body)
	default:
		blob, err := gobBlob(req.Body)
		if err != nil {
			return 0, fmt.Errorf("tcprpc: encode %s body: %w", req.Method, err)
		}
		raw = append(raw, blob...)
	}
	return c.writeFrame(raw)
}

func (c *wirebinCodec) readRequest(req *request) (int, error) {
	raw, wire, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	r := &c.r
	r.Reset(raw)
	req.Seq = r.Uvarint()
	bflags := r.Byte()
	req.Trace = obs.SpanContext{}
	if bflags&bfTraced != 0 && r.Err() == nil {
		sc, n, derr := obs.DecodeSpanContext(r.Remaining())
		if derr != nil {
			wirebin.PutBuf(raw)
			return 0, derr
		}
		r.Skip(n)
		req.Trace = sc
	}
	req.Method = r.String()
	req.From = c.from
	body, err := decodeBody(r, bflags)
	if err != nil {
		wirebin.PutBuf(raw)
		return 0, err
	}
	req.Body = body
	if !r.Aliased() {
		wirebin.PutBuf(raw)
	}
	return wire, nil
}

func (c *wirebinCodec) writeResponse(resp *response) (int, error) {
	raw := wirebin.GetBuf()
	defer func() { wirebin.PutBuf(raw) }()
	raw = wirebin.AppendUvarint(raw, resp.Seq)
	var bflags byte
	var id uint16
	var encFn wirebin.EncodeFunc
	var typed bool
	if resp.More {
		bflags |= bfMore
	}
	if resp.IsErr {
		bflags |= bfIsErr
	} else {
		id, encFn, typed = wirebin.Lookup(resp.Body)
		switch {
		case resp.Body == nil:
			bflags |= bfNilBody
		case !typed:
			bflags |= bfGobBody
		}
	}
	raw = append(raw, bflags)
	switch {
	case resp.IsErr:
		raw = wirebin.AppendString(raw, resp.ErrText)
		raw = wirebin.AppendString(raw, resp.ErrCode)
	case resp.Body == nil:
	case typed:
		raw = wirebin.AppendUvarint(raw, uint64(id))
		raw = encFn(raw, resp.Body)
	default:
		blob, err := gobBlob(resp.Body)
		if err != nil {
			return 0, fmt.Errorf("tcprpc: encode response body: %w", err)
		}
		raw = append(raw, blob...)
	}
	return c.writeFrame(raw)
}

func (c *wirebinCodec) readResponse(resp *response) (int, error) {
	raw, wire, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	r := &c.r
	r.Reset(raw)
	*resp = response{}
	resp.Seq = r.Uvarint()
	bflags := r.Byte()
	resp.More = bflags&bfMore != 0
	if bflags&bfIsErr != 0 {
		resp.IsErr = true
		resp.ErrText = r.String()
		resp.ErrCode = r.String()
		err = r.Err()
	} else {
		resp.Body, err = decodeBody(r, bflags)
	}
	if err != nil {
		wirebin.PutBuf(raw)
		return 0, err
	}
	if !r.Aliased() {
		wirebin.PutBuf(raw)
	}
	return wire, nil
}

// decodeBody decodes an envelope body per its flags: absent, a registered
// wirebin type, or a self-contained gob blob filling the rest of the
// frame.
func decodeBody(r *wirebin.Reader, bflags byte) (any, error) {
	switch {
	case bflags&bfNilBody != 0:
		return nil, r.Err()
	case bflags&bfGobBody != 0:
		rest := r.Remaining()
		r.Skip(len(rest))
		if err := r.Err(); err != nil {
			return nil, err
		}
		return gobUnblob(rest)
	default:
		id := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		dec, ok := wirebin.ByID(uint16(id))
		if !ok {
			return nil, fmt.Errorf("tcprpc: unknown wirebin type id %d", id)
		}
		body := dec(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		return body, nil
	}
}

// gobBlob encodes a body as a self-contained gob stream (descriptors
// included), the carrier for non-hot types inside wirebin frames.
func gobBlob(body any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&body); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func gobUnblob(b []byte) (any, error) {
	var body any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&body); err != nil {
		return nil, fmt.Errorf("tcprpc: decode gob body: %w", err)
	}
	return body, nil
}
