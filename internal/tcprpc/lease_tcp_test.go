package tcprpc

import (
	"context"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
)

// leaseWorld is the TCP lease fixture: a remote directory+storage
// process reachable only over a real socket, spliced into a local
// cluster as node "archive", with the collection and its members living
// on the remote side.
type leaseWorld struct {
	c      *cluster.Cluster
	remote *remoteProcess
	gw     *Gateway
}

func newLeaseWorld(t *testing.T, n int) *leaseWorld {
	t.Helper()
	remote := startRemote(t, "archive")
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()

	c.Net.AddNode("archive")
	gw, err := NewGateway(c.Bus, "archive", Dial(remote.srv.Addr(), "gateway"), RepoMethods())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	if err := c.Client.CreateCollection(ctx, "archive", "papers"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("p%02d", i)), Data: []byte("paper body")}
		ref, err := c.Client.Put(ctx, "archive", obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, "archive", "papers", ref); err != nil {
			t.Fatal(err)
		}
	}
	return &leaseWorld{c: c, remote: remote, gw: gw}
}

// remoteReadRPCs counts the membership and element reads that actually
// crossed the socket — the quantity leases exist to eliminate.
func (w *leaseWorld) remoteReadRPCs() int64 {
	return w.remote.bus.MethodCalls(repo.MethodList) +
		w.remote.bus.MethodCalls(repo.MethodListParts) +
		w.remote.bus.MethodCalls(repo.MethodGet) +
		w.remote.bus.MethodCalls(repo.MethodGetBatch)
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaseZeroRPCOverTCP drives the whole lease protocol across a real
// socket: grant and Watch ride the multiplexed stream, a warm run under
// the lease costs zero remote read RPCs, a remote write's pushed
// invalidation degrades the next run to exactly one conditional List,
// and serving resumes RPC-free after it.
func TestLeaseZeroRPCOverTCP(t *testing.T) {
	w := newLeaseWorld(t, 8)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	ls := repo.NewLeaseState(w.c.Client, "archive", "papers")
	if err := ls.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Stop)
	w.c.Client.UseLeases(ls)
	if st := ls.Stats(); !st.Active || st.Held != 1 {
		t.Fatalf("lease stats over TCP = %+v, want active with 1 held", st)
	}

	set, err := core.NewSet(w.c.Client, "archive", "papers", core.Options{Semantics: core.GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	if cold, err := set.Collect(ctx); err != nil || len(cold) != 8 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}

	before := w.remoteReadRPCs()
	warm, err := set.Collect(ctx)
	if err != nil || len(warm) != 8 {
		t.Fatalf("warm run: %d elems, %v", len(warm), err)
	}
	for _, e := range warm {
		if string(e.Data) != "paper body" {
			t.Fatalf("element %s data %q", e.Ref.ID, e.Data)
		}
	}
	if d := w.remoteReadRPCs() - before; d != 0 {
		t.Fatalf("lease-held warm run crossed the socket %d times, want 0", d)
	}

	// A write on the remote pushes an invalidation back down the watch
	// stream; the next run revalidates with one conditional List.
	v0, _, ok := ls.Serveable("papers")
	if !ok {
		t.Fatal("lease not serveable after warm run")
	}
	obj := repo.Object{ID: "p99", Data: []byte("paper body")}
	ref, err := w.c.Client.Put(ctx, "archive", obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.c.Client.Add(ctx, "archive", "papers", ref); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "pushed invalidation", func() bool {
		v, _, ok := ls.Serveable("papers")
		return ok && v > v0
	})
	lists := w.remote.bus.MethodCalls(repo.MethodList)
	if moved, err := set.Collect(ctx); err != nil || len(moved) != 9 {
		t.Fatalf("post-write run: %d elems, %v", len(moved), err)
	}
	if d := w.remote.bus.MethodCalls(repo.MethodList) - lists; d != 1 {
		t.Fatalf("post-write run issued %d List RPCs, want exactly 1", d)
	}
	before = w.remoteReadRPCs()
	if again, err := set.Collect(ctx); err != nil || len(again) != 9 {
		t.Fatalf("re-warm run: %d elems, %v", len(again), err)
	}
	if d := w.remoteReadRPCs() - before; d != 0 {
		t.Fatalf("re-warm run crossed the socket %d times, want 0", d)
	}
}

// TestLeaseConnDropBreaksAndDegrades kills the TCP connection under a
// held lease: the client must observe the dead watch stream, break every
// lease, and degrade the next run to conditional revalidation against
// the restarted server — never serve unverified cache entries.
func TestLeaseConnDropBreaksAndDegrades(t *testing.T) {
	w := newLeaseWorld(t, 6)
	ctx := context.Background()
	cache := repo.NewCache(64)
	w.c.Client.UseCache(cache)
	ls := repo.NewLeaseState(w.c.Client, "archive", "papers")
	if err := ls.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Stop)
	w.c.Client.UseLeases(ls)

	set, err := core.NewSet(w.c.Client, "archive", "papers", core.Options{Semantics: core.GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	if cold, err := set.Collect(ctx); err != nil || len(cold) != 6 {
		t.Fatalf("cold run: %d elems, %v", len(cold), err)
	}
	if _, _, ok := ls.Serveable("papers"); !ok {
		t.Fatal("lease not serveable")
	}

	// Tear the TCP layer down; the dispatch bus and its store survive, so
	// a new listener on the same address is the same repository after a
	// network blip.
	addr := w.remote.srv.Addr()
	w.remote.srv.Close()
	waitCond(t, "lease break after conn drop", func() bool {
		_, _, ok := ls.Serveable("papers")
		return !ok
	})
	if st := ls.Stats(); st.Active || st.Breaks == 0 {
		t.Fatalf("stats after conn drop = %+v, want inactive with breaks", st)
	}

	srv2, err := Serve(addr, busBackedDispatch(w.remote.bus, "archive"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)

	// Leaseless degradation: the run still answers, by revalidating.
	lists := w.remote.bus.MethodCalls(repo.MethodList)
	lost, err := set.Collect(ctx)
	if err != nil || len(lost) != 6 {
		t.Fatalf("post-drop run: %d elems, %v", len(lost), err)
	}
	if d := w.remote.bus.MethodCalls(repo.MethodList) - lists; d == 0 {
		t.Fatal("post-drop run never revalidated the listing")
	}

	// Explicit re-arm resumes lease serving against the new connection.
	ls.Stop()
	if err := ls.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "re-armed lease", func() bool {
		_, _, ok := ls.Serveable("papers")
		return ok
	})
	if _, err := set.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	before := w.remoteReadRPCs()
	if again, err := set.Collect(ctx); err != nil || len(again) != 6 {
		t.Fatalf("re-armed warm run: %d elems, %v", len(again), err)
	}
	if d := w.remoteReadRPCs() - before; d != 0 {
		t.Fatalf("re-armed warm run crossed the socket %d times, want 0", d)
	}
}

// TestLeaseOldTCPServerDegrades pins the compat story over a real
// socket: a remote that never registered the lease methods answers
// ErrNoMethod through the gateway and the client runs leaseless.
func TestLeaseOldTCPServerDegrades(t *testing.T) {
	// A remote with an empty dispatch table: every method, including
	// Watch and Lease, answers ErrNoMethod — the old-peer answer.
	old := rpc.NewServer("archive")
	tcpSrv, err := Serve("127.0.0.1:0", old)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcpSrv.Close)

	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.Net.AddNode("archive")
	gw, err := NewGateway(c.Bus, "archive", Dial(tcpSrv.Addr(), "gateway"), RepoMethods())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	ls := repo.NewLeaseState(c.Client, netsim.NodeID("archive"), "papers")
	if err := ls.Start(context.Background()); err != nil {
		t.Fatalf("start against old TCP peer: %v", err)
	}
	t.Cleanup(ls.Stop)
	if st := ls.Stats(); st.Active {
		t.Fatalf("stats = %+v, want inactive against old peer", st)
	}
	if _, _, ok := ls.Serveable("papers"); ok {
		t.Fatal("serveable with no lease protocol on the wire")
	}
}
