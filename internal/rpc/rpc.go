// Package rpc provides the remote-procedure-call layer the paper's model of
// computation assumes: "processes (e.g., clients and servers) communicate
// via remote procedure calls" (§2.1). Calls traverse the simulated network
// in both directions, so a partition that forms after the request is
// delivered but before the response returns still surfaces as the paper's
// "failure" exception — and, as in real systems, the server-side effects of
// such a call may have happened even though the caller saw a failure.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/obs"
)

// Errors reported by the RPC layer itself. Transport-level failures from
// netsim (ErrUnreachable, ErrDropped) pass through and satisfy
// netsim.IsFailure.
var (
	// ErrNoServer reports a destination node with no registered server.
	ErrNoServer = errors.New("rpc: no server registered at destination")
	// ErrNoMethod reports an unknown method on the destination server.
	ErrNoMethod = errors.New("rpc: no such method")
)

// Streamer is a response body that can be delivered as a sequence of
// self-contained chunks instead of one materialized message. A handler
// returns one when the response is naturally incremental — a partition
// at a time of a huge listing, say — and producing the next chunk may do
// fresh work (take the next snapshot), so consumers overlap their own
// processing with production. Transports that can carry chunks (the
// tcprpc streaming path) forward each one as its own frame; everything
// else calls Materialize. A Streamer is single-consumer: Next must not
// be called concurrently.
type Streamer interface {
	// Next produces the next chunk; ok=false ends the stream, after
	// which Err reports whether it ended cleanly.
	Next() (chunk any, ok bool)
	// Err reports the first production error, available once Next has
	// returned ok=false.
	Err() error
	// Materialize drains the stream into its single-message equivalent
	// for consumers that cannot carry chunks. It must only be called
	// instead of, never after, Next.
	Materialize() (any, error)
}

// Handler services one method. It runs on the server's goroutine context;
// implementations must be safe for concurrent use. The context carries
// cancellation and the caller's trace context (obs.FromContext), so a
// handler that issues further calls should pass it along.
type Handler func(ctx context.Context, from netsim.NodeID, req any) (any, error)

// Server is the per-node dispatch table.
type Server struct {
	node netsim.NodeID

	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewServer creates a server bound to the given node.
func NewServer(node netsim.NodeID) *Server {
	return &Server{
		node:     node,
		handlers: make(map[string]Handler),
	}
}

// Node reports the node this server is bound to.
func (s *Server) Node() netsim.NodeID { return s.node }

// Handle registers a handler for method, replacing any previous handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

func (s *Server) lookup(method string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[method]
	return h, ok
}

// Dispatch invokes the handler for method directly, bypassing any
// transport. It is the hook alternative transports (e.g. the TCP server in
// internal/tcprpc) use to serve the same dispatch table.
func (s *Server) Dispatch(ctx context.Context, from netsim.NodeID, method string, req any) (any, error) {
	h, ok := s.lookup(method)
	if !ok {
		return nil, fmt.Errorf("rpc %s at %s: %w", method, s.node, ErrNoMethod)
	}
	return h(ctx, from, req)
}

// Methods lists the registered method names (sorted), for transports that
// need to advertise or proxy the full surface.
func (s *Server) Methods() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for m := range s.handlers {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stats aggregates bus-level counters for experiments that report message
// costs.
type Stats struct {
	Calls    int64
	Failures int64
}

// Bus connects servers over a netsim.Network.
type Bus struct {
	net    *netsim.Network
	tracer *obs.Tracer

	mu      sync.RWMutex
	servers map[netsim.NodeID][]*Server
	slots   map[netsim.NodeID]chan struct{}
	svc     map[netsim.NodeID]time.Duration
	stats   Stats
	byMeth  map[string]int64
}

// NewBus creates a bus over the given network.
func NewBus(n *netsim.Network) *Bus {
	return &Bus{
		net:     n,
		servers: make(map[netsim.NodeID][]*Server),
		slots:   make(map[netsim.NodeID]chan struct{}),
		svc:     make(map[netsim.NodeID]time.Duration),
		byMeth:  make(map[string]int64),
	}
}

// SetServiceLimit bounds how many handler invocations may run on node at
// once: calls beyond n queue (respecting the caller's context) until a
// slot frees. The default — no limit — models an infinitely provisioned
// server, which is right for correctness tests but hides the capacity
// contention replication exists to relieve; capacity-sensitive benches
// set a small n so "one hot node" versus "three replicas" is a fair
// fight. n <= 0 removes the limit. Set it before traffic starts.
func (b *Bus) SetServiceLimit(node netsim.NodeID, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		delete(b.slots, node)
		return
	}
	b.slots[node] = make(chan struct{}, n)
}

// SetServiceTime charges node a fixed virtual service cost per handler
// invocation, slept at the network's time scale while the node's service
// slot (if SetServiceLimit bounds one) is held. The default — zero —
// models handlers that are free, which is right for correctness tests
// but means a service limit alone creates almost no queueing: the
// handlers here are microsecond-scale store operations, so slots turn
// over as fast as callers arrive. Capacity-sensitive benches pair a
// small limit with a realistic per-call cost so a node's throughput is
// genuinely bounded by limit/serviceTime — the contention replication
// exists to relieve. d <= 0 removes the cost. Set it before traffic
// starts.
func (b *Bus) SetServiceTime(node netsim.NodeID, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d <= 0 {
		delete(b.svc, node)
		return
	}
	b.svc[node] = d
}

// Network exposes the underlying network (reachability oracle, time scale).
func (b *Bus) Network() *netsim.Network { return b.net }

// UseTracer makes every traced call crossing the bus record an rpc span
// (join-only: calls without a sampled trace in their context cost
// nothing). Set it before traffic starts; it is not synchronized.
func (b *Bus) UseTracer(t *obs.Tracer) { b.tracer = t }

// Register attaches a server to the bus. The server's node must already be
// registered with the network. Several servers (services) may share a node;
// method dispatch tries them in registration order.
func (b *Bus) Register(s *Server) error {
	if !b.net.HasNode(s.Node()) {
		return fmt.Errorf("rpc: register server: %w: %s", netsim.ErrNoSuchNode, s.Node())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.servers[s.Node()] = append(b.servers[s.Node()], s)
	return nil
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.stats
}

// MethodCalls reports how many calls were attempted for the given method.
func (b *Bus) MethodCalls(method string) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.byMeth[method]
}

// ResetStats zeroes all counters.
func (b *Bus) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
	b.byMeth = make(map[string]int64)
}

func (b *Bus) record(method string, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Calls++
	b.byMeth[method]++
	if failed {
		b.stats.Failures++
	}
}

// Call performs a synchronous RPC from node `from` to node `to`. The
// request travels the network, the handler runs, and the response travels
// back; either leg can fail with the paper's failure exception. Application
// errors returned by the handler are returned as-is (they rode back on a
// successful response). Latency is the virtual time the call occupied.
func (b *Bus) Call(ctx context.Context, from, to netsim.NodeID, method string, req any) (resp any, latency time.Duration, err error) {
	defer func() { b.record(method, netsim.IsFailure(err)) }()

	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	ctx, span := b.tracer.StartSpan(ctx, "rpc."+method)
	if span != nil {
		span.SetAttr("from", string(from))
		span.SetAttr("to", string(to))
		defer func() {
			if err != nil {
				span.SetAttr("error", err.Error())
			}
			span.End()
		}()
	}
	lat, err := b.net.Transmit(from, to)
	latency += lat
	if err != nil {
		return nil, latency, fmt.Errorf("rpc %s %s->%s: request: %w", method, from, to, err)
	}

	b.mu.RLock()
	srvs := append([]*Server(nil), b.servers[to]...)
	slot := b.slots[to]
	svc := b.svc[to]
	b.mu.RUnlock()
	if len(srvs) == 0 {
		return nil, latency, fmt.Errorf("rpc %s %s->%s: %w", method, from, to, ErrNoServer)
	}
	var (
		h  Handler
		ok bool
	)
	for _, srv := range srvs {
		if h, ok = srv.lookup(method); ok {
			break
		}
	}
	if !ok {
		return nil, latency, fmt.Errorf("rpc %s %s->%s: %w", method, from, to, ErrNoMethod)
	}

	if slot != nil {
		select {
		case slot <- struct{}{}:
		case <-ctx.Done():
			return nil, latency, ctx.Err()
		}
	}
	if svc > 0 {
		// The service cost is spent while the slot is held: this is the
		// time the node's bounded capacity is occupied by this call.
		if !b.net.Scale().SleepCtx(ctx, svc) {
			if slot != nil {
				<-slot
			}
			return nil, latency, ctx.Err()
		}
		latency += svc
	}
	out, appErr := h(ctx, from, req)
	if slot != nil {
		<-slot
	}

	if err := ctx.Err(); err != nil {
		return nil, latency, err
	}
	lat, err = b.net.Transmit(to, from)
	latency += lat
	if err != nil {
		// The handler ran but the caller cannot know: classic partial
		// effect under partition.
		return nil, latency, fmt.Errorf("rpc %s %s->%s: response: %w", method, from, to, err)
	}
	return out, latency, appErr
}

// Invoke is a typed convenience wrapper around Bus.Call that asserts the
// response type.
func Invoke[Resp any](ctx context.Context, b *Bus, from, to netsim.NodeID, method string, req any) (Resp, error) {
	var zero Resp
	out, _, err := b.Call(ctx, from, to, method, req)
	if err != nil {
		return zero, err
	}
	if out == nil {
		return zero, nil
	}
	typed, ok := out.(Resp)
	if !ok {
		return zero, fmt.Errorf("rpc %s: unexpected response type %T", method, out)
	}
	return typed, nil
}
