package rpc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/sim"
)

type echoReq struct{ Msg string }

type echoResp struct{ Msg string }

var errBoom = errors.New("boom")

func testBus(t *testing.T) *Bus {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLatency: sim.Fixed(5 * time.Millisecond)})
	n.AddNode("client")
	n.AddNode("server")
	b := NewBus(n)
	srv := NewServer("server")
	srv.Handle("echo", func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
		r, ok := req.(echoReq)
		if !ok {
			return nil, errors.New("bad type")
		}
		return echoResp{Msg: r.Msg}, nil
	})
	srv.Handle("fail", func(context.Context, netsim.NodeID, any) (any, error) {
		return nil, errBoom
	})
	if err := b.Register(srv); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCallRoundTrip(t *testing.T) {
	b := testBus(t)
	resp, lat, err := b.Call(context.Background(), "client", "server", "echo", echoReq{Msg: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(echoResp).Msg; got != "hi" {
		t.Fatalf("echo = %q", got)
	}
	if lat != 10*time.Millisecond {
		t.Fatalf("latency = %v, want 10ms (two 5ms legs)", lat)
	}
}

func TestInvokeTyped(t *testing.T) {
	b := testBus(t)
	resp, err := Invoke[echoResp](context.Background(), b, "client", "server", "echo", echoReq{Msg: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "x" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInvokeWrongType(t *testing.T) {
	b := testBus(t)
	_, err := Invoke[int](context.Background(), b, "client", "server", "echo", echoReq{Msg: "x"})
	if err == nil {
		t.Fatal("expected type error")
	}
}

func TestApplicationErrorPassesThrough(t *testing.T) {
	b := testBus(t)
	_, _, err := b.Call(context.Background(), "client", "server", "fail", nil)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if netsim.IsFailure(err) {
		t.Fatal("application error classified as transport failure")
	}
}

func TestNoServer(t *testing.T) {
	n := netsim.New(netsim.Config{})
	n.AddNode("client")
	n.AddNode("empty")
	b := NewBus(n)
	_, _, err := b.Call(context.Background(), "client", "empty", "echo", nil)
	if !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestNoMethod(t *testing.T) {
	b := testBus(t)
	_, _, err := b.Call(context.Background(), "client", "server", "nope", nil)
	if !errors.Is(err, ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod", err)
	}
}

func TestRegisterUnknownNode(t *testing.T) {
	n := netsim.New(netsim.Config{})
	b := NewBus(n)
	if err := b.Register(NewServer("ghost")); !errors.Is(err, netsim.ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestCallAcrossPartitionFails(t *testing.T) {
	b := testBus(t)
	b.Network().Isolate("server")
	_, _, err := b.Call(context.Background(), "client", "server", "echo", echoReq{})
	if !netsim.IsFailure(err) {
		t.Fatalf("err = %v, want transport failure", err)
	}
}

func TestCallCancelledContext(t *testing.T) {
	b := testBus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := b.Call(ctx, "client", "server", "echo", echoReq{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStatsCounting(t *testing.T) {
	b := testBus(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := b.Call(ctx, "client", "server", "echo", echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
	b.Network().Isolate("server")
	_, _, _ = b.Call(ctx, "client", "server", "echo", echoReq{})
	st := b.Stats()
	if st.Calls != 4 {
		t.Fatalf("calls = %d, want 4", st.Calls)
	}
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
	if got := b.MethodCalls("echo"); got != 4 {
		t.Fatalf("method calls = %d, want 4", got)
	}
	b.ResetStats()
	if st := b.Stats(); st.Calls != 0 || st.Failures != 0 {
		t.Fatalf("reset did not zero: %+v", st)
	}
}

func TestServerSideEffectDespiteLostResponse(t *testing.T) {
	// The handler runs even when the response cannot return: the caller
	// sees a failure but the effect happened — the partial-write anomaly
	// the paper's weak sets tolerate.
	n := netsim.New(netsim.Config{})
	n.AddNode("client")
	n.AddNode("server")
	b := NewBus(n)
	srv := NewServer("server")
	ran := make(chan struct{}, 1)
	srv.Handle("mutate", func(context.Context, netsim.NodeID, any) (any, error) {
		// Cut the network while "processing".
		n.Isolate("client")
		ran <- struct{}{}
		return struct{}{}, nil
	})
	if err := b.Register(srv); err != nil {
		t.Fatal(err)
	}
	_, _, err := b.Call(context.Background(), "client", "server", "mutate", nil)
	if !netsim.IsFailure(err) {
		t.Fatalf("err = %v, want transport failure on response leg", err)
	}
	select {
	case <-ran:
	default:
		t.Fatal("handler did not run")
	}
}

func TestDispatchAndMethods(t *testing.T) {
	srv := NewServer("node")
	srv.Handle("b.method", func(context.Context, netsim.NodeID, any) (any, error) { return "b", nil })
	srv.Handle("a.method", func(_ context.Context, from netsim.NodeID, req any) (any, error) {
		return fmt.Sprintf("%s:%v", from, req), nil
	})

	out, err := srv.Dispatch(context.Background(), "caller", "a.method", 7)
	if err != nil {
		t.Fatal(err)
	}
	if out != "caller:7" {
		t.Fatalf("dispatch = %v", out)
	}
	if _, err := srv.Dispatch(context.Background(), "caller", "nope", nil); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("err = %v", err)
	}
	methods := srv.Methods()
	if len(methods) != 2 || methods[0] != "a.method" || methods[1] != "b.method" {
		t.Fatalf("methods = %v", methods)
	}
}
