// Package wirebin is the compact binary wire codec the TCP transport
// negotiates for the hot-path message types (DESIGN.md §11). It replaces
// gob's reflection, type descriptors, and per-message allocations with
// hand-rolled length-prefixed encoding over pooled buffers:
//
//   - integers are unsigned varints (versions, sequence numbers, counts);
//   - strings and byte blobs are varint-length-prefixed;
//   - message types are registered once with stable numeric ids
//     (internal/repo registers its hot wire structs at init), so a frame
//     names its body type in one varint instead of a gob descriptor;
//   - decoding is allocation-frugal: a Reader interns repeated strings
//     (object ids, node names, method names stabilize immediately on the
//     elements hot path) and hands out byte payloads aliasing the frame
//     buffer, so a steady-state decode performs O(1) allocations
//     regardless of batch width.
//
// The package is deliberately paranoid about malformed input: every
// length prefix is bounds-checked against the remaining frame before any
// allocation, so truncated frames, oversized prefixes, and garbage bytes
// produce an error — never a panic or an attacker-sized allocation
// (FuzzReader holds it to that).
package wirebin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrTruncated reports a frame that ended before its announced contents.
var ErrTruncated = errors.New("wirebin: truncated frame")

// ErrOversized reports a length prefix exceeding the data that could
// possibly back it.
var ErrOversized = errors.New("wirebin: oversized length prefix")

const (
	// maxInternLen bounds the strings worth interning; anything longer is
	// unlikely to repeat (payloads, error texts) and would bloat the table.
	maxInternLen = 128
	// maxInternEntries bounds the intern table; when a pathological
	// workload overflows it the table is dropped and rebuilt, trading a
	// burst of allocations for a hard memory bound.
	maxInternEntries = 4096
	// maxPooledBuf keeps the shared buffer pool from retaining giant
	// one-off frames.
	maxPooledBuf = 1 << 20
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendString appends a varint length prefix and the string bytes.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a varint length prefix and the raw bytes. nil and
// empty both encode as length 0 (and decode as nil, matching gob).
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendBool appends one byte: 0 or 1.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Reader decodes one frame. Errors are sticky: after the first failure
// every accessor returns a zero value and Err reports the cause, so
// decoders can run straight-line and check once at the end. The zero
// value is ready after Reset.
type Reader struct {
	buf []byte
	pos int
	err error

	// aliased is set when Bytes handed out a view into buf; the frame
	// buffer must then outlive the decoded message (the transport skips
	// returning it to the pool).
	aliased bool

	// intern maps previously seen small strings to their canonical copy,
	// so repeated ids/node names/method names cost zero allocations in
	// steady state.
	intern map[string]string
}

// Reset points the reader at a new frame, clearing position, error, and
// the aliasing flag but keeping the intern table warm.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.err = nil
	r.aliased = false
}

// Err reports the first decoding failure, if any.
func (r *Reader) Err() error { return r.err }

// Aliased reports whether any decoded value aliases the frame buffer.
func (r *Reader) Aliased() bool { return r.aliased }

// Len reports the bytes remaining.
func (r *Reader) Len() int { return len(r.buf) - r.pos }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad uvarint at %d", ErrTruncated, r.pos))
		return 0
	}
	r.pos += n
	return v
}

// Varint decodes a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad varint at %d", ErrTruncated, r.pos))
		return 0
	}
	r.pos += n
	return v
}

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(fmt.Errorf("%w: byte at %d", ErrTruncated, r.pos))
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Bool decodes one byte as a bool.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// span consumes a length-prefixed region, bounds-checked before any use:
// a prefix larger than the remaining frame fails immediately, so no
// caller ever sizes an allocation from attacker-controlled lengths.
func (r *Reader) span() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) {
		r.fail(fmt.Errorf("%w: %d bytes announced, %d remain", ErrOversized, n, r.Len()))
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// Count decodes a collection count and bounds it by the remaining frame:
// each element costs at least elemMin encoded bytes, so a count no frame
// of this size could back trips ErrOversized before any allocation is
// sized from it. Returns 0 on error.
func (r *Reader) Count(elemMin int) int {
	return r.CheckCount(r.Uvarint(), elemMin)
}

// CheckCount bounds an already-decoded count the same way Count does —
// for formats that fold extra meaning into the raw varint (e.g. the
// nil-map sentinel).
func (r *Reader) CheckCount(n uint64, elemMin int) int {
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(r.Len()/elemMin) {
		r.fail(fmt.Errorf("%w: %d elements announced, %d bytes remain", ErrOversized, n, r.Len()))
		return 0
	}
	return int(n)
}

// String decodes a length-prefixed string, interning small values so
// repeated ids and names allocate once per connection, not once per
// message.
func (r *Reader) String() string {
	b := r.span()
	if len(b) == 0 {
		return ""
	}
	if len(b) <= maxInternLen {
		if s, ok := r.intern[string(b)]; ok { // no alloc: compiler-optimized map probe
			return s
		}
		s := string(b)
		if r.intern == nil {
			r.intern = make(map[string]string, 64)
		} else if len(r.intern) >= maxInternEntries {
			r.intern = make(map[string]string, 64)
		}
		r.intern[s] = s
		return s
	}
	return string(b)
}

// Bytes decodes a length-prefixed blob as a view into the frame buffer
// (zero copy; marks the frame aliased). Length 0 decodes as nil,
// matching gob's empty-slice round trip.
func (r *Reader) Bytes() []byte {
	b := r.span()
	if len(b) == 0 {
		return nil
	}
	r.aliased = true
	return b
}

// Remaining returns the undecoded tail of the frame as a view (valid
// until Reset). Callers that parse it externally advance with Skip.
func (r *Reader) Remaining() []byte {
	if r.err != nil {
		return nil
	}
	return r.buf[r.pos:]
}

// Skip advances past n bytes consumed externally (e.g. by a nested
// decoder handed Remaining).
func (r *Reader) Skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || n > r.Len() {
		r.fail(fmt.Errorf("%w: skip %d with %d remaining", ErrTruncated, n, r.Len()))
		return
	}
	r.pos += n
}

// bufPool recycles frame and scratch buffers across encodes and reads.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a zero-length pooled buffer.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a buffer to the pool. Buffers that grew past the pool
// bound are dropped, and callers must not retain views into b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	bufPool.Put(&b)
}
