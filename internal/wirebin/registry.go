package wirebin

import (
	"fmt"
	"reflect"
	"sync"
)

// EncodeFunc appends v's wirebin form to buf. The caller guarantees v is
// the registered concrete type (transport code looks codecs up by type).
type EncodeFunc func(buf []byte, v any) []byte

// DecodeFunc decodes one value from r. Implementations must leave errors
// to the reader's sticky error and return the zero value on failure.
type DecodeFunc func(r *Reader) any

type entry struct {
	id  uint16
	enc EncodeFunc
	dec DecodeFunc
}

// The registry maps concrete message types to stable numeric ids. It is
// written only from init functions (internal/repo registers its hot wire
// structs) and read on every frame, so a plain map under a RWMutex is
// uncontended in practice.
var (
	regMu    sync.RWMutex
	regType  = map[reflect.Type]entry{}
	regByID  = map[uint16]entry{}
	regNames = map[uint16]string{}
)

// Register binds a message type (given by sample's concrete type) to a
// stable wire id with its encode/decode pair. Ids must be unique and
// non-zero; both sides of a connection must agree on the numbering, which
// the handshake guarantees by negotiating the codec version as a unit.
func Register(id uint16, sample any, enc EncodeFunc, dec DecodeFunc) {
	if id == 0 {
		panic("wirebin: id 0 is reserved")
	}
	t := reflect.TypeOf(sample)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByID[id]; dup {
		panic(fmt.Sprintf("wirebin: duplicate id %d", id))
	}
	if _, dup := regType[t]; dup {
		panic(fmt.Sprintf("wirebin: duplicate type %v", t))
	}
	e := entry{id: id, enc: enc, dec: dec}
	regType[t] = e
	regByID[id] = e
	regNames[id] = t.String()
}

// Lookup finds the registered codec for v's concrete type.
func Lookup(v any) (id uint16, enc EncodeFunc, ok bool) {
	regMu.RLock()
	e, ok := regType[reflect.TypeOf(v)]
	regMu.RUnlock()
	return e.id, e.enc, ok
}

// ByID finds the registered decoder for a wire id.
func ByID(id uint16) (DecodeFunc, bool) {
	regMu.RLock()
	e, ok := regByID[id]
	regMu.RUnlock()
	return e.dec, ok
}

// TypeName reports the registered type name for an id (diagnostics).
func TypeName(id uint16) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return regNames[id]
}
