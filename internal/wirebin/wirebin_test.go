package wirebin

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	buf := GetBuf()
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendVarint(buf, -9001)
	buf = AppendString(buf, "hello")
	buf = AppendString(buf, "")
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendBytes(buf, nil)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)

	var r Reader
	r.Reset(buf)
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -9001 {
		t.Fatalf("varint = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("empty bytes = %v, want nil", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("err = %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("left %d bytes", r.Len())
	}
	if !r.Aliased() {
		t.Fatal("Bytes view should mark the frame aliased")
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendString(nil, "weak sets")
	for cut := 0; cut < len(full); cut++ {
		var r Reader
		r.Reset(full[:cut])
		_ = r.String()
		if cut > 0 && r.Err() == nil && cut < len(full) {
			t.Fatalf("cut=%d: no error on truncated string", cut)
		}
	}
}

func TestReaderOversizedPrefixDoesNotAllocate(t *testing.T) {
	// A length prefix claiming 2^50 bytes with a 3-byte frame must fail
	// before any allocation is sized from it.
	buf := AppendUvarint(nil, 1<<50)
	buf = append(buf, 'x')
	var r Reader
	r.Reset(buf)
	if got := r.String(); got != "" {
		t.Fatalf("string = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("oversized prefix must error")
	}
}

func TestStickyError(t *testing.T) {
	var r Reader
	r.Reset(nil)
	_ = r.Uvarint() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.String()
	_ = r.Bytes()
	_ = r.Bool()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestInterningReusesStrings(t *testing.T) {
	frame := AppendString(nil, "node-a")
	var r Reader
	r.Reset(frame)
	a := r.String()
	r.Reset(frame)
	b := r.String()
	if a != "node-a" || b != "node-a" {
		t.Fatalf("strings = %q, %q", a, b)
	}
	// Same backing pointer: the second decode must come from the intern
	// table, not a fresh copy.
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		if r.String() != "node-a" {
			t.Fatal("bad decode")
		}
	}); n > 0 {
		t.Fatalf("interned decode allocates %.1f/op", n)
	}
}

func TestInternTableBounded(t *testing.T) {
	var r Reader
	// Push well past the cap; the table must stay bounded instead of
	// growing with attacker-controlled distinct strings.
	for i := 0; i < 3*maxInternEntries; i++ {
		frame := AppendString(nil, strings.Repeat("x", 1+i%8)+string(rune('a'+i%26))+string(rune('0'+(i/26)%10))+string(rune('0'+(i/260)%10))+string(rune('0'+(i/2600)%10)))
		r.Reset(frame)
		_ = r.String()
	}
	if len(r.intern) > maxInternEntries {
		t.Fatalf("intern table grew to %d entries", len(r.intern))
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buf len = %d", len(b))
	}
	b = append(b, make([]byte, 100)...)
	PutBuf(b)
	// Oversized buffers are dropped, not pooled.
	PutBuf(make([]byte, 0, maxPooledBuf+1))
}

func TestRegistry(t *testing.T) {
	type probe struct{ X uint64 }
	Register(0x7f01, probe{},
		func(buf []byte, v any) []byte { return AppendUvarint(buf, v.(probe).X) },
		func(r *Reader) any { return probe{X: r.Uvarint()} },
	)
	id, enc, ok := Lookup(probe{})
	if !ok || id != 0x7f01 {
		t.Fatalf("Lookup = %d, %v", id, ok)
	}
	frame := enc(nil, probe{X: 42})
	dec, ok := ByID(id)
	if !ok {
		t.Fatal("ByID missed")
	}
	var r Reader
	r.Reset(frame)
	if got := dec(&r).(probe); got.X != 42 || r.Err() != nil {
		t.Fatalf("decode = %+v, err %v", got, r.Err())
	}
	if _, ok := ByID(0x7fff); ok {
		t.Fatal("unknown id resolved")
	}
	if TypeName(id) == "" {
		t.Fatal("no type name recorded")
	}
}

// FuzzReader drives the primitive decoders over arbitrary bytes: they
// must never panic and never hand out more data than the frame holds.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendString(nil, "seed"))
	f.Add(AppendUvarint(AppendBytes(nil, []byte{1, 2, 3}), 77))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// A partition-listing-shaped frame: varints, a member count, id/node
	// string pairs, a version, and trailing bools.
	part := AppendVarint(AppendVarint(nil, 3), 16)
	part = AppendUvarint(part, 2)
	part = AppendString(AppendString(part, "e0001"), "storage1")
	part = AppendString(AppendString(part, "e0002"), "storage2")
	part = AppendBool(AppendBool(AppendUvarint(part, 42), false), true)
	f.Add(part)
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Reader
		r.Reset(data)
		for r.Err() == nil && r.Len() > 0 {
			switch r.Byte() % 5 {
			case 0:
				_ = r.Uvarint()
			case 1:
				_ = r.Varint()
			case 2:
				if s := r.String(); len(s) > len(data) {
					t.Fatalf("string longer than input: %d > %d", len(s), len(data))
				}
			case 3:
				if b := r.Bytes(); len(b) > len(data) {
					t.Fatalf("bytes longer than input: %d > %d", len(b), len(data))
				}
			case 4:
				_ = r.Bool()
			}
		}
	})
}
