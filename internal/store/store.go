package store

import (
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
)

// Store is the storage engine behind one repository node. All methods
// are safe for concurrent use. Engines own the full pin/ghost/grow-token
// bookkeeping; the RPC layer (internal/repo) is a thin adapter that owns
// only the network side (replication pushes, remote deletes).
type Store interface {
	// Objects.

	// GetObject returns a deep copy of the object, or ErrNotFound.
	GetObject(id ObjectID) (Object, error)
	// GetBatch returns deep copies of the requested objects in one trip,
	// in request order. IDs with no stored object come back in missing
	// instead of failing the batch. known optionally maps ids to versions
	// the caller already holds: an id whose stored version equals its
	// known version is reported in notModified instead of shipping the
	// payload again. The version compare is sound because object versions
	// are monotonic per id, even across delete/re-put (see version
	// floors in the engines).
	GetBatch(ids []ObjectID, known map[ObjectID]uint64) (objs []Object, notModified []ObjectID, missing []ObjectID)
	// PutObject stores (or overwrites) an object, bumping its version,
	// and reports the stored version.
	PutObject(obj Object) (version uint64, err error)
	// DeleteObject removes an object's data, or reports ErrNotFound.
	DeleteObject(id ObjectID) error
	// ObjectCount reports the number of objects stored (test hook).
	ObjectCount() int

	// Collections.

	// CreateCollection creates an empty collection.
	CreateCollection(name string) error
	// List reads the collection's current listing — live members plus
	// ghosts held by open grow windows — sorted by ID.
	List(name string) (members []Ref, version uint64, err error)
	// ListVersion reports the current listing version without copying
	// the listing — the fast path behind version-gated membership reads.
	// Engines must bump the version on every change to the listing,
	// including ghost garbage collection.
	ListVersion(name string) (version uint64, err error)
	// ListPinned reads a pinned snapshot.
	ListPinned(name string, pin int64) (members []Ref, version uint64, err error)
	// Partitions reports the collection's listing partition count.
	// Partition indices are stable for the life of the collection
	// (membership is by hash of the object ID), so a partition-addressed
	// read plan survives across calls.
	Partitions(name string) (int, error)
	// ListPart reads one partition of the listing — that partition's
	// live members plus ghosts, sorted by ID — with the partition's own
	// version. Partition versions are drawn from the same counter as the
	// collection version, so they are mutually comparable. A non-zero
	// ifVersion at or above the partition's version answers
	// notModified=true with no members, the per-partition form of the
	// version-gated List.
	ListPart(name string, part int, ifVersion uint64) (members []Ref, version uint64, notModified bool, err error)
	// Add inserts a member, reviving any ghost with the same ID.
	Add(name string, ref Ref) (version uint64, err error)
	// Remove removes a member. With a grow window open the removal is
	// deferred: a ghost keeps the member listed and deferred is true,
	// meaning the engine owns eventual deletion of the object data.
	Remove(name string, id ObjectID) (ref Ref, deferred bool, version uint64, err error)
	// Pin snapshots the live membership and returns its handle.
	Pin(name string) (pin int64, err error)
	// Unpin releases a snapshot.
	Unpin(name string, pin int64) error
	// BeginGrow opens a grow-only window and returns its token.
	BeginGrow(name string) (token int64, err error)
	// EndGrow closes a grow-only window. When the last token drains it
	// garbage-collects the ghosts (§3.3) and returns the refs whose
	// object data should now be deleted.
	EndGrow(name string, token int64) (reclaim []Ref, err error)
	// CollStats reports one collection's counters.
	CollStats(name string) (CollStats, error)

	// Replication bookkeeping (the push itself is the adapter's job).

	// SetReplicas records the nodes receiving lazy pushes of the
	// collection.
	SetReplicas(name string, replicas []netsim.NodeID) error
	// SyncState reads what a replication push needs: the current
	// listing, its version, and the replica set. ok is false for an
	// unknown collection.
	SyncState(name string) (members []Ref, version uint64, replicas []netsim.NodeID, ok bool)
	// ApplySync applies a replication push, creating the collection if
	// needed and ignoring stale pushes (version <= last applied) — which
	// is what makes replicas observably lag.
	ApplySync(name string, members []Ref, version uint64)
	// PartVersions reads the per-partition version vector — what an
	// anti-entropy digest ships so the home can push only the partitions
	// a replica is actually behind on.
	PartVersions(name string) ([]uint64, error)
	// ApplySyncPart applies a per-partition replication push: partition
	// part's listed membership at the given version, out of `partitions`
	// total. It reports false (declining the push) when the partition
	// layouts disagree or the push is stale — the caller then falls back
	// to a full ApplySync. The collection is created if needed.
	ApplySyncPart(name string, partitions, part int, members []Ref, version uint64) (applied bool)

	// InstallObject installs a replicated object at the version it
	// carries — the replication counterpart of PutObject, which assigns
	// versions. It applies only when the carried version is newer than
	// both the stored copy and the id's delete floor, keeping per-id
	// versions monotonic on replicas exactly as they are on the home.
	InstallObject(obj Object) (applied bool)

	// Change notification.

	// OnListingChange registers fn to run after every committed listing
	// change — Add, Remove, ghost GC at grow-window close, or an applied
	// replication push — with the collection, the partition that moved
	// (PartAll when several did), and the resulting listing version.
	// Callbacks run outside the engine's locks, on the mutating
	// goroutine, so they must be fast and must not call back into the
	// engine synchronously. Registration is permanent (engines live as
	// long as their server); events for different mutations may arrive
	// out of version order, so consumers must fold by max version.
	OnListingChange(fn func(ChangeEvent))

	// Persistence.

	// Export returns the durable image of the engine.
	Export() State
	// Import replaces the engine's state with a durable image.
	Import(State)

	// Stats reports the engine's instrumentation snapshot.
	Stats() EngineStats
}

// PartAll marks a ChangeEvent that moved more than one partition (ghost
// GC, replication sync) — consumers should treat the whole listing as
// changed.
const PartAll = -1

// ChangeEvent is one committed listing change, as delivered to
// OnListingChange subscribers: the collection, the partition index that
// moved (PartAll for whole-listing changes), and the collection listing
// version after the change.
type ChangeEvent struct {
	Coll    string
	Part    int
	Version uint64
}

// notifier fans ChangeEvents out to registered subscribers. Engines
// embed one; the zero value is ready to use. fire is called after the
// engine's locks are released so subscribers can't deadlock a mutation,
// at the price of events possibly arriving out of version order.
type notifier struct {
	mu   sync.RWMutex
	subs []func(ChangeEvent)
}

func (n *notifier) subscribe(fn func(ChangeEvent)) {
	if fn == nil {
		return
	}
	n.mu.Lock()
	n.subs = append(n.subs, fn)
	n.mu.Unlock()
}

func (n *notifier) fire(ev ChangeEvent) {
	n.mu.RLock()
	subs := n.subs
	n.mu.RUnlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Op identifies one instrumented engine operation.
type Op int

// The instrumented operations, in wire/report order.
const (
	OpGet Op = iota
	OpGetBatch
	OpPut
	OpDelete
	OpList
	OpListPart
	OpListPinned
	OpAdd
	OpRemove
	OpPin
	OpUnpin
	OpBeginGrow
	OpEndGrow
	OpSync
	OpSyncPart
	OpInstall
	opCount
)

var opNames = [opCount]string{
	"get", "getBatch", "put", "delete", "list", "listPart", "listPinned",
	"add", "remove", "pin", "unpin", "beginGrow", "endGrow", "sync",
	"syncPart", "install",
}

func (o Op) String() string {
	if o < 0 || o >= opCount {
		return "unknown"
	}
	return opNames[o]
}

// OpStats is one operation's counters and latency summary.
type OpStats struct {
	Op     string        `json:"op"`
	Count  int64         `json:"count"`
	Errors int64         `json:"errors"`
	Mean   time.Duration `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
}

// BatchStats summarises GetBatch traffic. RTTSaved is the round trips a
// client avoided by batching: each batch of n ids costs one trip where
// per-object fetching would have cost n. NotModified counts ids answered
// by version validation alone; BytesShipped/BytesSaved split the payload
// bytes that crossed the wire from those validation kept at home.
type BatchStats struct {
	Batches      int64 `json:"batches"`
	BatchedGets  int64 `json:"batched_gets"`
	MaxBatch     int64 `json:"max_batch"`
	RTTSaved     int64 `json:"rtt_saved"`
	NotModified  int64 `json:"not_modified"`
	BytesShipped int64 `json:"bytes_shipped"`
	BytesSaved   int64 `json:"bytes_saved"`
}

// EngineStats is an engine's instrumentation snapshot.
type EngineStats struct {
	Engine      string     `json:"engine"`
	Shards      int        `json:"shards"`
	Objects     int        `json:"objects"`
	Collections int        `json:"collections"`
	Batch       BatchStats `json:"batch"`
	Ops         []OpStats  `json:"ops"`
}

// latStripes spreads each operation's latency reservoir over several
// histograms so recording on the hot read path doesn't serialise behind
// one histogram mutex; Stats merges the stripes.
const latStripes = 8

type opRec struct {
	count atomic.Int64
	errs  atomic.Int64
	lat   [latStripes]metrics.Histogram
}

// instruments is the shared per-operation counter/latency block engines
// embed. The zero value is ready to use.
type instruments struct {
	ops [opCount]opRec

	batches      atomic.Int64
	batchedGets  atomic.Int64
	maxBatch     atomic.Int64
	notModified  atomic.Int64
	bytesShipped atomic.Int64
	bytesSaved   atomic.Int64
}

// observeBatch records one GetBatch call of n ids, of which notMod were
// answered by version validation; shipped/saved are the payload bytes
// that went over the wire vs. stayed home.
func (in *instruments) observeBatch(n, notMod int, shipped, saved int64) {
	in.batches.Add(1)
	in.batchedGets.Add(int64(n))
	in.notModified.Add(int64(notMod))
	in.bytesShipped.Add(shipped)
	in.bytesSaved.Add(saved)
	for {
		cur := in.maxBatch.Load()
		if int64(n) <= cur || in.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// batchStats snapshots the batch counters.
func (in *instruments) batchStats() BatchStats {
	b := BatchStats{
		Batches:      in.batches.Load(),
		BatchedGets:  in.batchedGets.Load(),
		MaxBatch:     in.maxBatch.Load(),
		NotModified:  in.notModified.Load(),
		BytesShipped: in.bytesShipped.Load(),
		BytesSaved:   in.bytesSaved.Load(),
	}
	b.RTTSaved = b.BatchedGets - b.Batches
	if b.RTTSaved < 0 {
		b.RTTSaved = 0
	}
	return b
}

// observe records one completed operation. It is designed to be called
// as `defer s.ins.observe(op, time.Now(), &err)` with a named error
// return, so the deferred call sees the final error.
func (in *instruments) observe(op Op, start time.Time, errp *error) {
	rec := &in.ops[op]
	n := rec.count.Add(1)
	if errp != nil && *errp != nil {
		rec.errs.Add(1)
	}
	rec.lat[n&(latStripes-1)].Record(time.Since(start))
}

// opStats merges the stripes into one summary per operation that has
// run at least once.
func (in *instruments) opStats() []OpStats {
	out := make([]OpStats, 0, opCount)
	for op := Op(0); op < opCount; op++ {
		rec := &in.ops[op]
		n := rec.count.Load()
		if n == 0 {
			continue
		}
		var (
			samples []time.Duration
			sum     time.Duration
		)
		for i := range rec.lat {
			// One consistent snapshot per stripe (single lock acquisition)
			// instead of separate Samples()+Sum() reads that writers could
			// interleave between.
			snap := rec.lat[i].Snapshot()
			samples = append(samples, snap.Samples()...)
			sum += snap.Sum
		}
		st := OpStats{
			Op:     op.String(),
			Count:  n,
			Errors: rec.errs.Load(),
			Mean:   sum / time.Duration(n),
			P50:    metrics.QuantileOf(samples, 0.5),
			P99:    metrics.QuantileOf(samples, 0.99),
		}
		out = append(out, st)
	}
	return out
}
