package store

import (
	"fmt"
	"sync"
	"time"

	"weaksets/internal/netsim"
)

// Locked is the original storage engine: one mutex in front of the
// object table and every collection. It is kept as the contention
// baseline — BenchmarkStoreContention and cmd/weakbench -store compare
// the sharded engine against it — and as the simplest correct
// implementation of the Store contract.
type Locked struct {
	ins   instruments
	watch notifier

	partitions int

	mu      sync.Mutex
	objects map[ObjectID]Object
	// floors keeps per-id versions monotonic across delete/re-put; see
	// objShard.floors for the rationale.
	floors map[ObjectID]uint64
	colls  map[string]*collState
}

// NewLocked creates an empty single-mutex engine.
func NewLocked() *Locked {
	return &Locked{
		partitions: DefaultPartitions,
		objects:    make(map[ObjectID]Object),
		floors:     make(map[ObjectID]uint64),
		colls:      make(map[string]*collState),
	}
}

// OnListingChange implements Store.
func (s *Locked) OnListingChange(fn func(ChangeEvent)) { s.watch.subscribe(fn) }

func (s *Locked) coll(name string) (*collState, error) {
	c, ok := s.colls[name]
	if !ok {
		return nil, fmt.Errorf("collection %q: %w", name, ErrNoCollection)
	}
	return c, nil
}

// GetObject implements Store.
func (s *Locked) GetObject(id ObjectID) (obj Object, err error) {
	defer s.ins.observe(OpGet, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, found := s.objects[id]
	if !found {
		return Object{}, fmt.Errorf("get %q: %w", id, ErrNotFound)
	}
	return obj.Clone(), nil
}

// GetBatch implements Store: one lock trip for the whole batch. IDs
// whose known version still matches skip the clone entirely.
func (s *Locked) GetBatch(ids []ObjectID, known map[ObjectID]uint64) (objs []Object, notModified []ObjectID, missing []ObjectID) {
	var err error
	defer s.ins.observe(OpGetBatch, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	var shipped, saved int64
	objs = make([]Object, 0, len(ids))
	seen := make(map[ObjectID]bool, len(ids))
	for _, id := range ids {
		if seen[id] { // duplicate ids in the request resolve once
			continue
		}
		seen[id] = true
		obj, ok := s.objects[id]
		v, has := known[id]
		switch {
		case !ok:
			missing = append(missing, id)
		case has && v == obj.Version:
			notModified = append(notModified, id)
			saved += int64(len(obj.Data))
		default:
			objs = append(objs, obj.Clone())
			shipped += int64(len(obj.Data))
		}
	}
	s.ins.observeBatch(len(ids), len(notModified), shipped, saved)
	return objs, notModified, missing
}

// PutObject implements Store.
func (s *Locked) PutObject(obj Object) (version uint64, err error) {
	defer s.ins.observe(OpPut, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	stored := obj.Clone()
	base := s.objects[obj.ID].Version
	if f, ok := s.floors[obj.ID]; ok {
		if f > base {
			base = f
		}
		delete(s.floors, obj.ID)
	}
	stored.Version = base + 1
	stored.Tombstone = false
	s.objects[obj.ID] = stored
	return stored.Version, nil
}

// InstallObject implements Store.
func (s *Locked) InstallObject(obj Object) (applied bool) {
	var err error
	defer s.ins.observe(OpInstall, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj.Version <= s.objects[obj.ID].Version || obj.Version <= s.floors[obj.ID] {
		return false
	}
	s.objects[obj.ID] = obj.Clone()
	return true
}

// DeleteObject implements Store.
func (s *Locked) DeleteObject(id ObjectID) (err error) {
	defer s.ins.observe(OpDelete, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, found := s.objects[id]
	if !found {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	s.floors[id] = obj.Version
	delete(s.objects, id)
	return nil
}

// ObjectCount implements Store.
func (s *Locked) ObjectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// CreateCollection implements Store.
func (s *Locked) CreateCollection(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.colls[name]; exists {
		return fmt.Errorf("create %q: %w", name, ErrCollectionExists)
	}
	s.colls[name] = newCollState(name, s.partitions)
	return nil
}

// List implements Store.
func (s *Locked) List(name string) (members []Ref, version uint64, err error) {
	defer s.ins.observe(OpList, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, err
	}
	return c.listedMembers(), c.version, nil
}

// Partitions implements Store.
func (s *Locked) Partitions(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return c.partitions(), nil
}

// ListPart implements Store.
func (s *Locked) ListPart(name string, part int, ifVersion uint64) (members []Ref, version uint64, notModified bool, err error) {
	defer s.ins.observe(OpListPart, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, false, err
	}
	if part < 0 || part >= c.partitions() {
		return nil, 0, false, fmt.Errorf("list %q partition %d of %d: %w", name, part, c.partitions(), ErrBadPartition)
	}
	members, version = c.partListed(part)
	if ifVersion != 0 && version <= ifVersion {
		return nil, version, true, nil
	}
	return members, version, false, nil
}

// ListVersion implements Store.
func (s *Locked) ListVersion(name string) (version uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return c.version, nil
}

// ListPinned implements Store.
func (s *Locked) ListPinned(name string, pin int64) (members []Ref, version uint64, err error) {
	defer s.ins.observe(OpListPinned, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, err
	}
	snap, err := c.listPinned(pin)
	if err != nil {
		return nil, 0, err
	}
	return snap, c.version, nil
}

// Add implements Store.
func (s *Locked) Add(name string, ref Ref) (version uint64, err error) {
	defer s.ins.observe(OpAdd, time.Now(), &err)
	var ev ChangeEvent
	// Registered before the lock's defer so it fires after the unlock:
	// subscribers never run under the engine mutex.
	defer func() {
		if err == nil {
			s.watch.fire(ev)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	part := c.partOf(ref.ID)
	v := c.add(ref)
	ev = ChangeEvent{Coll: name, Part: part, Version: v}
	return v, nil
}

// Remove implements Store.
func (s *Locked) Remove(name string, id ObjectID) (ref Ref, deferred bool, version uint64, err error) {
	defer s.ins.observe(OpRemove, time.Now(), &err)
	var ev ChangeEvent
	defer func() {
		if err == nil {
			s.watch.fire(ev)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return Ref{}, false, 0, err
	}
	part := c.partOf(id)
	ref, deferred, version, err = c.remove(id)
	if err == nil {
		ev = ChangeEvent{Coll: name, Part: part, Version: version}
	}
	return ref, deferred, version, err
}

// Pin implements Store.
func (s *Locked) Pin(name string) (pin int64, err error) {
	defer s.ins.observe(OpPin, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return c.pin(), nil
}

// Unpin implements Store.
func (s *Locked) Unpin(name string, pin int64) (err error) {
	defer s.ins.observe(OpUnpin, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return err
	}
	return c.unpin(pin)
}

// BeginGrow implements Store.
func (s *Locked) BeginGrow(name string) (token int64, err error) {
	defer s.ins.observe(OpBeginGrow, time.Now(), &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return c.beginGrow(), nil
}

// EndGrow implements Store.
func (s *Locked) EndGrow(name string, token int64) (reclaim []Ref, err error) {
	defer s.ins.observe(OpEndGrow, time.Now(), &err)
	var (
		ev      ChangeEvent
		changed bool
	)
	defer func() {
		if changed {
			s.watch.fire(ev)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return nil, err
	}
	before := c.version
	reclaim, err = c.endGrow(token)
	if err == nil && c.version != before {
		// Ghost GC may touch several partitions at once.
		ev = ChangeEvent{Coll: name, Part: PartAll, Version: c.version}
		changed = true
	}
	return reclaim, err
}

// CollStats implements Store.
func (s *Locked) CollStats(name string) (CollStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return CollStats{}, err
	}
	return c.stats(), nil
}

// SetReplicas implements Store.
func (s *Locked) SetReplicas(name string, replicas []netsim.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return err
	}
	c.replicas = append([]netsim.NodeID(nil), replicas...)
	return nil
}

// SyncState implements Store.
func (s *Locked) SyncState(name string) (members []Ref, version uint64, replicas []netsim.NodeID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, found := s.colls[name]
	if !found {
		return nil, 0, nil, false
	}
	return c.listedMembers(), c.version, append([]netsim.NodeID(nil), c.replicas...), true
}

// ApplySync implements Store.
func (s *Locked) ApplySync(name string, members []Ref, version uint64) {
	var err error
	defer s.ins.observe(OpSync, time.Now(), &err)
	var applied bool
	defer func() {
		if applied {
			s.watch.fire(ChangeEvent{Coll: name, Part: PartAll, Version: version})
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, found := s.colls[name]
	if !found {
		c = newCollState(name, s.partitions)
		s.colls[name] = c
	}
	applied = c.applySync(members, version)
}

// PartVersions implements Store.
func (s *Locked) PartVersions(name string) ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(name)
	if err != nil {
		return nil, err
	}
	return c.partVersions(), nil
}

// ApplySyncPart implements Store.
func (s *Locked) ApplySyncPart(name string, partitions, part int, members []Ref, version uint64) bool {
	var err error
	defer s.ins.observe(OpSyncPart, time.Now(), &err)
	var applied bool
	defer func() {
		if applied {
			s.watch.fire(ChangeEvent{Coll: name, Part: part, Version: version})
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, found := s.colls[name]
	if !found {
		c = newCollState(name, s.partitions)
		s.colls[name] = c
	}
	applied = c.applySyncPart(partitions, part, members, version)
	return applied
}

// Export implements Store.
func (s *Locked) Export() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{Objects: make([]Object, 0, len(s.objects))}
	for _, obj := range s.objects {
		st.Objects = append(st.Objects, obj.Clone())
	}
	for _, c := range s.colls {
		st.Collections = append(st.Collections, c.exportState())
	}
	return st
}

// Import implements Store.
func (s *Locked) Import(st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[ObjectID]Object, len(st.Objects))
	s.floors = make(map[ObjectID]uint64)
	for _, obj := range st.Objects {
		s.objects[obj.ID] = obj.Clone()
	}
	s.colls = make(map[string]*collState, len(st.Collections))
	for _, cs := range st.Collections {
		s.colls[cs.Name] = collFromState(cs, s.partitions)
	}
}

// Stats implements Store.
func (s *Locked) Stats() EngineStats {
	s.mu.Lock()
	objects, colls := len(s.objects), len(s.colls)
	s.mu.Unlock()
	return EngineStats{
		Engine:      "locked",
		Shards:      1,
		Objects:     objects,
		Collections: colls,
		Batch:       s.ins.batchStats(),
		Ops:         s.ins.opStats(),
	}
}

var _ Store = (*Locked)(nil)
