// Package store implements the storage engine behind a repository node:
// the object table plus the collection bookkeeping — membership, pinned
// snapshots, grow tokens, ghost ("deferred delete") copies, and
// replication state — that internal/repo serves over RPC. The engine is
// behind the Store interface so the RPC layer stays a thin adapter and
// alternative engines can be swapped in.
//
// Two engines ship:
//
//   - Locked — the original single-mutex engine, kept as the contention
//     baseline every benchmark compares against;
//   - Sharded — the default engine: objects hash-partitioned across
//     independently RW-locked shards, and each collection's listing
//     published as an immutable copy-on-write snapshot behind an
//     atomic.Pointer, so List and Get — the path every `elements`
//     iterator hammers — are lock-free or read-locked and never contend
//     with writers on other shards.
//
// The immutable listing snapshot is the engine-level cousin of the
// paper's Fig. 4 semantics ("membership at the first invocation"):
// readers observe one consistent membership image while writers race
// ahead, exactly the separation of observed snapshot from concurrent
// mutation that visibility-based weak-consistency arguments rest on.
//
// Engines are instrumented with per-operation counters and latency
// reservoirs (internal/metrics) surfaced through Stats, the repo.Server
// StoreStats RPC, the httpgw /stats endpoint, and cmd/weakbench -store.
package store

import (
	"errors"

	"weaksets/internal/netsim"
)

// ObjectID names an object uniquely across the whole repository.
type ObjectID string

// Ref locates an object: its ID plus the node that stores it.
type Ref struct {
	ID   ObjectID
	Node netsim.NodeID
}

// Object is a stored value. Attrs carry queryable metadata (e.g.
// cuisine=chinese for the restaurant scenario).
type Object struct {
	ID      ObjectID
	Data    []byte
	Attrs   map[string]string
	Version uint64
	// Tombstone marks an object that was deleted but whose identity is
	// still visible through a pinned snapshot.
	Tombstone bool
}

// Clone returns a deep copy of the object so callers can't alias engine
// state.
func (o Object) Clone() Object {
	c := o
	if o.Data != nil {
		c.Data = append([]byte(nil), o.Data...)
	}
	if o.Attrs != nil {
		c.Attrs = make(map[string]string, len(o.Attrs))
		for k, v := range o.Attrs {
			c.Attrs[k] = v
		}
	}
	return c
}

// Errors reported by storage engines. They are application-level: they
// travel back over a successful RPC and do not satisfy netsim.IsFailure.
// (The messages keep the historical "repo:" prefix; internal/repo
// re-exports these values.)
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("repo: object not found")
	// ErrNoCollection reports an unknown collection name.
	ErrNoCollection = errors.New("repo: no such collection")
	// ErrCollectionExists reports a duplicate CreateCollection.
	ErrCollectionExists = errors.New("repo: collection already exists")
	// ErrBadPin reports an unknown pin handle.
	ErrBadPin = errors.New("repo: no such pin")
	// ErrBadToken reports an unknown grow token.
	ErrBadToken = errors.New("repo: no such grow token")
	// ErrBadPartition reports a listing partition index out of range.
	ErrBadPartition = errors.New("repo: no such listing partition")
)

// CollStats reports one collection's counters.
type CollStats struct {
	Members    int
	Ghosts     int
	Pins       int
	Tokens     int
	Version    uint64
	Partitions int
}

// CollectionState is the durable image of one collection. Run-scoped
// soft state — pins, grow windows, ghosts — is deliberately absent: it
// belongs to iterator runs, and a restarted node correctly forgets runs
// that died with it.
type CollectionState struct {
	Name           string
	Version        uint64
	ReplicaVersion uint64
	// Partitions is the listing partition count the collection was
	// created with; 0 (images persisted before listings were
	// partitioned) restores with the engine's default.
	Partitions int
	Members    []Ref
	Replicas   []netsim.NodeID
}

// State is the durable image of a whole engine, used by persistence.
type State struct {
	Objects     []Object
	Collections []CollectionState
}
