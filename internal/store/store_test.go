package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"weaksets/internal/netsim"
)

// engines runs a subtest against both Store implementations so the
// sharded engine is held to exactly the baseline's contract.
func engines(t *testing.T, f func(t *testing.T, st Store)) {
	t.Helper()
	for _, tc := range []struct {
		name string
		mk   func() Store
	}{
		{"locked", func() Store { return NewLocked() }},
		{"sharded", func() Store { return NewSharded(Config{Shards: 4}) }},
	} {
		t.Run(tc.name, func(t *testing.T) { f(t, tc.mk()) })
	}
}

func mustPut(t *testing.T, st Store, id ObjectID) Ref {
	t.Helper()
	if _, err := st.PutObject(Object{ID: id, Data: []byte("data-" + id)}); err != nil {
		t.Fatalf("put %q: %v", id, err)
	}
	return Ref{ID: id, Node: "n1"}
}

func mustColl(t *testing.T, st Store, name string) {
	t.Helper()
	if err := st.CreateCollection(name); err != nil {
		t.Fatalf("create %q: %v", name, err)
	}
}

func memberIDs(refs []Ref) []ObjectID {
	out := make([]ObjectID, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

func TestObjectLifecycle(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		v, err := st.PutObject(Object{ID: "a", Data: []byte("one")})
		if err != nil || v != 1 {
			t.Fatalf("put = %d, %v", v, err)
		}
		v, err = st.PutObject(Object{ID: "a", Data: []byte("two")})
		if err != nil || v != 2 {
			t.Fatalf("overwrite = %d, %v", v, err)
		}
		obj, err := st.GetObject("a")
		if err != nil || string(obj.Data) != "two" || obj.Version != 2 {
			t.Fatalf("get = %+v, %v", obj, err)
		}
		if st.ObjectCount() != 1 {
			t.Fatalf("count = %d", st.ObjectCount())
		}
		if err := st.DeleteObject("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.GetObject("a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get deleted = %v", err)
		}
		if err := st.DeleteObject("a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete = %v", err)
		}
	})
}

func TestObjectCloneIsolation(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		orig := Object{ID: "iso", Data: []byte("abc"), Attrs: map[string]string{"k": "v"}}
		if _, err := st.PutObject(orig); err != nil {
			t.Fatal(err)
		}
		orig.Data[0] = 'X' // caller mutates after Put
		got, err := st.GetObject("iso")
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Data) != "abc" {
			t.Fatalf("engine aliased caller data: %q", got.Data)
		}
		got.Attrs["k"] = "mutated" // caller mutates the returned copy
		again, _ := st.GetObject("iso")
		if again.Attrs["k"] != "v" {
			t.Fatalf("engine aliased returned attrs: %q", again.Attrs["k"])
		}
	})
}

func TestGetBatch(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		for _, id := range []ObjectID{"a", "b", "c", "d"} {
			mustPut(t, st, id)
		}
		objs, _, missing := st.GetBatch([]ObjectID{"c", "nope", "a", "d", "gone"}, nil)
		if got := []ObjectID{objs[0].ID, objs[1].ID, objs[2].ID}; len(objs) != 3 ||
			got[0] != "c" || got[1] != "a" || got[2] != "d" {
			t.Fatalf("objs = %v (want request order c,a,d)", got)
		}
		for _, obj := range objs {
			if string(obj.Data) != "data-"+string(obj.ID) {
				t.Fatalf("obj %q data = %q", obj.ID, obj.Data)
			}
		}
		if len(missing) != 2 || missing[0] != "nope" || missing[1] != "gone" {
			t.Fatalf("missing = %v", missing)
		}

		// Duplicate ids resolve once, whether found or missing.
		objs, _, missing = st.GetBatch([]ObjectID{"a", "a", "x", "x"}, nil)
		if len(objs) != 1 || objs[0].ID != "a" || len(missing) != 1 || missing[0] != "x" {
			t.Fatalf("dup batch = %v missing %v", objs, missing)
		}

		// Batches return deep copies.
		objs, _, _ = st.GetBatch([]ObjectID{"b"}, nil)
		objs[0].Data[0] = 'X'
		again, err := st.GetObject("b")
		if err != nil || string(again.Data) != "data-b" {
			t.Fatalf("batch aliased stored data: %q, %v", again.Data, err)
		}

		// Empty batch is a no-op, not an error.
		objs, _, missing = st.GetBatch(nil, nil)
		if len(objs) != 0 || len(missing) != 0 {
			t.Fatalf("empty batch = %v, %v", objs, missing)
		}

		stats := st.Stats()
		if stats.Batch.Batches != 4 || stats.Batch.BatchedGets != 5+4+1 {
			t.Fatalf("batch stats = %+v", stats.Batch)
		}
		if stats.Batch.MaxBatch != 5 || stats.Batch.RTTSaved != 10-4 {
			t.Fatalf("batch stats = %+v", stats.Batch)
		}
	})
}

func TestGetBatchConditional(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		for _, id := range []ObjectID{"a", "b", "c"} {
			mustPut(t, st, id) // all at version 1
		}
		before := st.Stats().Batch

		// Matching known versions validate without shipping payloads.
		objs, notMod, missing := st.GetBatch(
			[]ObjectID{"a", "b", "c", "nope"},
			map[ObjectID]uint64{"a": 1, "c": 1},
		)
		if len(objs) != 1 || objs[0].ID != "b" {
			t.Fatalf("objs = %v (want just b)", objs)
		}
		if len(notMod) != 2 || notMod[0] != "a" || notMod[1] != "c" {
			t.Fatalf("notModified = %v (want a,c in request order)", notMod)
		}
		if len(missing) != 1 || missing[0] != "nope" {
			t.Fatalf("missing = %v", missing)
		}

		// Version skew mid-batch: an overwrite between the caller's cache
		// fill and the conditional fetch ships the new payload.
		if _, err := st.PutObject(Object{ID: "a", Data: []byte("newer")}); err != nil {
			t.Fatal(err)
		}
		objs, notMod, _ = st.GetBatch(
			[]ObjectID{"a", "c"},
			map[ObjectID]uint64{"a": 1, "c": 1},
		)
		if len(objs) != 1 || objs[0].ID != "a" || objs[0].Version != 2 || string(objs[0].Data) != "newer" {
			t.Fatalf("skewed batch objs = %+v", objs)
		}
		if len(notMod) != 1 || notMod[0] != "c" {
			t.Fatalf("skewed batch notModified = %v", notMod)
		}

		// Byte accounting: saved bytes grew with each validated id,
		// shipped bytes with each full object.
		after := st.Stats().Batch
		if after.NotModified-before.NotModified != 3 {
			t.Fatalf("notModified delta = %d, want 3", after.NotModified-before.NotModified)
		}
		if after.BytesSaved <= before.BytesSaved || after.BytesShipped <= before.BytesShipped {
			t.Fatalf("byte counters did not advance: %+v -> %+v", before, after)
		}
	})
}

// TestGetBatchTombstoneResurrect pins the protocol's soundness across
// delete/re-put: the deleted id reports missing (never NotModified), and
// the resurrected object carries a strictly newer version than any a
// client could have cached — versions are monotonic per id.
func TestGetBatchTombstoneResurrect(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		if _, err := st.PutObject(Object{ID: "x", Data: []byte("v1")}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.PutObject(Object{ID: "x", Data: []byte("v2")}); err != nil {
			t.Fatal(err)
		}
		known := map[ObjectID]uint64{"x": 2}
		_, notMod, _ := st.GetBatch([]ObjectID{"x"}, known)
		if len(notMod) != 1 {
			t.Fatalf("warm id not validated: %v", notMod)
		}

		if err := st.DeleteObject("x"); err != nil {
			t.Fatal(err)
		}
		_, notMod, missing := st.GetBatch([]ObjectID{"x"}, known)
		if len(notMod) != 0 || len(missing) != 1 || missing[0] != "x" {
			t.Fatalf("deleted id: notMod=%v missing=%v (want missing only)", notMod, missing)
		}

		// Resurrect: the version resumes above the deleted one, so the
		// stale known never false-validates (no ABA).
		v, err := st.PutObject(Object{ID: "x", Data: []byte("reborn")})
		if err != nil {
			t.Fatal(err)
		}
		if v <= 2 {
			t.Fatalf("resurrected version = %d, want > 2 (monotonic across delete)", v)
		}
		objs, notMod, _ := st.GetBatch([]ObjectID{"x"}, known)
		if len(notMod) != 0 || len(objs) != 1 || string(objs[0].Data) != "reborn" {
			t.Fatalf("resurrected id must ship fresh data: objs=%v notMod=%v", objs, notMod)
		}
	})
}

func TestListVersion(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		if _, err := st.ListVersion("nope"); !errors.Is(err, ErrNoCollection) {
			t.Fatalf("missing collection = %v", err)
		}
		mustColl(t, st, "c")
		ref := mustPut(t, st, "a")
		if _, err := st.Add("c", ref); err != nil {
			t.Fatal(err)
		}
		v, err := st.ListVersion("c")
		if err != nil {
			t.Fatal(err)
		}
		_, lv, _ := st.List("c")
		if v != lv {
			t.Fatalf("ListVersion = %d, List version = %d", v, lv)
		}
		if _, _, _, err := st.Remove("c", "a"); err != nil {
			t.Fatal(err)
		}
		v2, _ := st.ListVersion("c")
		if v2 <= v {
			t.Fatalf("version did not advance on remove: %d -> %d", v, v2)
		}
	})
}

// TestEndGrowBumpsVersion pins the property version-gated List depends
// on: ghost garbage collection changes the listing, so it must advance
// the version — a gated reader comparing versions would otherwise be
// told "not modified" while the ghost silently vanished.
func TestEndGrowBumpsVersion(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		tok, _ := st.BeginGrow("c")
		st.Remove("c", "a") // deferred: ghost keeps "a" listed
		vBefore, _ := st.ListVersion("c")
		if _, err := st.EndGrow("c", tok); err != nil {
			t.Fatal(err)
		}
		vAfter, _ := st.ListVersion("c")
		if vAfter <= vBefore {
			t.Fatalf("ghost GC changed the listing but not the version: %d -> %d", vBefore, vAfter)
		}

		// Conversely a window with no ghosts must NOT bump: nothing the
		// listing shows changed.
		tok, _ = st.BeginGrow("c")
		vBefore, _ = st.ListVersion("c")
		if _, err := st.EndGrow("c", tok); err != nil {
			t.Fatal(err)
		}
		vAfter, _ = st.ListVersion("c")
		if vAfter != vBefore {
			t.Fatalf("empty window bumped version: %d -> %d", vBefore, vAfter)
		}
	})
}

func TestCollectionMembership(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		if err := st.CreateCollection("c"); !errors.Is(err, ErrCollectionExists) {
			t.Fatalf("duplicate create = %v", err)
		}
		if _, _, err := st.List("nope"); !errors.Is(err, ErrNoCollection) {
			t.Fatalf("list missing = %v", err)
		}
		r1, r2 := mustPut(t, st, "b"), mustPut(t, st, "a")
		if v, err := st.Add("c", r1); err != nil || v != 1 {
			t.Fatalf("add = %d, %v", v, err)
		}
		if v, err := st.Add("c", r2); err != nil || v != 2 {
			t.Fatalf("add = %d, %v", v, err)
		}
		members, v, err := st.List("c")
		if err != nil || v != 2 {
			t.Fatalf("list = v%d, %v", v, err)
		}
		if len(members) != 2 || members[0].ID != "a" || members[1].ID != "b" {
			t.Fatalf("members = %v (want sorted a,b)", memberIDs(members))
		}
		if _, deferred, v, err := st.Remove("c", "a"); err != nil || deferred || v != 3 {
			t.Fatalf("remove = deferred=%v v=%d %v", deferred, v, err)
		}
		if _, _, _, err := st.Remove("c", "a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("remove missing = %v", err)
		}
		members, _, _ = st.List("c")
		if len(members) != 1 || members[0].ID != "b" {
			t.Fatalf("members = %v", memberIDs(members))
		}
	})
}

func TestPins(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		pin, err := st.Pin("c")
		if err != nil {
			t.Fatal(err)
		}
		st.Add("c", mustPut(t, st, "b"))
		snap, _, err := st.ListPinned("c", pin)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != 1 || snap[0].ID != "a" {
			t.Fatalf("pinned = %v (want just a)", memberIDs(snap))
		}
		if _, _, err := st.ListPinned("c", 999); !errors.Is(err, ErrBadPin) {
			t.Fatalf("bad pin = %v", err)
		}
		if err := st.Unpin("c", pin); err != nil {
			t.Fatal(err)
		}
		if err := st.Unpin("c", pin); !errors.Is(err, ErrBadPin) {
			t.Fatalf("double unpin = %v", err)
		}
	})
}

func TestGrowWindowGhosts(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		ra, rb := mustPut(t, st, "a"), mustPut(t, st, "b")
		st.Add("c", ra)
		st.Add("c", rb)

		tok, err := st.BeginGrow("c")
		if err != nil {
			t.Fatal(err)
		}
		_, deferred, _, err := st.Remove("c", "a")
		if err != nil || !deferred {
			t.Fatalf("remove in window: deferred=%v err=%v", deferred, err)
		}
		// The ghost keeps "a" listed: the set only grows during the window.
		members, _, _ := st.List("c")
		if len(members) != 2 {
			t.Fatalf("window listing = %v (ghost missing)", memberIDs(members))
		}
		cs, _ := st.CollStats("c")
		if cs.Ghosts != 1 || cs.Tokens != 1 {
			t.Fatalf("stats = %+v", cs)
		}

		if _, err := st.EndGrow("c", 999); !errors.Is(err, ErrBadToken) {
			t.Fatalf("bad token = %v", err)
		}
		reclaim, err := st.EndGrow("c", tok)
		if err != nil {
			t.Fatal(err)
		}
		if len(reclaim) != 1 || reclaim[0].ID != "a" {
			t.Fatalf("reclaim = %v", memberIDs(reclaim))
		}
		members, _, _ = st.List("c")
		if len(members) != 1 || members[0].ID != "b" {
			t.Fatalf("post-GC listing = %v", memberIDs(members))
		}
	})
}

func TestGrowWindowReAddRevives(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		ra := mustPut(t, st, "a")
		st.Add("c", ra)
		tok, _ := st.BeginGrow("c")
		st.Remove("c", "a")
		st.Add("c", ra) // revive: the deferred delete must not fire
		reclaim, err := st.EndGrow("c", tok)
		if err != nil {
			t.Fatal(err)
		}
		if len(reclaim) != 0 {
			t.Fatalf("revived member reclaimed: %v", memberIDs(reclaim))
		}
	})
}

func TestNestedGrowWindows(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		t1, _ := st.BeginGrow("c")
		t2, _ := st.BeginGrow("c")
		st.Remove("c", "a")
		if reclaim, err := st.EndGrow("c", t1); err != nil || len(reclaim) != 0 {
			t.Fatalf("first token drained ghosts early: %v %v", reclaim, err)
		}
		// Ghost still listed while t2 is open.
		if members, _, _ := st.List("c"); len(members) != 1 {
			t.Fatalf("ghost dropped early: %v", memberIDs(members))
		}
		if reclaim, _ := st.EndGrow("c", t2); len(reclaim) != 1 {
			t.Fatalf("last token reclaim = %v", memberIDs(reclaim))
		}
	})
}

func TestApplySyncStaleIgnored(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		st.ApplySync("c", []Ref{{ID: "x", Node: "n1"}}, 5)
		members, v, err := st.List("c")
		if err != nil || v != 5 || len(members) != 1 {
			t.Fatalf("sync created: %v v=%d %v", memberIDs(members), v, err)
		}
		// Stale push ignored.
		st.ApplySync("c", []Ref{{ID: "y", Node: "n1"}}, 3)
		members, v, _ = st.List("c")
		if v != 5 || members[0].ID != "x" {
			t.Fatalf("stale push applied: %v v=%d", memberIDs(members), v)
		}
		// Newer push applied.
		st.ApplySync("c", []Ref{{ID: "y", Node: "n1"}}, 9)
		members, v, _ = st.List("c")
		if v != 9 || members[0].ID != "y" {
			t.Fatalf("fresh push dropped: %v v=%d", memberIDs(members), v)
		}
	})
}

func TestExportImportRoundTrip(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		st.Add("c", mustPut(t, st, "b"))
		st.Remove("c", "b")
		st.SetReplicas("c", []netsim.NodeID{"r1", "r2"})

		img := st.Export()

		fresh := NewSharded(Config{Shards: 2})
		fresh.Import(img)
		members, v, err := fresh.List("c")
		if err != nil || v != 3 {
			t.Fatalf("imported list = v%d %v", v, err)
		}
		if len(members) != 1 || members[0].ID != "a" {
			t.Fatalf("imported members = %v", memberIDs(members))
		}
		if fresh.ObjectCount() != 2 {
			t.Fatalf("imported objects = %d", fresh.ObjectCount())
		}
		_, _, replicas, ok := fresh.SyncState("c")
		if !ok || len(replicas) != 2 {
			t.Fatalf("imported replicas = %v ok=%v", replicas, ok)
		}
	})
}

func TestEngineStatsPopulated(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		for i := 0; i < 10; i++ {
			if _, _, err := st.List("c"); err != nil {
				t.Fatal(err)
			}
		}
		st.GetObject("missing") // one error
		es := st.Stats()
		if es.Objects != 1 || es.Collections != 1 {
			t.Fatalf("stats = %+v", es)
		}
		byOp := map[string]OpStats{}
		for _, op := range es.Ops {
			byOp[op.Op] = op
		}
		if byOp["list"].Count != 10 {
			t.Fatalf("list count = %d", byOp["list"].Count)
		}
		if byOp["get"].Errors != 1 {
			t.Fatalf("get errors = %d", byOp["get"].Errors)
		}
		if byOp["list"].P99 <= 0 {
			t.Fatalf("list p99 = %v", byOp["list"].P99)
		}
	})
}

// TestListingSnapshotIsolation pins down the copy-on-write contract: a
// listing handed out by List must not change when the collection
// mutates afterwards.
func TestListingSnapshotIsolation(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		st.Add("c", mustPut(t, st, "a"))
		before, v, _ := st.List("c")
		st.Add("c", mustPut(t, st, "b"))
		st.Remove("c", "a")
		if len(before) != 1 || before[0].ID != "a" || v != 1 {
			t.Fatalf("earlier listing mutated: %v v=%d", memberIDs(before), v)
		}
		// Mutating the returned slice must not corrupt the engine.
		before[0].ID = "corrupted"
		after, _, _ := st.List("c")
		if len(after) != 1 || after[0].ID != "b" {
			t.Fatalf("engine state corrupted through listing: %v", memberIDs(after))
		}
	})
}

// TestConcurrentReadersWriters exercises the parallel hot path under
// -race: readers run List/Get/CollStats while writers add, remove,
// put, and cycle grow windows.
func TestConcurrentReadersWriters(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		ids := make([]ObjectID, 64)
		for i := range ids {
			ids[i] = ObjectID(fmt.Sprintf("o%02d", i))
			st.PutObject(Object{ID: ids[i], Data: []byte("x")})
			st.Add("c", Ref{ID: ids[i], Node: "n1"})
		}
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					if members, _, err := st.List("c"); err != nil || len(members) == 0 {
						t.Errorf("list: %d members, %v", len(members), err)
						return
					}
					st.GetObject(ids[(i*7+r)%len(ids)])
					st.CollStats("c")
				}
			}(r)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					id := ids[(i+w*31)%len(ids)]
					st.PutObject(Object{ID: id, Data: []byte("y")})
					if i%4 == 0 {
						tok, _ := st.BeginGrow("c")
						st.Remove("c", id)
						st.Add("c", Ref{ID: id, Node: "n1"})
						st.EndGrow("c", tok)
					} else {
						st.Add("c", Ref{ID: id, Node: "n1"})
					}
				}
			}(w)
		}
		wg.Wait()
		members, _, err := st.List("c")
		if err != nil || len(members) != len(ids) {
			t.Fatalf("final members = %d, %v", len(members), err)
		}
	})
}

func TestNewEngine(t *testing.T) {
	if _, err := NewEngine("locked", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine("sharded", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine("bogus", 0); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestRunContention(t *testing.T) {
	for _, engine := range []string{"locked", "sharded"} {
		res, err := RunContention(ContentionConfig{
			Engine:       engine,
			Objects:      64,
			Members:      32,
			Workers:      2,
			OpsPerWorker: 500,
			WriteEvery:   10,
		})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.TotalOps != 1000 || res.OpsPerSec <= 0 {
			t.Fatalf("%s: result = %+v", engine, res)
		}
		if len(res.PerOp) == 0 {
			t.Fatalf("%s: no per-op stats", engine)
		}
	}
}
