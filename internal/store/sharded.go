package store

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/netsim"
)

// Config sizes a sharded engine.
type Config struct {
	// Shards is the number of object shards, rounded up to a power of
	// two. Defaults to 16.
	Shards int
	// Partitions is the listing partition count new collections are
	// created with. Defaults to DefaultPartitions. More partitions mean
	// smaller streamed listing frames and an earlier first element on
	// huge sets, at a little fixed overhead per collection.
	Partitions int
}

// DefaultShards is the object-shard count used when Config.Shards is 0.
const DefaultShards = 16

// Sharded is the default storage engine. Objects are hash-partitioned
// across independently RW-locked shards, so reads and writes only
// contend within one shard. Each collection carries its own RWMutex for
// mutation and soft state (pins, tokens), and publishes its listing as
// an immutable copy-on-write snapshot behind an atomic.Pointer: List
// never takes a lock at all, and a reader always observes one
// consistent membership image no matter how writers race — the same
// snapshot/mutation separation the paper's Fig. 4 semantics make at the
// iterator level.
type Sharded struct {
	ins   instruments
	watch notifier

	shards     []*objShard
	mask       uint32
	partitions int

	collMu sync.RWMutex
	colls  map[string]*shardedColl
}

// OnListingChange implements Store.
func (s *Sharded) OnListingChange(fn func(ChangeEvent)) { s.watch.subscribe(fn) }

type objShard struct {
	mu      sync.RWMutex
	objects map[ObjectID]Object
	// floors remembers the last version an id held when its object was
	// deleted, so a re-put resumes above it instead of restarting at 1.
	// Per-id version monotonicity is what makes conditional GetBatch's
	// equality check sound: without it a delete/re-put cycle could land
	// back on a version a client already cached (ABA) and validate a
	// stale copy. Floors are soft state — Import starts them fresh.
	floors map[ObjectID]uint64
}

// listing is one immutable published membership image. Its members
// slice is never mutated after publication; List hands out copies.
type listing struct {
	members []Ref
	version uint64
}

type shardedColl struct {
	mu sync.RWMutex // guards st (writes) and soft state reads
	st *collState

	// ver mirrors st.version and pver[i] mirrors st.parts[i].version;
	// both are updated under c.mu's write lock, so readers can detect a
	// stale cached snapshot without touching the mutex. Snapshots are
	// recomputed lazily on read — a writer never pays to rebuild a
	// listing nobody is reading, which is what keeps Add O(1) while the
	// collection grows to millions of members.
	ver  atomic.Uint64
	pver []atomic.Uint64

	full  atomic.Pointer[listing]   // cached full listed snapshot
	psnap []atomic.Pointer[listing] // cached per-partition snapshots
}

func newShardedColl(st *collState) *shardedColl {
	n := st.partitions()
	c := &shardedColl{
		st:    st,
		pver:  make([]atomic.Uint64, n),
		psnap: make([]atomic.Pointer[listing], n),
	}
	c.syncVersions()
	return c
}

// syncVersions refreshes the lock-free version mirrors from st; callers
// hold c.mu for writing (or own the collection exclusively).
func (c *shardedColl) syncVersions() {
	for i := range c.pver {
		c.pver[i].Store(c.st.parts[i].version)
	}
	c.ver.Store(c.st.version)
}

// snapshot returns the current full listed snapshot, rebuilding it under
// the read lock only when a mutation has moved the version mirror since
// the cached one was taken. Concurrent rebuilds are harmless: each is
// internally consistent, and a stale store just means one more rebuild.
func (c *shardedColl) snapshot() *listing {
	if l := c.full.Load(); l != nil && l.version == c.ver.Load() {
		return l
	}
	c.mu.RLock()
	l := &listing{members: c.st.listedMembers(), version: c.st.version}
	c.mu.RUnlock()
	c.full.Store(l)
	return l
}

// partSnapshot is snapshot for one listing partition.
func (c *shardedColl) partSnapshot(part int) *listing {
	if l := c.psnap[part].Load(); l != nil && l.version == c.pver[part].Load() {
		return l
	}
	c.mu.RLock()
	members, version := c.st.partListed(part)
	c.mu.RUnlock()
	l := &listing{members: members, version: version}
	c.psnap[part].Store(l)
	return l
}

// NewSharded creates an empty sharded engine.
func NewSharded(cfg Config) *Sharded {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	size := 1
	for size < n {
		size <<= 1
	}
	partitions := cfg.Partitions
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	s := &Sharded{
		shards:     make([]*objShard, size),
		mask:       uint32(size - 1),
		partitions: partitions,
		colls:      make(map[string]*shardedColl),
	}
	for i := range s.shards {
		s.shards[i] = &objShard{
			objects: make(map[ObjectID]Object),
			floors:  make(map[ObjectID]uint64),
		}
	}
	return s
}

func (s *Sharded) shardFor(id ObjectID) *objShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[h.Sum32()&s.mask]
}

func (s *Sharded) coll(name string) (*shardedColl, error) {
	s.collMu.RLock()
	c, ok := s.colls[name]
	s.collMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("collection %q: %w", name, ErrNoCollection)
	}
	return c, nil
}

// GetObject implements Store.
func (s *Sharded) GetObject(id ObjectID) (obj Object, err error) {
	defer s.ins.observe(OpGet, time.Now(), &err)
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obj, found := sh.objects[id]
	if !found {
		return Object{}, fmt.Errorf("get %q: %w", id, ErrNotFound)
	}
	return obj.Clone(), nil
}

// GetBatch implements Store. IDs are grouped by shard so each shard is
// visited — and its lock taken — exactly once per batch, no matter how
// many of the batch's objects it holds. IDs whose known version still
// matches skip the clone entirely: validation costs a map lookup and a
// version compare, never a payload copy.
func (s *Sharded) GetBatch(ids []ObjectID, known map[ObjectID]uint64) (objs []Object, notModified []ObjectID, missing []ObjectID) {
	var err error
	defer s.ins.observe(OpGetBatch, time.Now(), &err)

	byShard := make(map[*objShard][]ObjectID)
	for _, id := range ids {
		sh := s.shardFor(id)
		byShard[sh] = append(byShard[sh], id)
	}
	var shipped, saved int64
	found := make(map[ObjectID]Object, len(ids))
	fresh := make(map[ObjectID]bool)
	for sh, shardIDs := range byShard {
		sh.mu.RLock()
		for _, id := range shardIDs {
			obj, ok := sh.objects[id]
			if !ok {
				continue
			}
			if v, has := known[id]; has && v == obj.Version {
				if !fresh[id] {
					fresh[id] = true
					saved += int64(len(obj.Data))
				}
				continue
			}
			if _, dup := found[id]; !dup {
				found[id] = obj.Clone()
				shipped += int64(len(obj.Data))
			}
		}
		sh.mu.RUnlock()
	}
	objs = make([]Object, 0, len(found))
	seen := make(map[ObjectID]bool, len(ids))
	for _, id := range ids {
		if seen[id] { // duplicate ids in the request resolve once
			continue
		}
		seen[id] = true
		switch {
		case fresh[id]:
			notModified = append(notModified, id)
		default:
			if obj, ok := found[id]; ok {
				objs = append(objs, obj)
			} else {
				missing = append(missing, id)
			}
		}
	}
	s.ins.observeBatch(len(ids), len(notModified), shipped, saved)
	return objs, notModified, missing
}

// PutObject implements Store.
func (s *Sharded) PutObject(obj Object) (version uint64, err error) {
	defer s.ins.observe(OpPut, time.Now(), &err)
	sh := s.shardFor(obj.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	stored := obj.Clone()
	base := sh.objects[obj.ID].Version
	// Resume above the version the id held at its last delete, keeping
	// per-id versions monotonic across delete/re-put (the property the
	// conditional-fetch protocol relies on).
	if f, ok := sh.floors[obj.ID]; ok {
		if f > base {
			base = f
		}
		delete(sh.floors, obj.ID)
	}
	stored.Version = base + 1
	stored.Tombstone = false
	sh.objects[obj.ID] = stored
	return stored.Version, nil
}

// InstallObject implements Store.
func (s *Sharded) InstallObject(obj Object) (applied bool) {
	var err error
	defer s.ins.observe(OpInstall, time.Now(), &err)
	sh := s.shardFor(obj.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if obj.Version <= sh.objects[obj.ID].Version || obj.Version <= sh.floors[obj.ID] {
		return false
	}
	sh.objects[obj.ID] = obj.Clone()
	return true
}

// DeleteObject implements Store.
func (s *Sharded) DeleteObject(id ObjectID) (err error) {
	defer s.ins.observe(OpDelete, time.Now(), &err)
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, found := sh.objects[id]
	if !found {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	sh.floors[id] = obj.Version
	delete(sh.objects, id)
	return nil
}

// ObjectCount implements Store.
func (s *Sharded) ObjectCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.objects)
		sh.mu.RUnlock()
	}
	return total
}

// CreateCollection implements Store.
func (s *Sharded) CreateCollection(name string) error {
	s.collMu.Lock()
	defer s.collMu.Unlock()
	if _, exists := s.colls[name]; exists {
		return fmt.Errorf("create %q: %w", name, ErrCollectionExists)
	}
	s.colls[name] = newShardedColl(newCollState(name, s.partitions))
	return nil
}

// List implements Store. When the cached snapshot is current it is
// lock-free: the snapshot is immutable, so the only cost is copying the
// member slice out; after a mutation the first reader rebuilds it under
// the read lock.
func (s *Sharded) List(name string) (members []Ref, version uint64, err error) {
	defer s.ins.observe(OpList, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, err
	}
	l := c.snapshot()
	return append([]Ref(nil), l.members...), l.version, nil
}

// ListVersion implements Store. It is lock-free: the version rides an
// atomic mirror maintained by writers.
func (s *Sharded) ListVersion(name string) (version uint64, err error) {
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return c.ver.Load(), nil
}

// Partitions implements Store.
func (s *Sharded) Partitions(name string) (int, error) {
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	return len(c.pver), nil
}

// ListPart implements Store. The NotModified fast path is two atomic
// loads; a served partition comes from its own copy-on-write snapshot,
// so readers of one partition never pay for writes to another.
func (s *Sharded) ListPart(name string, part int, ifVersion uint64) (members []Ref, version uint64, notModified bool, err error) {
	defer s.ins.observe(OpListPart, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, false, err
	}
	if part < 0 || part >= len(c.pver) {
		return nil, 0, false, fmt.Errorf("list %q partition %d of %d: %w", name, part, len(c.pver), ErrBadPartition)
	}
	if pv := c.pver[part].Load(); ifVersion != 0 && pv <= ifVersion {
		return nil, pv, true, nil
	}
	l := c.partSnapshot(part)
	return append([]Ref(nil), l.members...), l.version, false, nil
}

// ListPinned implements Store.
func (s *Sharded) ListPinned(name string, pin int64) (members []Ref, version uint64, err error) {
	defer s.ins.observe(OpListPinned, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return nil, 0, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap, err := c.st.listPinned(pin)
	if err != nil {
		return nil, 0, err
	}
	return snap, c.st.version, nil
}

// Add implements Store.
func (s *Sharded) Add(name string, ref Ref) (version uint64, err error) {
	defer s.ins.observe(OpAdd, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	part := c.st.partOf(ref.ID)
	v := c.st.add(ref)
	c.syncVersions()
	c.mu.Unlock()
	s.watch.fire(ChangeEvent{Coll: name, Part: part, Version: v})
	return v, nil
}

// Remove implements Store.
func (s *Sharded) Remove(name string, id ObjectID) (ref Ref, deferred bool, version uint64, err error) {
	defer s.ins.observe(OpRemove, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return Ref{}, false, 0, err
	}
	c.mu.Lock()
	part := c.st.partOf(id)
	ref, deferred, version, err = c.st.remove(id)
	if err != nil {
		c.mu.Unlock()
		return Ref{}, false, 0, err
	}
	c.syncVersions()
	c.mu.Unlock()
	s.watch.fire(ChangeEvent{Coll: name, Part: part, Version: version})
	return ref, deferred, version, nil
}

// Pin implements Store.
func (s *Sharded) Pin(name string) (pin int64, err error) {
	defer s.ins.observe(OpPin, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.pin(), nil
}

// Unpin implements Store.
func (s *Sharded) Unpin(name string, pin int64) (err error) {
	defer s.ins.observe(OpUnpin, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.unpin(pin)
}

// BeginGrow implements Store.
func (s *Sharded) BeginGrow(name string) (token int64, err error) {
	defer s.ins.observe(OpBeginGrow, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.beginGrow(), nil
}

// EndGrow implements Store.
func (s *Sharded) EndGrow(name string, token int64) (reclaim []Ref, err error) {
	defer s.ins.observe(OpEndGrow, time.Now(), &err)
	c, err := s.coll(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	before := c.st.version
	reclaim, err = c.st.endGrow(token)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	// Draining the last token clears the ghosts out of the listing.
	c.syncVersions()
	after := c.st.version
	c.mu.Unlock()
	if after != before {
		// Ghost GC may touch several partitions at once.
		s.watch.fire(ChangeEvent{Coll: name, Part: PartAll, Version: after})
	}
	return reclaim, nil
}

// CollStats implements Store.
func (s *Sharded) CollStats(name string) (CollStats, error) {
	c, err := s.coll(name)
	if err != nil {
		return CollStats{}, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.st.stats(), nil
}

// SetReplicas implements Store.
func (s *Sharded) SetReplicas(name string, replicas []netsim.NodeID) error {
	c, err := s.coll(name)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.replicas = append([]netsim.NodeID(nil), replicas...)
	return nil
}

// SyncState implements Store. The membership and version come from the
// listed snapshot, so a push always carries a consistent image.
func (s *Sharded) SyncState(name string) (members []Ref, version uint64, replicas []netsim.NodeID, ok bool) {
	s.collMu.RLock()
	c, found := s.colls[name]
	s.collMu.RUnlock()
	if !found {
		return nil, 0, nil, false
	}
	l := c.snapshot()
	c.mu.RLock()
	replicas = append([]netsim.NodeID(nil), c.st.replicas...)
	c.mu.RUnlock()
	return append([]Ref(nil), l.members...), l.version, replicas, true
}

// ApplySync implements Store.
func (s *Sharded) ApplySync(name string, members []Ref, version uint64) {
	var err error
	defer s.ins.observe(OpSync, time.Now(), &err)
	s.collMu.Lock()
	c, found := s.colls[name]
	if !found {
		c = newShardedColl(newCollState(name, s.partitions))
		s.colls[name] = c
	}
	s.collMu.Unlock()
	c.mu.Lock()
	applied := c.st.applySync(members, version)
	if applied {
		c.syncVersions()
	}
	c.mu.Unlock()
	if applied {
		s.watch.fire(ChangeEvent{Coll: name, Part: PartAll, Version: version})
	}
}

// PartVersions implements Store. It is lock-free: the vector rides the
// atomic per-partition mirrors maintained by writers.
func (s *Sharded) PartVersions(name string) ([]uint64, error) {
	c, err := s.coll(name)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(c.pver))
	for i := range c.pver {
		out[i] = c.pver[i].Load()
	}
	return out, nil
}

// ApplySyncPart implements Store.
func (s *Sharded) ApplySyncPart(name string, partitions, part int, members []Ref, version uint64) bool {
	var err error
	defer s.ins.observe(OpSyncPart, time.Now(), &err)
	s.collMu.Lock()
	c, found := s.colls[name]
	if !found {
		c = newShardedColl(newCollState(name, s.partitions))
		s.colls[name] = c
	}
	s.collMu.Unlock()
	c.mu.Lock()
	applied := c.st.applySyncPart(partitions, part, members, version)
	if applied {
		c.syncVersions()
	}
	c.mu.Unlock()
	if applied {
		s.watch.fire(ChangeEvent{Coll: name, Part: part, Version: version})
	}
	return applied
}

// Export implements Store.
func (s *Sharded) Export() State {
	var st State
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, obj := range sh.objects {
			st.Objects = append(st.Objects, obj.Clone())
		}
		sh.mu.RUnlock()
	}
	s.collMu.RLock()
	defer s.collMu.RUnlock()
	for _, c := range s.colls {
		c.mu.RLock()
		st.Collections = append(st.Collections, c.st.exportState())
		c.mu.RUnlock()
	}
	return st
}

// Import implements Store.
func (s *Sharded) Import(st State) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.objects = make(map[ObjectID]Object)
		sh.floors = make(map[ObjectID]uint64)
		sh.mu.Unlock()
	}
	for _, obj := range st.Objects {
		sh := s.shardFor(obj.ID)
		sh.mu.Lock()
		sh.objects[obj.ID] = obj.Clone()
		sh.mu.Unlock()
	}
	s.collMu.Lock()
	defer s.collMu.Unlock()
	s.colls = make(map[string]*shardedColl, len(st.Collections))
	for _, cs := range st.Collections {
		s.colls[cs.Name] = newShardedColl(collFromState(cs, s.partitions))
	}
}

// Stats implements Store.
func (s *Sharded) Stats() EngineStats {
	s.collMu.RLock()
	colls := len(s.colls)
	s.collMu.RUnlock()
	return EngineStats{
		Engine:      "sharded",
		Shards:      len(s.shards),
		Objects:     s.ObjectCount(),
		Collections: colls,
		Batch:       s.ins.batchStats(),
		Ops:         s.ins.opStats(),
	}
}

var _ Store = (*Sharded)(nil)
